//! Parallel Grover search — Lemma 2 of the paper.
//!
//! The quantum algorithm searches over *p-subsets* of `[k]` (a subset is
//! marked if it contains a marked index); each Grover iteration on that
//! space is one use of `O^{⊗p}`, i.e. one charged batch. With `t` marked
//! items the marked-subset fraction is `ε = 1 − C(k−t, p)/C(k, p) =
//! Ω(min(1, tp/k))`, so finding one item takes `O(⌈√(k/(tp))⌉)` batches and
//! finding all of them `O(√(kt/p) + t)`.
//!
//! ## Emulation
//!
//! The BBHT driver is run literally (exponentially growing random iteration
//! counts, one batch per iteration plus one verification batch per round);
//! only the measurement outcome is *sampled*: after `j` iterations the
//! measured subset is marked with probability exactly `sin²((2j+1)θ_ε)`,
//! which the emulator computes from the true `t` (via
//! [`BatchSource::peek`]). The verification batch then queries the sampled
//! subset through the **charged** oracle, so a returned index is always
//! genuinely marked (one-sided error, as in the paper).

use crate::oracle::BatchSource;
use rand::seq::{index, SliceRandom};
use rand::Rng;

/// Fraction of `p`-subsets of `[k]` containing at least one of `t` marked
/// items: `1 − Π_{i=0}^{p−1} (k−t−i)/(k−i)`.
///
/// # Panics
///
/// Panics if `p > k` or `t > k`.
pub fn marked_subset_fraction(k: usize, t: usize, p: usize) -> f64 {
    assert!(p <= k && t <= k);
    if t == 0 {
        return 0.0;
    }
    if t + p > k {
        return 1.0; // pigeonhole: every p-subset hits a marked item
    }
    let mut unmarked = 1.0f64;
    for i in 0..p {
        unmarked *= (k - t - i) as f64 / (k - i) as f64;
    }
    1.0 - unmarked
}

/// Sample a uniformly random `p`-subset of `[k]`.
fn random_subset<R: Rng>(k: usize, p: usize, rng: &mut R) -> Vec<usize> {
    debug_assert!(p <= k);
    // Floyd's sampling for sparse draws, partial Fisher–Yates for dense
    // ones — no per-element HashMap traffic on the hot path.
    index::sample(rng, k, p).into_vec()
}

/// Sample a `p`-subset conditioned on containing at least one marked index:
/// one uniformly random index from the pre-computed `marked` list plus
/// `p − 1` others. Callers cache `marked` once per search instead of
/// re-scanning all `k` values per verification round.
fn random_marked_subset<R: Rng>(marked: &[usize], k: usize, p: usize, rng: &mut R) -> Vec<usize> {
    let pick = marked[rng.gen_range(0..marked.len())];
    let mut rest = random_subset(k, p, rng);
    if !rest.contains(&pick) {
        rest[0] = pick;
    }
    rest.shuffle(rng);
    rest
}

/// Outcome of a parallel Grover search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// A marked index, or `None` if the search concluded none exists.
    pub found: Option<usize>,
    /// Batches charged by this call (also visible on the source ledger).
    pub batches: usize,
}

/// Find one index whose value satisfies `pred`, or report that none exists
/// — Lemma 2, first part. Uses `O(⌈√(k/(tp))⌉)` expected batches when `t`
/// items are marked; the "none" answer has error probability ≤ 1/3 and a
/// returned index is always correct.
pub fn search_one<S, F, R>(src: &mut S, pred: &F, rng: &mut R) -> SearchOutcome
where
    S: BatchSource + ?Sized,
    F: Fn(u64) -> bool,
    R: Rng,
{
    search_one_promised(src, pred, 1, rng)
}

/// [`search_one`] under the promise that **if any** marked item exists, at
/// least `t_promise` of them do. The "none exists" certification budget
/// shrinks to `O(√(k/(t_promise·p)))` batches — the saving used by the
/// ℓ-fold minimum finding of Lemma 3 and the heavy-cycle search of
/// Lemma 23.
///
/// # Panics
///
/// Panics if `t_promise == 0`.
pub fn search_one_promised<S, F, R>(
    src: &mut S,
    pred: &F,
    t_promise: usize,
    rng: &mut R,
) -> SearchOutcome
where
    S: BatchSource + ?Sized,
    F: Fn(u64) -> bool,
    R: Rng,
{
    assert!(t_promise >= 1);
    let start = src.batches();
    let k = src.k();
    let p = src.p().min(k);
    // Small inputs: query everything in ⌈k/p⌉ batches.
    if k <= 4 * p {
        let mut found = None;
        for chunk in (0..k).collect::<Vec<_>>().chunks(p) {
            let vals = src.query(chunk);
            if let Some(pos) = vals.iter().position(|&v| pred(v)) {
                found = Some(chunk[pos]);
                break;
            }
        }
        return SearchOutcome { found, batches: src.batches() - start };
    }

    // Emulator bookkeeping (uncharged `peek`s, not quantum queries): cache
    // the marked-index list once — every sin²-successful measurement reuses
    // it instead of re-scanning all k values.
    let marked: Vec<usize> = (0..k).filter(|&i| pred(src.peek(i))).collect();
    let t = marked.len();
    let eps = marked_subset_fraction(k, t, p);
    let theta = if eps > 0.0 { eps.sqrt().min(1.0).asin() } else { 0.0 };

    // BBHT with exponent λ = 6/5; cutoff sized so that a marked item is
    // missed with probability well below 1/3 (under the promise, a marked
    // population has t ≥ t_promise, so the expected hitting cost is
    // √(k/(t_promise·p)) and 20× that is a safe certification budget).
    let m_max = ((k as f64 / (p as f64 * t_promise as f64)).sqrt().ceil()).max(1.0);
    // Calibrated: with λ = 1.35 the schedule finds a lone marked item well
    // within 4·√(k/p) + 10 batches with probability ≫ 2/3 (see the
    // calibration experiment in EXPERIMENTS.md).
    let cutoff = (4.0 * m_max) as usize + 10;
    let mut m = 1.0f64;
    loop {
        let j = rng.gen_range(0..(m.ceil() as usize).max(1));
        // j Grover iterations = j charged batches of p queries each. Their
        // contents are superpositions; the transcript ships representative
        // uniformly random subsets (round cost is content-independent).
        for _ in 0..j {
            src.query(&random_subset(k, p, rng));
        }
        // Measurement: marked subset with probability sin²((2j+1)θ).
        let p_succ = if t == 0 { 0.0 } else { (((2 * j + 1) as f64) * theta).sin().powi(2) };
        let subset = if t > 0 && rng.gen_bool(p_succ.clamp(0.0, 1.0)) {
            random_marked_subset(&marked, k, p, rng)
        } else {
            random_subset(k, p, rng)
        };
        // Verification batch: genuinely query the measured subset.
        let vals = src.query(&subset);
        if let Some(pos) = vals.iter().position(|&v| pred(v)) {
            return SearchOutcome { found: Some(subset[pos]), batches: src.batches() - start };
        }
        if src.batches() - start >= cutoff {
            return SearchOutcome { found: None, batches: src.batches() - start };
        }
        m = (m * 1.35).min(m_max);
    }
}

/// Find **all** marked indices — Lemma 2, second part:
/// `O(√(kt/p) + t)` expected batches. The returned set may miss items with
/// probability ≤ 1/3 overall; every returned index is genuinely marked.
pub fn search_all<S, F, R>(src: &mut S, pred: &F, rng: &mut R) -> (Vec<usize>, usize)
where
    S: BatchSource + ?Sized,
    F: Fn(u64) -> bool,
    R: Rng,
{
    let start = src.batches();
    let mut found: Vec<usize> = Vec::new();
    loop {
        let found_set: std::collections::HashSet<usize> = found.iter().copied().collect();
        // Search for a marked item not yet found. The "not yet found"
        // restriction is classical post-processing on indices, not a new
        // oracle: we wrap the predicate at the index level by filtering
        // returned candidates.
        let outcome = search_one_excluding(src, pred, &found_set, rng);
        match outcome {
            Some(i) => found.push(i),
            None => break,
        }
    }
    found.sort_unstable();
    (found, src.batches() - start)
}

/// `search_one` variant that treats indices in `excluded` as unmarked.
fn search_one_excluding<S, F, R>(
    src: &mut S,
    pred: &F,
    excluded: &std::collections::HashSet<usize>,
    rng: &mut R,
) -> Option<usize>
where
    S: BatchSource + ?Sized,
    F: Fn(u64) -> bool,
    R: Rng,
{
    let k = src.k();
    let p = src.p().min(k);
    if k <= 4 * p {
        for chunk in (0..k).collect::<Vec<_>>().chunks(p) {
            let vals = src.query(chunk);
            for (pos, &v) in vals.iter().enumerate() {
                if pred(v) && !excluded.contains(&chunk[pos]) {
                    return Some(chunk[pos]);
                }
            }
        }
        return None;
    }
    // Cached once per exclusion round, as in `search_one_promised`.
    let marked: Vec<usize> =
        (0..k).filter(|&i| !excluded.contains(&i) && pred(src.peek(i))).collect();
    let t = marked.len();
    let eps = marked_subset_fraction(k, t, p);
    let theta = if eps > 0.0 { eps.sqrt().min(1.0).asin() } else { 0.0 };
    let m_max = ((k as f64 / p as f64).sqrt().ceil()).max(1.0);
    let cutoff_batches =
        (4.0 * (k as f64 / (p as f64 * t.max(1) as f64)).sqrt().ceil()) as usize + 10;
    let start = src.batches();
    let mut m = 1.0f64;
    loop {
        let j = rng.gen_range(0..(m.ceil() as usize).max(1));
        for _ in 0..j {
            src.query(&random_subset(k, p, rng));
        }
        let p_succ = if t == 0 { 0.0 } else { (((2 * j + 1) as f64) * theta).sin().powi(2) };
        let subset = if t > 0 && rng.gen_bool(p_succ.clamp(0.0, 1.0)) {
            random_marked_subset(&marked, k, p, rng)
        } else {
            random_subset(k, p, rng)
        };
        let vals = src.query(&subset);
        for (pos, &v) in vals.iter().enumerate() {
            if pred(v) && !excluded.contains(&subset[pos]) {
                return Some(subset[pos]);
            }
        }
        if src.batches() - start >= cutoff_batches {
            return None;
        }
        m = (m * 1.35).min(m_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bit_input(k: usize, marked: &[usize]) -> Vec<u64> {
        let mut x = vec![0u64; k];
        for &i in marked {
            x[i] = 1;
        }
        x
    }

    #[test]
    fn subset_fraction_sanity() {
        assert_eq!(marked_subset_fraction(10, 0, 3), 0.0);
        assert_eq!(marked_subset_fraction(10, 8, 3), 1.0);
        // Single marked item, p = 1: exactly 1/k.
        assert!((marked_subset_fraction(100, 1, 1) - 0.01).abs() < 1e-12);
        // Monotone in t and in p.
        assert!(marked_subset_fraction(50, 2, 5) > marked_subset_fraction(50, 1, 5));
        assert!(marked_subset_fraction(50, 2, 10) > marked_subset_fraction(50, 2, 5));
    }

    #[test]
    fn finds_unique_marked_item() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        for trial in 0..30 {
            let target = (trial * 37) % 200;
            let mut src = VecSource::new(bit_input(200, &[target]), 8);
            let out = search_one(&mut src, &|v| v != 0, &mut rng);
            if out.found == Some(target) {
                hits += 1;
            }
        }
        assert!(hits >= 25, "{hits}/30");
    }

    #[test]
    fn reports_none_when_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut src = VecSource::new(vec![0u64; 300], 10);
        let out = search_one(&mut src, &|v| v != 0, &mut rng);
        assert_eq!(out.found, None);
        assert!(out.batches > 0);
    }

    #[test]
    fn never_returns_false_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut src = VecSource::new(bit_input(128, &[5, 77]), 4);
            if let Some(i) = search_one(&mut src, &|v| v != 0, &mut rng).found {
                assert!(i == 5 || i == 77);
            }
        }
    }

    #[test]
    fn batch_count_scales_inverse_sqrt_t() {
        // b = O(√(k/(tp))): quadrupling t should roughly halve batches.
        let mut rng = StdRng::seed_from_u64(4);
        let k = 4096;
        let p = 4;
        let avg_batches = |t: usize, rng: &mut StdRng| -> f64 {
            let runs = 40;
            let mut total = 0usize;
            for r in 0..runs {
                let marked: Vec<usize> = (0..t).map(|i| (i * 131 + r) % k).collect();
                let mut src = VecSource::new(bit_input(k, &marked), p);
                total += search_one(&mut src, &|v| v != 0, rng).batches;
            }
            total as f64 / runs as f64
        };
        let b1 = avg_batches(1, &mut rng);
        let b16 = avg_batches(16, &mut rng);
        assert!(b1 / b16 > 1.8, "b(t=1)={b1}, b(t=16)={b16}");
    }

    #[test]
    fn batch_count_scales_inverse_sqrt_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = 4096;
        let avg = |p: usize, rng: &mut StdRng| -> f64 {
            let runs = 40;
            let mut total = 0;
            for r in 0..runs {
                let mut src = VecSource::new(bit_input(k, &[(r * 997) % k]), p);
                total += search_one(&mut src, &|v| v != 0, rng).batches;
            }
            total as f64 / runs as f64
        };
        let b1 = avg(1, &mut rng);
        let b16 = avg(16, &mut rng);
        assert!(b1 / b16 > 1.8, "b(p=1)={b1}, b(p=16)={b16}");
    }

    #[test]
    fn search_all_finds_everything_usually() {
        let mut rng = StdRng::seed_from_u64(6);
        let marked = vec![3usize, 99, 256, 700, 701];
        let mut complete = 0;
        for _ in 0..10 {
            let mut src = VecSource::new(bit_input(1024, &marked), 8);
            let (found, _) = search_all(&mut src, &|v| v != 0, &mut rng);
            assert!(found.iter().all(|i| marked.contains(i)), "false positive in {found:?}");
            if found == marked {
                complete += 1;
            }
        }
        assert!(complete >= 7, "complete only {complete}/10");
    }

    #[test]
    fn search_all_empty_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut src = VecSource::new(vec![0u64; 64], 4);
        let (found, batches) = search_all(&mut src, &|v| v != 0, &mut rng);
        assert!(found.is_empty());
        assert!(batches > 0);
    }

    #[test]
    fn tiny_input_uses_exhaustive_batches() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut src = VecSource::new(bit_input(8, &[6]), 8);
        let out = search_one(&mut src, &|v| v != 0, &mut rng);
        assert_eq!(out.found, Some(6));
        assert_eq!(out.batches, 1, "k ≤ p is a single exhaustive batch");
    }
}
