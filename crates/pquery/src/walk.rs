//! The MNRS quantum-walk framework over Johnson graphs — the machinery
//! behind Lemma 5, exposed for reuse.
//!
//! A walk over `J(k, z)` (vertices = `z`-subsets of `[k]`) searching for
//! *marked* subsets costs
//!
//! ```text
//!   S  +  (1/√ε) · ( C  +  (1/√δ_p) · U )
//! ```
//!
//! where `S = ⌈z/p⌉` setup batches, `U = 1` batch per `p`-fold walk step
//! (`δ_p = Ω(p/z)` is the spectral gap of the p-th-power walk — the
//! paper's key rebalancing), `C` check batches, and `ε` the marked
//! fraction. [`WalkSchedule`] computes the prescribed iteration counts and
//! [`JohnsonWalk`] maintains the charged walk state (subset, tracked
//! values, honest oracle traffic) that `distinctness` and custom walk
//! algorithms drive.

use crate::oracle::BatchSource;
use rand::seq::SliceRandom;
use rand::Rng;

/// The MNRS iteration counts for a Johnson-graph walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkSchedule {
    /// Subset size `z`.
    pub z: usize,
    /// Setup batches `⌈z/p⌉`.
    pub setup_batches: usize,
    /// Outer (amplification) iterations `⌈c₁/√ε⌉`.
    pub outer: usize,
    /// Inner (walk-step) iterations per outer round `⌈c₂·√(z/p)⌉`.
    pub inner: usize,
}

impl WalkSchedule {
    /// Build the schedule for input size `k`, batch width `p`, subset size
    /// `z`, and marked-subset fraction `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `p < z ≤ k/2` (the proof's requirements) and
    /// `0 < eps ≤ 1`.
    pub fn new(k: usize, p: usize, z: usize, eps: f64) -> Self {
        assert!(p < z && z <= k / 2, "need p < z <= k/2 (Lemma 5)");
        assert!(eps > 0.0 && eps <= 1.0);
        WalkSchedule {
            z,
            setup_batches: z.div_ceil(p),
            outer: (1.5 / eps.sqrt()).ceil() as usize,
            inner: ((z as f64 / p as f64).sqrt()).ceil() as usize,
        }
    }

    /// Total batches the schedule charges: `S + outer·inner·U`.
    pub fn total_batches(&self) -> usize {
        self.setup_batches + self.outer * self.inner
    }
}

/// Charged walk state over `J(k, z)`: the current subset, its (honestly
/// queried) values, and the complement pool.
#[derive(Debug, Clone)]
pub struct JohnsonWalk {
    subset: Vec<usize>,
    outside: Vec<usize>,
    values: std::collections::HashMap<usize, u64>,
}

impl JohnsonWalk {
    /// Set up the walk: sample a uniform `z`-subset and query it through
    /// the charged oracle (`⌈z/p⌉` batches).
    pub fn setup<S, R>(src: &mut S, z: usize, rng: &mut R) -> Self
    where
        S: BatchSource + ?Sized,
        R: Rng,
    {
        let k = src.k();
        let p = src.p().min(k);
        assert!(z <= k, "subset larger than the input");
        let mut indices: Vec<usize> = (0..k).collect();
        indices.shuffle(rng);
        let subset: Vec<usize> = indices[..z].to_vec();
        let outside: Vec<usize> = indices[z..].to_vec();
        let mut values = std::collections::HashMap::with_capacity(z);
        for chunk in subset.chunks(p) {
            for (i, v) in chunk.iter().zip(src.query(chunk)) {
                values.insert(*i, v);
            }
        }
        JohnsonWalk { subset, outside, values }
    }

    /// The current subset.
    pub fn subset(&self) -> &[usize] {
        &self.subset
    }

    /// The tracked value of index `i`, if it is in the subset.
    pub fn value(&self, i: usize) -> Option<u64> {
        self.values.get(&i).copied()
    }

    /// Iterate over `(index, value)` pairs of the current subset.
    pub fn entries(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.values.iter().map(|(&i, &v)| (i, v))
    }

    /// One `p`-th-power walk step: replace up to `p` subset members with
    /// fresh outside indices and query the newcomers (one charged batch) —
    /// the paper's "p classical random-walk steps = one quantum step".
    pub fn step<S, R>(&mut self, src: &mut S, rng: &mut R)
    where
        S: BatchSource + ?Sized,
        R: Rng,
    {
        let p = src.p().min(src.k());
        let swaps = p.min(self.outside.len()).min(self.subset.len());
        let mut newcomers = Vec::with_capacity(swaps);
        for _ in 0..swaps {
            let oi = rng.gen_range(0..self.outside.len());
            let si = rng.gen_range(0..self.subset.len());
            let leaving = self.subset[si];
            let entering = self.outside.swap_remove(oi);
            self.subset[si] = entering;
            self.outside.push(leaving);
            self.values.remove(&leaving);
            newcomers.push(entering);
        }
        if !newcomers.is_empty() {
            for (i, v) in newcomers.iter().zip(src.query(&newcomers)) {
                self.values.insert(*i, v);
            }
        }
    }

    /// Check the current subset with a free predicate over the tracked
    /// values (the `C = 0` of Lemma 5): returns the first witness the
    /// predicate extracts.
    pub fn check<T, F: Fn(&JohnsonWalk) -> Option<T>>(&self, pred: F) -> Option<T> {
        pred(self)
    }
}

/// Convenience: find a collision pair among the tracked values — the
/// distinctness check.
pub fn collision_in(walk: &JohnsonWalk) -> Option<(usize, usize)> {
    let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, v) in walk.entries() {
        if let Some(&j) = seen.get(&v) {
            return Some((j.min(i), j.max(i)));
        }
        seen.insert(v, i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_matches_lemma5_shape() {
        // z = k^{2/3} p^{1/3}, ε = z²/k² ⇒ total = Θ((k/p)^{2/3}).
        for (k, p) in [(1000usize, 1usize), (8000, 8), (64_000, 64)] {
            let z = crate::distinctness::walk_subset_size(k, p);
            let eps = (z as f64 / k as f64).powi(2);
            let s = WalkSchedule::new(k, p, z, eps);
            let theory = (k as f64 / p as f64).powf(2.0 / 3.0);
            let ratio = s.total_batches() as f64 / theory;
            assert!(
                ratio > 0.5 && ratio < 8.0,
                "k={k} p={p}: {} vs theory {theory}",
                s.total_batches()
            );
        }
    }

    #[test]
    fn setup_charges_ceil_z_over_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = VecSource::new((0..1000u64).collect(), 7);
        let walk = JohnsonWalk::setup(&mut src, 100, &mut rng);
        assert_eq!(src.batches(), 100usize.div_ceil(7));
        assert_eq!(walk.subset().len(), 100);
        // All tracked values are honest.
        for (i, v) in walk.entries() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn steps_charge_one_batch_each_and_stay_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut src = VecSource::new((0..500u64).map(|i| i * 3).collect(), 5);
        let mut walk = JohnsonWalk::setup(&mut src, 50, &mut rng);
        let base = src.batches();
        for step in 1..=20 {
            walk.step(&mut src, &mut rng);
            assert_eq!(src.batches(), base + step);
            assert_eq!(walk.subset().len(), 50);
            for (i, v) in walk.entries() {
                assert_eq!(v, i as u64 * 3, "tracked value stale at step {step}");
            }
        }
    }

    #[test]
    fn collision_check_finds_planted_pair_once_in_subset() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u64> = (0..100u64).map(|i| 1000 + i).collect();
        data[70] = data[20];
        let mut src = VecSource::new(data, 10);
        // Walk until the pair is in the subset (bounded tries).
        let mut walk = JohnsonWalk::setup(&mut src, 40, &mut rng);
        for _ in 0..200 {
            if walk.value(20).is_some() && walk.value(70).is_some() {
                assert_eq!(walk.check(collision_in), Some((20, 70)));
                return;
            }
            walk.step(&mut src, &mut rng);
        }
        panic!("pair never entered the subset in 200 steps");
    }

    #[test]
    #[should_panic(expected = "p < z")]
    fn schedule_rejects_bad_parameters() {
        WalkSchedule::new(100, 60, 50, 0.1);
    }
}
