//! Parallel minimum/maximum finding — Lemma 3 of the paper (the
//! Dürr–Høyer algorithm over the parallel Grover of Lemma 2).
//!
//! Keeps a threshold index; each round runs a parallel Grover search for a
//! strictly better element. The classic analysis gives expected
//! `O(⌈√(k/p)⌉)` total batches; with at least `ℓ` elements attaining the
//! optimum, `O(⌈√(k/(ℓp))⌉)` batches.

use crate::grover::{search_one, search_one_promised};
use crate::oracle::BatchSource;
use rand::Rng;

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extremum {
    /// Find an index attaining the minimum value.
    Min,
    /// Find an index attaining the maximum value.
    Max,
}

/// Result of a minimum/maximum search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtremumOutcome {
    /// The optimizing index.
    pub index: usize,
    /// Its value.
    pub value: u64,
    /// Batches charged.
    pub batches: usize,
}

/// Dürr–Høyer with parallel Grover: find an index attaining the
/// minimum/maximum with probability ≥ 2/3 in `O(⌈√(k/p)⌉)` expected
/// batches.
///
/// The final round (which fails to improve the threshold) certifies the
/// answer with the one-sided-error guarantee of `search_one`: the returned
/// value is always a genuine data value, but may fail to be the true
/// optimum with probability ≤ 1/3.
pub fn find_extremum<S, R>(src: &mut S, dir: Extremum, rng: &mut R) -> ExtremumOutcome
where
    S: BatchSource + ?Sized,
    R: Rng,
{
    let start = src.batches();
    let k = src.k();
    // Initial threshold: a uniformly random index, queried honestly.
    let mut best_i = rng.gen_range(0..k);
    let mut best_v = src.query(&[best_i])[0];
    loop {
        let better = |v: u64| match dir {
            Extremum::Min => v < best_v,
            Extremum::Max => v > best_v,
        };
        match search_one(src, &better, rng).found {
            Some(i) => {
                best_i = i;
                best_v = src.peek(i);
            }
            None => break,
        }
    }
    ExtremumOutcome { index: best_i, value: best_v, batches: src.batches() - start }
}

/// Lemma 3's multiplicity variant: if at least `ell` indices attain the
/// optimum the expected batch count drops to `O(⌈√(k/(ℓp))⌉)`. The caller
/// asserts the multiplicity (it is a promise, not checked).
///
/// Implementation note: until the optimum is reached every threshold keeps
/// at least `ℓ` improving elements, and the final certification may also
/// assume `t ≥ ℓ` — so every search round runs under the `t_promise = ℓ`
/// budget of [`search_one_promised`], which is exactly where Lemma 3's
/// analysis saves its `√ℓ` factor.
pub fn find_extremum_with_multiplicity<S, R>(
    src: &mut S,
    dir: Extremum,
    ell: usize,
    rng: &mut R,
) -> ExtremumOutcome
where
    S: BatchSource + ?Sized,
    R: Rng,
{
    assert!(ell >= 1);
    let start = src.batches();
    let k = src.k();
    let mut best_i = rng.gen_range(0..k);
    let mut best_v = src.query(&[best_i])[0];
    loop {
        let better = |v: u64| match dir {
            Extremum::Min => v < best_v,
            Extremum::Max => v > best_v,
        };
        match search_one_promised(src, &better, ell, rng).found {
            Some(i) => {
                best_i = i;
                best_v = src.peek(i);
            }
            None => break,
        }
    }
    ExtremumOutcome { index: best_i, value: best_v, batches: src.batches() - start }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_minimum_usually() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0;
        for trial in 0..20 {
            let k = 500;
            let data: Vec<u64> =
                (0..k).map(|i| ((i * 7919 + trial * 13) % 1000 + 5) as u64).collect();
            let true_min = *data.iter().min().unwrap();
            let mut src = VecSource::new(data, 8);
            let out = find_extremum(&mut src, Extremum::Min, &mut rng);
            if out.value == true_min {
                hits += 1;
            }
        }
        assert!(hits >= 16, "{hits}/20");
    }

    #[test]
    fn finds_maximum_usually() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut hits = 0;
        for trial in 0..20 {
            let data: Vec<u64> = (0..400).map(|i| ((i * 31 + trial) % 777) as u64).collect();
            let true_max = *data.iter().max().unwrap();
            let mut src = VecSource::new(data, 8);
            let out = find_extremum(&mut src, Extremum::Max, &mut rng);
            if out.value == true_max {
                hits += 1;
            }
        }
        assert!(hits >= 16, "{hits}/20");
    }

    #[test]
    fn returned_value_is_genuine() {
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<u64> = (0..100).map(|i| (i * i % 97) as u64).collect();
        let mut src = VecSource::new(data.clone(), 4);
        let out = find_extremum(&mut src, Extremum::Min, &mut rng);
        assert_eq!(data[out.index], out.value);
    }

    #[test]
    fn batches_scale_inverse_sqrt_p() {
        let mut rng = StdRng::seed_from_u64(14);
        let k = 4096;
        let avg = |p: usize, rng: &mut StdRng| -> f64 {
            let runs = 25;
            let mut total = 0;
            for r in 0..runs {
                let data: Vec<u64> =
                    (0..k as u64).map(|i| (i * 2654435761 + r as u64 * 97) % 100000).collect();
                let mut src = VecSource::new(data, p);
                total += find_extremum(&mut src, Extremum::Min, rng).batches;
            }
            total as f64 / runs as f64
        };
        let b1 = avg(1, &mut rng);
        let b16 = avg(16, &mut rng);
        assert!(b1 / b16 > 1.7, "b(p=1)={b1}, b(p=16)={b16}");
    }

    #[test]
    fn multiplicity_lowers_cost() {
        // With ℓ copies of the minimum, the certification is cheaper.
        let mut rng = StdRng::seed_from_u64(15);
        let k = 4096;
        let avg = |ell: usize, rng: &mut StdRng| -> f64 {
            let runs = 25;
            let mut total = 0;
            for r in 0..runs {
                let mut data: Vec<u64> =
                    (0..k).map(|i| (100 + (i * 37 + r) % 1000) as u64).collect();
                for j in 0..ell {
                    data[(j * 613 + r) % k] = 1; // ℓ minimum copies
                }
                let mut src = VecSource::new(data, 4);
                total += find_extremum_with_multiplicity(&mut src, Extremum::Min, ell, rng).batches;
            }
            total as f64 / runs as f64
        };
        let b1 = avg(1, &mut rng);
        let b64 = avg(64, &mut rng);
        assert!(b1 / b64 > 1.5, "b(ℓ=1)={b1}, b(ℓ=64)={b64}");
    }

    #[test]
    fn single_element_input() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut src = VecSource::new(vec![42], 1);
        let out = find_extremum(&mut src, Extremum::Min, &mut rng);
        assert_eq!(out.index, 0);
        assert_eq!(out.value, 42);
    }
}
