//! Parallel mean / amplitude estimation — Lemma 6 of the paper
//! (Montanaro's quantum Monte-Carlo speedup `[Mon15]`, parallelized by
//! averaging `p` samples per oracle use).
//!
//! With a sample oracle for a random variable `X` of variance `σ²`, an
//! `ε`-additive estimate of `E[X]` costs
//! `b = O(⌈(σ/(√p·ε))·log^{3/2}(σ/(√p·ε))·loglog(σ/(√p·ε))⌉)` batches of
//! `p` parallel queries.
//!
//! ## Emulation
//!
//! Here `X` is the value of a uniformly random index of the input. The
//! batch schedule is run literally — `b` batches, each querying `p`
//! uniformly random indices through the charged oracle (those are the
//! `U_X`/`U_X†` uses of the quantum algorithm). The returned estimate is
//! sampled from the lemma's guarantee: within `ε` of the true mean with
//! probability [`MEAN_SUCCESS_PROBABILITY`], otherwise within `3ε` (the
//! quantum estimator's tail decays fast; see DESIGN.md for the
//! substitution note).

use crate::oracle::BatchSource;
use rand::Rng;

/// Probability mass placed on the `±ε` interval when sampling the outcome;
/// the lemma guarantees ≥ 2/3, Montanaro's analysis gives a comfortable
/// margin, we use 5/6.
pub const MEAN_SUCCESS_PROBABILITY: f64 = 5.0 / 6.0;

/// Result of a mean estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanOutcome {
    /// The `ε`-additive estimate of the mean.
    pub estimate: f64,
    /// Batches charged.
    pub batches: usize,
}

/// The batch count prescribed by Lemma 6 (with its log factors), at least 1.
pub fn mean_batches(sigma: f64, eps: f64, p: usize) -> usize {
    assert!(eps > 0.0 && sigma >= 0.0 && p >= 1);
    let x = sigma / ((p as f64).sqrt() * eps);
    if x <= 1.0 {
        return 1;
    }
    let lg = x.ln().max(1.0);
    (x * lg.powf(1.5) * lg.ln().max(1.0)).ceil() as usize
}

/// True mean of the input values (uncharged; emulator/tests helper).
pub fn true_mean<S: BatchSource + ?Sized>(src: &S) -> f64 {
    let k = src.k();
    (0..k).map(|i| src.peek(i) as f64).sum::<f64>() / k as f64
}

/// True standard deviation of the input values (uncharged helper).
pub fn true_std<S: BatchSource + ?Sized>(src: &S) -> f64 {
    let k = src.k();
    let mu = true_mean(src);
    ((0..k).map(|i| (src.peek(i) as f64 - mu).powi(2)).sum::<f64>() / k as f64).sqrt()
}

/// Estimate the mean of the input values to additive error `eps`, given the
/// variance bound `sigma` (σ ≥ std of the data) — Lemma 6.
///
/// # Panics
///
/// Panics if `eps <= 0` or `sigma < 0`.
pub fn estimate_mean<S, R>(src: &mut S, sigma: f64, eps: f64, rng: &mut R) -> MeanOutcome
where
    S: BatchSource + ?Sized,
    R: Rng,
{
    let start = src.batches();
    let k = src.k();
    let p = src.p().min(k);
    let b = mean_batches(sigma, eps, p);

    // Charged schedule: b batches of p uniformly random sample queries.
    let mut sample_sum = 0.0f64;
    let mut sample_count = 0usize;
    for _ in 0..b {
        let idxs: Vec<usize> = (0..p).map(|_| rng.gen_range(0..k)).collect();
        for v in src.query(&idxs) {
            sample_sum += v as f64;
            sample_count += 1;
        }
    }
    let sample_mean = sample_sum / sample_count.max(1) as f64;

    // Outcome: within ε of the true mean w.p. 5/6, within 3ε otherwise.
    // If the classical sample mean is already within ε (common when b·p is
    // large), report it — the quantum estimator is never worse.
    let mu = true_mean(src);
    let estimate = if (sample_mean - mu).abs() <= eps {
        sample_mean
    } else {
        let width = if rng.gen_bool(MEAN_SUCCESS_PROBABILITY) { eps } else { 3.0 * eps };
        mu + rng.gen_range(-1.0..1.0) * width
    };
    MeanOutcome { estimate, batches: src.batches() - start }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_formula_monotone() {
        assert!(mean_batches(10.0, 0.1, 1) > mean_batches(10.0, 0.2, 1));
        assert!(mean_batches(10.0, 0.1, 1) > mean_batches(10.0, 0.1, 16));
        assert_eq!(mean_batches(0.5, 1.0, 1), 1);
    }

    #[test]
    fn estimate_within_eps_usually() {
        let mut rng = StdRng::seed_from_u64(31);
        let data: Vec<u64> = (0..1000).map(|i| (i % 50) as u64).collect();
        let mut ok = 0;
        for _ in 0..30 {
            let mut src = VecSource::new(data.clone(), 10);
            let sigma = true_std(&src);
            let mu = true_mean(&src);
            let out = estimate_mean(&mut src, sigma, 0.5, &mut rng);
            if (out.estimate - mu).abs() <= 0.5 {
                ok += 1;
            }
        }
        assert!(ok >= 22, "{ok}/30 within eps");
    }

    #[test]
    fn estimate_never_wildly_off() {
        let mut rng = StdRng::seed_from_u64(32);
        let data: Vec<u64> = (0..500).map(|i| (i % 20) as u64).collect();
        let mut src = VecSource::new(data, 5);
        let mu = true_mean(&src);
        for _ in 0..20 {
            let out = estimate_mean(&mut src, 6.0, 0.4, &mut rng);
            assert!((out.estimate - mu).abs() <= 1.2 + 1e-9, "err {}", (out.estimate - mu).abs());
        }
    }

    #[test]
    fn batches_scale_with_one_over_eps() {
        let mut rng = StdRng::seed_from_u64(33);
        let data: Vec<u64> = (0..2000).map(|i| (i % 100) as u64).collect();
        let mut src1 = VecSource::new(data.clone(), 4);
        let b_coarse = estimate_mean(&mut src1, 30.0, 2.0, &mut rng).batches;
        let mut src2 = VecSource::new(data, 4);
        let b_fine = estimate_mean(&mut src2, 30.0, 0.25, &mut rng).batches;
        assert!(
            b_fine > 4 * b_coarse,
            "ε/8 should cost ≥ 4× batches: coarse {b_coarse}, fine {b_fine}"
        );
    }

    #[test]
    fn batches_scale_inverse_sqrt_p() {
        let mut rng = StdRng::seed_from_u64(34);
        let data: Vec<u64> = (0..2000).map(|i| (i % 100) as u64).collect();
        let mut s1 = VecSource::new(data.clone(), 1);
        let b1 = estimate_mean(&mut s1, 30.0, 0.5, &mut rng).batches;
        let mut s2 = VecSource::new(data, 16);
        let b16 = estimate_mean(&mut s2, 30.0, 0.5, &mut rng).batches;
        assert!(b1 as f64 / b16 as f64 > 2.0, "b(p=1)={b1}, b(p=16)={b16}");
    }

    #[test]
    fn constant_data_estimated_exactly() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut src = VecSource::new(vec![7u64; 100], 4);
        let out = estimate_mean(&mut src, 0.0, 0.1, &mut rng);
        assert!((out.estimate - 7.0).abs() <= 0.1);
    }
}
