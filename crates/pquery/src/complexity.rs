//! Closed-form batch-complexity formulas for the parallel-query algorithms
//! of the paper's Section 2.
//!
//! The experiment harness compares *measured* batch counts (from the
//! ledgers of the emulated algorithms) against these formulas; they are
//! the `b` that Theorem 8 turns into CONGEST rounds.

/// Lemma 2, find-one: `⌈√(k/(t·p))⌉` expected batches (`t ≥ 1` marked).
pub fn grover_one_batches(k: usize, t: usize, p: usize) -> f64 {
    assert!(k >= 1 && t >= 1 && p >= 1);
    (k as f64 / (t as f64 * p as f64)).sqrt().ceil().max(1.0)
}

/// Lemma 2, find-all: `√(kt/p) + t` expected batches.
pub fn grover_all_batches(k: usize, t: usize, p: usize) -> f64 {
    assert!(k >= 1 && p >= 1);
    (k as f64 * t as f64 / p as f64).sqrt() + t as f64
}

/// Lemma 3: `⌈√(k/p)⌉` expected batches for minimum finding.
pub fn minimum_batches(k: usize, p: usize) -> f64 {
    grover_one_batches(k, 1, p)
}

/// Lemma 3, ℓ-fold optimum: `⌈√(k/(ℓ·p))⌉` expected batches.
pub fn minimum_multiplicity_batches(k: usize, ell: usize, p: usize) -> f64 {
    grover_one_batches(k, ell, p)
}

/// Lemma 5: `⌈(k/p)^{2/3}⌉` batches for element distinctness.
pub fn distinctness_batches(k: usize, p: usize) -> f64 {
    assert!(k >= 1 && p >= 1);
    (k as f64 / p as f64).powf(2.0 / 3.0).ceil().max(1.0)
}

/// Lemma 6: `⌈(σ/(√p·ε))·log^{3/2}(·)·loglog(·)⌉` batches for ε-additive
/// mean estimation (log factors floored at 1).
pub fn mean_batches(sigma: f64, eps: f64, p: usize) -> f64 {
    assert!(eps > 0.0 && sigma >= 0.0 && p >= 1);
    let x = sigma / ((p as f64).sqrt() * eps);
    if x <= 1.0 {
        return 1.0;
    }
    let lg = x.ln().max(1.0);
    (x * lg.powf(1.5) * lg.ln().max(1.0)).ceil()
}

/// Deutsch–Jozsa: exactly 1 batch.
pub fn deutsch_jozsa_batches() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grover_formula_values() {
        assert_eq!(grover_one_batches(100, 1, 1), 10.0);
        assert_eq!(grover_one_batches(100, 4, 1), 5.0);
        assert_eq!(grover_one_batches(100, 1, 4), 5.0);
        assert_eq!(grover_one_batches(1, 1, 1), 1.0);
    }

    #[test]
    fn distinctness_formula_values() {
        assert_eq!(distinctness_batches(1000, 1), 100.0);
        assert_eq!(distinctness_batches(1000, 1000), 1.0);
    }

    #[test]
    fn formulas_monotone() {
        assert!(grover_all_batches(1000, 9, 1) > grover_all_batches(1000, 1, 1));
        assert!(minimum_batches(1000, 1) > minimum_batches(1000, 16));
        assert!(mean_batches(10.0, 0.01, 1) > mean_batches(10.0, 0.1, 1));
    }
}
