//! Parallel quantum counting — estimating the number of marked items.
//!
//! An extension built from the paper's toolbox: amplitude estimation on
//! the Grover operator (Corollary 30 machinery) estimates the marked
//! fraction `a = t/k` of an oracle input; the parallel-query version
//! averages `p` parallel queries per oracle use exactly as in Lemma 6,
//! giving an `ε`-additive estimate of `a` in
//! `b = Õ(⌈1/(√p·ε)⌉)` batches (the variance of a Bernoulli is ≤ 1/4).
//!
//! ## Emulation
//!
//! Same contract as the rest of the crate: the charged batch schedule is
//! run literally (uniformly random probe batches); the outcome is sampled
//! from the estimator's guarantee, with the exact statevector amplitude
//! estimation in `qsim::amplitude` as small-size ground truth.

use crate::oracle::{count_marked, BatchSource};
use rand::Rng;

/// Probability mass on the `±ε` interval when sampling the outcome
/// (the BHMT estimator gives ≥ 8/π² ≈ 0.81).
pub const COUNT_SUCCESS_PROBABILITY: f64 = 0.81;

/// Result of a quantum counting run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountOutcome {
    /// Estimate of the number of marked items.
    pub estimate: f64,
    /// Batches charged.
    pub batches: usize,
}

/// The batch count for an `ε`-additive estimate of the marked *fraction*:
/// `⌈1/(√p·ε)⌉` (σ ≤ 1/2 for an indicator), at least 1.
pub fn count_batches(eps_fraction: f64, p: usize) -> usize {
    assert!(eps_fraction > 0.0 && p >= 1);
    ((0.5 / ((p as f64).sqrt() * eps_fraction)).ceil() as usize).max(1)
}

/// Estimate the number of items whose value satisfies `pred`, to additive
/// error `eps_items` with probability ≥ [`COUNT_SUCCESS_PROBABILITY`].
///
/// # Panics
///
/// Panics if `eps_items <= 0`.
pub fn estimate_count<S, F, R>(src: &mut S, pred: &F, eps_items: f64, rng: &mut R) -> CountOutcome
where
    S: BatchSource + ?Sized,
    F: Fn(u64) -> bool,
    R: Rng,
{
    assert!(eps_items > 0.0);
    let start = src.batches();
    let k = src.k();
    let p = src.p().min(k);
    let eps_fraction = eps_items / k as f64;
    let b = count_batches(eps_fraction, p);

    // Charged schedule: b batches of p uniform probes (the U_X uses).
    let mut probe_hits = 0u64;
    let mut probes = 0u64;
    for _ in 0..b {
        let idxs: Vec<usize> = (0..p).map(|_| rng.gen_range(0..k)).collect();
        for v in src.query(&idxs) {
            probe_hits += pred(v) as u64;
            probes += 1;
        }
    }
    let probe_estimate = probe_hits as f64 / probes.max(1) as f64 * k as f64;

    // Outcome: within ε w.p. 0.81, else within 3ε (BHMT tail); if the
    // classical probe estimate is already within ε, keep it.
    let t_true = count_marked(src, pred) as f64;
    let estimate = if (probe_estimate - t_true).abs() <= eps_items {
        probe_estimate
    } else {
        let w = if rng.gen_bool(COUNT_SUCCESS_PROBABILITY) { eps_items } else { 3.0 * eps_items };
        (t_true + rng.gen_range(-1.0..1.0) * w).max(0.0)
    };
    CountOutcome { estimate, batches: src.batches() - start }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input(k: usize, t: usize) -> Vec<u64> {
        (0..k).map(|i| (i * 7 % k < t * 7 % k.max(1) || i < t) as u64).collect()
    }

    #[test]
    fn estimates_within_tolerance_usually() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = 2000;
        for t in [20usize, 200, 1000] {
            let data: Vec<u64> = (0..k).map(|i| (i < t) as u64).collect();
            let mut ok = 0;
            for _ in 0..15 {
                let mut src = VecSource::new(data.clone(), 8);
                let out = estimate_count(&mut src, &|v| v != 0, 40.0, &mut rng);
                if (out.estimate - t as f64).abs() <= 40.0 {
                    ok += 1;
                }
                assert!((out.estimate - t as f64).abs() <= 120.0 + 1e-9);
            }
            assert!(ok >= 9, "t = {t}: {ok}/15 within ε");
        }
    }

    #[test]
    fn batches_scale_inverse_eps_and_sqrt_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = input(4000, 100);
        let run = |p: usize, eps: f64, rng: &mut StdRng| {
            let mut src = VecSource::new(data.clone(), p);
            estimate_count(&mut src, &|v| v != 0, eps, rng).batches
        };
        let coarse = run(1, 200.0, &mut rng);
        let fine = run(1, 25.0, &mut rng);
        assert!(fine >= 6 * coarse, "ε/8 must cost ≥ 6×: {coarse} vs {fine}");
        let wide = run(16, 25.0, &mut rng);
        assert!(fine as f64 / wide as f64 > 2.0, "p = 16 must save ~4×: {fine} vs {wide}");
    }

    #[test]
    fn zero_marked_estimated_near_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut src = VecSource::new(vec![0u64; 500], 4);
        let out = estimate_count(&mut src, &|v| v != 0, 10.0, &mut rng);
        assert!(out.estimate <= 30.0);
    }

    #[test]
    fn formula_sane() {
        assert!(count_batches(0.01, 1) > count_batches(0.1, 1));
        assert!(count_batches(0.01, 16) < count_batches(0.01, 1));
        assert_eq!(count_batches(1.0, 4), 1);
    }
}
