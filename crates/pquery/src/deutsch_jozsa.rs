//! The Deutsch–Jozsa query algorithm as a batch-oracle client — the
//! `O(1)`-query, zero-error algorithm behind the paper's §4.3.
//!
//! One oracle use over a superposition of **all** `k` indices decides
//! constant-vs-balanced with certainty. In the batch accounting that is a
//! single charged batch: the index register (`⌈log k⌉` qubits) visits the
//! oracle once, whatever `p` is. The outcome is deterministic, so the
//! emulation computes it exactly from the ground truth (`peek`); the
//! statevector run in `qsim::deutsch_jozsa` validates the determinism.

use crate::oracle::BatchSource;
pub use qsim::deutsch_jozsa::{check_promise, DjAnswer, PromiseViolation};

/// Result of the distributed-oracle Deutsch–Jozsa run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DjOutcome {
    /// The (certain) answer.
    pub answer: DjAnswer,
    /// Batches charged (always 1).
    pub batches: usize,
}

/// Decide constant-vs-balanced with probability 1 using one oracle batch.
///
/// # Errors
///
/// Returns [`PromiseViolation`] if the input (read via ground truth) is
/// neither constant nor balanced — the algorithm's behaviour is undefined
/// off-promise, so we refuse rather than return garbage.
pub fn deutsch_jozsa<S: BatchSource + ?Sized>(src: &mut S) -> Result<DjOutcome, PromiseViolation> {
    let start = src.batches();
    let k = src.k();
    let x: Vec<bool> = (0..k).map(|i| src.peek(i) & 1 == 1).collect();
    let answer = check_promise(&x)?;
    // The single charged batch: the superposed query's transcript. Its
    // representative content is index 0; the round cost in the CONGEST
    // implementation depends only on the register widths.
    src.query(&[0]);
    Ok(DjOutcome { answer, batches: src.batches() - start })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecSource;

    #[test]
    fn constant_and_balanced() {
        let mut c = VecSource::new(vec![1u64; 16], 4);
        assert_eq!(deutsch_jozsa(&mut c).unwrap().answer, DjAnswer::Constant);
        let mut b = VecSource::new((0..16).map(|i| (i < 8) as u64).collect(), 4);
        assert_eq!(deutsch_jozsa(&mut b).unwrap().answer, DjAnswer::Balanced);
    }

    #[test]
    fn exactly_one_batch() {
        let mut c = VecSource::new(vec![0u64; 32], 1);
        let out = deutsch_jozsa(&mut c).unwrap();
        assert_eq!(out.batches, 1);
        assert_eq!(c.batches(), 1);
    }

    #[test]
    fn rejects_off_promise() {
        let mut bad = VecSource::new(vec![1, 0, 0, 0], 1);
        assert!(deutsch_jozsa(&mut bad).is_err());
    }

    #[test]
    fn agrees_with_statevector() {
        for pattern in [vec![0u64; 8], vec![1u64; 8], vec![1, 0, 1, 0, 1, 0, 1, 0]] {
            let mut src = VecSource::new(pattern.clone(), 2);
            let emulated = deutsch_jozsa(&mut src).unwrap().answer;
            let bits: Vec<bool> = pattern.iter().map(|&v| v == 1).collect();
            let exact = qsim::deutsch_jozsa::deutsch_jozsa(&bits).unwrap();
            assert_eq!(emulated, exact);
        }
    }
}
