//! # pquery — parallel-query quantum algorithms (paper §2)
//!
//! A *(b, p)-parallel-query algorithm* (Definition 1 of van Apeldoorn &
//! de Vos, PODC 2022) makes `b` batches of `p` simultaneous oracle queries.
//! This crate provides the paper's Section 2 toolbox with exact batch
//! accounting:
//!
//! * [`oracle`] — the [`oracle::BatchSource`] trait and its ledger;
//! * [`grover`] — parallel Grover search, find-one and find-all (Lemma 2);
//! * [`minimum`] — parallel Dürr–Høyer minimum/maximum finding, with the
//!   ℓ-fold-optimum speedup (Lemma 3);
//! * [`distinctness`] — parallel element distinctness via the Johnson-graph
//!   walk schedule (Lemma 5);
//! * [`mean`] — parallel mean estimation (Lemma 6);
//! * [`deutsch_jozsa`] — the exact 1-query algorithm (§4.3);
//! * [`complexity`] — the closed-form batch counts the harness compares
//!   measurements against.
//!
//! The algorithms are *schedule-faithful emulations*: charged batch counts
//! follow the quantum analyses and outcomes are sampled from the
//! distributions quantum mechanics prescribes, with `qsim` statevector runs
//! as small-size ground truth. See the `oracle` module docs and DESIGN.md
//! for the emulation contract.
//!
//! # Quickstart
//!
//! ```
//! use pquery::oracle::{BatchSource, VecSource};
//! use pquery::grover::search_one;
//! use rand::SeedableRng;
//!
//! let mut data = vec![0u64; 1000];
//! data[321] = 1;
//! let mut src = VecSource::new(data, 16); // p = 16 parallel queries
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let out = search_one(&mut src, &|v| v != 0, &mut rng);
//! assert_eq!(out.found, Some(321));
//! println!("{} batches (√(k/p) ≈ 8)", out.batches);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complexity;
pub mod counting;
pub mod deutsch_jozsa;
pub mod distinctness;
pub mod grover;
pub mod mean;
pub mod minimum;
pub mod oracle;
pub mod walk;

pub use oracle::{BatchSource, VecSource};
