//! Parallel-query oracles with batch accounting (paper Definition 1).
//!
//! A *(b, p)-parallel-query algorithm* makes `b` uses of `O^{⊗p}`: `b`
//! batches of at most `p` simultaneous queries. [`BatchSource`] is the
//! oracle interface: every call to [`query`](BatchSource::query) is one
//! charged batch, whatever its size (charging per batch, not per query, is
//! what the CONGEST framework converts into rounds — Theorem 8).
//!
//! ## The emulation contract
//!
//! The algorithms in this crate emulate quantum query algorithms at the
//! *schedule* level (see DESIGN.md): the number and width of charged
//! batches follows the quantum algorithm's analysis, and measurement
//! outcomes are sampled from the distributions quantum mechanics
//! prescribes. Sampling those outcomes requires global knowledge that the
//! emulated algorithm itself never observes — e.g. the number of marked
//! items `t` determines Grover's success probability `sin²((2j+1)θ)`.
//! [`peek`](BatchSource::peek) provides that knowledge **to the emulator
//! only**; implementations must not let `peek` influence any cost ledger.
//! Exact statevector runs in the `qsim` crate validate that the emulated
//! outcome distributions match real quantum executions at small sizes.

/// The parallel input oracle `O^{⊗p}` for data `x ∈ A^k` with `A ⊆ u64`.
pub trait BatchSource {
    /// Input length `k`.
    fn k(&self) -> usize;

    /// Maximum batch width `p`.
    fn p(&self) -> usize;

    /// One charged batch of at most `p` parallel queries; returns
    /// `x[indices[0]], …` in order.
    ///
    /// # Panics
    ///
    /// Implementations panic if `indices.len() > p` or an index is out of
    /// range.
    fn query(&mut self, indices: &[usize]) -> Vec<u64>;

    /// Uncharged ground-truth access for measurement-outcome sampling
    /// (see the module docs). Never affects accounting.
    fn peek(&self, i: usize) -> u64;

    /// Number of batches charged so far — the `b` of Definition 1.
    fn batches(&self) -> usize;

    /// Total individual queries charged so far (≤ `p · batches`).
    fn queries(&self) -> u64;
}

/// An in-memory [`BatchSource`] over a value vector.
///
/// # Examples
///
/// ```
/// use pquery::oracle::{BatchSource, VecSource};
///
/// let mut src = VecSource::new(vec![5, 7, 9, 11], 2);
/// assert_eq!(src.query(&[0, 3]), vec![5, 11]);
/// assert_eq!(src.query(&[2]), vec![9]);
/// assert_eq!(src.batches(), 2);
/// assert_eq!(src.queries(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct VecSource {
    data: Vec<u64>,
    p: usize,
    batches: usize,
    queries: u64,
    /// Width of each charged batch, in charge order — the raw series
    /// behind idle-width telemetry (E15's pathology is visible here as a
    /// long run of widths far below `p`).
    widths: Vec<u32>,
}

impl VecSource {
    /// A source over `data` with batch width `p`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `p == 0`.
    pub fn new(data: Vec<u64>, p: usize) -> Self {
        assert!(!data.is_empty(), "oracle needs at least one item");
        assert!(p >= 1, "batch width must be at least 1");
        VecSource { data, p, batches: 0, queries: 0, widths: Vec::new() }
    }

    /// Reset the ledger (data unchanged).
    pub fn reset_ledger(&mut self) {
        self.batches = 0;
        self.queries = 0;
        self.widths.clear();
    }

    /// The underlying data.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// The width of every charged batch, in charge order.
    pub fn batch_widths(&self) -> &[u32] {
        &self.widths
    }

    /// Total unused batch capacity so far: `p · batches − queries`.
    ///
    /// Each batch is charged as one use of `O^{⊗p}` regardless of how many
    /// of its `p` query slots carry an index, so this is the cost the
    /// Definition 1 accounting pays for under-filled batches — the
    /// quantity E15 measures for Le Gall–Magniez distinctness.
    pub fn idle_slots(&self) -> u64 {
        self.p as u64 * self.batches as u64 - self.queries
    }
}

impl BatchSource for VecSource {
    fn k(&self) -> usize {
        self.data.len()
    }

    fn p(&self) -> usize {
        self.p
    }

    fn query(&mut self, indices: &[usize]) -> Vec<u64> {
        assert!(indices.len() <= self.p, "batch wider than p = {}", self.p);
        assert!(!indices.is_empty(), "empty batch");
        self.batches += 1;
        self.queries += indices.len() as u64;
        self.widths.push(indices.len() as u32);
        indices
            .iter()
            .map(|&i| {
                assert!(i < self.data.len(), "index {i} out of range");
                self.data[i]
            })
            .collect()
    }

    fn peek(&self, i: usize) -> u64 {
        self.data[i]
    }

    fn batches(&self) -> usize {
        self.batches
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// Count of marked items under `pred`, by uncharged scan — emulator helper.
pub fn count_marked<S: BatchSource + ?Sized, F: Fn(u64) -> bool>(src: &S, pred: &F) -> usize {
    (0..src.k()).filter(|&i| pred(src.peek(i))).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counts_batches_not_queries() {
        let mut s = VecSource::new((0..100).collect(), 10);
        s.query(&[1, 2, 3]);
        s.query(&(0..10).collect::<Vec<_>>());
        assert_eq!(s.batches(), 2);
        assert_eq!(s.queries(), 13);
        assert_eq!(s.batch_widths(), &[3, 10]);
        // Batch 1 left 7 of its 10 slots idle; batch 2 was full.
        assert_eq!(s.idle_slots(), 7);
    }

    #[test]
    fn width_log_resets_with_ledger() {
        let mut s = VecSource::new(vec![1, 2, 3], 2);
        s.query(&[0]);
        assert_eq!(s.batch_widths(), &[1]);
        assert_eq!(s.idle_slots(), 1);
        s.reset_ledger();
        assert!(s.batch_widths().is_empty());
        assert_eq!(s.idle_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "wider than p")]
    fn oversized_batch_rejected() {
        let mut s = VecSource::new(vec![1, 2, 3], 2);
        s.query(&[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let mut s = VecSource::new(vec![1, 2, 3], 2);
        s.query(&[5]);
    }

    #[test]
    fn peek_is_uncharged() {
        let s = VecSource::new(vec![4, 5, 6], 1);
        assert_eq!(s.peek(2), 6);
        assert_eq!(s.batches(), 0);
        assert_eq!(s.queries(), 0);
    }

    #[test]
    fn count_marked_scans() {
        let s = VecSource::new(vec![0, 1, 0, 2, 3], 1);
        assert_eq!(count_marked(&s, &|v| v != 0), 3);
    }

    #[test]
    fn reset_ledger() {
        let mut s = VecSource::new(vec![1], 1);
        s.query(&[0]);
        s.reset_ledger();
        assert_eq!(s.batches(), 0);
    }
}
