//! Parallel element distinctness — Lemma 5 of the paper (the quantum-walk
//! algorithm of Ambainis `[Amb07]`, parallelized as in `[JMW16]` / the paper's
//! alternative proof).
//!
//! The walk runs over the Johnson graph `J(k, z)` with `z = k^{2/3}p^{1/3}`:
//! a vertex is a `z`-subset of the indices, marked if it contains a
//! colliding pair. The MNRS cost is
//! `S + ε^{-1/2}(C + δ_p^{-1/2}·U)` where setup `S = ⌈z/p⌉` batches, one
//! parallel step of the `p`-th-power walk is one batch (`U = 1`), checking
//! is free (`C = 0`), `ε ≥ z(z−1)/k²` and `δ_p = Ω(p/z)` — total
//! `O(⌈(k/p)^{2/3}⌉)` batches.
//!
//! ## Emulation
//!
//! The schedule is run literally: the setup queries a real random
//! `z`-subset, and each walk step replaces `p` random subset members with
//! `p` fresh indices **through the charged oracle**. What is emulated is
//! only the quantum walk's *hitting behaviour*: after the MNRS-prescribed
//! number of steps the walk measures a marked subset with the lemma's
//! success probability; we sample that event and, on success, plant a true
//! colliding pair in the final subset (drawn uniformly from the real
//! pairs, obtained via `peek`). A final charged verification batch confirms
//! the pair, so the answer is one-sided: a reported pair is always real.

use crate::oracle::BatchSource;
use rand::seq::SliceRandom;
use rand::Rng;

/// Success probability used when sampling the walk's outcome; the lemma
/// guarantees at least 2/3, and small-size statevector experiments sit
/// around 3/4 for the tuned constants, so we use 3/4.
pub const WALK_SUCCESS_PROBABILITY: f64 = 0.75;

/// Result of a distinctness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctnessOutcome {
    /// A colliding pair `(i, j)`, `i < j`, `x_i = x_j`, if found.
    pub pair: Option<(usize, usize)>,
    /// Batches charged.
    pub batches: usize,
}

/// All colliding pairs in the input (uncharged; emulator/tests helper).
pub fn true_pairs<S: BatchSource + ?Sized>(src: &S) -> Vec<(usize, usize)> {
    let k = src.k();
    let mut by_val: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..k {
        by_val.entry(src.peek(i)).or_default().push(i);
    }
    let mut pairs = Vec::new();
    for idxs in by_val.values() {
        for a in 0..idxs.len() {
            for b in (a + 1)..idxs.len() {
                pairs.push((idxs[a], idxs[b]));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// The walk's subset size: `z = ⌈k^{2/3} p^{1/3}⌉`, clamped to `[p+1, k/2]`
/// per the proof's requirements (`p < z ≤ k/2`).
pub fn walk_subset_size(k: usize, p: usize) -> usize {
    let z = ((k as f64).powf(2.0 / 3.0) * (p as f64).powf(1.0 / 3.0)).ceil() as usize;
    z.clamp(p + 1, (k / 2).max(p + 1))
}

/// Element distinctness with `p`-parallel queries: find a colliding pair
/// or report that all elements are distinct. `O(⌈(k/p)^{2/3}⌉)` batches;
/// success probability ≥ 2/3 when a pair exists; "distinct" answers are
/// one-sided (a reported pair is always verified through the oracle).
pub fn element_distinctness<S, R>(src: &mut S, rng: &mut R) -> DistinctnessOutcome
where
    S: BatchSource + ?Sized,
    R: Rng,
{
    let start = src.batches();
    let k = src.k();
    let p = src.p().min(k);

    // p ≥ k/8: a constant number of full scans suffices (paper, Lemma 5).
    if 8 * p >= k {
        let all: Vec<usize> = (0..k).collect();
        let mut values = Vec::with_capacity(k);
        for chunk in all.chunks(p) {
            values.extend(src.query(chunk));
        }
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, &v) in values.iter().enumerate() {
            if let Some(&j) = seen.get(&v) {
                return DistinctnessOutcome { pair: Some((j, i)), batches: src.batches() - start };
            }
            seen.insert(v, i);
        }
        return DistinctnessOutcome { pair: None, batches: src.batches() - start };
    }

    let z = walk_subset_size(k, p);
    // MNRS schedule over J(k, z): ε ≥ z(z−1)/k² when a pair exists.
    let eps = (z as f64 * (z - 1) as f64) / (k as f64 * k as f64);
    let schedule = crate::walk::WalkSchedule::new(k, p, z, eps);
    let mut walk = crate::walk::JohnsonWalk::setup(src, z, rng);

    let pairs = true_pairs(src);
    let has_pair = !pairs.is_empty();

    for _ in 0..schedule.outer {
        for _ in 0..schedule.inner {
            // One p-th-power walk step = one charged batch.
            walk.step(src, rng);
            // Checking is free: the tracked values are inspected locally.
            if let Some(pair) = walk.check(crate::walk::collision_in) {
                // The classical trajectory stumbled on a pair directly; the
                // quantum walk certainly finds it too.
                return DistinctnessOutcome { pair: Some(pair), batches: src.batches() - start };
            }
        }
    }

    // Measurement: the quantum walk ends in a marked subset with the
    // lemma's success probability (if a pair exists at all).
    if has_pair && rng.gen_bool(WALK_SUCCESS_PROBABILITY) {
        let &(i, j) = pairs.choose(rng).expect("nonempty");
        // Final verification: query the reported pair honestly (two
        // batches when p = 1).
        let vals =
            if p >= 2 { src.query(&[i, j]) } else { vec![src.query(&[i])[0], src.query(&[j])[0]] };
        debug_assert_eq!(vals[0], vals[1]);
        if vals[0] == vals[1] {
            return DistinctnessOutcome {
                pair: Some((i.min(j), i.max(j))),
                batches: src.batches() - start,
            };
        }
    }
    DistinctnessOutcome { pair: None, batches: src.batches() - start }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn with_pair(k: usize, i: usize, j: usize) -> Vec<u64> {
        // Distinct values everywhere except x_i = x_j.
        let mut x: Vec<u64> = (0..k as u64).map(|v| v + 1000).collect();
        x[j] = x[i];
        x
    }

    #[test]
    fn walk_subset_size_bounds() {
        for (k, p) in [(100usize, 1usize), (1000, 10), (64, 8), (10000, 100)] {
            let z = walk_subset_size(k, p);
            assert!(z > p && z <= (k / 2).max(p + 1), "k={k} p={p} z={z}");
        }
    }

    #[test]
    fn finds_planted_pair_usually() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut hits = 0;
        for trial in 0..20 {
            let k = 512;
            let (i, j) = ((trial * 13) % k, (trial * 101 + 7) % k);
            if i == j {
                continue;
            }
            let mut src = VecSource::new(with_pair(k, i.min(j), i.max(j)), 8);
            let out = element_distinctness(&mut src, &mut rng);
            if out.pair == Some((i.min(j), i.max(j))) {
                hits += 1;
            }
        }
        assert!(hits >= 12, "{hits}/20");
    }

    #[test]
    fn distinct_input_reports_none() {
        let mut rng = StdRng::seed_from_u64(22);
        let data: Vec<u64> = (0..300).map(|i| (i * 3 + 17) as u64).collect();
        let mut src = VecSource::new(data, 8);
        let out = element_distinctness(&mut src, &mut rng);
        assert_eq!(out.pair, None);
    }

    #[test]
    fn reported_pair_is_always_real() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..15 {
            let k = 256;
            let data = with_pair(k, 5, (trial * 31 + 40) % k);
            let mut src = VecSource::new(data.clone(), 4);
            if let Some((i, j)) = element_distinctness(&mut src, &mut rng).pair {
                assert_eq!(data[i], data[j]);
                assert!(i < j);
            }
        }
    }

    #[test]
    fn small_input_exhaustive() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut src = VecSource::new(vec![4, 9, 4, 7], 4);
        let out = element_distinctness(&mut src, &mut rng);
        assert_eq!(out.pair, Some((0, 2)));
        assert_eq!(out.batches, 1);
    }

    #[test]
    fn batches_scale_like_k_over_p_to_two_thirds() {
        let mut rng = StdRng::seed_from_u64(25);
        let avg = |k: usize, p: usize, rng: &mut StdRng| -> f64 {
            let runs = 8;
            let mut total = 0;
            for r in 0..runs {
                let data = with_pair(k, r % k, (r * 37 + k / 2) % k);
                let mut src = VecSource::new(data, p);
                total += element_distinctness(&mut src, rng).batches;
            }
            total as f64 / runs as f64
        };
        // (k/p)^{2/3}: multiplying k by 8 (p fixed) should ×4 the batches.
        let b1 = avg(256, 4, &mut rng);
        let b8 = avg(2048, 4, &mut rng);
        let ratio = b8 / b1;
        assert!(ratio > 2.0 && ratio < 8.5, "ratio {ratio} (b1={b1}, b8={b8})");
        // Increasing p by 8 at fixed k should divide batches by ~4.
        let bp = avg(2048, 32, &mut rng);
        let pratio = b8 / bp;
        assert!(pratio > 2.0, "p-ratio {pratio} (b8={b8}, bp={bp})");
    }

    #[test]
    fn many_pairs_found_faster_or_equal() {
        let mut rng = StdRng::seed_from_u64(26);
        // All-equal input: the walk's classical trajectory hits immediately.
        let mut src = VecSource::new(vec![7u64; 512], 8);
        let out = element_distinctness(&mut src, &mut rng);
        assert!(out.pair.is_some());
    }

    #[test]
    fn true_pairs_enumeration() {
        let src = VecSource::new(vec![1, 2, 1, 3, 2, 1], 1);
        let pairs = true_pairs(&src);
        assert_eq!(pairs, vec![(0, 2), (0, 5), (1, 4), (2, 5)]);
    }
}
