//! Property-based tests for the parallel-query algorithms: soundness
//! (answers are never fabricated), ledger consistency, and formula
//! sanity across the parameter space.

use pquery::distinctness::{element_distinctness, true_pairs, walk_subset_size};
use pquery::grover::{marked_subset_fraction, search_all, search_one};
use pquery::mean::{estimate_mean, true_mean, true_std};
use pquery::minimum::{find_extremum, Extremum};
use pquery::oracle::{BatchSource, VecSource};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn subset_fraction_is_probability_and_monotone(
        k in 2usize..500,
        t_pick in 0usize..500,
        p_pick in 1usize..500,
    ) {
        let t = t_pick % (k + 1);
        let p = 1 + (p_pick - 1) % k;
        let f = marked_subset_fraction(k, t, p);
        prop_assert!((0.0..=1.0).contains(&f));
        if t < k {
            prop_assert!(marked_subset_fraction(k, t + 1, p) >= f - 1e-12);
        }
        if p < k {
            prop_assert!(marked_subset_fraction(k, t, p + 1) >= f - 1e-12);
        }
        if t == 0 {
            prop_assert_eq!(f, 0.0);
        }
    }

    #[test]
    fn search_one_sound_and_ledger_consistent(
        k in 8usize..600,
        p_pick in 1usize..64,
        marks in proptest::collection::vec(0usize..600, 0..5),
        seed in any::<u64>(),
    ) {
        let p = 1 + (p_pick - 1) % k;
        let mut data = vec![0u64; k];
        for &m in &marks {
            data[m % k] = 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = VecSource::new(data.clone(), p);
        let out = search_one(&mut src, &|v| v != 0, &mut rng);
        // Soundness: a returned index is genuinely marked.
        if let Some(i) = out.found {
            prop_assert_eq!(data[i], 1);
        }
        // Ledger: batches on the outcome equal the source's ledger, and
        // queries never exceed p per batch.
        prop_assert_eq!(out.batches, src.batches());
        prop_assert!(src.queries() <= (src.batches() as u64) * p as u64);
    }

    #[test]
    fn search_all_returns_subset_of_marked(
        k in 8usize..400,
        marks in proptest::collection::vec(0usize..400, 0..6),
        seed in any::<u64>(),
    ) {
        let mut data = vec![0u64; k];
        for &m in &marks {
            data[m % k] = 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = VecSource::new(data.clone(), 8.min(k));
        let (found, _) = search_all(&mut src, &|v| v != 0, &mut rng);
        for &i in &found {
            prop_assert_eq!(data[i], 1);
        }
        // No duplicates.
        let mut sorted = found.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), found.len());
    }

    #[test]
    fn minimum_returns_genuine_value(
        data in proptest::collection::vec(0u64..10_000, 4..300),
        p_pick in 1usize..32,
        seed in any::<u64>(),
    ) {
        let p = 1 + (p_pick - 1) % data.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = VecSource::new(data.clone(), p);
        let out = find_extremum(&mut src, Extremum::Min, &mut rng);
        prop_assert_eq!(data[out.index], out.value);
        prop_assert!(out.value >= *data.iter().min().unwrap());
    }

    #[test]
    fn distinctness_pair_is_real_or_none(
        k in 8usize..300,
        dup in proptest::collection::vec((0usize..300, 0usize..300), 0..3),
        seed in any::<u64>(),
    ) {
        let mut data: Vec<u64> = (0..k as u64).map(|i| 100_000 + i).collect();
        for &(a, b) in &dup {
            let (a, b) = (a % k, b % k);
            if a != b {
                data[b] = data[a];
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = VecSource::new(data.clone(), 8.min(k));
        let out = element_distinctness(&mut src, &mut rng);
        match out.pair {
            Some((i, j)) => {
                prop_assert!(i < j);
                prop_assert_eq!(data[i], data[j]);
            }
            None => {
                // One-sided: "none" may be wrong, but on truly distinct
                // inputs it must always be the answer.
                if true_pairs(&src).is_empty() {
                    prop_assert!(out.pair.is_none());
                }
            }
        }
    }

    #[test]
    fn walk_subset_size_in_proof_range(k in 4usize..100_000, p_pick in 1usize..4096) {
        let p = 1 + (p_pick - 1) % k;
        let z = walk_subset_size(k, p);
        prop_assert!(z > p, "need p < z");
        prop_assert!(z <= (k / 2).max(p + 1), "need z <= k/2");
    }

    #[test]
    fn mean_estimate_bounded_error(
        data in proptest::collection::vec(0u64..64, 16..400),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = VecSource::new(data, 4);
        let mu = true_mean(&src);
        let sigma = true_std(&src);
        let eps = 1.5;
        let out = estimate_mean(&mut src, sigma, eps, &mut rng);
        prop_assert!((out.estimate - mu).abs() <= 3.0 * eps + 1e-9);
        prop_assert!(out.batches >= 1);
    }

    #[test]
    fn counting_estimate_bounded(
        k in 50usize..500,
        t_pick in 0usize..500,
        seed in any::<u64>(),
    ) {
        let t = t_pick % k;
        let data: Vec<u64> = (0..k).map(|i| (i < t) as u64).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = VecSource::new(data, 4);
        let eps = (k as f64 / 8.0).max(1.0);
        let out = pquery::counting::estimate_count(&mut src, &|v| v != 0, eps, &mut rng);
        prop_assert!((out.estimate - t as f64).abs() <= 3.0 * eps + 1e-9);
        prop_assert!(out.estimate >= 0.0);
        prop_assert!(out.batches >= 1);
    }

    #[test]
    fn dj_requires_promise(bits in proptest::collection::vec(any::<bool>(), 4usize..32)) {
        let k = bits.len().next_power_of_two() / 2;
        let x: Vec<u64> = bits.iter().take(k.max(2)).map(|&b| b as u64).collect();
        if x.len() < 2 || !x.len().is_power_of_two() {
            return Ok(());
        }
        let w: u64 = x.iter().sum();
        let mut src = VecSource::new(x.clone(), 1);
        let res = pquery::deutsch_jozsa::deutsch_jozsa(&mut src);
        let on_promise = w == 0 || w == x.len() as u64 || 2 * w == x.len() as u64;
        prop_assert_eq!(res.is_ok(), on_promise);
    }
}
