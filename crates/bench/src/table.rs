//! Result tables for the experiment harness.

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "E6".
    pub id: String,
    /// Human title, e.g. "Meeting scheduling (Lemma 10 vs Lemma 11)".
    pub title: String,
    /// What the paper predicts and what we check.
    pub claim: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Harness verdict lines (scaling-fit summaries, pass/fail notes).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(id: &str, title: &str, claim: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a verdict/summary note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as a pretty-printed JSON object (field-for-field the same
    /// shape the former serde derive produced).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        let string_list = |items: &[String]| -> String {
            let cells: Vec<String> = items.iter().map(|c| json_string(c)).collect();
            format!("[{}]", cells.join(", "))
        };
        let rows: Vec<String> =
            self.rows.iter().map(|r| format!("{inner}  {}", string_list(r))).collect();
        let rows_block = if rows.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n{inner}]", rows.join(",\n"))
        };
        format!(
            "{pad}{{\n\
             {inner}\"id\": {},\n\
             {inner}\"title\": {},\n\
             {inner}\"claim\": {},\n\
             {inner}\"header\": {},\n\
             {inner}\"rows\": {},\n\
             {inner}\"notes\": {}\n\
             {pad}}}",
            json_string(&self.id),
            json_string(&self.title),
            json_string(&self.claim),
            string_list(&self.header),
            rows_block,
            string_list(&self.notes),
        )
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("   claim: {}\n", self.claim));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format!("   {}\n", fmt_row(&self.header)));
        out.push_str(&format!(
            "   {}\n",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        ));
        for row in &self.rows {
            out.push_str(&format!("   {}\n", fmt_row(row)));
        }
        for n in &self.notes {
            out.push_str(&format!("   * {n}\n"));
        }
        out
    }
}

/// Serialize a list of tables as one pretty-printed JSON array.
pub fn tables_to_json(tables: &[Table]) -> String {
    if tables.is_empty() {
        return "[]".to_string();
    }
    let items: Vec<String> = tables.iter().map(|t| t.to_json(1)).collect();
    format!("[\n{}\n]", items.join(",\n"))
}

/// A JSON string literal for `s` (quotes, escapes, and control bytes).
fn json_string(s: &str) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Least-squares slope of `log y` against `log x` — the measured scaling
/// exponent, for comparing against the theory exponent.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_rows() {
        let mut t = Table::new("E0", "demo", "x", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("fine");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("fine"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("E0", "demo", "x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut t = Table::new("E1", "demo \"quoted\"", "claim", &["a", "b"]);
        t.row(vec!["1".into(), "x\ny".into()]);
        t.note("note");
        let json = tables_to_json(&[t]);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"id\": \"E1\""));
        assert!(json.contains("demo \\\"quoted\\\""));
        assert!(json.contains("x\\ny"));
        assert!(json.contains("\"notes\": [\"note\"]"));
        assert_eq!(tables_to_json(&[]), "[]");
    }

    #[test]
    fn json_string_adversarial() {
        // RFC 8259 §7: quote, backslash, and all controls < 0x20 must be
        // escaped; everything else (including non-ASCII) passes through.
        assert_eq!(json_string(r#"a"b"#), r#""a\"b""#);
        assert_eq!(json_string(r"back\slash"), r#""back\\slash""#);
        assert_eq!(json_string("nl\ncr\rtab\t"), r#""nl\ncr\rtab\t""#);
        assert_eq!(json_string("\u{0}\u{1f}"), r#""\u0000\u001f""#);
        assert_eq!(json_string("Ω(√n) ≈ 7 — naïve"), "\"Ω(√n) ≈ 7 — naïve\"");
        assert_eq!(json_string(""), "\"\"");
        // The classic breakout attempt: a cell trying to close the string
        // and inject a sibling key stays inert.
        let hostile = json_string("\",\"injected\":true,\"x\":\"");
        assert_eq!(hostile, r#""\",\"injected\":true,\"x\":\"""#);
        assert!(!hostile.contains(r#"","injected""#));
    }

    #[test]
    fn json_empty_rows() {
        let t = Table::new("E0", "t", "c", &["h"]);
        assert!(t.to_json(0).contains("\"rows\": []"));
    }

    #[test]
    fn slope_of_power_law() {
        let pts: Vec<(f64, f64)> =
            (1..20).map(|i| (i as f64, (i as f64).powf(1.5) * 3.0)).collect();
        assert!((loglog_slope(&pts) - 1.5).abs() < 1e-9);
    }
}
