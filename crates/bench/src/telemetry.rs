//! Telemetry capture for the experiment suite (`reproduce --telemetry`).
//!
//! [`collect`] runs one *representative* workload per experiment id under a
//! [`Collector`] and returns it ready for export — the Chrome-trace JSONL
//! and metrics JSON that `reproduce -- <id> --telemetry <dir>` writes. The
//! workload is a single cell of the experiment's sweep, not the whole
//! table: the point is a phase/round/congestion profile of the protocols
//! involved, and the full sweep is already what [`run_one`] measures.
//!
//! Three capture styles, matching how each experiment does its work:
//!
//! * **network-level** (E1, E16, E19): protocols run directly with a
//!   collector attached (`net.exec(..).telemetry(..)`), so every round is
//!   sampled and per-edge loads accumulate — E19 additionally exercises the
//!   [`Reliable`] retry counters under seeded
//!   message loss;
//! * **ledger-level** (E4–E13, E15, E17): the `dqc_core` drivers return a
//!   [`RoundLedger`](congest::RoundLedger) whose phases are folded in via
//!   [`Collector::absorb_ledger`], plus batch-width histograms from the
//!   `pquery` ledger where the driver exposes them;
//! * **counter-level** (E2, E3, E5, E14, E18): pure `pquery` emulations
//!   log batch widths/idle slots, and the `qsim` statevector experiments
//!   fold in [`qsim::metrics`] snapshots.
//!
//! [`run_one`]: crate::experiments::run_one

use crate::experiments::Scale;
use congest::bfs::{build_bfs_tree, BfsTreeProtocol};
use congest::conformance::FloodProtocol;
use congest::faults::{FaultPlan, Reliable, RetryConfig};
use congest::generators::{grid, path};
use congest::runtime::Network;
use congest::telemetry::Collector;
use congest::tree_comm::{BroadcastRegisterProtocol, Register, Schedule};
use dqc_core::amplification::{amplitude_amplification, PreparationSubroutine};
use dqc_core::deutsch_jozsa::{quantum_dj, DjInstance};
use dqc_core::distinctness::{quantum_distinctness, DistinctnessInstance};
use dqc_core::eccentricity::quantum_diameter;
use dqc_core::girth::quantum_girth;
use dqc_core::scheduling::{quantum_meeting_scheduling, MeetingInstance};
use pquery::deutsch_jozsa::DjAnswer;
use pquery::minimum::Extremum;
use pquery::oracle::{BatchSource, VecSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fold a finished [`VecSource`] ledger into `col`: batch/query/idle
/// counters plus the batch-width histogram (E15's pathology — long runs of
/// widths far below `p` — shows up as mass in the low buckets).
fn absorb_source(col: &mut Collector, src: &VecSource) {
    col.add("pquery.batches", src.batches() as u64);
    col.add("pquery.queries", src.queries());
    col.add("pquery.idle_slots", src.idle_slots());
    for &w in src.batch_widths() {
        col.observe("pquery.batch_width", w as u64);
    }
}

/// Run `work` with [`qsim::metrics`] enabled and fold the counter snapshot
/// into `col`. The counters are process-global, so reset/enable bracket the
/// workload tightly.
fn with_qsim_metrics(col: &mut Collector, work: impl FnOnce()) {
    qsim::metrics::reset();
    qsim::metrics::enable(true);
    work();
    qsim::metrics::enable(false);
    for (name, v) in qsim::metrics::snapshot() {
        if v > 0 {
            col.add(name, v);
        }
    }
}

/// Telemetry for one experiment id (`"e1"`..`"e19"`, case-insensitive) at
/// `scale`; `None` for unknown ids. Deterministic: same id + scale → the
/// same collector contents, byte-identical exports across [`EngineMode`]s
/// (the engines merge per-lane telemetry in node order — see the
/// `congest::telemetry` module docs).
///
/// [`EngineMode`]: congest::runtime::EngineMode
///
/// # Panics
///
/// Panics if a workload's network run fails — the same inputs run clean in
/// the experiment suite, so a failure here is a harness bug.
pub fn collect(id: &str, scale: Scale) -> Option<Collector> {
    let mut col = Collector::new();
    match id.to_ascii_lowercase().as_str() {
        // Lemma 7 traffic: pipelined vs store-and-forward register
        // distribution down a path — the round samples show the pipeline
        // ramp vs the naive hop-by-hop bursts.
        "e1" | "e16" => {
            let (d, q) = match scale {
                Scale::Quick => (32, 256),
                Scale::Full => (64, 1024),
            };
            let g = path(d + 1);
            let net = Network::new(&g);
            let views = build_bfs_tree(&net, 0).expect("path is connected").views;
            let chunk = (net.cap_bits().saturating_sub(1)).clamp(1, 64);
            for (name, schedule) in [
                ("distribute/pipelined", Schedule::Pipelined),
                ("distribute/naive", Schedule::StoreAndForward),
            ] {
                col.enter(name);
                net.exec(BroadcastRegisterProtocol::instances(
                    &views,
                    Register::from_value(q, 0x00DE_C0DE),
                    chunk,
                    schedule,
                ))
                .telemetry(&mut col)
                .run()
                .expect("distribution");
                col.exit();
            }
        }
        // Pure pquery emulations: Grover search (Lemma 2) and ℓ-fold
        // extremum (Lemma 3) batch ledgers.
        "e2" | "e3" | "e5" => {
            let (k, p) = match scale {
                Scale::Quick => (1 << 10, 8),
                Scale::Full => (1 << 14, 32),
            };
            let mut rng = StdRng::seed_from_u64(0x7e1e);
            let data: Vec<u64> = (0..k as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let mut src = VecSource::new(data, p);
            match id {
                "e2" => {
                    let out = pquery::grover::search_one(&mut src, &|v| v % 257 == 0, &mut rng);
                    col.add("pquery.found", out.found.is_some() as u64);
                }
                "e3" => {
                    let (all, _) =
                        pquery::grover::search_all(&mut src, &|v| v % 101 == 0, &mut rng);
                    col.add("pquery.found", all.len() as u64);
                }
                _ => {
                    let out = pquery::minimum::find_extremum(&mut src, Extremum::Min, &mut rng);
                    col.add("pquery.found", out.index as u64);
                }
            }
            absorb_source(&mut col, &src);
        }
        // Element distinctness over the CONGEST oracle (Lemma 12).
        "e4" | "e7" => {
            let (n, k) = match scale {
                Scale::Quick => (20, 40),
                Scale::Full => (30, 120),
            };
            let g = grid(n / 5, 5);
            let net = Network::new(&g);
            let inst = DistinctnessInstance::random(g.n(), k, Some((k / 5, 4 * k / 5)), 4);
            let res = quantum_distinctness(&net, &inst, 4).expect("distinctness");
            col.absorb_ledger("distinctness", &res.ledger);
        }
        // Meeting scheduling = distributed maximum finding (Theorem 13);
        // E15 is its idle-width ablation on the same driver.
        "e6" | "e15" => {
            let (n, k) = match scale {
                Scale::Quick => (20, 32),
                Scale::Full => (30, 96),
            };
            let g = grid(n / 5, 5);
            let net = Network::new(&g);
            let inst = MeetingInstance::random(g.n(), k, 0.3, 6);
            let res = quantum_meeting_scheduling(&net, &inst, 6).expect("scheduling");
            col.add("pquery.batches", res.batches as u64);
            col.absorb_ledger("meeting-scheduling", &res.ledger);
        }
        // Exact distributed Deutsch–Jozsa (§4.3).
        "e8" => {
            let (n, k) = match scale {
                Scale::Quick => (20, 64),
                Scale::Full => (30, 256),
            };
            let g = grid(n / 5, 5);
            let net = Network::new(&g);
            let inst = DjInstance::random(g.n(), k, DjAnswer::Balanced, 8);
            let res = quantum_dj(&net, &inst, 8).expect("network").expect("promise holds");
            col.add("pquery.batches", res.batches as u64);
            col.absorb_ledger("deutsch-jozsa", &res.ledger);
        }
        // Diameter/radius via quantum eccentricities (Theorem 16).
        "e9" | "e10" => {
            let g = match scale {
                Scale::Quick => grid(5, 4),
                Scale::Full => grid(8, 6),
            };
            let net = Network::new(&g);
            let res = quantum_diameter(&net, 10).expect("diameter");
            col.absorb_ledger("diameter", &res.ledger);
        }
        // Girth search (Theorem 21): triangle phase + level sweeps.
        "e11" | "e12" => {
            let g = match scale {
                Scale::Quick => grid(5, 4),
                Scale::Full => grid(7, 6),
            };
            let net = Network::new(&g);
            let res = quantum_girth(&net, 0.5, 12).expect("girth");
            col.absorb_ledger("girth", &res.ledger);
        }
        // Distributed amplitude amplification / estimation (Lemmas 27–28):
        // the iterate structure (prepare-broadcast, zero-check AND) is the
        // interesting span shape.
        "e13" | "e17" => {
            let g = grid(6, 5);
            let net = Network::new(&g);
            let p_good = match scale {
                Scale::Quick => 0.1,
                Scale::Full => 0.02,
            };
            let res =
                amplitude_amplification(&net, PreparationSubroutine::new(16, p_good), 0.1, 13)
                    .expect("amplification");
            col.add("amplify.success", res.success as u64);
            col.absorb_ledger("amplitude-amplification", &res.ledger);
        }
        // Statevector ground truth (qsim): QFT + Grover circuits with the
        // kernel/fusion counters enabled.
        "e14" | "e18" => {
            let qubits = match scale {
                Scale::Quick => 10,
                Scale::Full => 16,
            };
            with_qsim_metrics(&mut col, || {
                let qs: Vec<usize> = (0..qubits).collect();
                let mut s = qsim::State::zero(qubits);
                qsim::qft::qft_circuit(&qs).fuse().apply(&mut s);
                let mut rng = StdRng::seed_from_u64(14);
                let _ = qsim::grover::grover_search(1 << qubits.min(10), |i| i == 3, &mut rng);
            });
        }
        // Fault tolerance (the network_diagnostics showcase shape):
        // Reliable-wrapped flood, BFS, and register broadcast on grid(6,5)
        // under seeded drops — retry/backoff counters plus the congestion
        // heatmap of the recovery traffic.
        "e19" => {
            let g = grid(6, 5);
            let rate = match scale {
                Scale::Quick => 0.2,
                Scale::Full => 0.3,
            };
            let clean_net = Network::new(&g);
            let views = build_bfs_tree(&clean_net, 0).expect("connected").views;
            let plan = FaultPlan::new(19).with_drop_rate(rate);
            let net = Network::new(&g).with_faults(plan);
            let retry = RetryConfig::default();

            col.enter("reliable/flood");
            net.exec(Reliable::wrap_all(FloodProtocol::instances(g.n(), 0), retry))
                .telemetry(&mut col)
                .run()
                .expect("reliable flood");
            col.exit();

            col.enter("reliable/bfs");
            net.exec(Reliable::wrap_all(BfsTreeProtocol::instances(g.n(), 0), retry))
                .telemetry(&mut col)
                .run()
                .expect("reliable bfs");
            col.exit();

            col.enter("reliable/broadcast");
            net.exec(Reliable::wrap_all(
                BroadcastRegisterProtocol::instances(
                    &views,
                    Register::from_value(48, 0x0BAD_CAFE_F00D),
                    6,
                    Schedule::Pipelined,
                ),
                retry,
            ))
            .telemetry(&mut col)
            .run()
            .expect("reliable broadcast");
            col.exit();
        }
        _ => return None,
    }
    Some(col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(collect("e99", Scale::Quick).is_none());
        assert!(collect("all", Scale::Quick).is_none());
    }

    #[test]
    fn network_level_capture_has_spans_rounds_and_edges() {
        let col = collect("e1", Scale::Quick).expect("e1");
        assert!(col.spans().iter().any(|s| s.name == "distribute/pipelined"));
        assert!(col.spans().iter().any(|s| s.name == "distribute/naive"));
        assert!(!col.round_samples().is_empty());
        assert!(!col.edge_loads().is_empty());
        assert!(col.counter("engine.bits") > 0);
    }

    #[test]
    fn ledger_level_capture_has_setup_phases() {
        let col = collect("e6", Scale::Quick).expect("e6");
        let names: Vec<_> = col.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"meeting-scheduling"), "protocol root span, got {names:?}");
        assert!(names.iter().any(|n| n.contains("leader-election")));
        assert!(col.counter("pquery.batches") > 0);
    }

    #[test]
    fn pquery_capture_logs_widths_and_idle_slots() {
        let col = collect("e2", Scale::Quick).expect("e2");
        assert!(col.counter("pquery.batches") > 0);
        let h = col.histogram("pquery.batch_width").expect("width histogram");
        assert_eq!(h.count, col.counter("pquery.batches"));
    }

    #[test]
    fn qsim_capture_folds_kernel_counters() {
        let col = collect("e14", Scale::Quick).expect("e14");
        assert!(col.counter("qsim.fuse_gates_in") >= col.counter("qsim.fuse_groups"));
        assert!(col.counter("qsim.matrix_applies") > 0);
    }

    #[test]
    fn faulted_capture_records_retries() {
        let col = collect("e19", Scale::Quick).expect("e19");
        assert!(col.counter("reliable.sends") > 0);
        assert!(col.counter("reliable.retries") > 0, "20% drop must force retransmits");
        assert!(col.counter("engine.dropped") > 0);
        assert!(col.spans().iter().any(|s| s.name == "reliable/flood"));
    }
}
