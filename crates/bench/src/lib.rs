//! # dqc-bench — experiment harness
//!
//! Reproduces every round-complexity result of *"A Framework for
//! Distributed Quantum Queries in the CONGEST Model"* as a measured table:
//! see [`experiments`] for the suite (E1–E19) and EXPERIMENTS.md for the
//! recorded results. Run `cargo run --release -p dqc-bench --bin reproduce
//! -- all` to regenerate everything.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;
pub mod telemetry;

pub use experiments::{catalog, run_all, run_one, Scale};
pub use table::Table;
