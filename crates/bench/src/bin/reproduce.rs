//! Regenerate the paper's result tables.
//!
//! ```text
//! reproduce [--quick] [--check] [--json FILE] [all | e1 .. e19]...
//! ```
//!
//! `--check` additionally runs the model-conformance sweep — the
//! differential grid of `{Sequential, Parallel} × {fault-free, faulted}`
//! audited runs — after the experiments, and exits nonzero if any cell
//! reports a violation, an engine divergence, or an incorrect outcome.

use dqc_bench::{run_one, Scale};

fn conformance_sweep() -> bool {
    let cells = dqc_bench::harness::differential_grid(19);
    let mut ok = true;
    println!("== conformance sweep: {} differential cells ==", cells.len());
    for c in &cells {
        let clean = c.violations == 0 && c.rounds_delta == 0 && c.correct;
        if !clean {
            ok = false;
            println!(
                "  FAIL {}/{} (faulted={}): {} violations, engine rounds delta {}, correct={}",
                c.protocol, c.graph, c.faulted, c.violations, c.rounds_delta, c.correct
            );
        }
    }
    if ok {
        println!("  all cells conformant: engines agree, zero violations, outcomes correct");
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--json" => json_path = it.next(),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: reproduce [--quick] [--check] [--json FILE] [all | e1 .. e19]...");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = (1..=19).map(|i| format!("e{i}")).collect();
    }
    let mut tables = Vec::new();
    for id in &wanted {
        match run_one(id, scale) {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => eprintln!("unknown experiment: {id}"),
        }
    }
    if let Some(path) = json_path {
        let json = dqc_bench::table::tables_to_json(&tables);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    if check && !conformance_sweep() {
        std::process::exit(1);
    }
}
