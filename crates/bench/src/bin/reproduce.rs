//! Regenerate the paper's result tables.
//!
//! ```text
//! reproduce [--list] [--quick] [--check] [--json FILE] [--telemetry DIR] [all | e1 .. e19]...
//! ```
//!
//! `--list` prints the experiment catalog (id + one-line description) and
//! exits. Unknown experiment ids are rejected before anything runs, with a
//! nonzero exit status.
//!
//! `--check` additionally runs the model-conformance sweep — the
//! differential grid of `{Sequential, Parallel} × {fault-free, faulted}`
//! audited runs — after the experiments, and exits nonzero if any cell
//! reports a violation, an engine divergence, or an incorrect outcome.
//!
//! `--telemetry DIR` re-runs one representative workload per selected
//! experiment under a `congest::telemetry::Collector` and writes
//! `DIR/<id>.trace.jsonl` (Chrome trace-event / Perfetto-loadable, round
//! index timebase) and `DIR/<id>.metrics.json` (counters, histograms,
//! span rollup, per-edge loads).

use dqc_bench::{catalog, run_one, Scale};

fn conformance_sweep() -> bool {
    let cells = dqc_bench::harness::differential_grid(19);
    let mut ok = true;
    println!("== conformance sweep: {} differential cells ==", cells.len());
    for c in &cells {
        let clean = c.violations == 0 && c.rounds_delta == 0 && c.correct;
        if !clean {
            ok = false;
            println!(
                "  FAIL {}/{} (faulted={}): {} violations, engine rounds delta {}, correct={}",
                c.protocol, c.graph, c.faulted, c.violations, c.rounds_delta, c.correct
            );
        }
    }
    if ok {
        println!("  all cells conformant: engines agree, zero violations, outcomes correct");
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut check = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--json" => json_path = it.next(),
            "--telemetry" => telemetry_dir = it.next(),
            "--check" => check = true,
            "--list" => {
                println!("experiments:");
                for (id, what) in catalog() {
                    println!("  {id:<4} {what}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [--list] [--quick] [--check] [--json FILE] \
                     [--telemetry DIR] [all | e1 .. e19]..."
                );
                return;
            }
            other => wanted.push(other.to_ascii_lowercase()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = catalog().iter().map(|(id, _)| id.to_string()).collect();
    }
    let unknown: Vec<&String> =
        wanted.iter().filter(|w| !catalog().iter().any(|(id, _)| id == w)).collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("unknown experiment: {id}");
        }
        eprintln!("run `reproduce --list` for the catalog");
        std::process::exit(2);
    }
    let mut tables = Vec::new();
    for id in &wanted {
        let t = run_one(id, scale).expect("catalog ids all resolve");
        println!("{}", t.render());
        tables.push(t);
    }
    if let Some(path) = json_path {
        let json = dqc_bench::table::tables_to_json(&tables);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(dir) = telemetry_dir {
        std::fs::create_dir_all(&dir).expect("create telemetry dir");
        let mut uncollectable = false;
        for id in &wanted {
            let Some(col) = dqc_bench::telemetry::collect(id, scale) else {
                eprintln!("no telemetry collector for experiment: {id}");
                uncollectable = true;
                continue;
            };
            let trace = format!("{dir}/{id}.trace.jsonl");
            let metrics = format!("{dir}/{id}.metrics.json");
            std::fs::write(&trace, col.to_chrome_jsonl()).expect("write trace");
            std::fs::write(&metrics, col.metrics_json()).expect("write metrics");
            eprintln!("wrote {trace} + {metrics}");
        }
        if uncollectable {
            std::process::exit(2);
        }
    }
    if check && !conformance_sweep() {
        std::process::exit(1);
    }
}
