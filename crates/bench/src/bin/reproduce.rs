//! Regenerate the paper's result tables.
//!
//! ```text
//! reproduce [--quick] [--json FILE] [all | e1 .. e18]...
//! ```

use dqc_bench::{run_one, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--json" => json_path = it.next(),
            "--help" | "-h" => {
                eprintln!("usage: reproduce [--quick] [--json FILE] [all | e1 .. e18]...");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = (1..=18).map(|i| format!("e{i}")).collect();
    }
    let mut tables = Vec::new();
    for id in &wanted {
        match run_one(id, scale) {
            Some(t) => {
                println!("{}", t.render());
                tables.push(t);
            }
            None => eprintln!("unknown experiment: {id}"),
        }
    }
    if let Some(path) = json_path {
        let json = dqc_bench::table::tables_to_json(&tables);
        std::fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
