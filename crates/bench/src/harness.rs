//! Thread fan-out for trial grids.
//!
//! Several experiments (E2–E5) average dozens of independent trials per
//! parameter cell. [`parallel_cells`] spreads the cells of such a grid
//! across worker threads while keeping the output — and every random
//! stream — byte-identical to a sequential sweep: each cell derives its
//! own RNG seed from the experiment's master seed via [`cell_seed`], so no
//! cell ever observes another cell's position in a shared stream, and
//! results are collected back in cell order.

/// Derive the RNG seed of cell `cell` from an experiment's `master` seed.
///
/// The golden-ratio stride decorrelates neighboring cells; the same
/// `(master, cell)` pair always yields the same seed, independent of
/// thread count or scheduling.
pub fn cell_seed(master: u64, cell: usize) -> u64 {
    let mut x = master ^ (cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // SplitMix64 finalizer: avalanche so low-entropy masters still give
    // well-spread per-cell seeds.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Apply `f` to every input cell, fanning the cells out over the host's
/// cores, and return the results in cell order.
///
/// `f` receives the cell's index (for [`cell_seed`]) and its input. With a
/// single core, or a single cell, this degenerates to a plain sequential
/// map — the output is identical either way.
pub fn parallel_cells<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads =
        std::thread::available_parallelism().map_or(1, |p| p.get()).min(inputs.len().max(1));
    if threads <= 1 {
        return inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = inputs.len().div_ceil(threads);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(inputs.len(), || None);
    std::thread::scope(|s| {
        for (t, (in_chunk, out_chunk)) in
            inputs.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            s.spawn(move || {
                for (i, (x, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(t * chunk + i, x));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("every cell chunk was processed")).collect()
}

// ---------------------------------------------------------------------
// Differential runner: {Sequential, Parallel} × {fault-free, faulted}.
// ---------------------------------------------------------------------

use congest::bfs::BfsTreeProtocol;
use congest::conformance::{check_protocol, FloodProtocol};
use congest::faults::{FaultPlan, Reliable, RetryConfig};
use congest::generators::{grid, path, random_connected_m, star};
use congest::graph::{Dist, Graph, NodeId};
use congest::runtime::{EngineMode, Network, NodeProtocol};
use congest::tree_comm::{BroadcastRegisterProtocol, Register, Schedule};

/// One cell of the differential grid: a protocol on a topology executed
/// under `{Sequential, Parallel} × {fault-free, faulted}` with full
/// conformance auditing.
#[derive(Debug, Clone)]
pub struct DiffCell {
    /// Protocol family ("flood", "bfs", "broadcast").
    pub protocol: String,
    /// Topology label.
    pub graph: String,
    /// Whether a fault plan (drops + delays) was active.
    pub faulted: bool,
    /// Measured rounds of the sequential reference run.
    pub rounds: usize,
    /// Parallel rounds minus sequential rounds (0 when the engines agree).
    pub rounds_delta: i64,
    /// Messages lost to injected faults.
    pub dropped: u64,
    /// Conformance violations found (model breaches, accounting
    /// inconsistencies, engine divergences).
    pub violations: usize,
    /// Whether the protocol's own correctness condition held.
    pub correct: bool,
}

/// Run one protocol under both engines with conformance auditing and the
/// protocol's own correctness oracle.
fn diff_cell<P, F, C>(
    protocol: &str,
    graph: &str,
    faulted: bool,
    net: &Network<'_>,
    make: F,
    ok: C,
) -> DiffCell
where
    P: NodeProtocol + Send + std::fmt::Debug,
    P::Msg: Send + Sync,
    F: Fn() -> Vec<P>,
    C: Fn(&[P]) -> bool,
{
    let checked = check_protocol(net, 4, &make)
        .unwrap_or_else(|e| panic!("{protocol}/{graph} (faulted={faulted}): {e}"));
    let par = net
        .clone()
        .with_engine(EngineMode::Parallel { threads: 4 })
        .run(make())
        .unwrap_or_else(|e| panic!("{protocol}/{graph} parallel (faulted={faulted}): {e}"));
    DiffCell {
        protocol: protocol.to_string(),
        graph: graph.to_string(),
        faulted,
        rounds: checked.run.stats.rounds,
        rounds_delta: par.stats.rounds as i64 - checked.run.stats.rounds as i64,
        dropped: checked.report.stats.dropped,
        violations: checked.report.violations.len(),
        correct: ok(&checked.run.nodes),
    }
}

/// Whether `(dist, parent)` per node describes a valid spanning tree of
/// `g` rooted at `root`: the root at distance 0, every other node adopted
/// by a strictly closer neighbor.
pub fn bfs_tree_is_valid(
    g: &Graph,
    root: NodeId,
    outcome: &[(Option<Dist>, Option<NodeId>)],
) -> bool {
    if outcome.len() != g.n() || outcome[root] != (Some(0), None) {
        return false;
    }
    outcome.iter().enumerate().all(|(v, &(dist, parent))| {
        if v == root {
            return true;
        }
        match (dist, parent) {
            (Some(d), Some(p)) => {
                g.neighbors(v).contains(&p) && matches!(outcome[p].0, Some(pd) if pd < d)
            }
            _ => false,
        }
    })
}

/// The differential grid: {flood, BFS, broadcast} × four topologies ×
/// {fault-free, faulted}, every cell audited for conformance and engine
/// agreement. `seed` drives both the random topology and the fault plans.
pub fn differential_grid(seed: u64) -> Vec<DiffCell> {
    let topologies: Vec<(String, Graph)> = vec![
        ("path(24)".into(), path(24)),
        ("grid(6x5)".into(), grid(6, 5)),
        ("star(24)".into(), star(24)),
        (format!("random(32,{seed})"), random_connected_m(32, 48, seed)),
    ];
    let bfs_outcome = |nodes: &[BfsTreeProtocol]| -> Vec<(Option<Dist>, Option<NodeId>)> {
        nodes.iter().map(|p| (p.dist(), p.tree_view().parent)).collect()
    };
    // 48-bit register in 6-bit chunks: small enough that a Reliable frame
    // (seq header + chunk) plus a piggybacked ack fits every cap here.
    let reg = Register::from_value(48, 0xBEEF_CAFE_F00D & ((1 << 48) - 1));
    let chunk = 6u64;
    let mut cells = Vec::new();
    for (i, (gname, g)) in topologies.iter().enumerate() {
        let clean = Network::new(g);
        let plan = FaultPlan::new(cell_seed(seed, i)).with_drop_rate(0.15).with_delay(0.05, 2);
        let faulted = Network::new(g).with_faults(plan);
        let views = congest::bfs::build_bfs_tree(&clean, 0).expect("connected").views;

        cells.push(diff_cell(
            "flood",
            gname,
            false,
            &clean,
            || FloodProtocol::instances(g.n(), 0),
            |ns| ns.iter().all(|f| f.has_token),
        ));
        cells.push(diff_cell(
            "flood",
            gname,
            true,
            &faulted,
            || Reliable::wrap_all(FloodProtocol::instances(g.n(), 0), RetryConfig::default()),
            |ns| ns.iter().all(|r| r.inner().has_token),
        ));

        cells.push(diff_cell(
            "bfs",
            gname,
            false,
            &clean,
            || BfsTreeProtocol::instances(g.n(), 0),
            |ns| bfs_tree_is_valid(g, 0, &bfs_outcome(ns)),
        ));
        cells.push(diff_cell(
            "bfs",
            gname,
            true,
            &faulted,
            || Reliable::wrap_all(BfsTreeProtocol::instances(g.n(), 0), RetryConfig::default()),
            |ns| {
                let inner: Vec<_> =
                    ns.iter().map(|r| (r.inner().dist(), r.inner().tree_view().parent)).collect();
                bfs_tree_is_valid(g, 0, &inner)
            },
        ));

        cells.push(diff_cell(
            "broadcast",
            gname,
            false,
            &clean,
            || {
                BroadcastRegisterProtocol::instances(
                    &views,
                    reg.clone(),
                    chunk,
                    Schedule::Pipelined,
                )
            },
            |ns| ns.iter().all(|p| p.register() == &reg),
        ));
        cells.push(diff_cell(
            "broadcast",
            gname,
            true,
            &faulted,
            || {
                Reliable::wrap_all(
                    BroadcastRegisterProtocol::instances(
                        &views,
                        reg.clone(),
                        chunk,
                        Schedule::Pipelined,
                    ),
                    RetryConfig::default(),
                )
            },
            |ns| ns.iter().all(|r| r.inner().register() == &reg),
        ));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn results_in_cell_order() {
        let inputs: Vec<usize> = (0..97).collect();
        let out = parallel_cells(&inputs, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map_with_rng() {
        let inputs: Vec<u64> = (0..23).collect();
        let run = |i: usize, &x: &u64| {
            let mut rng = StdRng::seed_from_u64(cell_seed(42, i));
            rng.gen_range(0u64..1000) + x
        };
        let par = parallel_cells(&inputs, run);
        let seq: Vec<u64> = inputs.iter().enumerate().map(|(i, x)| run(i, x)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..256).map(|i| cell_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "collision in the first 256 cells");
        assert_eq!(seeds, (0..256).map(|i| cell_seed(7, i)).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(parallel_cells::<u8, u8, _>(&[], |_, &x| x).is_empty());
        assert_eq!(parallel_cells(&[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn differential_grid_is_clean_and_deterministic() {
        let cells = differential_grid(5);
        assert_eq!(cells.len(), 4 * 3 * 2);
        for c in &cells {
            assert_eq!(
                c.violations, 0,
                "{}/{} (faulted={}) had violations",
                c.protocol, c.graph, c.faulted
            );
            assert_eq!(
                c.rounds_delta, 0,
                "{}/{} (faulted={}) engines diverged",
                c.protocol, c.graph, c.faulted
            );
            assert!(c.correct, "{}/{} (faulted={}) incorrect", c.protocol, c.graph, c.faulted);
            if !c.faulted {
                assert_eq!(c.dropped, 0, "{}/{}: clean cells cannot drop", c.protocol, c.graph);
            }
        }
        assert!(cells.iter().filter(|c| c.faulted).any(|c| c.dropped > 0));
        // Replays are byte-identical.
        let replay = differential_grid(5);
        let key = |cs: &[DiffCell]| cs.iter().map(|c| (c.rounds, c.dropped)).collect::<Vec<_>>();
        assert_eq!(key(&cells), key(&replay));
    }

    #[test]
    fn bfs_validity_oracle_rejects_broken_trees() {
        let g = super::path(4);
        let good =
            vec![(Some(0), None), (Some(1), Some(0)), (Some(2), Some(1)), (Some(3), Some(2))];
        assert!(bfs_tree_is_valid(&g, 0, &good));
        let mut bad = good.clone();
        bad[2] = (Some(2), Some(0)); // parent is not a neighbor
        assert!(!bfs_tree_is_valid(&g, 0, &bad));
        let mut bad = good.clone();
        bad[3] = (Some(1), Some(2)); // distance does not decrease
        assert!(!bfs_tree_is_valid(&g, 0, &bad));
        let mut bad = good;
        bad[1] = (None, None); // unreached node
        assert!(!bfs_tree_is_valid(&g, 0, &bad));
    }
}
