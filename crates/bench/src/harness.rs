//! Thread fan-out for trial grids.
//!
//! Several experiments (E2–E5) average dozens of independent trials per
//! parameter cell. [`parallel_cells`] spreads the cells of such a grid
//! across worker threads while keeping the output — and every random
//! stream — byte-identical to a sequential sweep: each cell derives its
//! own RNG seed from the experiment's master seed via [`cell_seed`], so no
//! cell ever observes another cell's position in a shared stream, and
//! results are collected back in cell order.

/// Derive the RNG seed of cell `cell` from an experiment's `master` seed.
///
/// The golden-ratio stride decorrelates neighboring cells; the same
/// `(master, cell)` pair always yields the same seed, independent of
/// thread count or scheduling.
pub fn cell_seed(master: u64, cell: usize) -> u64 {
    let mut x = master ^ (cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // SplitMix64 finalizer: avalanche so low-entropy masters still give
    // well-spread per-cell seeds.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Apply `f` to every input cell, fanning the cells out over the host's
/// cores, and return the results in cell order.
///
/// `f` receives the cell's index (for [`cell_seed`]) and its input. With a
/// single core, or a single cell, this degenerates to a plain sequential
/// map — the output is identical either way.
pub fn parallel_cells<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(inputs.len().max(1));
    if threads <= 1 {
        return inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = inputs.len().div_ceil(threads);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(inputs.len(), || None);
    std::thread::scope(|s| {
        for (t, (in_chunk, out_chunk)) in
            inputs.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            s.spawn(move || {
                for (i, (x, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(t * chunk + i, x));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("every cell chunk was processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn results_in_cell_order() {
        let inputs: Vec<usize> = (0..97).collect();
        let out = parallel_cells(&inputs, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map_with_rng() {
        let inputs: Vec<u64> = (0..23).collect();
        let run = |i: usize, &x: &u64| {
            let mut rng = StdRng::seed_from_u64(cell_seed(42, i));
            rng.gen_range(0u64..1000) + x
        };
        let par = parallel_cells(&inputs, run);
        let seq: Vec<u64> = inputs.iter().enumerate().map(|(i, x)| run(i, x)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..256).map(|i| cell_seed(7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "collision in the first 256 cells");
        assert_eq!(seeds, (0..256).map(|i| cell_seed(7, i)).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(parallel_cells::<u8, u8, _>(&[], |_, &x| x).is_empty());
        assert_eq!(parallel_cells(&[9u8], |_, &x| x + 1), vec![10]);
    }
}
