//! The experiment suite: one experiment per theorem/lemma of the paper
//! (see EXPERIMENTS.md for the index and recorded results).
//!
//! Every experiment returns a [`Table`] whose *measured* columns come from
//! executing protocols on the `congest` engine (or batch ledgers of the
//! `pquery` emulations) and whose *theory* columns are the paper's bounds;
//! notes record log-log scaling fits where a power law is claimed.

use crate::harness::{cell_seed, parallel_cells};
use crate::table::{loglog_slope, Table};
use congest::generators::{
    cycle_with_body, double_star, dumbbell, grid, path, random_connected_m, random_tree,
};
use congest::graph::Graph;
use congest::runtime::Network;
use congest::tree_comm::{distribute_register, Register, Schedule};
use dqc_core::amplification::{amplitude_amplification, PreparationSubroutine};
use dqc_core::cycles::{
    classical_cycle_detection, quantum_cycle_detection, quantum_cycle_detection_clustered,
};
use dqc_core::deutsch_jozsa::{classical_exact_dj, quantum_dj, DjInstance};
use dqc_core::distinctness::{
    classical_distinctness, quantum_distinctness, quantum_distinctness_between_nodes,
    DistinctnessInstance,
};
use dqc_core::eccentricity::{
    classical_diameter_radius, quantum_average_eccentricity, quantum_diameter, quantum_radius,
};
use dqc_core::estimation::{distributed_amplitude_estimation, distributed_phase_estimation};
use dqc_core::exact::{exact_distribute_roundtrip, exact_distributed_dj};
use dqc_core::girth::{classical_girth, quantum_girth};
use dqc_core::scheduling::{
    classical_meeting_scheduling, quantum_meeting_scheduling, MeetingInstance,
};
use pquery::deutsch_jozsa::DjAnswer;
use pquery::oracle::{BatchSource, VecSource};
use qsim::complex::c64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Experiment scale: `Quick` for CI-sized runs, `Full` for the recorded
/// EXPERIMENTS.md numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale parameters.
    Quick,
    /// The parameters recorded in EXPERIMENTS.md.
    Full,
}

fn fmt_f(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

/// A connected random graph of `n` nodes with ~3n/2 edges (keeps `D`
/// moderate and comparable across sizes).
fn sized_graph(n: usize, seed: u64) -> Graph {
    random_connected_m(n, n + n / 2, seed)
}

// ---------------------------------------------------------------------
// E1 — Lemma 7: pipelined state distribution.
// ---------------------------------------------------------------------

/// E1: distribute a `q`-qubit register over a depth-`D` path; pipelining
/// must cost `O(D + q/log n)` while store-and-forward costs
/// `O(D·q/log n)`.
pub fn e1_distribute(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1",
        "Lemma 7: register distribution with pipelining",
        "pipelined rounds ≈ D + q/log n; naive ≈ D·q/log n",
        &["D", "q", "pipelined", "naive", "theory D+q/B", "ratio naive/pipe"],
    );
    let ds: &[usize] = match scale {
        Scale::Quick => &[8, 32],
        Scale::Full => &[8, 32, 128],
    };
    let qs: &[u64] = match scale {
        Scale::Quick => &[64, 1024],
        Scale::Full => &[64, 1024, 8192],
    };
    let mut fits = Vec::new();
    for &d in ds {
        let g = path(d + 1);
        let net = Network::new(&g);
        let tree = congest::bfs::build_bfs_tree(&net, 0).expect("path is connected");
        for &q in qs {
            let reg = Register::zeros(q);
            let (_, pipe) =
                distribute_register(&net, &tree.views, reg.clone(), Schedule::Pipelined)
                    .expect("distribute");
            let (_, naive) = distribute_register(&net, &tree.views, reg, Schedule::StoreAndForward)
                .expect("distribute");
            let chunk = net.cap_bits() - 1;
            let theory = d as f64 + q as f64 / chunk as f64;
            fits.push((theory, pipe.rounds as f64));
            t.row(vec![
                d.to_string(),
                q.to_string(),
                pipe.rounds.to_string(),
                naive.rounds.to_string(),
                fmt_f(theory),
                fmt_f(naive.rounds as f64 / pipe.rounds as f64),
            ]);
        }
    }
    let slope = loglog_slope(&fits);
    t.note(format!("log-log slope of pipelined rounds vs (D + q/B): {slope:.3} (theory 1.0)"));
    t
}

// ---------------------------------------------------------------------
// E2 — Lemma 2: parallel Grover batches.
// ---------------------------------------------------------------------

/// E2: measured parallel-Grover batch counts vs `⌈√(k/(tp))⌉`.
pub fn e2_parallel_grover(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2",
        "Lemma 2: parallel Grover search",
        "find-one batches = O(⌈√(k/(tp))⌉); find-all = O(√(kt/p)+t)",
        &["k", "t", "p", "b(one) meas", "b(one) theory", "b(all) meas", "b(all) theory"],
    );
    let runs = match scale {
        Scale::Quick => 15,
        Scale::Full => 60,
    };
    let ks: &[usize] = match scale {
        Scale::Quick => &[1024, 4096],
        Scale::Full => &[1024, 4096, 16384],
    };
    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for &k in ks {
        for &tm in &[1usize, 9] {
            for &p in &[1usize, 16] {
                cells.push((k, tm, p));
            }
        }
    }
    let measured = parallel_cells(&cells, |idx, &(k, tm, p)| {
        let mut rng = StdRng::seed_from_u64(cell_seed(2, idx));
        let mut sum_one = 0usize;
        let mut sum_all = 0usize;
        for r in 0..runs {
            let mut data = vec![0u64; k];
            for j in 0..tm {
                data[(j * 797 + r * 31) % k] = 1;
            }
            let mut src = VecSource::new(data.clone(), p);
            sum_one += pquery::grover::search_one(&mut src, &|v| v != 0, &mut rng).batches;
            let mut src = VecSource::new(data, p);
            sum_all += pquery::grover::search_all(&mut src, &|v| v != 0, &mut rng).1;
        }
        (sum_one as f64 / runs as f64, sum_all as f64 / runs as f64)
    });
    let mut fits = Vec::new();
    for (&(k, tm, p), &(mone, mall)) in cells.iter().zip(&measured) {
        let th_one = pquery::complexity::grover_one_batches(k, tm, p);
        let th_all = pquery::complexity::grover_all_batches(k, tm, p);
        fits.push((th_one, mone));
        t.row(vec![
            k.to_string(),
            tm.to_string(),
            p.to_string(),
            fmt_f(mone),
            fmt_f(th_one),
            fmt_f(mall),
            fmt_f(th_all),
        ]);
    }
    t.note(format!(
        "log-log slope of measured b(one) vs √(k/(tp)): {:.3} (theory 1.0)",
        loglog_slope(&fits)
    ));
    t
}

// ---------------------------------------------------------------------
// E3 — Lemma 3: parallel minimum finding.
// ---------------------------------------------------------------------

/// E3: measured minimum-finding batches vs `⌈√(k/(ℓp))⌉`.
pub fn e3_parallel_minimum(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3",
        "Lemma 3: parallel minimum finding (Dürr–Høyer)",
        "batches = O(⌈√(k/(ℓp))⌉) with ℓ-fold minima",
        &["k", "p", "ℓ", "b meas", "b theory", "correct%"],
    );
    let runs = match scale {
        Scale::Quick => 15,
        Scale::Full => 50,
    };
    let ks: &[usize] = match scale {
        Scale::Quick => &[1024, 8192],
        Scale::Full => &[1024, 8192, 65536],
    };
    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for &k in ks {
        for &p in &[1usize, 16] {
            for &ell in &[1usize, 16] {
                cells.push((k, p, ell));
            }
        }
    }
    let measured = parallel_cells(&cells, |idx, &(k, p, ell)| {
        let mut rng = StdRng::seed_from_u64(cell_seed(3, idx));
        let mut sum = 0usize;
        let mut correct = 0usize;
        for r in 0..runs {
            let mut data: Vec<u64> =
                (0..k).map(|i| 100 + ((i as u64 * 48271 + r as u64) % 100_000)).collect();
            for j in 0..ell {
                data[(j * 1103 + r * 13) % k] = 1;
            }
            let mut src = VecSource::new(data, p);
            let out = pquery::minimum::find_extremum_with_multiplicity(
                &mut src,
                pquery::minimum::Extremum::Min,
                ell,
                &mut rng,
            );
            sum += out.batches;
            correct += (out.value == 1) as usize;
        }
        (sum as f64 / runs as f64, correct)
    });
    let mut fits = Vec::new();
    for (&(k, p, ell), &(meas, correct)) in cells.iter().zip(&measured) {
        let theory = pquery::complexity::minimum_multiplicity_batches(k, ell, p);
        fits.push((theory, meas));
        t.row(vec![
            k.to_string(),
            p.to_string(),
            ell.to_string(),
            fmt_f(meas),
            fmt_f(theory),
            format!("{}", correct * 100 / runs),
        ]);
    }
    t.note(format!(
        "log-log slope of measured b vs √(k/(ℓp)): {:.3} (theory 1.0)",
        loglog_slope(&fits)
    ));
    t
}

// ---------------------------------------------------------------------
// E4 — Lemma 5: parallel element distinctness.
// ---------------------------------------------------------------------

/// E4: measured distinctness batches vs `⌈(k/p)^{2/3}⌉`.
pub fn e4_parallel_distinctness(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4",
        "Lemma 5: parallel element distinctness (Johnson walk)",
        "batches = O(⌈(k/p)^{2/3}⌉)",
        &["k", "p", "b meas", "b theory", "found%"],
    );
    let runs = match scale {
        Scale::Quick => 8,
        Scale::Full => 25,
    };
    let ks: &[usize] = match scale {
        Scale::Quick => &[512, 2048],
        Scale::Full => &[512, 2048, 8192, 32768],
    };
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for &k in ks {
        for &p in &[1usize, 8, 64] {
            cells.push((k, p));
        }
    }
    let measured = parallel_cells(&cells, |idx, &(k, p)| {
        let mut rng = StdRng::seed_from_u64(cell_seed(4, idx));
        let mut sum = 0usize;
        let mut found = 0usize;
        for r in 0..runs {
            let mut data: Vec<u64> = (0..k as u64).map(|i| 10_000 + i).collect();
            let (i, j) = ((r * 37) % k, (r * 151 + k / 3) % k);
            if i != j {
                data[j] = data[i];
            }
            let mut src = VecSource::new(data, p);
            let out = pquery::distinctness::element_distinctness(&mut src, &mut rng);
            sum += out.batches;
            found += out.pair.is_some() as usize;
        }
        (sum as f64 / runs as f64, found)
    });
    let mut fits = Vec::new();
    for (&(k, p), &(meas, found)) in cells.iter().zip(&measured) {
        let theory = pquery::complexity::distinctness_batches(k, p);
        fits.push((theory, meas));
        t.row(vec![
            k.to_string(),
            p.to_string(),
            fmt_f(meas),
            fmt_f(theory),
            format!("{}", found * 100 / runs),
        ]);
    }
    t.note(format!(
        "log-log slope of measured b vs (k/p)^(2/3): {:.3} (theory 1.0)",
        loglog_slope(&fits)
    ));
    t
}

// ---------------------------------------------------------------------
// E5 — Lemma 6: parallel mean estimation.
// ---------------------------------------------------------------------

/// E5: mean-estimation batches vs `Õ(σ/(√p·ε))`, and the estimate error.
pub fn e5_parallel_mean(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5",
        "Lemma 6: parallel mean estimation",
        "batches = Õ(σ/(√p·ε)); |estimate − μ| ≤ ε w.p. 2/3",
        &["ε", "p", "b meas", "b theory", "max|err|/ε over runs"],
    );
    let runs = match scale {
        Scale::Quick => 6,
        Scale::Full => 20,
    };
    let k = 4000usize;
    let data: Vec<u64> = (0..k).map(|i| (i % 200) as u64).collect();
    let mu = data.iter().map(|&v| v as f64).sum::<f64>() / k as f64;
    let sigma = {
        let var = data.iter().map(|&v| (v as f64 - mu).powi(2)).sum::<f64>() / k as f64;
        var.sqrt()
    };
    let mut cells: Vec<(f64, usize)> = Vec::new();
    for &eps in &[8.0f64, 2.0, 0.5] {
        for &p in &[1usize, 16] {
            cells.push((eps, p));
        }
    }
    let measured = parallel_cells(&cells, |idx, &(eps, p)| {
        let mut rng = StdRng::seed_from_u64(cell_seed(5, idx));
        let mut sum = 0usize;
        let mut worst: f64 = 0.0;
        for _ in 0..runs {
            let mut src = VecSource::new(data.clone(), p);
            let out = pquery::mean::estimate_mean(&mut src, sigma, eps, &mut rng);
            sum += out.batches;
            worst = worst.max((out.estimate - mu).abs() / eps);
        }
        (sum as f64 / runs as f64, worst)
    });
    for (&(eps, p), &(meas, worst)) in cells.iter().zip(&measured) {
        t.row(vec![
            fmt_f(eps),
            p.to_string(),
            fmt_f(meas),
            fmt_f(pquery::complexity::mean_batches(sigma, eps, p)),
            fmt_f(worst),
        ]);
    }
    t.note("max|err|/ε ≤ 3 always; ≤ 1 in ≥ 2/3 of runs (Lemma 6's guarantee)".to_string());
    t
}

// ---------------------------------------------------------------------
// E6 — Lemma 10/11: meeting scheduling in CONGEST.
// ---------------------------------------------------------------------

/// E6: quantum vs classical meeting-scheduling rounds on a dumbbell of
/// hub distance `D`, sweeping `k`.
pub fn e6_meeting_scheduling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6",
        "Meeting scheduling (Lemmas 10–11)",
        "quantum Õ(√(kD)+D) vs classical Θ(k+D); classical LB Ω(k/log n + D)",
        &["k", "D", "quantum", "classical", "√(kD) bound", "classical LB", "q correct"],
    );
    let ks: &[usize] = match scale {
        Scale::Quick => &[256, 1024, 4096],
        Scale::Full => &[256, 1024, 4096, 16384],
    };
    let dlen = 12usize;
    let (g, _) = dumbbell(6, 6, dlen);
    let net = Network::new(&g);
    let d = g.diameter().unwrap() as usize;
    let n = g.n();
    let mut fits = Vec::new();
    for &k in ks {
        let inst = MeetingInstance::random(n, k, 0.3, k as u64);
        let q = quantum_meeting_scheduling(&net, &inst, 7).expect("quantum run");
        let c = classical_meeting_scheduling(&net, &inst, 7).expect("classical run");
        let ub = dqc_core::scheduling::quantum_upper_bound(k, d, n);
        let lb = dqc_core::scheduling::classical_lower_bound(k, d, n);
        fits.push((k as f64, q.rounds as f64));
        t.row(vec![
            k.to_string(),
            d.to_string(),
            q.rounds.to_string(),
            c.rounds.to_string(),
            fmt_f(ub),
            fmt_f(lb),
            (q.attendance == inst.best_attendance()).to_string(),
        ]);
    }
    t.note(format!(
        "log-log slope of quantum rounds vs k: {:.3} (theory 0.5; classical is 1.0)",
        loglog_slope(&fits)
    ));
    t
}

// ---------------------------------------------------------------------
// E7 — Lemmas 12–15: element distinctness in CONGEST.
// ---------------------------------------------------------------------

/// E7: quantum vs classical distributed-vector distinctness, sweeping `k`;
/// plus the between-nodes variant on a double star.
pub fn e7_distinctness(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7",
        "Element distinctness (Lemmas 12–15)",
        "quantum Õ(k^{2/3}D^{1/3}+D) vs classical Θ(k+D)",
        &["variant", "k", "D", "quantum", "classical", "k^{2/3}D^{1/3} bound", "pair ok"],
    );
    let ks: &[usize] = match scale {
        Scale::Quick => &[256, 1024],
        Scale::Full => &[256, 1024, 4096, 16384],
    };
    let (g, _) = dumbbell(5, 5, 10);
    let net = Network::new(&g);
    let d = g.diameter().unwrap() as usize;
    let n = g.n();
    let mut fits = Vec::new();
    for &k in ks {
        let inst = DistinctnessInstance::random(n, k, Some((k / 5, 4 * k / 5)), k as u64);
        let q = quantum_distinctness(&net, &inst, 11).expect("quantum");
        let c = classical_distinctness(&net, &inst, 11).expect("classical");
        let ub = dqc_core::distinctness::quantum_upper_bound(k, d, n, inst.n_bound);
        fits.push((k as f64, q.rounds as f64));
        let pair_ok = match q.pair {
            Some(p) => p == inst.true_pair().unwrap(),
            None => false,
        };
        t.row(vec![
            "vector".into(),
            k.to_string(),
            d.to_string(),
            q.rounds.to_string(),
            c.rounds.to_string(),
            fmt_f(ub),
            pair_ok.to_string(),
        ]);
    }
    // Between-nodes variant (Corollary 14) on the Lemma 15 topology.
    let g = double_star(12, 12);
    let net = Network::new(&g);
    let mut values: Vec<u64> = (0..g.n() as u64).map(|v| 500 + v).collect();
    values[20] = values[3];
    let q = quantum_distinctness_between_nodes(&net, &values, 4).expect("between nodes");
    t.row(vec![
        "between-nodes".into(),
        g.n().to_string(),
        g.diameter().unwrap().to_string(),
        q.rounds.to_string(),
        "-".into(),
        fmt_f(dqc_core::distinctness::quantum_upper_bound(g.n(), 3, g.n(), 600)),
        q.pair.map(|(i, j)| values[i] == values[j]).unwrap_or(false).to_string(),
    ]);
    t.note(format!(
        "log-log slope of quantum rounds vs k: {:.3} (theory 2/3 ≈ 0.667; classical is 1.0)",
        loglog_slope(&fits)
    ));
    t
}

// ---------------------------------------------------------------------
// E8 — Theorems 17–18: distributed Deutsch–Jozsa.
// ---------------------------------------------------------------------

/// E8: exact quantum vs exact classical Deutsch–Jozsa rounds, sweeping `k`
/// — the exponential separation.
pub fn e8_deutsch_jozsa(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8",
        "Distributed Deutsch–Jozsa (Theorems 17–18)",
        "quantum O(D·⌈log k/log n⌉) (exact!) vs classical exact Ω(k/log n + D)",
        &["k", "quantum", "classical exact", "classical LB", "both correct"],
    );
    let ks: &[usize] = match scale {
        Scale::Quick => &[64, 1024, 16384],
        Scale::Full => &[64, 1024, 16384, 131072],
    };
    let g = path(16);
    let net = Network::new(&g);
    let n = g.n();
    let d = g.diameter().unwrap() as usize;
    for &k in ks {
        let ans = if k % 2 == 0 { DjAnswer::Balanced } else { DjAnswer::Constant };
        let inst = DjInstance::random(n, k, ans, k as u64);
        let q = quantum_dj(&net, &inst, 5).expect("network").expect("promise");
        let c = classical_exact_dj(&net, &inst, 5).expect("classical");
        t.row(vec![
            k.to_string(),
            q.rounds.to_string(),
            c.rounds.to_string(),
            fmt_f(dqc_core::deutsch_jozsa::classical_lower_bound(k, d, n)),
            (q.answer == ans && c.answer == ans).to_string(),
        ]);
    }
    t.note("quantum rounds are flat in k (log-factor only): the exponential separation");
    t
}

// ---------------------------------------------------------------------
// E9 — Lemma 21: diameter and radius.
// ---------------------------------------------------------------------

/// E9: quantum `O(√(nD))` diameter/radius vs the classical `Θ(n)`
/// baseline, sweeping `n`.
pub fn e9_diameter_radius(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9",
        "Diameter & radius (Lemmas 20–21)",
        "quantum O(√(nD)) vs classical Θ(n + D)",
        &["n", "D", "q-diam rounds", "classical rounds", "√(nD) bound", "diam ok", "radius ok"],
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[100, 200, 400],
        Scale::Full => &[100, 200, 400, 800, 1600, 3200],
    };
    let mut fits = Vec::new();
    let mut qcurve = Vec::new();
    let mut ccurve = Vec::new();
    for &n in ns {
        let g = sized_graph(n, n as u64);
        let net = Network::new(&g);
        let d = g.diameter().unwrap();
        let q = quantum_diameter(&net, 9).expect("quantum diameter");
        let r = quantum_radius(&net, 9).expect("quantum radius");
        let (cd, cr, c_rounds, _) = classical_diameter_radius(&net, 9).expect("classical");
        assert_eq!(cd, d);
        assert_eq!(Some(cr), g.radius());
        let ub = dqc_core::eccentricity::quantum_upper_bound(n, d as usize);
        fits.push(((n as f64 * d as f64).sqrt(), q.rounds as f64));
        qcurve.push((n as f64, q.rounds as f64));
        ccurve.push((n as f64, c_rounds as f64));
        t.row(vec![
            n.to_string(),
            d.to_string(),
            q.rounds.to_string(),
            c_rounds.to_string(),
            fmt_f(ub),
            (q.value == d).to_string(),
            (Some(r.value) == g.radius()).to_string(),
        ]);
    }
    t.note(format!(
        "log-log slope of quantum rounds vs √(nD): {:.3} (theory 1.0)",
        loglog_slope(&fits)
    ));
    if let Some(x) = crossover_extrapolation(&qcurve, &ccurve) {
        t.note(format!(
            "quantum slope {:.2} vs classical slope {:.2}; curves cross at n ≈ {:.0} (extrapolated)",
            loglog_slope(&qcurve),
            loglog_slope(&ccurve),
            x
        ));
    }
    t
}

/// Extrapolate where two log-log-linear curves intersect (the crossover
/// size beyond which the flatter curve wins).
fn crossover_extrapolation(a: &[(f64, f64)], b: &[(f64, f64)]) -> Option<f64> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let sa = loglog_slope(a);
    let sb = loglog_slope(b);
    // Intercepts through the last point of each curve.
    let (xa, ya) = *a.last()?;
    let (xb, yb) = *b.last()?;
    let ia = ya.ln() - sa * xa.ln();
    let ib = yb.ln() - sb * xb.ln();
    if (sa - sb).abs() < 1e-9 {
        return None;
    }
    let lx = (ib - ia) / (sa - sb);
    let x = lx.exp();
    if x.is_finite() && x > 0.0 {
        Some(x)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// E10 — Lemma 22: average eccentricity.
// ---------------------------------------------------------------------

/// E10: `ε`-additive average eccentricity: rounds vs `D^{3/2}/ε`, error
/// within `ε`.
pub fn e10_average_eccentricity(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10",
        "Average eccentricity (Lemma 22)",
        "rounds = Õ(D^{3/2}/ε); error ≤ ε w.p. 2/3",
        &["graph", "D", "ε", "rounds", "Õ(D^{3/2}/ε) bound", "|err|", "ok"],
    );
    let graphs: Vec<(&str, Graph)> = match scale {
        Scale::Quick => vec![("grid 10×8", grid(10, 8))],
        Scale::Full => vec![("grid 10×8", grid(10, 8)), ("grid 20×12", grid(20, 12))],
    };
    for (name, g) in graphs {
        let truth = g.average_eccentricity().unwrap();
        let d = g.diameter().unwrap() as usize;
        let net = Network::new(&g);
        for &eps in &[4.0f64, 2.0, 1.0] {
            let res = quantum_average_eccentricity(&net, eps, 13).expect("avg ecc");
            let err = (res.estimate - truth).abs();
            t.row(vec![
                name.into(),
                d.to_string(),
                fmt_f(eps),
                res.rounds.to_string(),
                fmt_f(dqc_core::eccentricity::avg_ecc_upper_bound(d, eps)),
                fmt_f(err),
                (err <= 3.0 * eps).to_string(),
            ]);
        }
    }
    t.note("error ≤ 3ε always; ≤ ε with the lemma's probability");
    t
}

// ---------------------------------------------------------------------
// E11 — Lemmas 23 & 25: cycle detection.
// ---------------------------------------------------------------------

/// E11: cycle-of-length-≤k detection: Lemma 23, the clustered Lemma 25,
/// and the classical all-sources baseline, sweeping `n`.
pub fn e11_cycle_detection(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11",
        "Cycle detection (Lemmas 23, 25)",
        "quantum O(D + (Dn)^{1/2−1/(4⌈k/2⌉+2)}), clustered removes the D term",
        &["n", "girth", "k", "quantum", "clustered", "classical", "found"],
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[60, 120],
        Scale::Full => &[60, 120, 240, 480],
    };
    for &n in ns {
        let gl = 6usize;
        let g = cycle_with_body(gl, n - gl, n as u64);
        let net = Network::new(&g);
        let q = quantum_cycle_detection(&net, gl, 3).expect("lemma 23");
        let cl = quantum_cycle_detection_clustered(&net, gl, 3).expect("lemma 25");
        let c = classical_cycle_detection(&net, gl, 3).expect("classical");
        assert_eq!(c.length, Some(gl), "classical detector is exact");
        t.row(vec![
            format!("{n} (light)"),
            gl.to_string(),
            gl.to_string(),
            q.rounds.to_string(),
            cl.rounds.to_string(),
            c.rounds.to_string(),
            format!("{:?}/{:?}/{:?}", q.length, cl.length, c.length),
        ]);
    }
    // Heavy cycles: the cycle passes through a degree-Ω(n) hub, so the
    // classical truncated flood congests at the hub while the heavy-phase
    // minimum finding exploits the n^β-fold multiplicity.
    for &n in ns {
        let gl = 6usize;
        let g = congest::generators::hub_cycle(n, gl);
        let net = Network::new(&g);
        let q = quantum_cycle_detection(&net, gl, 5).expect("lemma 23 heavy");
        let c = classical_cycle_detection(&net, gl, 5).expect("classical heavy");
        t.row(vec![
            format!("{n} (heavy)"),
            gl.to_string(),
            gl.to_string(),
            q.rounds.to_string(),
            "-".into(),
            c.rounds.to_string(),
            format!("{:?}/-/{:?}", q.length, c.length),
        ]);
    }
    t.note("one-sided error: a reported length is always a real cycle length");
    t.note("heavy rows: the cycle passes through a degree-Ω(n) hub — the classical flood pays the hub congestion");
    t
}

// ---------------------------------------------------------------------
// E12 — Corollary 26: girth.
// ---------------------------------------------------------------------

/// E12: girth computation vs the classical baseline and the `Ω(√n)`
/// classical lower bound.
pub fn e12_girth(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12",
        "Girth (Corollary 26)",
        "quantum Õ(g + (gn)^{1/2−1/Θ(g)}) vs classical Ω(√n) LB / Θ(n) baseline",
        &["n", "girth", "quantum", "classical", "√n LB", "q girth", "c girth"],
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[60, 150],
        Scale::Full => &[60, 150, 400, 1000],
    };
    for &n in ns {
        let gl = 5usize;
        let g = cycle_with_body(gl, n - gl, 7 * n as u64);
        let net = Network::new(&g);
        let q = quantum_girth(&net, 0.5, 3).expect("quantum girth");
        let c = classical_girth(&net, 3).expect("classical girth");
        assert_eq!(c.girth, Some(gl));
        t.row(vec![
            n.to_string(),
            gl.to_string(),
            q.rounds.to_string(),
            c.rounds.to_string(),
            fmt_f(dqc_core::girth::classical_lower_bound(n)),
            format!("{:?}", q.girth),
            format!("{:?}", c.girth),
        ]);
    }
    t.note("quantum girth is one-sided: it never reports below the true girth");
    t
}

// ---------------------------------------------------------------------
// E13 — §6: amplitude amplification, phase & amplitude estimation.
// ---------------------------------------------------------------------

/// E13: non-oracle building blocks: measured rounds vs the §6 bounds.
pub fn e13_non_oracle(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13",
        "Non-oracle techniques (§6: Lemmas 27–29, Corollary 30)",
        "AA O((R+D)/√p·log(1/δ)); QPE O(R/ε·log(1/δ)+D); AE O((R+D)√p_max/ε·log(1/δ))",
        &["technique", "params", "rounds", "bound", "outcome"],
    );
    let g = grid(6, 5);
    let net = Network::new(&g);
    let d = g.diameter().unwrap() as usize;
    let runs = match scale {
        Scale::Quick => 1,
        Scale::Full => 3,
    };
    for r in 0..runs {
        for &p in &[0.04f64, 0.01] {
            let res = amplitude_amplification(&net, PreparationSubroutine::new(16, p), 0.1, r)
                .expect("AA");
            t.row(vec![
                "amp-amplification".into(),
                format!("p={p}, δ=0.1"),
                res.rounds.to_string(),
                fmt_f(dqc_core::amplification::amplification_upper_bound(d, d, p, 0.1)),
                format!("success={}", res.success),
            ]);
        }
        for &eps in &[0.05f64, 0.01] {
            let res = distributed_phase_estimation(&net, 0.271, 3, eps, 0.1, r).expect("QPE");
            t.row(vec![
                "phase-estimation".into(),
                format!("ε={eps}, R=3"),
                res.rounds.to_string(),
                fmt_f(dqc_core::estimation::phase_estimation_upper_bound(3, d, eps, 0.1)),
                format!("|φ̂−φ|={:.4}", (res.phi - 0.271).abs()),
            ]);
        }
        let res = distributed_amplitude_estimation(&net, 0.2, 0.5, 4, 0.05, 0.1, r).expect("AE");
        t.row(vec![
            "amp-estimation".into(),
            "p=0.2, ε=0.05".into(),
            res.rounds.to_string(),
            fmt_f(dqc_core::estimation::amplitude_estimation_upper_bound(4, d, 0.5, 0.05, 0.1)),
            format!("p̂={:.3}", res.estimate),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E14 — exact-mode validation.
// ---------------------------------------------------------------------

/// E14: statevector validation of Lemma 7 and Theorem 17 — fidelities must
/// be 1 and Deutsch–Jozsa outcomes deterministic.
pub fn e14_exact_mode(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E14",
        "Exact mode (statevector): Lemma 7 + Theorem 17",
        "distribute/gather fidelity = 1; distributed DJ outcome probability = 1",
        &["network", "q", "fidelity(dist)", "fidelity(roundtrip)", "DJ prob", "DJ ok"],
    );
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("path(4)", path(4), 0),
        ("star(5)", congest::generators::star(5), 0),
        ("tree(2,2)", congest::generators::balanced_tree(2, 2), 0),
        ("random-tree(6)", random_tree(6, 5), 2),
    ];
    let mut rng = StdRng::seed_from_u64(14);
    for (name, g, leader) in cases {
        let amps = vec![c64(s, 0.0), c64(0.0, -s), c64(0.0, 0.0), c64(0.0, 0.0)];
        let res = exact_distribute_roundtrip(&g, leader, amps).expect("exact roundtrip");
        // Distributed DJ with k = 4 on the same network.
        let n = g.n();
        let k = 4usize;
        let balanced = rng.gen_bool(0.5);
        let mut local = vec![vec![false; k]; n];
        if balanced {
            local[n - 1] = vec![true, false, true, false];
        } else {
            local[n - 1] = vec![true, true, true, true];
        }
        let dj = exact_distributed_dj(&g, leader, &local).expect("exact DJ");
        let want = if balanced { DjAnswer::Balanced } else { DjAnswer::Constant };
        t.row(vec![
            name.into(),
            "2".into(),
            format!("{:.9}", res.distribute_fidelity),
            format!("{:.9}", res.roundtrip_fidelity),
            format!("{:.9}", dj.outcome_probability),
            (dj.answer == want).to_string(),
        ]);
    }
    t.note("nothing emulated here: the full protocol runs on a global statevector");
    t
}

/// Run every experiment at the given scale, in order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        e1_distribute(scale),
        e2_parallel_grover(scale),
        e3_parallel_minimum(scale),
        e4_parallel_distinctness(scale),
        e5_parallel_mean(scale),
        e6_meeting_scheduling(scale),
        e7_distinctness(scale),
        e8_deutsch_jozsa(scale),
        e9_diameter_radius(scale),
        e10_average_eccentricity(scale),
        e11_cycle_detection(scale),
        e12_girth(scale),
        e13_non_oracle(scale),
        e14_exact_mode(scale),
        e15_batch_width_ablation(scale),
        e16_bandwidth_ablation(scale),
        e17_boosting(scale),
        e18_extensions(scale),
        e19_fault_tolerance(scale),
    ]
}

/// The experiment suite: `(id, one-line description)` for every id
/// [`run_one`] accepts, in numeric order. This is what `reproduce --list`
/// prints.
pub fn catalog() -> &'static [(&'static str, &'static str)] {
    &[
        ("e1", "Lemma 7: register distribution with pipelining vs store-and-forward"),
        ("e2", "Lemma 2: parallel Grover search query/batch accounting"),
        ("e3", "Lemma 3: parallel minimum finding (Dürr–Høyer)"),
        ("e4", "Lemma 5: parallel element distinctness (Johnson walk)"),
        ("e5", "Lemma 6: parallel mean estimation"),
        ("e6", "Meeting scheduling in CONGEST (Lemmas 10–11)"),
        ("e7", "Element distinctness in CONGEST (Lemmas 12–15)"),
        ("e8", "Distributed Deutsch–Jozsa (Theorems 17–18)"),
        ("e9", "Diameter & radius (Lemmas 20–21)"),
        ("e10", "Average eccentricity (Lemma 22)"),
        ("e11", "Cycle detection (Lemmas 23, 25)"),
        ("e12", "Girth (Corollary 26)"),
        ("e13", "Non-oracle techniques (§6: Lemmas 27–29, Corollary 30)"),
        ("e14", "Exact statevector mode: Lemma 7 + Theorem 17"),
        ("e15", "Ablation: batch width p (the paper picks p = Θ(D))"),
        ("e16", "Ablation: per-edge bandwidth cap c·⌈log n⌉"),
        ("e17", "Success boosting: 2/3 → 1 − n^(−c)"),
        ("e18", "Extensions: Bernstein–Vazirani, exact even cycles, counting"),
        ("e19", "Fault tolerance: seeded drops vs the Reliable ack/retry wrapper"),
    ]
}

/// Look up an experiment by id ("e1".."e19", case-insensitive).
pub fn run_one(id: &str, scale: Scale) -> Option<Table> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1_distribute(scale)),
        "e2" => Some(e2_parallel_grover(scale)),
        "e3" => Some(e3_parallel_minimum(scale)),
        "e4" => Some(e4_parallel_distinctness(scale)),
        "e5" => Some(e5_parallel_mean(scale)),
        "e6" => Some(e6_meeting_scheduling(scale)),
        "e7" => Some(e7_distinctness(scale)),
        "e8" => Some(e8_deutsch_jozsa(scale)),
        "e9" => Some(e9_diameter_radius(scale)),
        "e10" => Some(e10_average_eccentricity(scale)),
        "e11" => Some(e11_cycle_detection(scale)),
        "e12" => Some(e12_girth(scale)),
        "e13" => Some(e13_non_oracle(scale)),
        "e14" => Some(e14_exact_mode(scale)),
        "e15" => Some(e15_batch_width_ablation(scale)),
        "e16" => Some(e16_bandwidth_ablation(scale)),
        "e17" => Some(e17_boosting(scale)),
        "e18" => Some(e18_extensions(scale)),
        "e19" => Some(e19_fault_tolerance(scale)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// E15 — ablation: the batch width p.
// ---------------------------------------------------------------------

/// E15: sweep `p` for fixed meeting-scheduling instances. The paper sets
/// `p = Θ(D)`; too-small `p` wastes the network on idle waits (the
/// Le Gall–Magniez issue the framework fixes), too-large `p` pays the
/// `p·⌈log k/log n⌉` distribution term without reducing batches.
pub fn e15_batch_width_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15",
        "Ablation: batch width p (the paper picks p = Θ(D))",
        "rounds minimized near p = D; p = 1 degrades to sequential queries",
        &["p", "quantum rounds", "batches", "best slot ok"],
    );
    let (g, _) = dumbbell(6, 6, 12);
    let net = Network::new(&g);
    let d = g.diameter().unwrap() as usize;
    let k = match scale {
        Scale::Quick => 1024,
        Scale::Full => 4096,
    };
    let inst = MeetingInstance::random(g.n(), k, 0.3, 5);
    let best = inst.best_attendance();
    for p in [1usize, d / 2, d, 2 * d, 8 * d] {
        let p = p.max(1);
        // Re-run the Lemma 10 driver with an explicit p.
        let provider = dqc_core::framework::StoredValues::new(
            inst.availability.iter().map(|row| row.iter().map(|&b| b as u64).collect()).collect(),
            congest::graph::bits_for(g.n() as u64),
            congest::aggregate::CommOp::Sum,
        );
        let mut oracle =
            dqc_core::framework::CongestOracle::setup(&net, provider, p, 7).expect("setup");
        let mut rng = StdRng::seed_from_u64(77);
        let out =
            pquery::minimum::find_extremum(&mut oracle, pquery::minimum::Extremum::Max, &mut rng);
        t.row(vec![
            p.to_string(),
            oracle.rounds().to_string(),
            oracle.batches().to_string(),
            (out.value == best).to_string(),
        ]);
    }
    t.note(format!("D = {d}; the minimum sits near p = D, as Lemma 10 prescribes"));
    t
}

// ---------------------------------------------------------------------
// E16 — ablation: the bandwidth cap.
// ---------------------------------------------------------------------

/// E16: sweep the per-edge bandwidth factor `c` (cap = c·⌈log n⌉). The
/// model grants O(log n); halving it should roughly double register
/// streaming times, confirming the ⌈q/log n⌉ factors.
pub fn e16_bandwidth_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16",
        "Ablation: per-edge bandwidth cap c·⌈log n⌉",
        "round counts carry the ⌈q/log n⌉ streaming factor of Lemma 7/Theorem 8",
        &["c", "cap bits", "DJ quantum rounds", "scheduling rounds"],
    );
    let g = path(16);
    let k = match scale {
        Scale::Quick => 1024,
        Scale::Full => 4096,
    };
    let dj = DjInstance::random(16, k, DjAnswer::Balanced, 3);
    let meet = MeetingInstance::random(16, 256, 0.3, 3);
    // c must cover the fixed protocol headers (a message carries up to two
    // ids plus tags), so the sweep starts at 3.
    for c in [3u64, 4, 8, 16] {
        let cap = c * congest::graph::bits_for(15);
        let net = Network::new(&g).with_bandwidth(cap);
        let djr = quantum_dj(&net, &dj, 5).expect("dj").expect("promise");
        let mr = quantum_meeting_scheduling(&net, &meet, 5).expect("scheduling");
        t.row(vec![c.to_string(), cap.to_string(), djr.rounds.to_string(), mr.rounds.to_string()]);
    }
    t.note("shrinking c inflates the streaming-dominated phases by the ⌈q/cap⌉ factor");
    t
}

// ---------------------------------------------------------------------
// E17 — boosting (the paper's conventions note).
// ---------------------------------------------------------------------

/// E17: success boosting to `1 − n^{−c}`: reliability and cost of the
/// `O(log n)`-repetition combiner.
pub fn e17_boosting(scale: Scale) -> Table {
    let mut t = Table::new(
        "E17",
        "Success boosting (conventions note: 2/3 → 1 − n^{-c})",
        "reps = ⌈c·ln n/ln 3⌉; one-sided combine never hurts soundness",
        &["c", "reps", "success rate", "rounds (vs single)"],
    );
    let g = sized_graph(80, 4);
    let truth = g.diameter().unwrap();
    let net = Network::new(&g);
    let trials = match scale {
        Scale::Quick => 4,
        Scale::Full => 10,
    };
    let single = dqc_core::eccentricity::quantum_diameter(&net, 0).expect("diameter").rounds;
    for c in [0.5f64, 1.0, 2.0] {
        let mut hits = 0;
        let mut rounds = 0;
        let mut reps = 0;
        for seed in 0..trials {
            let res = dqc_core::boosting::boosted_diameter(&net, c, seed as u64).expect("boosted");
            hits += (res.value == truth) as usize;
            rounds += res.rounds;
            reps = res.repetitions;
        }
        t.row(vec![
            format!("{c}"),
            reps.to_string(),
            format!("{hits}/{trials}"),
            format!("{} ({}x)", rounds / trials, rounds / trials / single.max(1)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E18 — extensions: Bernstein–Vazirani, exact even cycles, counting.
// ---------------------------------------------------------------------

/// E18: the extension modules — distributed Bernstein–Vazirani (another
/// exact separation), exact even-cycle detection (§5.2 closing remark),
/// and quantum counting.
pub fn e18_extensions(scale: Scale) -> Table {
    let mut t = Table::new(
        "E18",
        "Extensions: Bernstein–Vazirani, exact even cycles, counting",
        "BV: O(D + m/log n) exact vs Θ(m) classical; C_k-exact one-sided; counting Õ(√D·k/ε)",
        &["experiment", "params", "quantum", "classical", "outcome"],
    );
    // Bernstein–Vazirani sweep over m.
    let g = path(12);
    let net = Network::new(&g);
    let ms: &[usize] = match scale {
        Scale::Quick => &[64, 1024],
        Scale::Full => &[64, 1024, 16384],
    };
    for &m in ms {
        let hidden: Vec<bool> = (0..m).map(|i| i % 7 == 0).collect();
        let inst = dqc_core::bernstein_vazirani::BvInstance::random(12, &hidden, m as u64);
        let q = dqc_core::bernstein_vazirani::quantum_bv(&net, &inst, 3).expect("bv");
        let c = dqc_core::bernstein_vazirani::classical_exact_bv(&net, &inst, 3).expect("bv");
        t.row(vec![
            "bernstein-vazirani".into(),
            format!("m={m}"),
            q.rounds.to_string(),
            c.rounds.to_string(),
            format!("exact={}", q.recovered == hidden && c.recovered == hidden),
        ]);
    }
    // Exact even cycles on grids (C4) and hypercubes (C6).
    let g = grid(6, 6);
    let net = Network::new(&g);
    let r = dqc_core::even_cycles::quantum_exact_even_cycle(&net, 4, 2).expect("C4");
    t.row(vec![
        "exact-C4".into(),
        "grid 6×6".into(),
        r.rounds.to_string(),
        "-".into(),
        format!("found={}", r.found),
    ]);
    let g = congest::generators::cycle(12);
    let net = Network::new(&g);
    let r = dqc_core::even_cycles::quantum_exact_even_cycle(&net, 6, 2).expect("C6");
    t.row(vec![
        "exact-C6".into(),
        "C12 (no C6)".into(),
        r.rounds.to_string(),
        "-".into(),
        format!("found={}", r.found),
    ]);
    // Distributed Simon: bounded-error exponential query separation.
    let g = path(8);
    let net = Network::new(&g);
    let ms: &[usize] = match scale {
        Scale::Quick => &[8, 10],
        Scale::Full => &[8, 10, 12, 14],
    };
    for &m in ms {
        let s_hidden = 1u64 << (m - 1) | 1;
        let inst = dqc_core::simon::SimonInstance::random(8, m, s_hidden, m as u64);
        let q = dqc_core::simon::quantum_simon(&net, &inst, 3).expect("simon");
        let c = dqc_core::simon::classical_birthday_simon(&net, &inst, 3).expect("simon");
        t.row(vec![
            "simon".into(),
            format!("m={m} (2^m={})", 1usize << m),
            format!("{} queries", q.queries),
            format!("{} queries", c.queries),
            format!("shift ok={}", q.shift == Some(s_hidden) && c.shift == Some(s_hidden)),
        ]);
    }
    // Quantum counting of quorum slots.
    let (g, _) = dumbbell(4, 4, 6);
    let net = Network::new(&g);
    let k = match scale {
        Scale::Quick => 1000,
        Scale::Full => 4000,
    };
    let inst = MeetingInstance::random(g.n(), k, 0.5, 11);
    let want = inst.attendance().iter().filter(|&&a| a >= 8).count() as f64;
    let eps = k as f64 / 10.0;
    let q =
        dqc_core::counting::quantum_count_quorum_slots(&net, &inst, 8, eps, 2).expect("counting");
    let c = dqc_core::counting::classical_count_quorum_slots(&net, &inst, 8, 2).expect("counting");
    t.row(vec![
        "quorum-counting".into(),
        format!("k={k}, ε={eps}"),
        q.rounds.to_string(),
        c.rounds.to_string(),
        format!(
            "err={:.0} (≤ε={eps}: {})",
            (q.estimate - want).abs(),
            (q.estimate - want).abs() <= eps
        ),
    ]);
    t
}

// ---------------------------------------------------------------------
// E19 — fault tolerance: Reliable-wrapped protocols under message loss.
// ---------------------------------------------------------------------

/// E19: the fault-injection subsystem end to end. Sweep the per-message
/// drop rate and compare each protocol's fault-free round count against
/// its `Reliable`-wrapped run under loss; correctness must hold at every
/// rate and the ack/retry overhead stay bounded. The note records the
/// conformance/differential sweep: every cell audited under both engines.
pub fn e19_fault_tolerance(scale: Scale) -> Table {
    use crate::harness::bfs_tree_is_valid;
    use congest::bfs::BfsTreeProtocol;
    use congest::conformance::FloodProtocol;
    use congest::faults::{FaultPlan, Reliable, RetryConfig};
    use congest::tree_comm::BroadcastRegisterProtocol;

    let mut t = Table::new(
        "E19",
        "Fault tolerance: seeded drops vs the Reliable ack/retry wrapper",
        "wrapped protocols stay correct at ≥10% loss; overhead = acks + retransmits",
        &[
            "protocol",
            "graph",
            "drop %",
            "clean rounds",
            "reliable rounds",
            "overhead ×",
            "dropped",
            "correct",
        ],
    );
    let rates: &[f64] = match scale {
        Scale::Quick => &[0.0, 0.1, 0.2],
        Scale::Full => &[0.0, 0.05, 0.1, 0.2, 0.3],
    };
    let topologies: Vec<(&str, Graph)> =
        vec![("grid(6x5)", grid(6, 5)), ("random(48)", sized_graph(48, 9))];
    let retry = RetryConfig::default();
    // A 48-bit register in 6-bit chunks: a Reliable data frame plus a
    // piggybacked ack fits the caps of both topologies.
    let reg = Register::from_value(48, 0x0BAD_CAFE_F00D);
    let chunk = 6u64;
    for (gname, g) in &topologies {
        let clean_net = Network::new(g);
        let views = congest::bfs::build_bfs_tree(&clean_net, 0).expect("connected").views;
        let flood_clean = clean_net.run(FloodProtocol::instances(g.n(), 0)).expect("flood");
        let bfs_clean = clean_net.run(BfsTreeProtocol::instances(g.n(), 0)).expect("bfs");
        let bcast_clean = clean_net
            .run(BroadcastRegisterProtocol::instances(
                &views,
                reg.clone(),
                chunk,
                Schedule::Pipelined,
            ))
            .expect("broadcast");
        for &rate in rates {
            let plan = FaultPlan::new(19).with_drop_rate(rate);
            let net = Network::new(g).with_faults(plan);

            let run = net
                .run(Reliable::wrap_all(FloodProtocol::instances(g.n(), 0), retry))
                .expect("reliable flood");
            let ok = run.nodes.iter().all(|r| r.inner().has_token);
            t.row(vec![
                "flood".into(),
                gname.to_string(),
                format!("{:.0}", rate * 100.0),
                flood_clean.stats.rounds.to_string(),
                run.stats.rounds.to_string(),
                fmt_f(run.stats.rounds as f64 / flood_clean.stats.rounds as f64),
                run.stats.dropped.to_string(),
                ok.to_string(),
            ]);

            let run = net
                .run(Reliable::wrap_all(BfsTreeProtocol::instances(g.n(), 0), retry))
                .expect("reliable bfs");
            let outcome: Vec<_> = run
                .nodes
                .iter()
                .map(|r| (r.inner().dist(), r.inner().tree_view().parent))
                .collect();
            let ok = bfs_tree_is_valid(g, 0, &outcome);
            t.row(vec![
                "bfs".into(),
                gname.to_string(),
                format!("{:.0}", rate * 100.0),
                bfs_clean.stats.rounds.to_string(),
                run.stats.rounds.to_string(),
                fmt_f(run.stats.rounds as f64 / bfs_clean.stats.rounds as f64),
                run.stats.dropped.to_string(),
                ok.to_string(),
            ]);

            let run = net
                .run(Reliable::wrap_all(
                    BroadcastRegisterProtocol::instances(
                        &views,
                        reg.clone(),
                        chunk,
                        Schedule::Pipelined,
                    ),
                    retry,
                ))
                .expect("reliable broadcast");
            let ok = run.nodes.iter().all(|r| r.inner().register() == &reg);
            t.row(vec![
                "broadcast".into(),
                gname.to_string(),
                format!("{:.0}", rate * 100.0),
                bcast_clean.stats.rounds.to_string(),
                run.stats.rounds.to_string(),
                fmt_f(run.stats.rounds as f64 / bcast_clean.stats.rounds as f64),
                run.stats.dropped.to_string(),
                ok.to_string(),
            ]);
        }
    }
    let cells = crate::harness::differential_grid(19);
    let violations: usize = cells.iter().map(|c| c.violations).sum();
    let max_delta = cells.iter().map(|c| c.rounds_delta.abs()).max().unwrap_or(0);
    let all_correct = cells.iter().all(|c| c.correct);
    t.note(format!(
        "differential sweep: {} cells ({{Sequential, Parallel}} × {{fault-free, faulted}}), \
         {violations} conformance violations, max engine rounds delta {max_delta}, all correct: {all_correct}",
        cells.len()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_smoke_e1_e5() {
        for id in ["e1", "e2", "e3", "e4", "e5"] {
            let t = run_one(id, Scale::Quick).unwrap();
            assert!(!t.rows.is_empty(), "{id} produced no rows");
        }
    }

    #[test]
    fn quick_smoke_e14() {
        let t = e14_exact_mode(Scale::Quick);
        for row in &t.rows {
            assert!(row[2].starts_with("1.0") || row[2].starts_with("0.9999"));
            assert_eq!(row[5], "true");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_one("e99", Scale::Quick).is_none());
    }

    #[test]
    fn catalog_covers_the_suite_in_order() {
        let ids: Vec<String> = (1..=19).map(|i| format!("e{i}")).collect();
        assert_eq!(catalog().iter().map(|(id, _)| *id).collect::<Vec<_>>(), ids);
        for (id, what) in catalog() {
            assert!(!what.is_empty(), "{id} has no description");
            assert!(!what.contains('\n'), "{id} description is not one line");
        }
    }

    #[test]
    fn every_catalog_id_has_a_telemetry_collector() {
        // `reproduce --telemetry` exits nonzero on an uncollectable id, so
        // the collector match must keep covering the whole catalog.
        for (id, _) in catalog() {
            assert!(crate::telemetry::collect(id, Scale::Quick).is_some(), "{id} uncollectable");
        }
    }
}
