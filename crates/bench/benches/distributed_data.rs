//! E6–E8 bench: the distributed-data applications end to end.

use congest::generators::dumbbell;
use congest::runtime::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqc_core::deutsch_jozsa::{quantum_dj, DjInstance};
use dqc_core::distinctness::{quantum_distinctness, DistinctnessInstance};
use dqc_core::scheduling::{
    classical_meeting_scheduling, quantum_meeting_scheduling, MeetingInstance,
};
use pquery::deutsch_jozsa::DjAnswer;

fn bench_distributed_data(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_data");
    group.sample_size(10);
    let (g, _) = dumbbell(5, 5, 10);
    let n = g.n();
    let net = Network::new(&g);

    for k in [256usize, 1024] {
        let inst = MeetingInstance::random(n, k, 0.3, k as u64);
        group.bench_with_input(BenchmarkId::new("scheduling_quantum", k), &k, |b, _| {
            b.iter(|| quantum_meeting_scheduling(&net, &inst, 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scheduling_classical", k), &k, |b, _| {
            b.iter(|| classical_meeting_scheduling(&net, &inst, 7).unwrap())
        });
    }

    let dinst = DistinctnessInstance::random(n, 512, Some((50, 400)), 3);
    group.bench_function("distinctness_quantum_k512", |b| {
        b.iter(|| quantum_distinctness(&net, &dinst, 5).unwrap())
    });

    let dj = DjInstance::random(n, 1024, DjAnswer::Balanced, 9);
    group.bench_function("deutsch_jozsa_quantum_k1024", |b| {
        b.iter(|| quantum_dj(&net, &dj, 5).unwrap().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_distributed_data);
criterion_main!(benches);
