//! E2–E5 bench: the Section 2 parallel-query algorithms (batch emulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pquery::minimum::Extremum;
use pquery::oracle::VecSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_parallel_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_query");
    group.sample_size(10);
    for p in [1usize, 16] {
        group.bench_with_input(BenchmarkId::new("grover_one_k4096", p), &p, |b, &p| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut data = vec![0u64; 4096];
                data[1234] = 1;
                let mut src = VecSource::new(data, p);
                pquery::grover::search_one(&mut src, &|v| v != 0, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("minimum_k4096", p), &p, |b, &p| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let data: Vec<u64> = (0..4096u64).map(|i| (i * 48271) % 99991).collect();
                let mut src = VecSource::new(data, p);
                pquery::minimum::find_extremum(&mut src, Extremum::Min, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("distinctness_k2048", p), &p, |b, &p| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut data: Vec<u64> = (0..2048u64).map(|i| 5000 + i).collect();
                data[1700] = data[100];
                let mut src = VecSource::new(data, p);
                pquery::distinctness::element_distinctness(&mut src, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("mean_k4000", p), &p, |b, &p| {
            let mut rng = StdRng::seed_from_u64(4);
            let data: Vec<u64> = (0..4000).map(|i| (i % 100) as u64).collect();
            b.iter(|| {
                let mut src = VecSource::new(data.clone(), p);
                pquery::mean::estimate_mean(&mut src, 30.0, 1.0, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_query);
criterion_main!(benches);
