//! E1 bench: Lemma 7 register distribution — pipelined vs store-and-forward.

use congest::bfs::build_bfs_tree;
use congest::generators::path;
use congest::runtime::Network;
use congest::tree_comm::{distribute_register, Register, Schedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_distribute(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma7_distribute");
    group.sample_size(10);
    for (d, q) in [(16usize, 256u64), (64, 1024)] {
        let g = path(d + 1);
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        group.bench_with_input(
            BenchmarkId::new("pipelined", format!("D{d}_q{q}")),
            &(d, q),
            |b, _| {
                b.iter(|| {
                    distribute_register(&net, &tree.views, Register::zeros(q), Schedule::Pipelined)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("store_and_forward", format!("D{d}_q{q}")),
            &(d, q),
            |b, _| {
                b.iter(|| {
                    distribute_register(
                        &net,
                        &tree.views,
                        Register::zeros(q),
                        Schedule::StoreAndForward,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distribute);
criterion_main!(benches);
