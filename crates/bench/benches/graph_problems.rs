//! E9–E12 bench: the graph applications end to end.

use congest::generators::{cycle_with_body, grid, random_connected_m};
use congest::runtime::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqc_core::cycles::quantum_cycle_detection;
use dqc_core::eccentricity::{
    classical_diameter_radius, quantum_average_eccentricity, quantum_diameter,
};
use dqc_core::girth::quantum_girth;

fn bench_graph_problems(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_problems");
    group.sample_size(10);
    for n in [100usize, 200] {
        let g = random_connected_m(n, n + n / 2, n as u64);
        let net = Network::new(&g);
        group.bench_with_input(BenchmarkId::new("diameter_quantum", n), &n, |b, _| {
            b.iter(|| quantum_diameter(&net, 9).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("diameter_classical", n), &n, |b, _| {
            b.iter(|| classical_diameter_radius(&net, 9).unwrap())
        });
    }

    let g = grid(10, 8);
    let net = Network::new(&g);
    group.bench_function("avg_ecc_eps1_grid10x8", |b| {
        b.iter(|| quantum_average_eccentricity(&net, 1.0, 13).unwrap())
    });

    let g = cycle_with_body(6, 94, 4);
    let net = Network::new(&g);
    group.bench_function("cycle_detect_k6_n100", |b| {
        b.iter(|| quantum_cycle_detection(&net, 6, 3).unwrap())
    });
    group.bench_function("girth_n100", |b| b.iter(|| quantum_girth(&net, 0.5, 3).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_graph_problems);
criterion_main!(benches);
