//! Statevector kernel benchmarks: the strided, fused fast path against the
//! seed's branch-per-index reference scans, on the two kernels the paper's
//! experiments lean on hardest — the Grover iterate (Lemma 2's sequential
//! core) and the inverse QFT (Lemma 29's phase-estimation readout).
//!
//! Cells:
//!
//! * `reference/*` — seed loops from `qsim::reference`, gate by gate;
//! * `fast/*` — strided kernels + gate fusion, thread cap 1 (isolates the
//!   single-threaded strided+fusion win);
//! * `fast_mt/*` — same with the automatic thread policy (engages only for
//!   n ≥ 18 on multi-core hosts; identical to `fast` on one core).
//!
//! `BENCH_qsim.json` at the repo root records the medians; regen with:
//!
//! ```text
//! CRITERION_JSON_OUT=/tmp/qsim.json cargo bench -p dqc-bench --bench qsim
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::complex::C64;
use qsim::grover::grover_iterate;
use qsim::kernels::set_thread_cap;
use qsim::qft::iqft_circuit;
use qsim::reference;
use qsim::state::State;
use std::f64::consts::PI;

const SIZES: [usize; 2] = [8, 20];

/// Uniform superposition as a raw amplitude vector (reference cells).
fn uniform_amps(n: usize) -> Vec<C64> {
    let a = 1.0 / ((1usize << n) as f64).sqrt();
    vec![C64 { re: a, im: 0.0 }; 1 << n]
}

/// Uniform superposition as a [`State`] (fast cells).
fn uniform_state(n: usize) -> State {
    let mut s = State::zero(n);
    s.h_all(0..n);
    s
}

/// One Grover iterate through the seed's scans: phase oracle, H-all,
/// zero-state flip, H-all — every pass a full-scan branch-per-index loop.
fn reference_grover_iterate(amps: &mut [C64], n: usize, target: usize) {
    reference::apply_phase_fn(amps, |x| if x == target { PI } else { 0.0 });
    for q in 0..n {
        reference::h(amps, q);
    }
    reference::apply_phase_fn(amps, |x| if x == 0 { PI } else { 0.0 });
    for q in 0..n {
        reference::h(amps, q);
    }
}

/// The inverse QFT through the seed's scans, gate by gate (swaps as CNOT
/// triples, one controlled-phase pass per gate).
fn reference_iqft(amps: &mut [C64], n: usize) {
    for i in 0..n / 2 {
        let (a, b) = (i, n - 1 - i);
        reference::cnot(amps, a, b);
        reference::cnot(amps, b, a);
        reference::cnot(amps, a, b);
    }
    for i in 0..n {
        for j in 0..i {
            reference::cphase(amps, j, i, -PI / (1 << (i - j)) as f64);
        }
        reference::h(amps, i);
    }
}

fn bench_grover_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsim_grover_iteration");
    group.sample_size(10);
    for n in SIZES {
        let target = (1usize << n) - 3;
        let mut amps = uniform_amps(n);
        group.bench_with_input(BenchmarkId::new("reference", format!("n{n}")), &n, |b, &n| {
            b.iter(|| reference_grover_iterate(&mut amps, n, target))
        });
        set_thread_cap(1);
        let mut s = uniform_state(n);
        group.bench_with_input(BenchmarkId::new("fast", format!("n{n}")), &n, |b, &n| {
            b.iter(|| grover_iterate(&mut s, n, 1 << n, &|i| i == target))
        });
        set_thread_cap(usize::MAX);
        let mut s = uniform_state(n);
        group.bench_with_input(BenchmarkId::new("fast_mt", format!("n{n}")), &n, |b, &n| {
            b.iter(|| grover_iterate(&mut s, n, 1 << n, &|i| i == target))
        });
    }
    group.finish();
}

fn bench_iqft(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsim_iqft");
    group.sample_size(10);
    for n in SIZES {
        let qubits: Vec<usize> = (0..n).collect();
        let fused = iqft_circuit(&qubits).fuse();
        let mut amps = uniform_amps(n);
        group.bench_with_input(BenchmarkId::new("reference", format!("n{n}")), &n, |b, &n| {
            b.iter(|| reference_iqft(&mut amps, n))
        });
        set_thread_cap(1);
        let mut s = uniform_state(n);
        group.bench_with_input(BenchmarkId::new("fast", format!("n{n}")), &n, |b, _| {
            b.iter(|| fused.apply(&mut s))
        });
        set_thread_cap(usize::MAX);
        let mut s = uniform_state(n);
        group.bench_with_input(BenchmarkId::new("fast_mt", format!("n{n}")), &n, |b, _| {
            b.iter(|| fused.apply(&mut s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grover_iteration, bench_iqft);
criterion_main!(benches);
