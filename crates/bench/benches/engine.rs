//! Engine micro-benchmarks: the round loop itself, isolated from any
//! quantum protocol logic.
//!
//! Three engine-bound workloads (token flood, repeated broadcast, BFS tree
//! construction) across four topologies (path, grid, bounded-degree random,
//! hub star) at n ∈ {64, 512, 4096}. `BENCH_engine.json` at the repo root
//! records before/after medians for the zero-alloc routing rewrite; regen
//! with:
//!
//! ```text
//! CRITERION_JSON_OUT=/tmp/engine.json cargo bench -p dqc-bench --bench engine
//! ```

use congest::bfs::BfsTreeProtocol;
use congest::generators::{grid, path, random_connected_m, star};
use congest::graph::{Graph, NodeId};
use congest::runtime::{Ctx, MessageSize, Network, NodeProtocol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A one-bit token flooded outward from node 0.
#[derive(Clone, Debug)]
struct Token;

impl MessageSize for Token {
    fn size_bits(&self) -> u64 {
        1
    }
}

#[derive(Debug)]
struct Flood {
    has_token: bool,
    forwarded: bool,
}

impl NodeProtocol for Flood {
    type Msg = Token;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Token>, inbox: &[(NodeId, Token)]) {
        if !inbox.is_empty() {
            self.has_token = true;
        }
        if self.has_token && !self.forwarded {
            ctx.broadcast(Token);
            self.forwarded = true;
        }
    }
    fn is_done(&self) -> bool {
        self.forwarded
    }
}

fn flood_nodes(n: usize) -> Vec<Flood> {
    (0..n).map(|v| Flood { has_token: v == 0, forwarded: false }).collect()
}

/// A 16-bit value broadcast by every node in every one of `rounds` rounds —
/// the delivery-path stress test (all cost is in routing and accounting).
#[derive(Clone, Debug)]
struct Beacon(u16);

impl MessageSize for Beacon {
    fn size_bits(&self) -> u64 {
        16
    }
}

#[derive(Debug)]
struct Chatter {
    rounds_left: usize,
    heard: u64,
}

impl NodeProtocol for Chatter {
    type Msg = Beacon;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Beacon>, inbox: &[(NodeId, Beacon)]) {
        for (_, beacon) in inbox {
            self.heard = self.heard.wrapping_add(beacon.0 as u64);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.broadcast(Beacon(ctx.round() as u16));
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

fn chatter_nodes(n: usize, rounds: usize) -> Vec<Chatter> {
    (0..n).map(|_| Chatter { rounds_left: rounds, heard: 0 }).collect()
}

const CHATTER_ROUNDS: usize = 8;

fn topologies(n: usize) -> Vec<(&'static str, Graph)> {
    let side = (n as f64).sqrt().round() as usize;
    vec![
        ("path", path(n)),
        ("grid", grid(side, n / side)),
        ("random", random_connected_m(n, 4 * n, 0xBE ^ n as u64)),
        ("star", star(n)),
    ]
}

fn bench_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_flood");
    group.sample_size(10);
    for n in [64usize, 512, 4096] {
        for (name, g) in topologies(n) {
            // The grid rounds n to side·rows; size protocols off the graph.
            let nn = g.n();
            let net = Network::new(&g);
            group.bench_with_input(BenchmarkId::new(name, format!("n{n}")), &nn, |b, &nn| {
                b.iter(|| net.run(flood_nodes(nn)).unwrap().stats)
            });
        }
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_broadcast");
    group.sample_size(10);
    for n in [64usize, 512, 4096] {
        for (name, g) in topologies(n) {
            // The star hub would exceed any per-edge cap only if a single
            // edge carried more than one beacon per round; it does not, but
            // the default cap (4⌈log n⌉) is below the 16-bit beacon on tiny
            // n, so raise the cap uniformly.
            let nn = g.n();
            let net = Network::new(&g).with_bandwidth(64);
            group.bench_with_input(BenchmarkId::new(name, format!("n{n}")), &nn, |b, &nn| {
                b.iter(|| net.run(chatter_nodes(nn, CHATTER_ROUNDS)).unwrap().stats)
            });
        }
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_bfs");
    group.sample_size(10);
    for n in [64usize, 512, 4096] {
        for (name, g) in topologies(n) {
            if name == "path" && n > 512 {
                // BFS over a length-n path is n rounds of mostly idle
                // nodes — minutes of wall-clock for no extra signal.
                continue;
            }
            let nn = g.n();
            let net = Network::new(&g);
            group.bench_with_input(BenchmarkId::new(name, format!("n{n}")), &nn, |b, &nn| {
                b.iter(|| net.run(BfsTreeProtocol::instances(nn, 0)).unwrap().stats)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flood, bench_broadcast, bench_bfs);
criterion_main!(benches);
