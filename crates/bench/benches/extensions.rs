//! E15–E18 bench: ablations and extensions.

use congest::generators::{grid, path};
use congest::runtime::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqc_core::bernstein_vazirani::{quantum_bv, BvInstance};
use dqc_core::boosting::boosted_diameter;
use dqc_core::simon::{quantum_simon, SimonInstance};

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    let g = path(10);
    let net = Network::new(&g);
    for m in [256usize, 2048] {
        let hidden: Vec<bool> = (0..m).map(|i| i % 5 == 0).collect();
        let inst = BvInstance::random(10, &hidden, m as u64);
        group.bench_with_input(BenchmarkId::new("bernstein_vazirani", m), &m, |b, _| {
            b.iter(|| quantum_bv(&net, &inst, 3).unwrap())
        });
    }

    let sg = grid(3, 3);
    let snet = Network::new(&sg);
    let sinst = SimonInstance::random(9, 10, 0b1000000011, 4);
    group.bench_function("simon_m10", |b| b.iter(|| quantum_simon(&snet, &sinst, 5).unwrap()));

    let bg = grid(5, 4);
    let bnet = Network::new(&bg);
    group.bench_function("boosted_diameter_c1", |b| {
        b.iter(|| boosted_diameter(&bnet, 1.0, 2).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
