//! E13–E14 bench: §6 building blocks and the exact statevector mode.

use congest::generators::{grid, path};
use congest::runtime::Network;
use criterion::{criterion_group, criterion_main, Criterion};
use dqc_core::amplification::{amplitude_amplification, PreparationSubroutine};
use dqc_core::estimation::{distributed_amplitude_estimation, distributed_phase_estimation};
use dqc_core::exact::{exact_distribute_roundtrip, exact_distributed_dj};
use qsim::complex::{c64, C64};

fn bench_non_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("non_oracle");
    group.sample_size(10);
    let g = grid(5, 4);
    let net = Network::new(&g);

    group.bench_function("amplitude_amplification_p0.01", |b| {
        b.iter(|| {
            amplitude_amplification(&net, PreparationSubroutine::new(16, 0.01), 0.1, 1).unwrap()
        })
    });
    group.bench_function("phase_estimation_eps0.02", |b| {
        b.iter(|| distributed_phase_estimation(&net, 0.271, 3, 0.02, 0.1, 1).unwrap())
    });
    group.bench_function("amplitude_estimation_eps0.05", |b| {
        b.iter(|| distributed_amplitude_estimation(&net, 0.2, 0.5, 4, 0.05, 0.1, 1).unwrap())
    });

    let pg = path(5);
    group.bench_function("exact_lemma7_roundtrip_5x2q", |b| {
        let s = 0.5f64.sqrt();
        b.iter(|| {
            exact_distribute_roundtrip(&pg, 0, vec![c64(s, 0.0), C64::ZERO, C64::ZERO, c64(0.0, s)])
                .unwrap()
        })
    });
    group.bench_function("exact_distributed_dj_4nodes_k4", |b| {
        let mut local = vec![vec![false; 4]; 5];
        local[2] = vec![true, false, true, false];
        b.iter(|| exact_distributed_dj(&pg, 0, &local).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_non_oracle);
criterion_main!(benches);
