//! Cross-crate integration: the Theorem 8 framework end to end — pquery
//! algorithms driving real congest protocols through dqc-core's oracle.

use congest::aggregate::CommOp;
use congest::generators::{balanced_tree, grid, path, random_connected, star};
use congest::runtime::Network;
use dqc_core::framework::{theorem8_rounds, CongestOracle, StoredValues};
use pquery::grover::{search_all, search_one};
use pquery::minimum::{find_extremum, Extremum};
use pquery::oracle::BatchSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn xor_instance(n: usize, k: usize, marked: &[usize], seed: u64) -> StoredValues {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut local: Vec<Vec<u64>> =
        (0..n).map(|_| (0..k).map(|_| rng.gen_range(0..2u64)).collect()).collect();
    for j in 0..k {
        let parity = local.iter().map(|v| v[j]).fold(0, |a, b| a ^ b);
        local[0][j] ^= parity; // aggregate 0 everywhere
    }
    for &m in marked {
        local[0][m] ^= 1;
    }
    StoredValues::new(local, 1, CommOp::Xor)
}

#[test]
fn grover_through_network_on_many_topologies() {
    let mut rng = StdRng::seed_from_u64(5);
    let graphs =
        vec![path(12), star(9), grid(4, 4), balanced_tree(2, 3), random_connected(18, 0.15, 1)];
    let mut hits = 0;
    let mut total = 0;
    for g in &graphs {
        let n = g.n();
        let provider = xor_instance(n, 96, &[41], 7);
        let net = Network::new(g);
        let mut oracle = CongestOracle::setup(&net, provider, 1, 3).unwrap();
        let p = oracle.suggested_p();
        oracle.set_p(p);
        total += 1;
        if search_one(&mut oracle, &|v| v == 1, &mut rng).found == Some(41) {
            hits += 1;
        }
        assert!(oracle.rounds() > 0);
        assert!(oracle.batches() > 0);
    }
    assert!(hits >= total - 1, "{hits}/{total} topologies found the marked index");
}

#[test]
fn search_all_through_network() {
    let mut rng = StdRng::seed_from_u64(6);
    let g = grid(5, 4);
    let marked = vec![3usize, 50, 77];
    let provider = xor_instance(g.n(), 128, &marked, 9);
    let net = Network::new(&g);
    let mut oracle = CongestOracle::setup(&net, provider, 6, 2).unwrap();
    let (found, _) = search_all(&mut oracle, &|v| v == 1, &mut rng);
    assert!(found.iter().all(|i| marked.contains(i)), "no false positives: {found:?}");
    assert!(found.len() >= 2, "found {found:?}");
}

#[test]
fn minimum_through_network_matches_truth_mostly() {
    let mut rng = StdRng::seed_from_u64(8);
    let g = random_connected(20, 0.12, 4);
    let mut src_rng = StdRng::seed_from_u64(11);
    let local: Vec<Vec<u64>> =
        (0..20).map(|_| (0..60).map(|_| src_rng.gen_range(0..100u64)).collect()).collect();
    let provider = StoredValues::new(local, 16, CommOp::Sum);
    let truth = *provider.aggregates().iter().min().unwrap();
    let net = Network::new(&g);
    let mut hits = 0;
    for seed in 0..5 {
        let provider = provider.clone();
        let mut oracle = CongestOracle::setup(&net, provider, 4, seed).unwrap();
        let out = find_extremum(&mut oracle, Extremum::Min, &mut rng);
        if out.value == truth {
            hits += 1;
        }
    }
    assert!(hits >= 4, "{hits}/5");
}

#[test]
fn measured_rounds_within_constant_of_theorem8_bound() {
    // The measured round count of b batches must stay within a constant
    // factor of the Theorem 8 formula.
    let g = path(20);
    let net = Network::new(&g);
    let n = 20;
    let k = 64;
    let q = 8;
    let local: Vec<Vec<u64>> =
        (0..n).map(|v| (0..k).map(|j| ((v + j) % 4) as u64).collect()).collect();
    let provider = StoredValues::new(local, q, CommOp::Max);
    let mut oracle = CongestOracle::setup(&net, provider, 8, 3).unwrap();
    let b = 5;
    for i in 0..b {
        let batch: Vec<usize> = (0..8).map(|x| (x * 7 + i) % k).collect();
        oracle.query(&batch);
    }
    let measured = oracle.rounds() as f64;
    let theory = theorem8_rounds(19, b as f64, 8, q, k, n);
    assert!(measured <= 8.0 * theory, "measured {measured} should be O(theory {theory})");
    assert!(measured >= theory / 8.0, "measured {measured} suspiciously below theory {theory}");
}

#[test]
fn ledger_phases_cover_all_protocol_steps() {
    let g = star(8);
    let net = Network::new(&g);
    let provider = xor_instance(8, 32, &[5], 1);
    let mut oracle = CongestOracle::setup(&net, provider, 4, 1).unwrap();
    oracle.query(&[1, 2, 3, 5]);
    let names: Vec<&str> = oracle.ledger().phases().iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"setup/leader-election"));
    assert!(names.contains(&"setup/bfs-tree"));
    assert!(names.contains(&"batch/distribute"));
    assert!(names.contains(&"batch/aggregate"));
    assert!(names.contains(&"batch/gather"));
}

#[test]
fn oracle_peek_is_free() {
    let g = path(6);
    let net = Network::new(&g);
    let provider = xor_instance(6, 16, &[3], 2);
    let oracle = CongestOracle::setup(&net, provider, 2, 1).unwrap();
    let setup_rounds = oracle.rounds();
    let _ = oracle.peek(3);
    let _ = oracle.peek(0);
    assert_eq!(oracle.rounds(), setup_rounds, "peek must not cost rounds");
    assert_eq!(oracle.batches(), 0);
}
