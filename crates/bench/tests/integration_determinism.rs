//! Cross-crate integration: reproducibility and robustness — identical
//! seeds replay identical executions, constrained bandwidth degrades
//! rounds but never correctness, and resource-limit errors surface
//! cleanly.

use congest::generators::{grid, path, random_connected_m};
use congest::runtime::{Network, RuntimeError};
use dqc_core::deutsch_jozsa::{quantum_dj, DjInstance};
use dqc_core::eccentricity::quantum_diameter;
use dqc_core::scheduling::{quantum_meeting_scheduling, MeetingInstance};
use pquery::deutsch_jozsa::DjAnswer;

#[test]
fn same_seed_replays_identical_execution() {
    let g = random_connected_m(40, 60, 9);
    let net = Network::new(&g);
    let a = quantum_diameter(&net, 1234).unwrap();
    let b = quantum_diameter(&net, 1234).unwrap();
    assert_eq!(a.value, b.value);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.ledger.phases().len(), b.ledger.phases().len());
    for ((na, sa), (nb, sb)) in a.ledger.phases().iter().zip(b.ledger.phases()) {
        assert_eq!(na, nb);
        assert_eq!(sa, sb, "phase {na} diverged");
    }
}

#[test]
fn different_seeds_may_change_cost_but_not_soundness() {
    let g = grid(5, 4);
    let net = Network::new(&g);
    let truth = g.diameter().unwrap();
    for seed in 0..5 {
        let r = quantum_diameter(&net, seed).unwrap();
        // Soundness: always a genuine eccentricity.
        assert_eq!(g.eccentricity(r.node), Some(r.value));
        assert!(r.value <= truth);
    }
}

#[test]
fn tight_bandwidth_degrades_rounds_not_answers() {
    let g = path(12);
    let inst = MeetingInstance::random(12, 256, 0.4, 7);
    let id_bits = congest::graph::bits_for(11);
    let generous = Network::new(&g).with_bandwidth(16 * id_bits);
    let tight = Network::new(&g).with_bandwidth(3 * id_bits);
    let rg = quantum_meeting_scheduling(&generous, &inst, 5).unwrap();
    let rt = quantum_meeting_scheduling(&tight, &inst, 5).unwrap();
    assert_eq!(inst.attendance()[rg.slot], rg.attendance);
    assert_eq!(inst.attendance()[rt.slot], rt.attendance);
    assert!(rt.rounds > rg.rounds, "tight cap should cost more: {} vs {}", rt.rounds, rg.rounds);
}

#[test]
fn dj_exactness_survives_any_bandwidth() {
    let g = path(8);
    let inst = DjInstance::random(8, 64, DjAnswer::Balanced, 3);
    for factor in [3u64, 4, 10] {
        let net = Network::new(&g).with_bandwidth(factor * congest::graph::bits_for(7));
        let r = quantum_dj(&net, &inst, 1).unwrap().unwrap();
        assert_eq!(r.answer, DjAnswer::Balanced, "factor {factor}");
    }
}

#[test]
fn round_limit_error_surfaces() {
    let g = path(30);
    let net = Network::new(&g).with_round_limit(3);
    let err = congest::bfs::build_bfs_tree(&net, 0).unwrap_err();
    assert!(matches!(err, RuntimeError::RoundLimitExceeded { limit: 3 }));
}

#[test]
fn stats_internally_consistent() {
    let g = grid(4, 4);
    let net = Network::new(&g);
    let r = quantum_diameter(&net, 2).unwrap();
    assert_eq!(r.rounds, r.ledger.total_rounds());
    // Any phase's per-edge load stays within the cap.
    for (_, stats) in r.ledger.phases() {
        assert!(stats.max_edge_bits <= net.cap_bits());
        assert!(stats.total_bits >= stats.messages, "messages are ≥ 1 bit each");
    }
}
