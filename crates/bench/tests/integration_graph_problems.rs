//! Cross-crate integration: the graph applications (§5) — diameter,
//! radius, average eccentricity, cycle detection, girth — against
//! centralized ground truth.

use congest::generators::{
    cycle, cycle_with_body, grid, hypercube, many_cycles, random_connected, random_tree,
};
use congest::runtime::Network;
use dqc_core::cycles::{classical_cycle_detection, quantum_cycle_detection};
use dqc_core::eccentricity::{
    classical_diameter_radius, quantum_average_eccentricity, quantum_diameter, quantum_radius,
};
use dqc_core::girth::{classical_girth, quantum_girth};

#[test]
fn diameter_radius_on_structured_families() {
    for g in [grid(7, 5), cycle(21), hypercube(5)] {
        let net = Network::new(&g);
        let (cd, cr, _, _) = classical_diameter_radius(&net, 1).unwrap();
        assert_eq!(Some(cd), g.diameter());
        assert_eq!(Some(cr), g.radius());
        let mut d_hits = 0;
        let mut r_hits = 0;
        for seed in 0..3 {
            d_hits += (quantum_diameter(&net, seed).unwrap().value == cd) as usize;
            r_hits += (quantum_radius(&net, seed).unwrap().value == cr) as usize;
        }
        assert!(d_hits >= 2, "diameter {d_hits}/3 on {g:?}");
        assert!(r_hits >= 2, "radius {r_hits}/3 on {g:?}");
    }
}

#[test]
fn avg_eccentricity_tracks_truth_as_eps_shrinks() {
    let g = grid(8, 6);
    let truth = g.average_eccentricity().unwrap();
    let net = Network::new(&g);
    let coarse = quantum_average_eccentricity(&net, 3.0, 5).unwrap();
    let fine = quantum_average_eccentricity(&net, 0.75, 5).unwrap();
    assert!((coarse.estimate - truth).abs() <= 9.0);
    assert!((fine.estimate - truth).abs() <= 2.25);
    assert!(fine.rounds > coarse.rounds, "higher precision must cost more");
}

#[test]
fn cycle_detection_agreement_with_reference_on_random_graphs() {
    for seed in 0..6 {
        let g = random_connected(40, 0.07, seed);
        let net = Network::new(&g);
        let truth = g.girth();
        for k in [4usize, 6, 8] {
            let c = classical_cycle_detection(&net, k, 2).unwrap();
            let want = truth.filter(|&gl| gl as usize <= k).map(|gl| gl as usize);
            assert_eq!(c.length, want, "classical exact, seed {seed}, k {k}");
            // Quantum: one-sided; when it answers, the length is ≥ girth.
            let q = quantum_cycle_detection(&net, k, seed).unwrap();
            if let (Some(ql), Some(gl)) = (q.length, truth) {
                assert!(ql >= gl as usize, "seed {seed} k {k}: {ql} < girth {gl}");
                assert!(ql <= k);
            }
        }
    }
}

#[test]
fn no_cycles_invented_on_trees() {
    for seed in 0..4 {
        let g = random_tree(50, seed);
        let net = Network::new(&g);
        assert_eq!(quantum_cycle_detection(&net, 8, seed).unwrap().length, None);
        assert_eq!(classical_cycle_detection(&net, 8, seed).unwrap().length, None);
        assert_eq!(quantum_girth(&net, 0.5, seed).unwrap().girth, None);
    }
}

#[test]
fn girth_pipeline_end_to_end() {
    for (g, want) in
        [(cycle_with_body(7, 40, 2), 7usize), (many_cycles(4, 5, 3), 4), (grid(6, 5), 4)]
    {
        let net = Network::new(&g);
        let c = classical_girth(&net, 1).unwrap();
        assert_eq!(c.girth, Some(want));
        let mut hits = 0;
        for seed in 0..3 {
            let q = quantum_girth(&net, 0.5, seed).unwrap();
            if q.girth == Some(want) {
                hits += 1;
            }
            if let Some(l) = q.girth {
                assert!(l >= want);
            }
        }
        assert!(hits >= 2, "{hits}/3 for girth {want}");
    }
}

#[test]
fn quantum_diameter_rounds_follow_sqrt_nd() {
    // Measured rounds over growing n with controlled D should follow
    // √(nD) within a constant factor band.
    let mut ratios = Vec::new();
    for n in [64usize, 144, 256] {
        let g = grid(n / 8, 8);
        let net = Network::new(&g);
        let d = g.diameter().unwrap() as f64;
        let r = quantum_diameter(&net, 4).unwrap().rounds as f64;
        ratios.push(r / (g.n() as f64 * d).sqrt());
    }
    let lo = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let hi = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(hi / lo < 6.0, "rounds/√(nD) band too wide: {ratios:?}");
}
