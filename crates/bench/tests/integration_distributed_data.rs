//! Cross-crate integration: the distributed-data applications (§4) —
//! meeting scheduling, element distinctness, distributed Deutsch–Jozsa —
//! answers vs centralized ground truth, and quantum/classical round
//! relationships.

use congest::generators::{double_star, dumbbell, grid, random_connected};
use congest::runtime::Network;
use dqc_core::deutsch_jozsa::{classical_exact_dj, classical_sampling_dj, quantum_dj, DjInstance};
use dqc_core::distinctness::{
    classical_distinctness, quantum_distinctness, quantum_distinctness_between_nodes,
    DistinctnessInstance,
};
use dqc_core::scheduling::{
    classical_meeting_scheduling, quantum_meeting_scheduling, MeetingInstance,
};
use pquery::deutsch_jozsa::DjAnswer;

#[test]
fn scheduling_quantum_and_classical_agree_with_truth() {
    let (g, _) = dumbbell(6, 6, 8);
    let net = Network::new(&g);
    let inst = MeetingInstance::random(g.n(), 96, 0.4, 11);
    let best = inst.best_attendance();
    let c = classical_meeting_scheduling(&net, &inst, 1).unwrap();
    assert_eq!(c.attendance, best, "classical is exact");
    let mut hits = 0;
    for seed in 0..5 {
        let q = quantum_meeting_scheduling(&net, &inst, seed).unwrap();
        assert_eq!(inst.attendance()[q.slot], q.attendance, "reported slot genuine");
        hits += (q.attendance == best) as usize;
    }
    assert!(hits >= 3, "{hits}/5");
}

#[test]
fn scheduling_sublinear_in_k() {
    // Quadrupling k should grow quantum rounds ≈ 2× (√k), classical ≈ 4×.
    let (g, _) = dumbbell(5, 5, 8);
    let net = Network::new(&g);
    let small = MeetingInstance::random(g.n(), 512, 0.3, 1);
    let large = MeetingInstance::random(g.n(), 2048, 0.3, 1);
    let qs = quantum_meeting_scheduling(&net, &small, 2).unwrap().rounds as f64;
    let ql = quantum_meeting_scheduling(&net, &large, 2).unwrap().rounds as f64;
    let cs = classical_meeting_scheduling(&net, &small, 2).unwrap().rounds as f64;
    let cl = classical_meeting_scheduling(&net, &large, 2).unwrap().rounds as f64;
    assert!(ql / qs < 3.2, "quantum growth {:.2} should be ≈ 2", ql / qs);
    assert!(cl / cs > 3.0, "classical growth {:.2} should be ≈ 4", cl / cs);
}

#[test]
fn distinctness_finds_planted_duplicates() {
    let g = random_connected(16, 0.15, 3);
    let net = Network::new(&g);
    let inst = DistinctnessInstance::random(16, 200, Some((13, 150)), 5);
    let c = classical_distinctness(&net, &inst, 1).unwrap();
    assert_eq!(c.pair, Some((13, 150)));
    let mut found = 0;
    for seed in 0..6 {
        if let Some(p) = quantum_distinctness(&net, &inst, seed).unwrap().pair {
            assert_eq!(p, (13, 150), "one-sided error");
            found += 1;
        }
    }
    assert!(found >= 3, "{found}/6");
}

#[test]
fn distinctness_clean_instances_never_fabricate() {
    let g = grid(4, 4);
    let net = Network::new(&g);
    let inst = DistinctnessInstance::random(16, 150, None, 9);
    for seed in 0..4 {
        assert_eq!(quantum_distinctness(&net, &inst, seed).unwrap().pair, None);
    }
}

#[test]
fn distinctness_between_nodes_on_lower_bound_topology() {
    let g = double_star(10, 10);
    let net = Network::new(&g);
    let mut values: Vec<u64> = (0..g.n() as u64).map(|v| 7000 + 13 * v).collect();
    values[g.n() - 1] = values[1];
    let mut found = 0;
    for seed in 10..16 {
        if let Some((i, j)) = quantum_distinctness_between_nodes(&net, &values, seed).unwrap().pair
        {
            assert_eq!(values[i], values[j]);
            found += 1;
        }
    }
    assert!(found >= 3, "{found}/6");
}

#[test]
fn dj_exactness_over_many_instances() {
    let g = random_connected(12, 0.2, 7);
    let net = Network::new(&g);
    for seed in 0..10 {
        let ans = if seed % 2 == 0 { DjAnswer::Constant } else { DjAnswer::Balanced };
        let inst = DjInstance::random(12, 64, ans, seed);
        let q = quantum_dj(&net, &inst, seed).unwrap().unwrap();
        assert_eq!(q.answer, ans, "zero-error violated at seed {seed}");
        let c = classical_exact_dj(&net, &inst, seed).unwrap();
        assert_eq!(c.answer, ans);
        assert!(
            q.rounds < c.rounds,
            "quantum {} must beat exact classical {} already at k = 64",
            q.rounds,
            c.rounds
        );
    }
}

#[test]
fn dj_sampling_errs_on_balanced_sometimes_but_is_fast() {
    // With 2 samples, a balanced input is misclassified with probability
    // 1/2 per run — demonstrating why the separation needs exactness.
    let g = congest::generators::path(10);
    let net = Network::new(&g);
    let mut wrong = 0;
    for seed in 0..12 {
        let inst = DjInstance::random(10, 64, DjAnswer::Balanced, seed + 100);
        let r = classical_sampling_dj(&net, &inst, 2, seed).unwrap();
        wrong += (r.answer != DjAnswer::Balanced) as usize;
    }
    assert!(wrong >= 1, "sampling with 2 probes should err at least once in 12");
    assert!(wrong <= 11, "and be right at least once");
}

#[test]
fn dj_rounds_grow_with_diameter_not_k() {
    let short = congest::generators::path(6);
    let long = congest::generators::path(40);
    let inst_s = DjInstance::random(6, 256, DjAnswer::Balanced, 3);
    let inst_l = DjInstance::random(40, 256, DjAnswer::Balanced, 3);
    let rs = quantum_dj(&Network::new(&short), &inst_s, 1).unwrap().unwrap().rounds;
    let rl = quantum_dj(&Network::new(&long), &inst_l, 1).unwrap().unwrap().rounds;
    assert!(rl > rs, "D = 39 must cost more than D = 5: {rs} vs {rl}");
}
