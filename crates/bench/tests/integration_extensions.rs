//! Cross-crate integration: the extension modules — Bernstein–Vazirani,
//! success boosting, quantum counting, exact even cycles, and the
//! lower-bound reduction gadgets end to end.

use congest::generators::{grid, hypercube, path, random_connected_m};
use congest::runtime::Network;
use dqc_core::bernstein_vazirani::{classical_exact_bv, quantum_bv, BvInstance};
use dqc_core::boosting::{boosted_diameter, repetitions};
use dqc_core::counting::{classical_count_quorum_slots, quantum_count_quorum_slots};
use dqc_core::even_cycles::{has_exact_cycle, quantum_exact_even_cycle};
use dqc_core::exact::exact_distributed_bv;
use dqc_core::reductions::{
    decode_distinctness, decode_scheduling, disjointness_to_distinctness,
    disjointness_to_scheduling, DisjointnessInstance,
};
use dqc_core::scheduling::{classical_meeting_scheduling, MeetingInstance};

#[test]
fn bv_three_fidelity_levels_agree() {
    // Statevector, emulated-distributed, classical streaming — all must
    // recover the same hidden string.
    let g = path(4);
    let net = Network::new(&g);
    let hidden = vec![true, true, false, true];
    let inst = BvInstance::random(4, &hidden, 5);
    let exact = exact_distributed_bv(&g, 0, &inst.local).unwrap();
    let emu = quantum_bv(&net, &inst, 1).unwrap();
    let classical = classical_exact_bv(&net, &inst, 1).unwrap();
    assert_eq!(exact.recovered, hidden);
    assert_eq!(emu.recovered, hidden);
    assert_eq!(classical.recovered, hidden);
    assert!(exact.outcome_probability > 1.0 - 1e-9);
}

#[test]
fn bv_separation_grows_with_m() {
    let g = path(8);
    let net = Network::new(&g);
    let mut prev_ratio = 0.0;
    for m in [128usize, 512, 2048] {
        let hidden: Vec<bool> = (0..m).map(|i| i % 3 == 1).collect();
        let inst = BvInstance::random(8, &hidden, m as u64);
        let q = quantum_bv(&net, &inst, 2).unwrap().rounds as f64;
        let c = classical_exact_bv(&net, &inst, 2).unwrap().rounds as f64;
        let ratio = c / q;
        assert!(ratio > prev_ratio, "separation must widen: {prev_ratio} -> {ratio}");
        prev_ratio = ratio;
    }
    assert!(prev_ratio > 4.0, "final separation {prev_ratio}");
}

#[test]
fn boosting_reaches_high_confidence() {
    let g = random_connected_m(48, 70, 3);
    let truth = g.diameter().unwrap();
    let net = Network::new(&g);
    let mut hits = 0;
    for seed in 0..6 {
        hits += (boosted_diameter(&net, 1.5, seed).unwrap().value == truth) as usize;
    }
    assert_eq!(hits, 6, "boosted runs should essentially never miss");
    assert!(repetitions(48, 1.5) >= 4);
}

#[test]
fn counting_consistent_with_classical() {
    let g = grid(4, 4);
    let net = Network::new(&g);
    let inst = MeetingInstance::random(16, 500, 0.5, 13);
    let exact = classical_count_quorum_slots(&net, &inst, 8, 1).unwrap().estimate;
    let eps = 50.0;
    let mut ok = 0;
    for seed in 0..6 {
        let q = quantum_count_quorum_slots(&net, &inst, 8, eps, seed).unwrap();
        if (q.estimate - exact).abs() <= eps {
            ok += 1;
        }
    }
    assert!(ok >= 4, "{ok}/6 within ε");
}

#[test]
fn exact_even_cycles_on_hypercube() {
    // Q4 contains C4, C6, C8 — and the quantum detector must find them
    // while never inventing cycles on C10.
    let g = hypercube(4);
    assert!(has_exact_cycle(&g, 4) && has_exact_cycle(&g, 6) && has_exact_cycle(&g, 8));
    let net = Network::new(&g);
    for k in [4usize, 6, 8] {
        let mut hits = 0;
        for seed in 0..3 {
            hits += quantum_exact_even_cycle(&net, k, seed).unwrap().found as usize;
        }
        assert!(hits >= 2, "C{k}: {hits}/3");
    }
}

#[test]
fn reduction_roundtrip_scheduling_and_distinctness() {
    for seed in 0..6 {
        let want = seed % 2 == 0;
        // Build a disjointness instance with the desired answer.
        let k = 20;
        let mut a = vec![false; k];
        let mut b = vec![false; k];
        a[3] = true;
        a[11] = true;
        b[7] = true;
        if want {
            b[11] = true;
        }
        let inst = DisjointnessInstance::new(a, b);
        assert_eq!(inst.intersects(), want);

        let gadget = disjointness_to_scheduling(&inst, 5);
        let net = Network::new(&gadget.graph);
        let res = classical_meeting_scheduling(&net, &gadget.instance, seed).unwrap();
        assert_eq!(decode_scheduling(res.attendance), want);

        let gadget = disjointness_to_distinctness(&inst, 5);
        let net = Network::new(&gadget.graph);
        let res =
            dqc_core::distinctness::classical_distinctness(&net, &gadget.instance, seed).unwrap();
        let witness = decode_distinctness(res.pair, k);
        assert_eq!(witness.is_some(), want);
        if want {
            assert_eq!(witness, Some(11));
        }
    }
}
