//! Cross-crate integration: exact statevector mode vs the schedule
//! emulations — the two fidelity levels must agree wherever they overlap.

use congest::generators::{balanced_tree, path, random_tree, star};
use congest::runtime::Network;
use dqc_core::deutsch_jozsa::{quantum_dj, DjInstance};
use dqc_core::exact::{exact_distribute_roundtrip, exact_distributed_dj};
use pquery::deutsch_jozsa::DjAnswer;
use pquery::oracle::VecSource;
use qsim::complex::{c64, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn lemma7_fidelity_one_on_tree_families() {
    let s = 0.5f64.sqrt();
    for (g, leader) in [
        (path(5), 0usize),
        (path(5), 2),
        (star(6), 0),
        (star(6), 3),
        (balanced_tree(2, 2), 0),
        (random_tree(7, 11), 4),
    ] {
        let amps = vec![c64(s, 0.0), C64::ZERO, c64(0.0, -s), C64::ZERO];
        let res = exact_distribute_roundtrip(&g, leader, amps).unwrap();
        assert!(
            res.distribute_fidelity > 1.0 - 1e-9,
            "distribute fidelity {} on {g:?}",
            res.distribute_fidelity
        );
        assert!(res.roundtrip_fidelity > 1.0 - 1e-9);
        assert!(res.distribute_rounds >= 1);
    }
}

#[test]
fn exact_dj_agrees_with_scheduled_dj() {
    // The same instance through (a) the exact statevector protocol and
    // (b) the emulated framework must give identical answers.
    let g = path(4);
    let net = Network::new(&g);
    let mut rng = StdRng::seed_from_u64(3);
    for trial in 0..10 {
        let ans = if trial % 2 == 0 { DjAnswer::Constant } else { DjAnswer::Balanced };
        let k = 4;
        // Build shares with the desired aggregate.
        let inst = DjInstance::random(4, k, ans, trial + rng.gen_range(0..100));
        let exact = exact_distributed_dj(&g, 0, &inst.local).unwrap();
        let emulated = quantum_dj(&net, &inst, trial).unwrap().unwrap();
        assert_eq!(exact.answer, emulated.answer, "trial {trial}");
        assert_eq!(exact.answer, ans);
        assert!(exact.outcome_probability > 1.0 - 1e-9, "DJ must be exact");
    }
}

#[test]
fn statevector_grover_agrees_with_emulated_success_rates() {
    // Iteration-by-iteration: the statevector success probability after j
    // iterations equals the closed form the emulator samples from.
    let q = 5;
    let k = 1 << q;
    for t in [1usize, 2, 4] {
        let marked = move |i: usize| i < t;
        let mut s = qsim::state::State::zero(q);
        s.h_all(0..q);
        for j in 0..5 {
            let p_sv = s.probability_where(|i| marked(i & (k - 1)));
            let p_closed = qsim::grover::success_probability(q, t, j);
            assert!((p_sv - p_closed).abs() < 1e-9, "t={t} j={j}");
            qsim::grover::grover_iterate(&mut s, q, k, &marked);
        }
    }
}

#[test]
fn emulated_grover_success_rate_matches_quantum_law() {
    // Run the schedule emulation many times; its success frequency must be
    // compatible with the exact algorithm's (both BBHT-style, ≥ 2/3).
    let mut rng = StdRng::seed_from_u64(9);
    let k = 256;
    let runs = 60;
    let mut emu_hits = 0;
    let mut exact_hits = 0;
    for r in 0..runs {
        let target = (r * 37) % k;
        let mut src = VecSource::new((0..k).map(|i| (i == target) as u64).collect(), 4);
        if pquery::grover::search_one(&mut src, &|v| v != 0, &mut rng).found == Some(target) {
            emu_hits += 1;
        }
        if qsim::grover::grover_search(k, |i| i == target, &mut rng).found == Some(target) {
            exact_hits += 1;
        }
    }
    assert!(emu_hits * 3 >= runs * 2, "emulated {emu_hits}/{runs}");
    assert!(exact_hits * 3 >= runs * 2, "exact {exact_hits}/{runs}");
    let diff = (emu_hits as f64 - exact_hits as f64).abs() / runs as f64;
    assert!(diff < 0.35, "success rates diverge: {emu_hits} vs {exact_hits}");
}

#[test]
fn qpe_statevector_backs_lemma29_outcomes() {
    // dqc-core's distributed phase estimation samples its outcome from the
    // real QPE circuit; verify the underlying circuit's precision here.
    let mut rng = StdRng::seed_from_u64(21);
    let phi = 0.6182;
    let t = 8;
    let mut ok = 0;
    for _ in 0..25 {
        let est = qsim::phase_estimation::estimate_diagonal_phase(phi, t, &mut rng);
        if qsim::phase_estimation::phase_distance(est, phi) <= 1.0 / (1 << t) as f64 {
            ok += 1;
        }
    }
    assert!(ok >= 17, "{ok}/25 within 2^-t (theory ≥ 8/π² ≈ 0.81)");
}
