//! Distributed quantum counting — an extension composing the paper's
//! tools: amplitude/mean estimation (Lemma 6 / Corollary 30) over the
//! Theorem 8 oracle estimates **how many** indices of the aggregated input
//! satisfy a predicate, in `Õ(√D·k/ε + D)`-style rounds instead of the
//! classical `Θ(k)` streaming.
//!
//! Example uses: "how many time slots have quorum?", "how many duplicate
//! values?", "what fraction of sensors exceed the threshold?" — questions
//! where the answer is a number, not a witness.

use crate::framework::{CongestOracle, StoredValues};
use congest::aggregate::CommOp;
use congest::graph::bits_for;
use congest::runtime::{Network, RoundLedger, RuntimeError};
use pquery::counting::estimate_count;
use pquery::oracle::BatchSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a distributed counting run.
#[derive(Debug, Clone)]
pub struct CountingResult {
    /// Estimate of the number of satisfying indices.
    pub estimate: f64,
    /// Measured rounds.
    pub rounds: usize,
    /// Oracle batches.
    pub batches: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Estimate the number of slots whose attendance is at least `threshold`
/// in a meeting-scheduling instance, to additive error `eps_slots`, with
/// probability ≥ 0.81 — quantum counting through the framework.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics if `eps_slots <= 0`.
pub fn quantum_count_quorum_slots(
    net: &Network<'_>,
    inst: &crate::scheduling::MeetingInstance,
    threshold: u64,
    eps_slots: f64,
    seed: u64,
) -> Result<CountingResult, RuntimeError> {
    assert!(eps_slots > 0.0);
    let n = net.graph().n();
    assert_eq!(inst.availability.len(), n);
    let local: Vec<Vec<u64>> =
        inst.availability.iter().map(|row| row.iter().map(|&b| b as u64).collect()).collect();
    let provider = StoredValues::new(local, bits_for(n as u64), CommOp::Sum);
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let p = oracle.suggested_p();
    oracle.set_p(p);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de);
    let out = estimate_count(&mut oracle, &|v| v >= threshold, eps_slots, &mut rng);
    Ok(CountingResult {
        estimate: out.estimate,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Exact classical baseline: stream all slot totals (one `p = k` batch)
/// and count — `Θ(k + D)` rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_count_quorum_slots(
    net: &Network<'_>,
    inst: &crate::scheduling::MeetingInstance,
    threshold: u64,
    seed: u64,
) -> Result<CountingResult, RuntimeError> {
    let n = net.graph().n();
    let local: Vec<Vec<u64>> =
        inst.availability.iter().map(|row| row.iter().map(|&b| b as u64).collect()).collect();
    let provider = StoredValues::new(local, bits_for(n as u64), CommOp::Sum);
    let k = inst.k();
    let mut oracle = CongestOracle::setup(net, provider, k, seed)?;
    let all: Vec<usize> = (0..k).collect();
    let totals = oracle.query(&all);
    let count = totals.iter().filter(|&&v| v >= threshold).count() as f64;
    Ok(CountingResult {
        estimate: count,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduling::MeetingInstance;
    use congest::generators::{dumbbell, grid};

    fn truth(inst: &MeetingInstance, threshold: u64) -> f64 {
        inst.attendance().iter().filter(|&&a| a >= threshold).count() as f64
    }

    #[test]
    fn classical_counting_exact() {
        let g = grid(4, 4);
        let net = Network::new(&g);
        let inst = MeetingInstance::random(16, 60, 0.4, 3);
        let res = classical_count_quorum_slots(&net, &inst, 8, 1).unwrap();
        assert_eq!(res.estimate, truth(&inst, 8));
        assert_eq!(res.batches, 1);
    }

    #[test]
    fn quantum_counting_within_tolerance() {
        let (g, _) = dumbbell(4, 4, 6);
        let net = Network::new(&g);
        let inst = MeetingInstance::random(g.n(), 200, 0.5, 7);
        let want = truth(&inst, 9);
        let eps = 20.0;
        let mut ok = 0;
        for seed in 0..8 {
            let res = quantum_count_quorum_slots(&net, &inst, 9, eps, seed).unwrap();
            assert!((res.estimate - want).abs() <= 3.0 * eps + 1e-9);
            if (res.estimate - want).abs() <= eps {
                ok += 1;
            }
        }
        assert!(ok >= 5, "{ok}/8 within ε");
    }

    #[test]
    fn quantum_counting_cheaper_than_streaming_for_coarse_eps() {
        let (g, _) = dumbbell(4, 4, 6);
        let net = Network::new(&g);
        let inst = MeetingInstance::random(g.n(), 3000, 0.5, 9);
        let q = quantum_count_quorum_slots(&net, &inst, 8, 300.0, 2).unwrap();
        let c = classical_count_quorum_slots(&net, &inst, 8, 2).unwrap();
        assert!(
            q.rounds < c.rounds,
            "coarse counting {} should beat streaming {}",
            q.rounds,
            c.rounds
        );
    }
}
