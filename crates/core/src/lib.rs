//! # dqc-core — distributed quantum queries in the CONGEST model
//!
//! A faithful reproduction of *"A Framework for Distributed Quantum Queries
//! in the CONGEST Model"* (Joran van Apeldoorn & Tijn de Vos, PODC 2022):
//! the framework that turns any *(b, p)-parallel-query quantum algorithm*
//! into a Quantum CONGEST protocol, plus every application the paper
//! derives from it. All round counts are **measured by executing honest
//! message-passing protocols** on the `congest` simulator; quantum query
//! algorithms come from `pquery` (schedule-faithful emulation) and are
//! validated against `qsim` statevector runs.
//!
//! | Paper | Module |
//! |---|---|
//! | Lemma 7 + Theorem 8 + Corollary 9 | [`framework`] (and [`exact`] for the statevector version) |
//! | §4.1 meeting scheduling (Lemmas 10–11) | [`scheduling`] |
//! | §4.2 element distinctness (Lemmas 12–15) | [`distinctness`] |
//! | §4.3 distributed Deutsch–Jozsa (Thms 17–18) | [`deutsch_jozsa`] |
//! | §5.1 diameter / radius / avg eccentricity (Lemmas 20–22) | [`eccentricity`] |
//! | §5.2 cycle detection (Lemmas 23, 25) | [`cycles`] |
//! | §5.3 girth (Corollary 26) | [`girth`] |
//! | §6 amplitude amplification (Lemmas 27–28) | [`amplification`] |
//! | §6 phase / amplitude estimation (Lemma 29, Cor. 30) | [`estimation`] |
//! | lower-bound reductions (Lemmas 11, 13, 15; Thm 18) | [`reductions`] |
//!
//! # Quickstart
//!
//! ```
//! use congest::generators::random_connected;
//! use congest::runtime::Network;
//! use dqc_core::eccentricity::{quantum_diameter, classical_diameter_radius};
//!
//! let g = random_connected(60, 0.08, 42);
//! let net = Network::new(&g);
//! let quantum = quantum_diameter(&net, 7)?;
//! let (d, _r, classical_rounds, _) = classical_diameter_radius(&net, 7)?;
//! println!(
//!     "diameter {} in {} quantum rounds vs {} classical rounds",
//!     quantum.value, quantum.rounds, classical_rounds
//! );
//! # Ok::<(), congest::runtime::RuntimeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amplification;
pub mod bernstein_vazirani;
pub mod boosting;
pub mod counting;
pub mod cycles;
pub mod deutsch_jozsa;
pub mod distinctness;
pub mod eccentricity;
pub mod estimation;
pub mod even_cycles;
pub mod exact;
pub mod framework;
pub mod girth;
pub mod reductions;
pub mod scheduling;
pub mod simon;
pub mod triangles;

pub use framework::{CongestOracle, StoredValues, ValueProvider};

/// One-stop imports for typical users.
///
/// ```
/// use dqc_core::prelude::*;
///
/// let g = random_connected_m(40, 60, 1);
/// let net = Network::new(&g);
/// let res = quantum_diameter(&net, 7)?;
/// assert_eq!(Some(res.value), g.diameter());
/// # Ok::<(), congest::runtime::RuntimeError>(())
/// ```
pub mod prelude {
    pub use crate::deutsch_jozsa::{classical_exact_dj, quantum_dj, DjInstance};
    pub use crate::distinctness::{
        classical_distinctness, quantum_distinctness, DistinctnessInstance,
    };
    pub use crate::eccentricity::{
        classical_diameter_radius, quantum_average_eccentricity, quantum_diameter, quantum_radius,
    };
    pub use crate::framework::{CongestOracle, StoredValues, ValueProvider};
    pub use crate::girth::{classical_girth, quantum_girth};
    pub use crate::scheduling::{
        classical_meeting_scheduling, quantum_meeting_scheduling, MeetingInstance,
    };
    pub use congest::generators::random_connected_m;
    pub use congest::runtime::{Network, RoundLedger, RunStats, RuntimeError};
    pub use congest::Graph;
    pub use pquery::oracle::BatchSource;
}
