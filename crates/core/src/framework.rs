//! The paper's core contribution: making parallel quantum queries in the
//! CONGEST model (Section 3 — Lemma 7, Theorem 8, Corollary 9).
//!
//! A designated leader runs a *(b, p)-parallel-query algorithm* for
//! `F : A^k → R`; the network evaluates
//! `f(⨁_v x^{(v)}) = F(x)` where `⊕` is a commutative semigroup operation
//! applied element-wise across the nodes' local inputs. Each query batch is
//! realized by three measured protocol phases:
//!
//! 1. **distribute** (Lemma 7): the leader's batch register
//!    `|j₁⟩⋯|j_p⟩` (`p·⌈log k⌉` qubits) is pipelined down the BFS tree so
//!    every node holds a copy — `O(D + p·log k / log n)` rounds;
//! 2. **aggregate** (the query): every node contributes its local values
//!    `x_{jᵢ}^{(v)}`; a pipelined convergecast with uncompute echoes
//!    computes `⨁_v x_{jᵢ}^{(v)}` at the leader —
//!    `O((D + p)·⌈q/log n⌉)` rounds;
//! 3. **gather** (Lemma 7 reversed): the index copies are uncomputed.
//!
//! With values not stored but computable by a `α(p)`-round protocol
//! (Corollary 9), phase 2 is preceded by that protocol — e.g. multi-source
//! BFS for eccentricity queries.
//!
//! The result is a [`CongestOracle`] implementing `pquery`'s
//! [`BatchSource`], so every Section 2 algorithm runs unchanged on top of a
//! real network, with rounds measured by execution.

use congest::aggregate::{aggregate_batch, CommOp};
use congest::bfs::{build_bfs_tree, elect_leader, BfsTree};
use congest::graph::{bits_for, NodeId};
use congest::runtime::{Network, RoundLedger, RuntimeError};
use congest::tree_comm::{distribute_register, gather_register, Register, Schedule};
use pquery::oracle::BatchSource;

/// Supplies the per-node query values `x_j^{(v)}` for a batch — either from
/// memory (Theorem 8) or computed on the fly by a measured sub-protocol
/// (Corollary 9).
pub trait ValueProvider {
    /// Input length `k` (the index domain of `F`).
    fn k(&self) -> usize;

    /// Bit width `q = ⌈log|A|⌉` of the semigroup domain (aggregates must
    /// fit).
    fn q(&self) -> u64;

    /// The element-wise semigroup operation `⊕`.
    fn op(&self) -> CommOp;

    /// Per-node value vectors for the queried `indices` (outer index =
    /// node, inner = batch position). May run protocols on `net`, recording
    /// their stats on `ledger` — that is Corollary 9's `α(p)`.
    ///
    /// # Errors
    ///
    /// Propagates protocol failures.
    fn values_for(
        &mut self,
        net: &Network<'_>,
        indices: &[usize],
        ledger: &mut RoundLedger,
    ) -> Result<Vec<Vec<u64>>, RuntimeError>;

    /// Ground-truth aggregate `⨁_v x_i^{(v)}` — the emulator's `peek`
    /// (never charged; see `pquery::oracle` docs).
    fn truth(&self, i: usize) -> u64;
}

/// Theorem 8's setting: every node already holds its `x^{(v)} ∈ A^k` in
/// memory, so `α(p) = 0`.
#[derive(Debug, Clone)]
pub struct StoredValues {
    local: Vec<Vec<u64>>,
    q: u64,
    op: CommOp,
    truth: Vec<u64>,
}

impl StoredValues {
    /// Build from per-node vectors (all of equal length `k`).
    ///
    /// # Panics
    ///
    /// Panics if vectors are empty or of unequal lengths, or an aggregate
    /// exceeds `q` bits (the semigroup domain must be closed).
    pub fn new(local: Vec<Vec<u64>>, q: u64, op: CommOp) -> Self {
        assert!(!local.is_empty(), "need at least one node");
        let k = local[0].len();
        assert!(k > 0, "need at least one index");
        assert!(local.iter().all(|v| v.len() == k), "unequal local vector lengths");
        let truth: Vec<u64> = (0..k).map(|i| op.fold(local.iter().map(|v| v[i]))).collect();
        for &t in &truth {
            assert!(q == 64 || t < (1u64 << q), "aggregate {t} exceeds q = {q} bits");
        }
        StoredValues { local, q, op, truth }
    }

    /// The ground-truth aggregate vector.
    pub fn aggregates(&self) -> &[u64] {
        &self.truth
    }
}

impl ValueProvider for StoredValues {
    fn k(&self) -> usize {
        self.truth.len()
    }

    fn q(&self) -> u64 {
        self.q
    }

    fn op(&self) -> CommOp {
        self.op
    }

    fn values_for(
        &mut self,
        _net: &Network<'_>,
        indices: &[usize],
        _ledger: &mut RoundLedger,
    ) -> Result<Vec<Vec<u64>>, RuntimeError> {
        Ok(self.local.iter().map(|mine| indices.iter().map(|&j| mine[j]).collect()).collect())
    }

    fn truth(&self, i: usize) -> u64 {
        self.truth[i]
    }
}

/// The "one value per node" special case (Corollary 14): `k = n` and
/// `x_j^{(v)} = value_v` if `v = j`, else the identity — without
/// materializing the `n × n` matrix.
#[derive(Debug, Clone)]
pub struct IndicatorValues {
    values: Vec<u64>,
    q: u64,
    op: CommOp,
}

impl IndicatorValues {
    /// One value per node; `q` must fit every value.
    ///
    /// # Panics
    ///
    /// Panics if empty or a value exceeds `q` bits.
    pub fn new(values: Vec<u64>, q: u64, op: CommOp) -> Self {
        assert!(!values.is_empty());
        for &v in &values {
            assert!(q == 64 || v < (1u64 << q), "value {v} exceeds q = {q} bits");
        }
        IndicatorValues { values, q, op }
    }
}

impl ValueProvider for IndicatorValues {
    fn k(&self) -> usize {
        self.values.len()
    }

    fn q(&self) -> u64 {
        self.q
    }

    fn op(&self) -> CommOp {
        self.op
    }

    fn values_for(
        &mut self,
        _net: &Network<'_>,
        indices: &[usize],
        _ledger: &mut RoundLedger,
    ) -> Result<Vec<Vec<u64>>, RuntimeError> {
        let id = self.op.identity();
        Ok((0..self.values.len())
            .map(|v| indices.iter().map(|&j| if j == v { self.values[v] } else { id }).collect())
            .collect())
    }

    fn truth(&self, i: usize) -> u64 {
        self.values[i]
    }
}

/// A `(b, p)`-parallel-query oracle realized on a CONGEST network — the
/// output of Theorem 8's construction. Implements `pquery`'s
/// [`BatchSource`], so any Section 2 algorithm drives real network traffic.
#[derive(Debug)]
pub struct CongestOracle<'g, P> {
    net: &'g Network<'g>,
    /// The elected leader.
    pub leader: NodeId,
    /// The leader's BFS tree.
    pub tree: BfsTree,
    provider: P,
    p: usize,
    batches: usize,
    queries: u64,
    ledger: RoundLedger,
}

impl<'g, P: ValueProvider> CongestOracle<'g, P> {
    /// Set up the framework: elect a leader and build its BFS tree (the
    /// `O(D)` setup of Theorem 8's proof), both measured.
    ///
    /// `p` is the batch width; the paper's applications use `p = Θ(D)`
    /// (use [`suggested_p`](Self::suggested_p) after setup, or pass an
    /// explicit width).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the setup protocols.
    pub fn setup(
        net: &'g Network<'g>,
        provider: P,
        p: usize,
        seed: u64,
    ) -> Result<Self, RuntimeError> {
        assert!(p >= 1, "batch width must be positive");
        let mut ledger = RoundLedger::new();
        let (leader, stats) = elect_leader(net, seed)?;
        ledger.record("setup/leader-election", stats);
        let tree = build_bfs_tree(net, leader)?;
        ledger.record("setup/bfs-tree", tree.stats);
        Ok(CongestOracle { net, leader, tree, provider, p, batches: 0, queries: 0, ledger })
    }

    /// The paper's usual batch width `p = Θ(D)`, derived from the measured
    /// tree depth (`depth ≤ D ≤ 2·depth`), at least 1.
    pub fn suggested_p(&self) -> usize {
        (self.tree.depth as usize).max(1)
    }

    /// Override the batch width (e.g. after inspecting the tree depth).
    pub fn set_p(&mut self, p: usize) {
        assert!(p >= 1);
        self.p = p;
    }

    /// The measured round ledger so far.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Total measured rounds so far.
    pub fn rounds(&self) -> usize {
        self.ledger.total_rounds()
    }

    /// Consume the oracle, returning its ledger.
    pub fn into_ledger(self) -> RoundLedger {
        self.ledger
    }

    /// Access the value provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }
}

impl<'g, P: ValueProvider> BatchSource for CongestOracle<'g, P> {
    fn k(&self) -> usize {
        self.provider.k()
    }

    fn p(&self) -> usize {
        self.p
    }

    fn query(&mut self, indices: &[usize]) -> Vec<u64> {
        assert!(!indices.is_empty() && indices.len() <= self.p, "bad batch width");
        let k = self.provider.k();
        for &j in indices {
            assert!(j < k, "index {j} out of range");
        }
        self.batches += 1;
        self.queries += indices.len() as u64;

        // Phase 1 (Lemma 7): ship the index register down the tree. The
        // register always has full width p·⌈log k⌉ — a quantum register's
        // width does not depend on the batch's classical content.
        let idx_bits = bits_for(k.saturating_sub(1) as u64);
        let mut fields = vec![0u64; self.p];
        for (slot, &j) in fields.iter_mut().zip(indices) {
            *slot = j as u64;
        }
        let reg = Register::pack(&fields, idx_bits);
        let (copies, stats) =
            distribute_register(self.net, &self.tree.views, reg, Schedule::Pipelined)
                .expect("distribute phase failed");
        self.ledger.record("batch/distribute", stats);

        // Corollary 9's α(p): compute the values, possibly via protocols.
        let values = self
            .provider
            .values_for(self.net, indices, &mut self.ledger)
            .expect("value computation failed");
        debug_assert!(values.iter().all(|v| v.len() == indices.len()));

        // Phase 2 (Theorem 8's query step): semigroup convergecast.
        let agg = aggregate_batch(
            self.net,
            &self.tree.views,
            &values,
            self.provider.q(),
            self.provider.op(),
        )
        .expect("aggregate phase failed");
        self.ledger.record("batch/aggregate", agg.stats);

        // Phase 3 (Lemma 7 reversed): uncompute the index copies.
        let (_root_reg, stats) =
            gather_register(self.net, &self.tree.views, copies).expect("gather phase failed");
        self.ledger.record("batch/gather", stats);

        agg.values
    }

    fn peek(&self, i: usize) -> u64 {
        self.provider.truth(i)
    }

    fn batches(&self) -> usize {
        self.batches
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// Theorem 8's round bound (for harness comparison):
/// `O(D + b·((D + p)⌈q/log n⌉ + p⌈log k / log n⌉))`.
pub fn theorem8_rounds(d: usize, b: f64, p: usize, q: u64, k: usize, n: usize) -> f64 {
    let log_n = bits_for(n.saturating_sub(1) as u64) as f64;
    let log_k = bits_for(k.saturating_sub(1) as u64) as f64;
    d as f64
        + b * ((d as f64 + p as f64) * (q as f64 / log_n).ceil().max(1.0)
            + p as f64 * (log_k / log_n).ceil().max(1.0))
}

/// Corollary 9's round bound: Theorem 8 plus `b·α(p)`.
pub fn corollary9_rounds(
    d: usize,
    b: f64,
    p: usize,
    q: u64,
    k: usize,
    n: usize,
    alpha: f64,
) -> f64 {
    theorem8_rounds(d, b, p, q, k, n) + b * alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{grid, path, random_connected, star};
    use pquery::grover::search_one;
    use pquery::minimum::{find_extremum, Extremum};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stored_sum_instance(n: usize, k: usize, seed: u64) -> StoredValues {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let local: Vec<Vec<u64>> =
            (0..n).map(|_| (0..k).map(|_| rng.gen_range(0..3u64)).collect()).collect();
        StoredValues::new(local, 32, CommOp::Sum)
    }

    #[test]
    fn oracle_query_returns_true_aggregates() {
        let g = grid(4, 4);
        let net = Network::new(&g);
        let provider = stored_sum_instance(16, 20, 1);
        let truth = provider.aggregates().to_vec();
        let mut oracle = CongestOracle::setup(&net, provider, 4, 7).unwrap();
        let got = oracle.query(&[0, 5, 19, 7]);
        assert_eq!(got, vec![truth[0], truth[5], truth[19], truth[7]]);
        assert_eq!(oracle.batches(), 1);
        assert!(oracle.rounds() > 0);
    }

    #[test]
    fn rounds_accumulate_per_batch() {
        let g = path(10);
        let net = Network::new(&g);
        let provider = stored_sum_instance(10, 8, 2);
        let mut oracle = CongestOracle::setup(&net, provider, 2, 3).unwrap();
        let setup_rounds = oracle.rounds();
        oracle.query(&[1, 2]);
        let after_one = oracle.rounds();
        oracle.query(&[3, 4]);
        let after_two = oracle.rounds();
        assert!(setup_rounds > 0);
        assert!(after_one > setup_rounds);
        // Two identical batches cost about the same.
        let d1 = after_one - setup_rounds;
        let d2 = after_two - after_one;
        assert!(d2 <= 2 * d1 && d1 <= 2 * d2, "batch costs {d1} vs {d2}");
    }

    #[test]
    fn grover_over_network_finds_marked() {
        let g = random_connected(24, 0.1, 5);
        let net = Network::new(&g);
        // XOR-shared bit vector: x_j = XOR of shares, marked = x_j == 1.
        let k = 64;
        let mut rng = StdRng::seed_from_u64(9);
        use rand::Rng;
        let mut local: Vec<Vec<u64>> =
            (0..24).map(|_| (0..k).map(|_| rng.gen_range(0..2u64)).collect()).collect();
        // Force the aggregate: clear column parity, then set index 17.
        for j in 0..k {
            let parity = local.iter().map(|v| v[j]).fold(0, |a, b| a ^ b);
            local[0][j] ^= parity;
        }
        local[0][17] ^= 1;
        let provider = StoredValues::new(local, 1, CommOp::Xor);
        assert_eq!(provider.truth(17), 1);
        let mut oracle = CongestOracle::setup(&net, provider, 4, 1).unwrap();
        let out = search_one(&mut oracle, &|v| v == 1, &mut rng);
        assert_eq!(out.found, Some(17));
    }

    #[test]
    fn minimum_over_network() {
        let g = star(12);
        let net = Network::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let provider = stored_sum_instance(12, 40, 6);
        let truth_min = *provider.aggregates().iter().min().unwrap();
        let mut oracle = CongestOracle::setup(&net, provider, 3, 2).unwrap();
        let mut hits = 0;
        for _ in 0..5 {
            let out = find_extremum(&mut oracle, Extremum::Min, &mut rng);
            if out.value == truth_min {
                hits += 1;
            }
        }
        assert!(hits >= 4, "{hits}/5");
    }

    #[test]
    fn indicator_values_match_direct() {
        let g = path(6);
        let net = Network::new(&g);
        let vals = vec![9u64, 3, 7, 7, 1, 5];
        let provider = IndicatorValues::new(vals.clone(), 8, CommOp::Sum);
        let mut oracle = CongestOracle::setup(&net, provider, 3, 1).unwrap();
        let got = oracle.query(&[0, 4, 2]);
        assert_eq!(got, vec![9, 1, 7]);
    }

    #[test]
    fn wider_batches_fewer_rounds_per_query() {
        // (D + p) vs p·(D) : querying 8 indices in one batch must beat
        // eight 1-index batches on a long path.
        let g = path(30);
        let net = Network::new(&g);
        let mk = || stored_sum_instance(30, 16, 3);

        let mut one = CongestOracle::setup(&net, mk(), 8, 1).unwrap();
        let base = one.rounds();
        one.query(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let batched = one.rounds() - base;

        let mut seq = CongestOracle::setup(&net, mk(), 1, 1).unwrap();
        let base = seq.rounds();
        for j in 0..8 {
            seq.query(&[j]);
        }
        let sequential = seq.rounds() - base;
        assert!(batched * 2 < sequential, "batched {batched} vs sequential {sequential}");
    }

    #[test]
    fn theorem8_formula_sanity() {
        // b batches of p=D on k=n bits: O(D + b·D).
        let r = theorem8_rounds(10, 5.0, 10, 8, 100, 100);
        assert!((10.0..10.0 + 5.0 * (20.0 * 2.0 + 10.0) + 1.0).contains(&r));
        assert!(corollary9_rounds(10, 5.0, 10, 8, 100, 100, 7.0) > r);
    }

    #[test]
    #[should_panic(expected = "aggregate")]
    fn stored_values_reject_overflow() {
        // Sum of 4 nodes' values exceeds q = 2 bits.
        StoredValues::new(vec![vec![3u64]; 4], 2, CommOp::Sum);
    }
}
