//! Distributed Deutsch–Jozsa (paper §4.3, Problem 16, Theorems 17–18).
//!
//! Every node holds `x^{(v)} ∈ {0,1}^k`; the XOR `x = ⨁_v x^{(v)}` is
//! promised constant or balanced. One superposed query through the
//! framework decides which **with probability 1** in
//! `O(D·⌈log k/log n⌉)` measured rounds (Theorem 17) — an exponential
//! separation from exact classical CONGEST, which needs `Ω(k/log n + D)`
//! rounds (Theorem 18).
//!
//! The exact classical baseline here streams the whole XOR vector to the
//! leader (one `p = k` batch); the bounded-error classical algorithm that
//! samples a few indices is also provided to demonstrate why the
//! separation needs zero error.

use crate::framework::{CongestOracle, StoredValues};
use congest::aggregate::CommOp;
use congest::runtime::{Network, RoundLedger, RuntimeError};
use pquery::deutsch_jozsa::{deutsch_jozsa as pq_dj, DjAnswer, PromiseViolation};
use pquery::oracle::BatchSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distributed Deutsch–Jozsa instance.
#[derive(Debug, Clone)]
pub struct DjInstance {
    /// `local[v][i]` = node `v`'s share bit of index `i`.
    pub local: Vec<Vec<bool>>,
}

impl DjInstance {
    /// Random instance whose XOR aggregate is constant (`value`) or
    /// balanced, split into random XOR shares.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k` is not an even power of two.
    pub fn random(n: usize, k: usize, answer: DjAnswer, seed: u64) -> Self {
        assert!(n > 0 && k >= 2 && k.is_power_of_two());
        let mut rng = StdRng::seed_from_u64(seed);
        let agg: Vec<bool> = match answer {
            DjAnswer::Constant => {
                let v = rng.gen_bool(0.5);
                vec![v; k]
            }
            DjAnswer::Balanced => {
                let mut bits: Vec<bool> = (0..k).map(|i| i < k / 2).collect();
                use rand::seq::SliceRandom;
                bits.shuffle(&mut rng);
                bits
            }
        };
        // Random XOR shares.
        let mut local = vec![vec![false; k]; n];
        for i in 0..k {
            let mut parity = false;
            for node in local.iter_mut().take(n - 1) {
                let b = rng.gen_bool(0.5);
                node[i] = b;
                parity ^= b;
            }
            local[n - 1][i] = parity ^ agg[i];
        }
        DjInstance { local }
    }

    /// The XOR aggregate (ground truth).
    pub fn aggregate(&self) -> Vec<bool> {
        let k = self.local[0].len();
        (0..k).map(|i| self.local.iter().fold(false, |a, v| a ^ v[i])).collect()
    }
}

/// Result of a distributed Deutsch–Jozsa run.
#[derive(Debug, Clone)]
pub struct DjResult {
    /// The answer (certain for the quantum and exact-classical variants).
    pub answer: DjAnswer,
    /// Measured rounds.
    pub rounds: usize,
    /// Oracle batches.
    pub batches: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

fn provider_for(net: &Network<'_>, inst: &DjInstance) -> StoredValues {
    let n = net.graph().n();
    assert_eq!(inst.local.len(), n, "instance size must match the network");
    let local: Vec<Vec<u64>> =
        inst.local.iter().map(|row| row.iter().map(|&b| b as u64).collect()).collect();
    StoredValues::new(local, 1, CommOp::Xor)
}

/// Quantum distributed Deutsch–Jozsa (Theorem 17): probability-1 answer in
/// `O(D·⌈log k/log n⌉)` measured rounds (one superposed batch).
///
/// # Errors
///
/// Propagates [`RuntimeError`]; returns the inner `Result` error if the
/// instance violates the promise.
pub fn quantum_dj(
    net: &Network<'_>,
    inst: &DjInstance,
    seed: u64,
) -> Result<Result<DjResult, PromiseViolation>, RuntimeError> {
    let provider = provider_for(net, inst);
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    match pq_dj(&mut oracle) {
        Ok(out) => Ok(Ok(DjResult {
            answer: out.answer,
            rounds: oracle.rounds(),
            batches: oracle.batches(),
            ledger: oracle.into_ledger(),
        })),
        Err(e) => Ok(Err(e)),
    }
}

/// Exact classical baseline: stream the whole XOR vector to the leader
/// (one `p = k` batch) — `Θ(k/log n + D)` measured rounds, matching the
/// Theorem 18 lower bound up to log factors.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_exact_dj(
    net: &Network<'_>,
    inst: &DjInstance,
    seed: u64,
) -> Result<DjResult, RuntimeError> {
    let provider = provider_for(net, inst);
    let k = inst.local[0].len();
    let mut oracle = CongestOracle::setup(net, provider, k, seed)?;
    let all: Vec<usize> = (0..k).collect();
    let bits = oracle.query(&all);
    let w: u64 = bits.iter().sum();
    let answer = if w == 0 || w == k as u64 { DjAnswer::Constant } else { DjAnswer::Balanced };
    Ok(DjResult {
        answer,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Bounded-error classical algorithm (the paper's closing remark of §4.3):
/// sample `samples` random indices; if all equal, answer Constant. Fast —
/// but errs with probability `2^{-samples}` on balanced inputs, which is
/// why the exponential separation is specifically about *exact* protocols.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_sampling_dj(
    net: &Network<'_>,
    inst: &DjInstance,
    samples: usize,
    seed: u64,
) -> Result<DjResult, RuntimeError> {
    assert!(samples >= 1);
    let provider = provider_for(net, inst);
    let k = inst.local[0].len();
    let mut oracle = CongestOracle::setup(net, provider, samples.min(k), seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006a_6f7a_7361);
    let idxs: Vec<usize> = (0..samples.min(k)).map(|_| rng.gen_range(0..k)).collect();
    let bits = oracle.query(&idxs);
    let answer =
        if bits.iter().all(|&b| b == bits[0]) { DjAnswer::Constant } else { DjAnswer::Balanced };
    Ok(DjResult {
        answer,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Theorem 17's upper bound: `O(D·⌈log k/log n⌉)`.
pub fn quantum_upper_bound(k: usize, d: usize, n: usize) -> f64 {
    use congest::graph::bits_for;
    d as f64 * (bits_for(k as u64) as f64 / bits_for(n as u64) as f64).ceil().max(1.0)
}

/// Theorem 18's exact-classical lower bound: `Ω(k/log n + D)`.
pub fn classical_lower_bound(k: usize, d: usize, n: usize) -> f64 {
    use congest::graph::bits_for;
    k as f64 / bits_for(n as u64) as f64 + d as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{path, random_connected};

    #[test]
    fn instance_aggregates_match_promise() {
        let c = DjInstance::random(7, 16, DjAnswer::Constant, 1);
        let agg = c.aggregate();
        assert!(agg.iter().all(|&b| b == agg[0]));
        let b = DjInstance::random(7, 16, DjAnswer::Balanced, 2);
        assert_eq!(b.aggregate().iter().filter(|&&x| x).count(), 8);
    }

    #[test]
    fn quantum_always_correct() {
        let g = random_connected(10, 0.2, 3);
        let net = Network::new(&g);
        for seed in 0..8 {
            let ans = if seed % 2 == 0 { DjAnswer::Constant } else { DjAnswer::Balanced };
            let inst = DjInstance::random(10, 32, ans, seed);
            let res = quantum_dj(&net, &inst, seed).unwrap().unwrap();
            assert_eq!(res.answer, ans, "seed {seed}: exactness violated");
            assert_eq!(res.batches, 1);
        }
    }

    #[test]
    fn classical_exact_always_correct_but_slow() {
        let g = path(12);
        let net = Network::new(&g);
        let inst = DjInstance::random(12, 256, DjAnswer::Balanced, 4);
        let cr = classical_exact_dj(&net, &inst, 1).unwrap();
        assert_eq!(cr.answer, DjAnswer::Balanced);
        let qr = quantum_dj(&net, &inst, 1).unwrap().unwrap();
        assert!(
            qr.rounds * 2 < cr.rounds,
            "quantum {} should beat classical {}",
            qr.rounds,
            cr.rounds
        );
    }

    #[test]
    fn sampling_dj_is_fast_but_errs_on_constant_never() {
        let g = path(8);
        let net = Network::new(&g);
        let inst = DjInstance::random(8, 128, DjAnswer::Constant, 5);
        let res = classical_sampling_dj(&net, &inst, 6, 2).unwrap();
        assert_eq!(res.answer, DjAnswer::Constant);
    }

    #[test]
    fn rounds_independent_of_k_for_quantum() {
        // Theorem 17: rounds grow only logarithmically in k.
        let g = path(10);
        let net = Network::new(&g);
        let small = DjInstance::random(10, 16, DjAnswer::Balanced, 6);
        let large = DjInstance::random(10, 1024, DjAnswer::Balanced, 7);
        let rs = quantum_dj(&net, &small, 1).unwrap().unwrap().rounds;
        let rl = quantum_dj(&net, &large, 1).unwrap().unwrap().rounds;
        assert!(rl <= rs * 4, "k=16: {rs} rounds, k=1024: {rl} rounds");
    }
}
