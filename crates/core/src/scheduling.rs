//! Meeting scheduling (paper §4.1, Lemmas 10–11).
//!
//! Each of the `n` nodes holds a private availability calendar over `k`
//! time slots; the goal is the slot maximizing the number of available
//! nodes, i.e. `argmax_i Σ_v x_i^{(v)}`.
//!
//! * **Quantum**: parallel maximum finding (Lemma 3) with `p = D` through
//!   the framework — `Õ(√(kD) + D)` measured rounds.
//! * **Classical baseline**: the trivial one-batch `p = k` algorithm
//!   (stream every slot total to the leader) — `Θ(k + D)` rounds.
//! * **Lower bounds** (Lemma 11): `Ω(k/log n + D)` classical,
//!   `Ω(∛(kD²) + √k)` quantum, from two-party disjointness on the
//!   dumbbell graph.

use crate::framework::{CongestOracle, StoredValues};
use congest::aggregate::CommOp;
use congest::graph::bits_for;
use congest::runtime::{Network, RoundLedger, RuntimeError};
use pquery::minimum::{find_extremum, Extremum};
use pquery::oracle::BatchSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A meeting-scheduling instance: `availability[v][i]` = node `v` is free
/// in slot `i`.
#[derive(Debug, Clone)]
pub struct MeetingInstance {
    /// `n × k` availability matrix.
    pub availability: Vec<Vec<bool>>,
}

impl MeetingInstance {
    /// Random instance: each node is free in each slot independently with
    /// probability `p_free`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0`, or `p_free ∉ [0, 1]`.
    pub fn random(n: usize, k: usize, p_free: f64, seed: u64) -> Self {
        assert!(n > 0 && k > 0);
        assert!((0.0..=1.0).contains(&p_free));
        let mut rng = StdRng::seed_from_u64(seed);
        MeetingInstance {
            availability: (0..n).map(|_| (0..k).map(|_| rng.gen_bool(p_free)).collect()).collect(),
        }
    }

    /// Number of slots.
    pub fn k(&self) -> usize {
        self.availability[0].len()
    }

    /// Per-slot attendance totals (centralized ground truth).
    pub fn attendance(&self) -> Vec<u64> {
        let k = self.k();
        (0..k).map(|i| self.availability.iter().filter(|row| row[i]).count() as u64).collect()
    }

    /// The maximum attendance (ground truth).
    pub fn best_attendance(&self) -> u64 {
        self.attendance().into_iter().max().unwrap_or(0)
    }
}

/// Result of a scheduling run.
#[derive(Debug, Clone)]
pub struct MeetingResult {
    /// The chosen slot.
    pub slot: usize,
    /// Its attendance.
    pub attendance: u64,
    /// Measured rounds (total over all phases).
    pub rounds: usize,
    /// Oracle batches used.
    pub batches: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

fn provider_for(net: &Network<'_>, inst: &MeetingInstance) -> StoredValues {
    let n = net.graph().n();
    assert_eq!(inst.availability.len(), n, "instance size must match the network");
    let local: Vec<Vec<u64>> =
        inst.availability.iter().map(|row| row.iter().map(|&b| b as u64).collect()).collect();
    let q = bits_for(n as u64);
    StoredValues::new(local, q, CommOp::Sum)
}

/// Quantum meeting scheduling (Lemma 10): `Õ(√(kD) + D)` measured rounds,
/// success probability ≥ 2/3.
///
/// # Errors
///
/// Propagates [`RuntimeError`] from the network protocols.
pub fn quantum_meeting_scheduling(
    net: &Network<'_>,
    inst: &MeetingInstance,
    seed: u64,
) -> Result<MeetingResult, RuntimeError> {
    let provider = provider_for(net, inst);
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let p = oracle.suggested_p(); // p = Θ(D)
    oracle.set_p(p);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5_5a5a);
    let out = find_extremum(&mut oracle, Extremum::Max, &mut rng);
    Ok(MeetingResult {
        slot: out.index,
        attendance: out.value,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Classical baseline: the trivial parallel-query algorithm — one batch of
/// `p = k` queries (every slot total streams to the leader), `Θ(k + D)`
/// measured rounds, deterministic.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_meeting_scheduling(
    net: &Network<'_>,
    inst: &MeetingInstance,
    seed: u64,
) -> Result<MeetingResult, RuntimeError> {
    let provider = provider_for(net, inst);
    let k = inst.k();
    let mut oracle = CongestOracle::setup(net, provider, k, seed)?;
    let all: Vec<usize> = (0..k).collect();
    let totals = oracle.query(&all);
    let (slot, &attendance) =
        totals.iter().enumerate().max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i))).expect("k >= 1");
    Ok(MeetingResult {
        slot,
        attendance,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Lemma 10's upper bound: `O((√(kD) + D)·⌈log k / log n⌉)`.
pub fn quantum_upper_bound(k: usize, d: usize, n: usize) -> f64 {
    let log_fac = (bits_for(k as u64) as f64 / bits_for(n as u64) as f64).ceil().max(1.0);
    ((k as f64 * d as f64).sqrt() + d as f64) * log_fac
}

/// Lemma 11's classical lower bound: `Ω(k/log n + D)`.
pub fn classical_lower_bound(k: usize, d: usize, n: usize) -> f64 {
    k as f64 / bits_for(n as u64) as f64 + d as f64
}

/// Lemma 11's quantum lower bound: `Ω(∛(kD²) + √k)`.
pub fn quantum_lower_bound(k: usize, d: usize) -> f64 {
    (k as f64 * (d as f64).powi(2)).cbrt() + (k as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{dumbbell, grid, random_connected};

    #[test]
    fn attendance_ground_truth() {
        let inst = MeetingInstance {
            availability: vec![vec![true, false], vec![true, true], vec![false, true]],
        };
        assert_eq!(inst.attendance(), vec![2, 2]);
        assert_eq!(inst.best_attendance(), 2);
    }

    #[test]
    fn classical_finds_exact_best() {
        let g = grid(4, 4);
        let net = Network::new(&g);
        let inst = MeetingInstance::random(16, 24, 0.4, 3);
        let res = classical_meeting_scheduling(&net, &inst, 1).unwrap();
        assert_eq!(res.attendance, inst.best_attendance());
        assert_eq!(res.batches, 1);
        assert_eq!(inst.attendance()[res.slot], res.attendance);
    }

    #[test]
    fn quantum_finds_best_usually() {
        let g = random_connected(20, 0.1, 7);
        let net = Network::new(&g);
        let inst = MeetingInstance::random(20, 32, 0.35, 5);
        let best = inst.best_attendance();
        let mut hits = 0;
        for seed in 0..6 {
            let res = quantum_meeting_scheduling(&net, &inst, seed).unwrap();
            // The reported slot's attendance is always genuine.
            assert_eq!(inst.attendance()[res.slot], res.attendance);
            if res.attendance == best {
                hits += 1;
            }
        }
        assert!(hits >= 4, "{hits}/6");
    }

    #[test]
    fn quantum_beats_classical_for_large_k_small_d() {
        // Star-like graph (small D), many slots: √(kD) ≪ k.
        let g = random_connected(16, 0.3, 2);
        let net = Network::new(&g);
        let inst = MeetingInstance::random(16, 4000, 0.3, 9);
        let qr = quantum_meeting_scheduling(&net, &inst, 3).unwrap();
        let cr = classical_meeting_scheduling(&net, &inst, 3).unwrap();
        assert!(qr.rounds < cr.rounds, "quantum {} !< classical {}", qr.rounds, cr.rounds);
    }

    #[test]
    fn bounds_ordering_on_dumbbell() {
        let (g, _) = dumbbell(5, 5, 20);
        let d = g.diameter().unwrap() as usize;
        let k = 4000;
        let n = g.n();
        assert!(quantum_lower_bound(k, d) <= quantum_upper_bound(k, d, n) * 10.0);
        assert!(quantum_upper_bound(k, d, n) < classical_lower_bound(k, d, n) * 10.0);
    }
}
