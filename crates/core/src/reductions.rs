//! The paper's lower-bound machinery: explicit reductions from two-party
//! communication problems to the CONGEST problems (Lemmas 11, 13, 15 and
//! Theorem 18).
//!
//! Each reduction builds the exact gadget graph and input assignment from
//! the proof, so that *solving the CONGEST problem solves the two-party
//! problem* — which is what transfers the `Ω(k)` communication bounds of
//! set disjointness [KS87; Raz90] / Deutsch–Jozsa `[BCW98]`, and (via
//! `[MN20]`) the quantum `Ω(∛(kD²) + √k)` bounds, to round lower bounds.
//! Tests verify the reductions end to end: running our solvers on the
//! gadget decides the original instance.

use crate::deutsch_jozsa::DjInstance;
use crate::distinctness::DistinctnessInstance;
use crate::scheduling::MeetingInstance;
use congest::generators::dumbbell;
use congest::graph::Graph;
use pquery::deutsch_jozsa::DjAnswer;

/// A two-party set-disjointness instance: Alice holds `a ∈ {0,1}^k`, Bob
/// holds `b ∈ {0,1}^k`; the question is whether some index has
/// `aᵢ = bᵢ = 1` ("intersecting").
#[derive(Debug, Clone)]
pub struct DisjointnessInstance {
    /// Alice's characteristic vector.
    pub a: Vec<bool>,
    /// Bob's characteristic vector.
    pub b: Vec<bool>,
}

impl DisjointnessInstance {
    /// Construct, checking equal lengths.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or are zero.
    pub fn new(a: Vec<bool>, b: Vec<bool>) -> Self {
        assert!(!a.is_empty() && a.len() == b.len());
        DisjointnessInstance { a, b }
    }

    /// Ground truth: do the sets intersect?
    pub fn intersects(&self) -> bool {
        self.a.iter().zip(&self.b).any(|(&x, &y)| x && y)
    }

    /// Input length `k`.
    pub fn k(&self) -> usize {
        self.a.len()
    }
}

/// The Lemma 11 gadget: a dumbbell with Alice's calendar at hub A, Bob's
/// at hub B, empty calendars elsewhere. The sets intersect iff the best
/// slot has attendance 2.
#[derive(Debug)]
pub struct SchedulingGadget {
    /// The gadget network (hubs `hub_a`, `hub_b` at distance `dist`).
    pub graph: Graph,
    /// The meeting-scheduling input.
    pub instance: MeetingInstance,
    /// Hub A's node id.
    pub hub_a: usize,
    /// Hub B's node id.
    pub hub_b: usize,
}

/// Build the Lemma 11 reduction with hub distance `dist ≥ 1`.
pub fn disjointness_to_scheduling(inst: &DisjointnessInstance, dist: usize) -> SchedulingGadget {
    let (graph, (hub_a, hub_b)) = dumbbell(2, 2, dist.saturating_sub(1));
    let n = graph.n();
    let k = inst.k();
    let mut availability = vec![vec![false; k]; n];
    availability[hub_a] = inst.a.clone();
    availability[hub_b] = inst.b.clone();
    SchedulingGadget { graph, instance: MeetingInstance { availability }, hub_a, hub_b }
}

/// Decode a scheduling answer back to the disjointness answer.
pub fn decode_scheduling(best_attendance: u64) -> bool {
    best_attendance == 2
}

/// The Lemma 13 gadget: a distinctness-in-distributed-vector instance of
/// length `2k` whose aggregate has a collision iff the sets intersect.
///
/// Following the proof (1-based values):
/// `x^{(A)}_i = i` if `aᵢ = 1`, else `2k + i` (for `i ≤ k`);
/// `x^{(B)}_{k+i} = i` if `bᵢ = 1`, else `4k + i`; all other entries use
/// fresh distinct fillers.
#[derive(Debug)]
pub struct DistinctnessGadget {
    /// The gadget network.
    pub graph: Graph,
    /// The distinctness input (`2k` entries).
    pub instance: DistinctnessInstance,
}

/// Build the Lemma 13 reduction with hub distance `dist ≥ 1`.
pub fn disjointness_to_distinctness(
    inst: &DisjointnessInstance,
    dist: usize,
) -> DistinctnessGadget {
    let (graph, (hub_a, hub_b)) = dumbbell(2, 2, dist.saturating_sub(1));
    let n = graph.n();
    let k = inst.k();
    let len = 2 * k;
    let mut local = vec![vec![0u64; len]; n];
    for i in 0..k {
        // 1-based value encoding, exactly the proof's case split.
        let iv = (i + 1) as u64;
        local[hub_a][i] = if inst.a[i] { iv } else { 2 * k as u64 + iv };
        local[hub_b][k + i] = if inst.b[i] { iv } else { 4 * k as u64 + iv };
    }
    DistinctnessGadget { graph, instance: DistinctnessInstance { local, n_bound: 6 * k as u64 } }
}

/// Decode: a collision exists iff the sets intersect; moreover the
/// colliding indices name the witness: `(i, k + i)`.
pub fn decode_distinctness(pair: Option<(usize, usize)>, k: usize) -> Option<usize> {
    pair.map(|(i, j)| {
        debug_assert_eq!(j, k + i, "collisions are always (i, k+i) in the gadget");
        i
    })
}

/// The Lemma 15 gadget: element distinctness *between nodes* on a double
/// star — Alice's set fills one star's leaves, Bob's the other; a
/// duplicate value exists iff the sets intersect.
#[derive(Debug)]
pub struct BetweenNodesGadget {
    /// The double-star network.
    pub graph: Graph,
    /// One value per node.
    pub values: Vec<u64>,
}

/// Build the Lemma 15 reduction. Empty sets get a single dummy leaf so the
/// star stays non-degenerate.
pub fn disjointness_to_between_nodes(inst: &DisjointnessInstance) -> BetweenNodesGadget {
    let k = inst.k() as u64;
    let sa: Vec<u64> =
        inst.a.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| (i + 1) as u64).collect();
    let sb: Vec<u64> =
        inst.b.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| (i + 1) as u64).collect();
    let la = sa.len().max(1);
    let lb = sb.len().max(1);
    let graph = congest::generators::double_star(la, lb);
    let hub_a = 0usize;
    let hub_b = la + 1;
    let n = graph.n();
    // Hubs and padding leaves get fresh values > k that never collide.
    let mut fresh = 10 * k + 10;
    let mut next_fresh = || {
        fresh += 1;
        fresh
    };
    let mut values = vec![0u64; n];
    values[hub_a] = next_fresh();
    values[hub_b] = next_fresh();
    for (slot, leaf) in (1..=la).enumerate() {
        values[leaf] = sa.get(slot).copied().unwrap_or_else(&mut next_fresh);
    }
    for (slot, leaf) in ((hub_b + 1)..n).enumerate() {
        values[leaf] = sb.get(slot).copied().unwrap_or_else(&mut next_fresh);
    }
    BetweenNodesGadget { graph, values }
}

/// The Theorem 18 gadget: a line of length `dist` with Alice's DJ share at
/// one end and Bob's at the other; the distributed XOR is `a ⊕ b`, the
/// two-party Deutsch–Jozsa input of `[BCW98]`.
#[derive(Debug)]
pub struct DjGadget {
    /// The line network.
    pub graph: Graph,
    /// The distributed DJ input.
    pub instance: DjInstance,
}

/// Build the Theorem 18 reduction. `a ⊕ b` must satisfy the DJ promise
/// (constant or balanced).
///
/// # Panics
///
/// Panics if the promise is violated or `dist == 0`.
pub fn two_party_dj_to_distributed(a: &[bool], b: &[bool], dist: usize) -> DjGadget {
    assert!(dist >= 1 && a.len() == b.len());
    let agg: Vec<bool> = a.iter().zip(b).map(|(&x, &y)| x ^ y).collect();
    qsim::deutsch_jozsa::check_promise(&agg).expect("a ⊕ b must satisfy the DJ promise");
    let n = dist + 1;
    let graph = congest::generators::path(n);
    let k = a.len();
    let mut local = vec![vec![false; k]; n];
    local[0] = a.to_vec();
    local[n - 1] = b.to_vec();
    DjGadget { graph, instance: DjInstance { local } }
}

/// Decode a distributed DJ answer back to the two-party answer.
pub fn decode_dj(answer: DjAnswer) -> DjAnswer {
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deutsch_jozsa::quantum_dj;
    use crate::distinctness::{classical_distinctness, quantum_distinctness_between_nodes};
    use crate::scheduling::classical_meeting_scheduling;
    use congest::runtime::Network;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_disjointness(
        k: usize,
        force_intersect: Option<bool>,
        seed: u64,
    ) -> DisjointnessInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let a: Vec<bool> = (0..k).map(|_| rng.gen_bool(0.3)).collect();
            let b: Vec<bool> = (0..k).map(|_| rng.gen_bool(0.3)).collect();
            let inst = DisjointnessInstance::new(a, b);
            match force_intersect {
                None => return inst,
                Some(want) if inst.intersects() == want => return inst,
                _ => continue,
            }
        }
    }

    #[test]
    fn scheduling_reduction_decodes_correctly() {
        for seed in 0..10 {
            let want = seed % 2 == 0;
            let inst = random_disjointness(24, Some(want), seed);
            let gadget = disjointness_to_scheduling(&inst, 6);
            let net = Network::new(&gadget.graph);
            let res = classical_meeting_scheduling(&net, &gadget.instance, seed).unwrap();
            assert_eq!(decode_scheduling(res.attendance), want, "seed {seed}");
        }
    }

    #[test]
    fn distinctness_reduction_decodes_correctly() {
        for seed in 0..10 {
            let want = seed % 2 == 0;
            let inst = random_disjointness(16, Some(want), seed + 50);
            let gadget = disjointness_to_distinctness(&inst, 5);
            let net = Network::new(&gadget.graph);
            let res = classical_distinctness(&net, &gadget.instance, seed).unwrap();
            let witness = decode_distinctness(res.pair, inst.k());
            assert_eq!(witness.is_some(), want, "seed {seed}");
            if let Some(i) = witness {
                assert!(inst.a[i] && inst.b[i], "witness index must be in both sets");
            }
        }
    }

    #[test]
    fn distinctness_gadget_aggregate_structure() {
        let inst = DisjointnessInstance::new(
            vec![true, false, true, false],
            vec![true, true, false, false],
        );
        let gadget = disjointness_to_distinctness(&inst, 3);
        let agg = gadget.instance.aggregate();
        assert_eq!(agg.len(), 8);
        // Index 0 (a₀=1) has value 1; index 4 (b₀=1) has value 1: collision.
        assert_eq!(agg[0], 1);
        assert_eq!(agg[4], 1);
        // Index 2 (a₂=1) has value 3; index 6 (b₂=0) has 4k+3 = 19.
        assert_eq!(agg[2], 3);
        assert_eq!(agg[6], 19);
    }

    #[test]
    fn between_nodes_reduction_decodes_correctly() {
        let mut correct = 0;
        let mut total = 0;
        for seed in 0..8 {
            let want = seed % 2 == 0;
            let inst = random_disjointness(12, Some(want), seed + 90);
            let gadget = disjointness_to_between_nodes(&inst);
            let net = Network::new(&gadget.graph);
            // The quantum between-nodes solver is one-sided; repeat a few
            // times for the "intersecting" direction.
            let mut found = false;
            for rep in 0..4 {
                if quantum_distinctness_between_nodes(&net, &gadget.values, seed * 10 + rep)
                    .unwrap()
                    .pair
                    .is_some()
                {
                    found = true;
                    break;
                }
            }
            total += 1;
            if found == want {
                correct += 1;
            }
            if !want {
                assert!(!found, "disjoint sets must never produce a duplicate");
            }
        }
        assert!(correct >= total - 2, "{correct}/{total}");
    }

    #[test]
    fn dj_reduction_decodes_both_promises() {
        let k = 16;
        // Constant: b = a (XOR all-zero).
        let a: Vec<bool> = (0..k).map(|i| i % 3 == 0).collect();
        let gadget = two_party_dj_to_distributed(&a, &a, 9);
        let net = Network::new(&gadget.graph);
        let res = quantum_dj(&net, &gadget.instance, 1).unwrap().unwrap();
        assert_eq!(decode_dj(res.answer), DjAnswer::Constant);
        // Balanced: b flips exactly half the positions.
        let mut b = a.clone();
        for bit in b.iter_mut().take(k / 2) {
            *bit = !*bit;
        }
        let gadget = two_party_dj_to_distributed(&a, &b, 9);
        let net = Network::new(&gadget.graph);
        let res = quantum_dj(&net, &gadget.instance, 1).unwrap().unwrap();
        assert_eq!(decode_dj(res.answer), DjAnswer::Balanced);
    }

    #[test]
    #[should_panic(expected = "promise")]
    fn dj_reduction_rejects_off_promise() {
        let a = vec![true, false, false, false];
        let b = vec![false; 4];
        two_party_dj_to_distributed(&a, &b, 3);
    }
}
