//! Triangle detection — step 1 of the girth algorithm (Corollary 26).
//!
//! * **Quantum**: the `Õ(n^{1/5})` algorithm of `[CFGLO22]` is a cited
//!   black box (like the clustering of Lemma 24); we charge its round
//!   count and compute the answer structurally — see DESIGN.md's
//!   substitution table.
//! * **Classical baseline**: an *honest protocol* — every node streams its
//!   adjacency list to each neighbor, one id per edge per round; a node
//!   that sees a common neighbor closes a triangle. `O(Δ)` measured
//!   rounds (`Δ` = max degree), the folklore baseline.

use congest::graph::{bits_for, Graph, NodeId};
use congest::runtime::{
    Ctx, MessageSize, Network, NodeProtocol, RoundLedger, RunStats, RuntimeError,
};

/// Reference (centralized): find a triangle via sorted-adjacency
/// intersection, `O(Σ deg²)`.
pub fn find_triangle(g: &Graph) -> Option<(NodeId, NodeId, NodeId)> {
    for &(u, v) in g.edges() {
        // Intersect neighbor lists of u and v (both sorted).
        let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
        while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => a = &a[1..],
                std::cmp::Ordering::Greater => b = &b[1..],
                std::cmp::Ordering::Equal => {
                    if x != u && x != v {
                        return Some((u, v, x));
                    }
                    a = &a[1..];
                    b = &b[1..];
                }
            }
        }
    }
    None
}

/// One adjacency-list entry in flight: "I am adjacent to `neighbor`".
#[derive(Debug, Clone, Copy)]
pub struct AdjMsg {
    /// A neighbor of the sender.
    pub neighbor: NodeId,
}

impl MessageSize for AdjMsg {
    fn size_bits(&self) -> u64 {
        1 + bits_for(self.neighbor as u64)
    }
}

/// The folklore classical protocol: stream adjacency lists to neighbors;
/// a node holding edge `{v, w}` that learns `u` is adjacent to both closes
/// the triangle `{u, v, w}`.
#[derive(Debug)]
pub struct AdjacencyExchangeProtocol {
    my_neighbors: Vec<NodeId>,
    next_to_send: usize,
    /// Triangle witnessed at this node, if any.
    found: Option<(NodeId, NodeId, NodeId)>,
}

impl AdjacencyExchangeProtocol {
    /// Instances for all nodes of `g`.
    pub fn instances(g: &Graph) -> Vec<Self> {
        (0..g.n())
            .map(|v| AdjacencyExchangeProtocol {
                my_neighbors: g.neighbors(v).to_vec(),
                next_to_send: 0,
                found: None,
            })
            .collect()
    }

    /// The triangle this node witnessed, if any.
    pub fn found(&self) -> Option<(NodeId, NodeId, NodeId)> {
        self.found
    }
}

impl NodeProtocol for AdjacencyExchangeProtocol {
    type Msg = AdjMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, AdjMsg>, inbox: &[(NodeId, AdjMsg)]) {
        let me = ctx.me();
        for (from, msg) in inbox {
            // `from` is adjacent to `msg.neighbor`; if we are too (and the
            // three are distinct), {me, from, neighbor} is a triangle.
            if msg.neighbor != me && self.my_neighbors.binary_search(&msg.neighbor).is_ok() {
                let mut tri = [me, *from, msg.neighbor];
                tri.sort_unstable();
                self.found = Some((tri[0], tri[1], tri[2]));
            }
        }
        // Stream one adjacency entry per round to every neighbor.
        if self.next_to_send < self.my_neighbors.len() {
            let entry = self.my_neighbors[self.next_to_send];
            self.next_to_send += 1;
            let targets: Vec<NodeId> = ctx.neighbors().to_vec();
            for w in targets {
                ctx.send(w, AdjMsg { neighbor: entry });
            }
        }
    }

    fn is_done(&self) -> bool {
        self.next_to_send >= self.my_neighbors.len()
    }
}

/// Result of a triangle search.
#[derive(Debug, Clone)]
pub struct TriangleResult {
    /// A triangle, if one exists.
    pub triangle: Option<(NodeId, NodeId, NodeId)>,
    /// Measured (classical) or charged (quantum black-box) rounds.
    pub rounds: usize,
    /// Phase ledger.
    pub ledger: RoundLedger,
}

/// Classical triangle detection: the honest adjacency-exchange protocol,
/// `O(Δ)` measured rounds, deterministic and exact.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_triangle_detection(net: &Network<'_>) -> Result<TriangleResult, RuntimeError> {
    let g = net.graph();
    let mut ledger = RoundLedger::new();
    let run = net.run(AdjacencyExchangeProtocol::instances(g))?;
    ledger.record("adjacency-exchange", run.stats);
    let triangle = run.nodes.iter().find_map(|p| p.found());
    debug_assert_eq!(triangle.is_some(), find_triangle(g).is_some());
    let rounds = ledger.total_rounds();
    Ok(TriangleResult { triangle, rounds, ledger })
}

/// Round charge of the cited `Õ(n^{1/5})` quantum triangle finder
/// `[CFGLO22]`: `⌈n^{1/5}⌉·⌈log n⌉²`.
pub fn quantum_triangle_charge(n: usize) -> usize {
    let log_n = (usize::BITS - n.leading_zeros()) as usize;
    ((n as f64).powf(0.2).ceil() as usize) * log_n * log_n
}

/// Quantum triangle detection: the `[CFGLO22]` black box — answer computed
/// structurally, rounds charged (substitution; see DESIGN.md).
///
/// # Errors
///
/// Never fails; the `Result` keeps the signature uniform with the other
/// detectors.
pub fn quantum_triangle_detection(net: &Network<'_>) -> Result<TriangleResult, RuntimeError> {
    let g = net.graph();
    let mut ledger = RoundLedger::new();
    ledger.record(
        "triangle-blackbox(charged)",
        RunStats { rounds: quantum_triangle_charge(g.n()), ..Default::default() },
    );
    let triangle = find_triangle(g);
    let rounds = ledger.total_rounds();
    Ok(TriangleResult { triangle, rounds, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{complete, cycle, grid, hypercube, lollipop, random_tree, star};

    #[test]
    fn reference_triangle_detection() {
        assert!(find_triangle(&complete(4)).is_some());
        assert!(find_triangle(&lollipop(4, 5)).is_some());
        assert!(find_triangle(&grid(4, 4)).is_none());
        assert!(find_triangle(&hypercube(3)).is_none());
        assert!(find_triangle(&cycle(5)).is_none());
        let t = find_triangle(&complete(5)).unwrap();
        assert!(t.0 < t.1 && t.1 < t.2);
    }

    #[test]
    fn classical_protocol_matches_reference() {
        for g in [complete(6), lollipop(5, 8), grid(5, 4), cycle(9), star(10), random_tree(25, 3)] {
            let net = Network::new(&g);
            let res = classical_triangle_detection(&net).unwrap();
            assert_eq!(res.triangle.is_some(), find_triangle(&g).is_some(), "{g:?}");
            if let Some((a, b, c)) = res.triangle {
                assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
            }
        }
    }

    #[test]
    fn classical_rounds_scale_with_max_degree() {
        let sparse = cycle(40);
        let dense = star(40);
        let r_sparse = classical_triangle_detection(&Network::new(&sparse)).unwrap().rounds;
        let r_dense = classical_triangle_detection(&Network::new(&dense)).unwrap().rounds;
        assert!(r_dense > 5 * r_sparse, "Δ=39 star {r_dense} vs Δ=2 cycle {r_sparse}");
    }

    #[test]
    fn quantum_charge_sublinear() {
        let g = lollipop(6, 10);
        let net = Network::new(&g);
        let res = quantum_triangle_detection(&net).unwrap();
        assert!(res.triangle.is_some());
        assert!(quantum_triangle_charge(1_000_000) < 1_000_000 / 2);
    }
}
