//! Distributed amplitude amplification (paper §6, Lemmas 27–28).
//!
//! The amplification iterate for a state prepared by an `R_ψ`-round
//! distributed subroutine costs `O(R_ψ + D)` rounds: the "good" reflection
//! is a local `Z` at the flag-holding node, and the reflection through
//! `|ψ⟩` needs `U_ψ†`, a distributed **all-zero check** (each node checks
//! its local registers, an AND convergecasts to the leader, the leader
//! applies `Z`, everything uncomputes), and `U_ψ` again.
//!
//! Here the subroutine is concrete: the leader draws a fresh seed and
//! broadcasts it down the tree (a *measured* `O(D + |seed|/log n)` phase);
//! all nodes then locally sample shares of a search-space element, which is
//! "good" with a known probability `p`. Each amplification iterate runs the
//! subroutine and a *measured* AND-convergecast; the iterate count follows
//! Corollary 28 (`O((1/√p)·log(1/δ))`), and the final measurement outcome
//! is sampled from the amplified distribution `sin²((2j+1)θ)` — the same
//! law the statevector tests of `qsim::amplitude` verify exactly.

use congest::aggregate::{aggregate_batch, CommOp};
use congest::bfs::{build_bfs_tree, elect_leader, BfsTree};
use congest::runtime::{Network, RoundLedger, RuntimeError};
use congest::tree_comm::{distribute_register, Register, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distributed state-preparation subroutine: broadcasting `seed_bits` of
/// fresh randomness and locally sampling, with success (good-flag)
/// probability `p_good`.
#[derive(Debug, Clone, Copy)]
pub struct PreparationSubroutine {
    /// Qubits of shared randomness per preparation.
    pub seed_bits: u64,
    /// Probability that a preparation lands in the good subspace.
    pub p_good: f64,
}

impl PreparationSubroutine {
    /// A subroutine with the given good probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p_good <= 1`.
    pub fn new(seed_bits: u64, p_good: f64) -> Self {
        assert!(p_good > 0.0 && p_good <= 1.0);
        assert!(seed_bits >= 1);
        PreparationSubroutine { seed_bits, p_good }
    }
}

/// Result of a distributed amplitude amplification.
#[derive(Debug, Clone)]
pub struct AmplificationResult {
    /// Whether a good outcome was obtained.
    pub success: bool,
    /// Amplification iterates applied (over all boosting repetitions).
    pub iterates: usize,
    /// Measured rounds.
    pub rounds: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// One measured amplification-iterate's network work: a preparation
/// (seed broadcast) and the all-zero AND-convergecast of the `|ψ⟩`
/// reflection (Lemma 27).
fn iterate_cost(
    net: &Network<'_>,
    tree: &BfsTree,
    sub: &PreparationSubroutine,
    rng: &mut StdRng,
    ledger: &mut RoundLedger,
) -> Result<(), RuntimeError> {
    // U_ψ: broadcast fresh seed (the preparation's communication).
    let seed_val: u64 = rng.gen::<u64>() & ((1u64 << sub.seed_bits.min(63)) - 1).max(1);
    let reg = Register::from_value(sub.seed_bits, seed_val & mask(sub.seed_bits));
    let (_copies, stats) = distribute_register(net, &tree.views, reg, Schedule::Pipelined)?;
    ledger.record("iterate/prepare-broadcast", stats);
    // Reflection through |ψ⟩: local all-zero checks AND-converge to the
    // leader (one 1-bit value per node).
    let ones: Vec<Vec<u64>> = vec![vec![1u64]; net.graph().n()];
    let agg = aggregate_batch(net, &tree.views, &ones, 1, CommOp::And)?;
    ledger.record("iterate/zero-check-and", agg.stats);
    debug_assert_eq!(agg.values[0], 1);
    Ok(())
}

fn mask(bits: u64) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Distributed amplitude amplification (Corollary 28): boost the
/// subroutine's success probability to `1 − δ` in
/// `O((R_ψ + D)·(1/√p)·log(1/δ))` measured rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics unless `0 < delta < 1`.
pub fn amplitude_amplification(
    net: &Network<'_>,
    sub: PreparationSubroutine,
    delta: f64,
    seed: u64,
) -> Result<AmplificationResult, RuntimeError> {
    assert!(delta > 0.0 && delta < 1.0);
    let mut ledger = RoundLedger::new();
    let mut rng = StdRng::seed_from_u64(seed);

    let (leader, stats) = elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);

    let theta = sub.p_good.sqrt().min(1.0).asin();
    let j_opt = ((std::f64::consts::FRAC_PI_4) / theta).floor().max(0.0) as usize;
    let reps = (1.0 / delta).ln().max(1.0).ceil() as usize;

    let mut iterates = 0usize;
    let mut success = false;
    for _ in 0..reps {
        for _ in 0..j_opt {
            iterate_cost(net, &tree, &sub, &mut rng, &mut ledger)?;
            iterates += 1;
        }
        // Final preparation + measurement; outcome follows the sine law.
        iterate_cost(net, &tree, &sub, &mut rng, &mut ledger)?;
        iterates += 1;
        let p_amp = (((2 * j_opt + 1) as f64) * theta).sin().powi(2);
        // Verified good-check: one more AND/OR convergecast round (already
        // part of the iterate cost above).
        if rng.gen_bool(p_amp.clamp(0.0, 1.0)) {
            success = true;
            break;
        }
    }
    let rounds = ledger.total_rounds();
    Ok(AmplificationResult { success, iterates, rounds, ledger })
}

/// Lemma 28's round bound: `O((R_ψ + D)·(1/√p)·log(1/δ))`.
pub fn amplification_upper_bound(r_psi: usize, d: usize, p: f64, delta: f64) -> f64 {
    (r_psi + d) as f64 / p.sqrt() * (1.0 / delta).ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{grid, path};

    #[test]
    fn amplification_succeeds_whp() {
        let g = grid(4, 4);
        let net = Network::new(&g);
        let sub = PreparationSubroutine::new(16, 0.02);
        let mut ok = 0;
        for seed in 0..10 {
            let res = amplitude_amplification(&net, sub, 0.05, seed).unwrap();
            if res.success {
                ok += 1;
            }
        }
        assert!(ok >= 9, "{ok}/10 with δ = 0.05");
    }

    #[test]
    fn iterates_scale_inverse_sqrt_p() {
        let g = path(8);
        let net = Network::new(&g);
        let runs = |p: f64| -> f64 {
            let mut total = 0usize;
            for seed in 0..6 {
                total += amplitude_amplification(&net, PreparationSubroutine::new(8, p), 0.2, seed)
                    .unwrap()
                    .iterates;
            }
            total as f64 / 6.0
        };
        let i_small = runs(0.004);
        let i_large = runs(0.16);
        assert!(
            i_small / i_large > 3.0,
            "p × 40 should shrink iterates ~√40: {i_small} vs {i_large}"
        );
    }

    #[test]
    fn rounds_scale_with_diameter() {
        let sub = PreparationSubroutine::new(8, 0.1);
        let g1 = path(6);
        let n1 = Network::new(&g1);
        let r1 = amplitude_amplification(&n1, sub, 0.2, 1).unwrap();
        let g2 = path(48);
        let n2 = Network::new(&g2);
        let r2 = amplitude_amplification(&n2, sub, 0.2, 1).unwrap();
        assert!(
            r2.rounds > r1.rounds,
            "bigger D must cost more rounds: {} vs {}",
            r1.rounds,
            r2.rounds
        );
    }

    #[test]
    fn certain_subroutine_one_iterate() {
        let g = path(4);
        let net = Network::new(&g);
        let res =
            amplitude_amplification(&net, PreparationSubroutine::new(4, 1.0), 0.1, 3).unwrap();
        assert!(res.success);
        assert_eq!(res.iterates, 1, "p = 1 needs zero amplification");
    }
}
