//! Success-probability boosting — the paper's "Notation and conventions"
//! remark: a central leader combines `O(log n)` independent runs to push
//! the 2/3 success probability to `1 − n^{−c}`.
//!
//! All the paper's randomized algorithms here have *one-sided* error of a
//! monotone kind (a reported eccentricity is a genuine eccentricity, a
//! reported cycle is a genuine cycle), so the combiner is simply the
//! max/min over repetitions — no majority vote needed, and a single
//! repetition's failure only costs sharpness, never soundness.

use crate::eccentricity::{quantum_diameter, quantum_radius, EccExtremeResult};
use crate::girth::{quantum_girth, GirthResult};
use congest::graph::Dist;
use congest::runtime::{Network, RoundLedger, RuntimeError};

/// Repetitions needed so `(1/3)^r ≤ n^{−c}`: `⌈c·ln n / ln 3⌉`, at least 1.
pub fn repetitions(n: usize, c: f64) -> usize {
    assert!(c > 0.0);
    ((c * (n.max(2) as f64).ln()) / 3f64.ln()).ceil().max(1.0) as usize
}

/// A boosted answer with its total measured cost.
#[derive(Debug, Clone)]
pub struct Boosted<T> {
    /// The combined answer.
    pub value: T,
    /// Repetitions performed.
    pub repetitions: usize,
    /// Total measured rounds over all repetitions.
    pub rounds: usize,
    /// Combined ledger (phases prefixed by repetition index).
    pub ledger: RoundLedger,
}

/// Diameter with success probability `1 − n^{−c}`: max over repetitions
/// (each reported value is a genuine eccentricity ≤ D, so max only
/// improves).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn boosted_diameter(
    net: &Network<'_>,
    c: f64,
    seed: u64,
) -> Result<Boosted<Dist>, RuntimeError> {
    let reps = repetitions(net.graph().n(), c);
    let mut best: Option<EccExtremeResult> = None;
    let mut ledger = RoundLedger::new();
    for r in 0..reps {
        let res = quantum_diameter(net, seed.wrapping_add(r as u64 * 0x9e37))?;
        ledger.absorb(&format!("rep{r}"), res.ledger.clone());
        if best.as_ref().is_none_or(|b| res.value > b.value) {
            best = Some(res);
        }
    }
    let rounds = ledger.total_rounds();
    Ok(Boosted { value: best.expect("reps >= 1").value, repetitions: reps, rounds, ledger })
}

/// Radius with success probability `1 − n^{−c}`: min over repetitions.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn boosted_radius(net: &Network<'_>, c: f64, seed: u64) -> Result<Boosted<Dist>, RuntimeError> {
    let reps = repetitions(net.graph().n(), c);
    let mut best: Option<EccExtremeResult> = None;
    let mut ledger = RoundLedger::new();
    for r in 0..reps {
        let res = quantum_radius(net, seed.wrapping_add(r as u64 * 0x517c))?;
        ledger.absorb(&format!("rep{r}"), res.ledger.clone());
        if best.as_ref().is_none_or(|b| res.value < b.value) {
            best = Some(res);
        }
    }
    let rounds = ledger.total_rounds();
    Ok(Boosted { value: best.expect("reps >= 1").value, repetitions: reps, rounds, ledger })
}

/// Girth with success probability `1 − n^{−c}`: min over repetitions
/// (every reported length is a genuine cycle length ≥ girth).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn boosted_girth(
    net: &Network<'_>,
    mu: f64,
    c: f64,
    seed: u64,
) -> Result<Boosted<Option<usize>>, RuntimeError> {
    let reps = repetitions(net.graph().n(), c);
    let mut best: Option<GirthResult> = None;
    let mut ledger = RoundLedger::new();
    for r in 0..reps {
        let res = quantum_girth(net, mu, seed.wrapping_add(r as u64 * 0x2bad))?;
        ledger.absorb(&format!("rep{r}"), res.ledger.clone());
        let better = match (&best, &res.girth) {
            (None, _) => true,
            (Some(b), Some(l)) => b.girth.is_none_or(|bl| *l < bl),
            _ => false,
        };
        if better {
            best = Some(res);
        }
    }
    let rounds = ledger.total_rounds();
    Ok(Boosted { value: best.and_then(|b| b.girth), repetitions: reps, rounds, ledger })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{cycle_with_body, grid, random_connected};

    #[test]
    fn repetition_counts() {
        assert!(repetitions(1000, 1.0) >= 6);
        assert!(repetitions(1000, 2.0) >= repetitions(1000, 1.0));
        assert_eq!(repetitions(2, 0.1), 1);
    }

    #[test]
    fn boosted_diameter_nearly_always_exact() {
        let g = random_connected(30, 0.1, 7);
        let truth = g.diameter().unwrap();
        let net = Network::new(&g);
        for seed in 0..4 {
            let res = boosted_diameter(&net, 1.0, seed).unwrap();
            assert_eq!(res.value, truth, "seed {seed}");
            assert!(res.repetitions >= 2);
            assert_eq!(res.rounds, res.ledger.total_rounds());
        }
    }

    #[test]
    fn boosted_radius_nearly_always_exact() {
        let g = grid(6, 4);
        let truth = g.radius().unwrap();
        let net = Network::new(&g);
        for seed in 0..3 {
            assert_eq!(boosted_radius(&net, 1.0, seed).unwrap().value, truth);
        }
    }

    #[test]
    fn boosted_girth_exact() {
        let g = cycle_with_body(6, 24, 3);
        let net = Network::new(&g);
        for seed in 0..3 {
            assert_eq!(boosted_girth(&net, 0.5, 1.0, seed).unwrap().value, Some(6));
        }
    }

    #[test]
    fn boosting_costs_scale_with_reps() {
        let g = grid(5, 4);
        let net = Network::new(&g);
        let single = quantum_diameter(&net, 3).unwrap().rounds;
        let boosted = boosted_diameter(&net, 1.0, 3).unwrap();
        assert!(
            boosted.rounds >= boosted.repetitions * single / 4,
            "boosted {} vs single {} × {} reps",
            boosted.rounds,
            single,
            boosted.repetitions
        );
    }
}
