//! Distributed Simon's problem — a **bounded-error** exponential
//! separation through the framework.
//!
//! The paper's §4.3 shows an exact separation (Deutsch–Jozsa) and notes
//! that in the two-player setting bounded-error separations are known and
//! "could be directly applied" to networks (footnote 3). This module makes
//! that concrete with Simon's problem: the nodes hold XOR shares of a
//! function table `f : {0,1}^m → {0,1}^m` promised to satisfy
//! `f(x) = f(y) ⇔ y ∈ {x, x⊕s}`; the network must find the hidden shift
//! `s`.
//!
//! * **Quantum**: `O(m)` superposed queries through Theorem 8 — each query
//!   ships an `m`-qubit index register (Lemma 7) and XOR-aggregates an
//!   `m`-bit value register; `O(m·(D + m/log n))` measured rounds. The
//!   per-iteration measurement outcome is a uniform `y ⊥ s`, validated
//!   exactly by `qsim::simon`.
//! * **Classical**: finding a collision needs `Ω(2^{m/2})` queries
//!   (birthday bound), whatever the round packing — we provide both the
//!   sampling baseline and the full-streaming baseline.

use crate::framework::{CongestOracle, StoredValues};
use congest::aggregate::CommOp;
use congest::runtime::{Network, RoundLedger, RuntimeError};
use pquery::oracle::BatchSource;
use qsim::gf2::Gf2Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distributed Simon instance: XOR shares of the function table.
#[derive(Debug, Clone)]
pub struct SimonInstance {
    /// `local[v][x]` = node `v`'s share of `f(x)` (m-bit values).
    pub local: Vec<Vec<u64>>,
    /// Register width `m`.
    pub m: usize,
    hidden: u64,
}

impl SimonInstance {
    /// Build shares of a Simon table with hidden shift `s` over `m` bits.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero/too wide, `m > 14`, or `n == 0`.
    pub fn random(n: usize, m: usize, s: u64, seed: u64) -> Self {
        assert!(n > 0 && (2..=14).contains(&m));
        let table = qsim::simon::simon_table(m, s, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51a0_2222);
        let size = table.len();
        let mask = (1u64 << m) - 1;
        let mut local = vec![vec![0u64; size]; n];
        for (x, &fx) in table.iter().enumerate() {
            let mut parity = 0u64;
            for node in local.iter_mut().take(n - 1) {
                let share = rng.gen::<u64>() & mask;
                node[x] = share;
                parity ^= share;
            }
            local[n - 1][x] = parity ^ fx;
        }
        SimonInstance { local, m, hidden: s }
    }

    /// The aggregate table (ground truth).
    pub fn table(&self) -> Vec<u64> {
        let size = self.local[0].len();
        (0..size).map(|x| self.local.iter().fold(0, |a, v| a ^ v[x])).collect()
    }

    /// The hidden shift (ground truth; used only for validation).
    pub fn hidden(&self) -> u64 {
        self.hidden
    }
}

/// Result of a distributed Simon run.
#[derive(Debug, Clone)]
pub struct SimonResult {
    /// The recovered shift, if found (and verified through charged
    /// queries).
    pub shift: Option<u64>,
    /// Measured rounds.
    pub rounds: usize,
    /// Oracle batches (= quantum iterations + verification).
    pub batches: usize,
    /// Total individual queries charged.
    pub queries: u64,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Quantum distributed Simon: `O(m)` superposed queries,
/// `O(m·(D + m/log n))` measured rounds, success probability ≥ 2/3
/// (one-sided: a returned shift is verified through the charged oracle).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn quantum_simon(
    net: &Network<'_>,
    inst: &SimonInstance,
    seed: u64,
) -> Result<SimonResult, RuntimeError> {
    let n = net.graph().n();
    assert_eq!(inst.local.len(), n);
    let m = inst.m;
    let provider = StoredValues::new(inst.local.clone(), m as u64, CommOp::Xor);
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5150);

    // Measurement law: y uniform over {y : y·s = 0} — exactly what the
    // statevector circuit produces (`qsim::simon::simon_sample`); here
    // sampled from the ground truth while each iteration's network cost is
    // one charged superposed batch.
    let s = inst.hidden();
    let mut eqs = Gf2Matrix::new(m);
    while eqs.rank() < m - 1 && oracle.batches() < 8 * m {
        oracle.query(&[0]); // the superposed query's transcript
        let y = loop {
            let cand = rng.gen::<u64>() & ((1 << m) - 1);
            if (cand & s).count_ones().is_multiple_of(2) {
                break cand;
            }
        };
        if y != 0 {
            eqs.push(y);
        }
    }
    // Solve and verify with two charged classical queries.
    let shift = match eqs.null_vector() {
        Some(cand) if cand != 0 => {
            let v0 = oracle.query(&[0])[0];
            let v1 = oracle.query(&[cand as usize])[0];
            (v0 == v1).then_some(cand)
        }
        _ => None,
    };
    Ok(SimonResult {
        shift,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        queries: oracle.queries(),
        ledger: oracle.into_ledger(),
    })
}

/// Classical sampling baseline: query random indices (in `p = D`-wide
/// batches) until a collision appears — the birthday bound makes this
/// `Θ(2^{m/2})` queries.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_birthday_simon(
    net: &Network<'_>,
    inst: &SimonInstance,
    seed: u64,
) -> Result<SimonResult, RuntimeError> {
    let m = inst.m;
    let size = 1usize << m;
    let provider = StoredValues::new(inst.local.clone(), m as u64, CommOp::Xor);
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let p = oracle.suggested_p().min(size);
    oracle.set_p(p);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb1da7);
    let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut shift = None;
    'outer: while oracle.batches() * p < 8 * size {
        let idxs: Vec<usize> = (0..p).map(|_| rng.gen_range(0..size)).collect();
        let vals = oracle.query(&idxs);
        for (&x, &v) in idxs.iter().zip(&vals) {
            if let Some(&prev) = seen.get(&v) {
                if prev != x {
                    shift = Some((prev ^ x) as u64);
                    break 'outer;
                }
            }
            seen.insert(v, x);
        }
    }
    Ok(SimonResult {
        shift,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        queries: oracle.queries(),
        ledger: oracle.into_ledger(),
    })
}

/// Classical streaming baseline: ship the whole `2^m`-entry table to the
/// leader — `Θ(2^m·m/log n + D)` rounds, deterministic.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_streaming_simon(
    net: &Network<'_>,
    inst: &SimonInstance,
    seed: u64,
) -> Result<SimonResult, RuntimeError> {
    let m = inst.m;
    let size = 1usize << m;
    let provider = StoredValues::new(inst.local.clone(), m as u64, CommOp::Xor);
    let mut oracle = CongestOracle::setup(net, provider, size, seed)?;
    let table = oracle.query(&(0..size).collect::<Vec<_>>());
    let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut shift = None;
    for (x, &v) in table.iter().enumerate() {
        if let Some(&prev) = seen.get(&v) {
            shift = Some((prev ^ x) as u64);
            break;
        }
        seen.insert(v, x);
    }
    Ok(SimonResult {
        shift,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        queries: oracle.queries(),
        ledger: oracle.into_ledger(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{grid, path};

    #[test]
    fn instance_table_respects_promise() {
        let inst = SimonInstance::random(6, 4, 0b1010, 3);
        let t = inst.table();
        for x in 0..16usize {
            assert_eq!(t[x], t[x ^ 0b1010]);
            for y in 0..16usize {
                if y != x && y != x ^ 0b1010 {
                    assert_ne!(t[x], t[y], "x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn quantum_recovers_shift_usually() {
        let g = grid(3, 3);
        let net = Network::new(&g);
        let mut hits = 0;
        for seed in 0..6 {
            let s = 1 + (seed % 15);
            let inst = SimonInstance::random(9, 4, s, seed);
            let res = quantum_simon(&net, &inst, seed).unwrap();
            if res.shift == Some(s) {
                hits += 1;
            } else {
                assert_eq!(res.shift, None, "a returned shift must be the real one");
            }
        }
        assert!(hits >= 5, "{hits}/6");
    }

    #[test]
    fn quantum_query_growth_linear_classical_exponential() {
        // The separation is in the *query counts*: quantum O(m) vs
        // classical Θ(2^{m/2}) (birthday). Measure growth over m.
        let g = path(8);
        let net = Network::new(&g);
        let mut q_queries = Vec::new();
        let mut c_queries = Vec::new();
        for m in [6usize, 8, 10, 12] {
            let s = 1u64 << (m - 1);
            let mut qs = 0u64;
            let mut cs = 0u64;
            for seed in 0..4 {
                let inst = SimonInstance::random(8, m, s, seed);
                let q = quantum_simon(&net, &inst, seed).unwrap();
                assert_eq!(q.shift, Some(s), "m={m} seed={seed}");
                qs += q.batches as u64; // one query per quantum batch
                let c = classical_birthday_simon(&net, &inst, seed).unwrap();
                assert_eq!(c.shift, Some(s));
                cs += c.queries;
            }
            q_queries.push(qs as f64 / 4.0);
            c_queries.push(cs as f64 / 4.0);
        }
        // Quantum query counts grow roughly linearly in m …
        let q_growth = q_queries.last().unwrap() / q_queries.first().unwrap();
        assert!(q_growth < 4.0, "quantum growth {q_growth} over m 6→12 (linear)");
        // … while classical birthday queries grow by ~2× per m += 2.
        let c_growth = c_queries.last().unwrap() / c_queries.first().unwrap();
        assert!(
            c_growth > 3.0,
            "classical growth {c_growth} over m 6→12 (expected ≈ 8×): {c_queries:?}"
        );
    }

    #[test]
    fn streaming_baseline_always_finds_shift() {
        let g = path(5);
        let net = Network::new(&g);
        let inst = SimonInstance::random(5, 5, 0b10011, 9);
        let res = classical_streaming_simon(&net, &inst, 2).unwrap();
        assert_eq!(res.shift, Some(0b10011));
        assert_eq!(res.batches, 1);
    }

    #[test]
    fn agreement_with_statevector_simon() {
        // The emulated distributed run and the full statevector run on the
        // aggregate table agree on the recovered shift.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = path(4);
        let net = Network::new(&g);
        let s = 0b0110u64;
        let inst = SimonInstance::random(4, 4, s, 13);
        let emu = quantum_simon(&net, &inst, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let sv = qsim::simon::simon(&inst.table(), &mut rng);
        assert_eq!(emu.shift, Some(s));
        assert_eq!(sv.shift, Some(s));
    }
}
