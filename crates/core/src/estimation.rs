//! Distributed phase estimation and amplitude estimation (paper §6,
//! Lemma 29 and Corollary 30).
//!
//! Phase estimation of a distributed unitary `U` (an `R`-round CONGEST
//! procedure with a shared eigenstate) costs
//! `O((R/ε)·log(1/δ) + D)` rounds: the leader shares a superposition over
//! the power counter `k` via Lemma 7 (measured), the network applies `U^k`
//! conditioned on `k` (charged `R` per application — phase kickback needs
//! no extra communication), the counter is un-shared and the leader runs
//! the inverse QFT locally. The measurement outcome is produced by a real
//! statevector QPE (`qsim::phase_estimation`), so the estimate's error
//! distribution is exactly quantum.
//!
//! Amplitude estimation (Corollary 30) is phase estimation applied to the
//! amplification iterate of Lemma 27, with eigenphase `±2θ_a`
//! (`a = sin²θ_a`); `√p_max/ε` iterate applications suffice.

use congest::bfs::{build_bfs_tree, elect_leader};
use congest::graph::bits_for;
use congest::runtime::{Network, RoundLedger, RunStats, RuntimeError};
use congest::tree_comm::{distribute_register, gather_register, Register, Schedule};
use qsim::phase_estimation::{estimate_diagonal_phase, phase_distance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

/// Result of a distributed phase estimation.
#[derive(Debug, Clone)]
pub struct PhaseEstimationResult {
    /// The phase estimate in `[0, 1)` (the true eigenphase is `2πφ`).
    pub phi: f64,
    /// Measured + charged rounds.
    pub rounds: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Distributed phase estimation (Lemma 29): estimate the eigenphase `φ`
/// (as a fraction of `2π`) of a distributed unitary costing `r_rounds` per
/// application, to additive error `eps` with failure probability `delta`.
///
/// The counter registers for all `O(log 1/δ)` repetitions are streamed in
/// one Lemma 7 pass, as in the paper's proof.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics unless `0 < eps < 1` and `0 < delta < 1`.
pub fn distributed_phase_estimation(
    net: &Network<'_>,
    phi_true: f64,
    r_rounds: usize,
    eps: f64,
    delta: f64,
    seed: u64,
) -> Result<PhaseEstimationResult, RuntimeError> {
    assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
    let mut ledger = RoundLedger::new();
    let mut rng = StdRng::seed_from_u64(seed);

    let (leader, stats) = elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);

    // t counting qubits: 2^t ≥ 2/ε (one guard bit), capped for the
    // statevector outcome sampler.
    let t = ((2.0 / eps).log2().ceil() as usize).clamp(1, 16);
    let reps = (1.0 / delta).ln().max(1.0).ceil() as usize;

    // Lemma 7: stream all reps' counter registers down in one pass.
    let counter_bits = (t as u64) * reps as u64;
    let reg = Register::zeros(counter_bits);
    let (copies, stats) = distribute_register(net, &tree.views, reg, Schedule::Pipelined)?;
    ledger.record("counters/distribute", stats);

    // Controlled U^k: the network applies U up to 2^t − 1 times per
    // repetition; each application is the cited r_rounds procedure
    // (phase kickback — no extra communication beyond U itself).
    let applications = ((1usize << t) - 1) * reps;
    ledger.record(
        "controlled-powers(charged)",
        RunStats { rounds: applications * r_rounds, ..Default::default() },
    );

    // Un-share the counters (Lemma 7 reversed) and run the inverse QFT at
    // the leader (local).
    let (_root, stats) = gather_register(net, &tree.views, copies)?;
    ledger.record("counters/gather", stats);

    // Outcome: real statevector QPE per repetition, circular median.
    let mut estimates: Vec<f64> =
        (0..reps).map(|_| estimate_diagonal_phase(phi_true, t.min(10), &mut rng)).collect();
    estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let phi = estimates
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let da: f64 = estimates.iter().map(|&e| phase_distance(a, e)).sum();
            let db: f64 = estimates.iter().map(|&e| phase_distance(b, e)).sum();
            da.partial_cmp(&db).unwrap()
        })
        .expect("reps >= 1");

    let rounds = ledger.total_rounds();
    Ok(PhaseEstimationResult { phi, rounds, ledger })
}

/// Result of a distributed amplitude estimation.
#[derive(Debug, Clone)]
pub struct AmplitudeEstimationResult {
    /// The estimate of the good probability `p`.
    pub estimate: f64,
    /// Measured + charged rounds.
    pub rounds: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Distributed amplitude estimation (Corollary 30): estimate the success
/// probability `p ≤ p_max` of an `r_psi`-round preparation subroutine to
/// additive error `eps`, failure probability `delta`, in
/// `O((R_ψ + D)·(√p_max/ε)·log(1/δ))` rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics on out-of-range probabilities.
pub fn distributed_amplitude_estimation(
    net: &Network<'_>,
    p_true: f64,
    p_max: f64,
    r_psi: usize,
    eps: f64,
    delta: f64,
    seed: u64,
) -> Result<AmplitudeEstimationResult, RuntimeError> {
    assert!((0.0..=1.0).contains(&p_true) && p_true <= p_max && p_max <= 1.0);
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    let mut ledger = RoundLedger::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xae57);

    let (leader, stats) = elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);
    let d_est = tree.depth as usize;

    // Iterate applications: √p_max/ε per repetition ([BHMT02] conversion),
    // each costing R_ψ + O(D) (Lemma 27).
    let reps = (1.0 / delta).ln().max(1.0).ceil() as usize;
    let per_rep = (p_max.sqrt() / eps).ceil().max(1.0) as usize;
    let iterate_rounds = r_psi + 2 * d_est.max(1);
    ledger.record(
        "amplification-iterates(charged)",
        RunStats { rounds: reps * per_rep * iterate_rounds, ..Default::default() },
    );

    // Outcome: QPE on the iterate's eigenphase 2θ_a; we sample through the
    // real statevector QPE on the corresponding diagonal phase, then
    // convert back — exactly the BHMT estimator's distribution.
    let theta_a = p_true.sqrt().clamp(0.0, 1.0).asin();
    let phi_true = theta_a / PI; // eigenphase 2θ_a as a fraction of 2π
    let t = ((per_rep as f64).log2().ceil() as usize).clamp(2, 10);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let phi_est = estimate_diagonal_phase(phi_true, t, &mut rng);
            (PI * phi_est).sin().powi(2)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let estimate = samples[samples.len() / 2]; // median boosting
    let rounds = ledger.total_rounds();
    Ok(AmplitudeEstimationResult { estimate, rounds, ledger })
}

/// Lemma 29's round bound: `O((R/ε)·log(1/δ) + D)`.
pub fn phase_estimation_upper_bound(r: usize, d: usize, eps: f64, delta: f64) -> f64 {
    r as f64 / eps * (1.0 / delta).ln().max(1.0) + d as f64
}

/// Corollary 30's round bound: `O((R_ψ + D)·(√p_max/ε)·log(1/δ))`.
pub fn amplitude_estimation_upper_bound(
    r_psi: usize,
    d: usize,
    p_max: f64,
    eps: f64,
    delta: f64,
) -> f64 {
    (r_psi + d) as f64 * p_max.sqrt() / eps * (1.0 / delta).ln().max(1.0)
}

/// Helper: the `⌈q/log n⌉` streaming factor of Lemma 7 for a `q`-qubit
/// register on an `n`-node network.
pub fn streaming_factor(q: u64, n: usize) -> u64 {
    q.div_ceil(bits_for(n.saturating_sub(1) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{grid, path};

    #[test]
    fn phase_estimate_accurate() {
        let g = grid(4, 3);
        let net = Network::new(&g);
        let mut ok = 0;
        for seed in 0..10 {
            let res = distributed_phase_estimation(&net, 0.3141, 3, 0.02, 0.1, seed).unwrap();
            if phase_distance(res.phi, 0.3141) <= 0.02 {
                ok += 1;
            }
        }
        assert!(ok >= 8, "{ok}/10 within ε");
    }

    #[test]
    fn phase_estimation_rounds_scale_with_precision() {
        let g = path(6);
        let net = Network::new(&g);
        let coarse = distributed_phase_estimation(&net, 0.2, 2, 0.1, 0.2, 1).unwrap();
        let fine = distributed_phase_estimation(&net, 0.2, 2, 0.01, 0.2, 1).unwrap();
        assert!(
            fine.rounds > 4 * coarse.rounds,
            "ε/10 should cost ~10×: {} vs {}",
            coarse.rounds,
            fine.rounds
        );
    }

    #[test]
    fn amplitude_estimate_accurate() {
        let g = grid(3, 3);
        let net = Network::new(&g);
        let mut ok = 0;
        for seed in 0..10 {
            let res =
                distributed_amplitude_estimation(&net, 0.25, 0.5, 4, 0.05, 0.1, seed).unwrap();
            if (res.estimate - 0.25).abs() <= 0.08 {
                ok += 1;
            }
        }
        assert!(ok >= 7, "{ok}/10 close");
    }

    #[test]
    fn amplitude_estimation_uses_pmax() {
        let g = path(5);
        let net = Network::new(&g);
        let loose = distributed_amplitude_estimation(&net, 0.01, 1.0, 2, 0.05, 0.2, 2).unwrap();
        let tight = distributed_amplitude_estimation(&net, 0.01, 0.04, 2, 0.05, 0.2, 2).unwrap();
        assert!(
            tight.rounds < loose.rounds,
            "smaller p_max must help: {} vs {}",
            tight.rounds,
            loose.rounds
        );
    }

    #[test]
    fn streaming_factor_values() {
        assert_eq!(streaming_factor(10, 1024), 1);
        assert_eq!(streaming_factor(25, 1024), 3);
    }
}
