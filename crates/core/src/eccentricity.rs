//! Diameter, radius and average eccentricity (paper §5.1, Lemmas 20–22).
//!
//! The query index is a *node* `s`; its value is `ecc(s) = max_v d(v, s)`.
//! The framework view makes this a textbook Corollary 9 instance:
//!
//! * `x_s^{(v)} = d(v, s)` is computed on the fly by a **measured**
//!   multi-source BFS from the batch's `p` sources — the
//!   `α(p) = O(p + D)` of Lemma 20;
//! * the semigroup is `Max`, so the framework's convergecast computes
//!   `ecc(s)` at the leader as part of the query itself;
//! * parallel maximum/minimum finding (Lemma 3) with `p = D` then gives
//!   diameter/radius in `O(√(nD))` measured rounds (Lemma 21), and
//!   parallel mean estimation (Lemma 6) gives an `ε`-additive average
//!   eccentricity in `Õ(D^{3/2}/ε)` rounds (Lemma 22).
//!
//! The classical baseline computes all `n` eccentricities by an `n`-source
//! BFS (`Θ(n + D)` rounds, [PRT12; HW12]).

use crate::framework::{CongestOracle, ValueProvider};
use congest::aggregate::CommOp;
use congest::bfs::{build_bfs_tree, multi_source_bfs, source_eccentricities};
use congest::graph::{bits_for, Dist, Graph};
use congest::runtime::{Network, RoundLedger, RuntimeError};
use pquery::mean::estimate_mean;
use pquery::minimum::{find_extremum, Extremum};
use pquery::oracle::BatchSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Corollary 9 provider for eccentricity queries: values are BFS distances
/// computed on demand, aggregated with `Max`.
#[derive(Debug)]
pub struct EccentricityProvider {
    /// Centralized ground truth for outcome sampling (`peek`).
    truth: Vec<Dist>,
    q: u64,
}

impl EccentricityProvider {
    /// Build for graph `g` (must be connected).
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    pub fn new(g: &Graph) -> Self {
        let truth = g.eccentricities().expect("graph must be connected");
        let q = bits_for(2 * g.n() as u64);
        EccentricityProvider { truth, q }
    }

    /// The ground-truth eccentricities.
    pub fn truth(&self) -> &[Dist] {
        &self.truth
    }
}

impl ValueProvider for EccentricityProvider {
    fn k(&self) -> usize {
        self.truth.len()
    }

    fn q(&self) -> u64 {
        self.q
    }

    fn op(&self) -> CommOp {
        CommOp::Max
    }

    fn values_for(
        &mut self,
        net: &Network<'_>,
        indices: &[usize],
        ledger: &mut RoundLedger,
    ) -> Result<Vec<Vec<u64>>, RuntimeError> {
        // α(p): pipelined multi-source BFS from the p queried nodes.
        let mbfs = multi_source_bfs(net, indices)?;
        ledger.record("alpha/multi-bfs", mbfs.stats);
        Ok(mbfs.dist.into_iter().map(|row| row.into_iter().map(|d| d as u64).collect()).collect())
    }

    fn truth(&self, i: usize) -> u64 {
        self.truth[i] as u64
    }
}

/// Result of a diameter/radius computation.
#[derive(Debug, Clone)]
pub struct EccExtremeResult {
    /// The extremal node.
    pub node: usize,
    /// Its eccentricity (= diameter or radius).
    pub value: Dist,
    /// Measured rounds.
    pub rounds: usize,
    /// Oracle batches.
    pub batches: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

fn quantum_ecc_extremum(
    net: &Network<'_>,
    dir: Extremum,
    seed: u64,
) -> Result<EccExtremeResult, RuntimeError> {
    let provider = EccentricityProvider::new(net.graph());
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let p = oracle.suggested_p();
    oracle.set_p(p);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0ecc_0ecc);
    let out = find_extremum(&mut oracle, dir, &mut rng);
    Ok(EccExtremeResult {
        node: out.index,
        value: out.value as Dist,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Quantum diameter computation (Lemma 21): `O(√(nD))` measured rounds,
/// success probability ≥ 2/3.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn quantum_diameter(net: &Network<'_>, seed: u64) -> Result<EccExtremeResult, RuntimeError> {
    quantum_ecc_extremum(net, Extremum::Max, seed)
}

/// Quantum radius computation (Lemma 21): `O(√(nD))` measured rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn quantum_radius(net: &Network<'_>, seed: u64) -> Result<EccExtremeResult, RuntimeError> {
    quantum_ecc_extremum(net, Extremum::Min, seed)
}

/// Classical baseline for diameter/radius: all-sources BFS + eccentricity
/// aggregation, `Θ(n + D)` measured rounds (Lemma 20 with `S = V`),
/// deterministic.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_diameter_radius(
    net: &Network<'_>,
    seed: u64,
) -> Result<(Dist, Dist, usize, RoundLedger), RuntimeError> {
    let mut ledger = RoundLedger::new();
    let (leader, stats) = congest::bfs::elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);
    let all: Vec<usize> = (0..net.graph().n()).collect();
    let (ecc, stats) = source_eccentricities(net, &tree, &all)?;
    ledger.record("all-sources-ecc", stats);
    let diameter = ecc.iter().copied().max().expect("n >= 1");
    let radius = ecc.iter().copied().min().expect("n >= 1");
    let rounds = ledger.total_rounds();
    Ok((diameter, radius, rounds, ledger))
}

/// Result of average-eccentricity estimation.
#[derive(Debug, Clone)]
pub struct AvgEccResult {
    /// The `ε`-additive estimate.
    pub estimate: f64,
    /// Measured rounds.
    pub rounds: usize,
    /// Oracle batches.
    pub batches: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Quantum `ε`-additive average eccentricity (Lemma 22):
/// `Õ(D^{3/2}/ε)` measured rounds, success probability ≥ 2/3.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics if `eps <= 0`.
pub fn quantum_average_eccentricity(
    net: &Network<'_>,
    eps: f64,
    seed: u64,
) -> Result<AvgEccResult, RuntimeError> {
    assert!(eps > 0.0);
    let provider = EccentricityProvider::new(net.graph());
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let p = oracle.suggested_p();
    oracle.set_p(p);
    // σ ≤ D: eccentricities lie in [R, D] ⊆ [D/2, D].
    let sigma = (2 * oracle.tree.depth).max(1) as f64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6176_6763);
    let out = estimate_mean(&mut oracle, sigma, eps, &mut rng);
    Ok(AvgEccResult {
        estimate: out.estimate,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Lemma 21's upper bound: `O(√(nD))`.
pub fn quantum_upper_bound(n: usize, d: usize) -> f64 {
    (n as f64 * d as f64).sqrt()
}

/// The classical bound for diameter: `Θ(n)` (and `Ω(n/log n)` uncond.).
pub fn classical_bound(n: usize, d: usize) -> f64 {
    n as f64 + d as f64
}

/// Lemma 22's upper bound: `Õ(D + D^{3/2}/ε)` with its log factors.
pub fn avg_ecc_upper_bound(d: usize, eps: f64) -> f64 {
    let x = ((d as f64).sqrt() / eps).max(std::f64::consts::E);
    d as f64 + (d as f64).powf(1.5) / eps * x.ln() * x.ln().ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{cycle, grid, path, random_connected};

    #[test]
    fn quantum_diameter_correct_usually() {
        let mut hits = 0;
        let mut total = 0;
        for (g, seeds) in [(grid(5, 4), 3u64), (cycle(15), 3), (random_connected(24, 0.12, 4), 3)] {
            let truth = g.diameter().unwrap();
            let net = Network::new(&g);
            for seed in 0..seeds {
                total += 1;
                let res = quantum_diameter(&net, seed).unwrap();
                // Reported values are genuine eccentricities.
                assert_eq!(g.eccentricity(res.node), Some(res.value));
                if res.value == truth {
                    hits += 1;
                }
            }
        }
        assert!(hits * 3 >= total * 2, "{hits}/{total}");
    }

    #[test]
    fn quantum_radius_correct_usually() {
        let g = grid(6, 4);
        let truth = g.radius().unwrap();
        let net = Network::new(&g);
        let mut hits = 0;
        for seed in 0..5 {
            let res = quantum_radius(&net, seed).unwrap();
            if res.value == truth {
                hits += 1;
            }
        }
        assert!(hits >= 3, "{hits}/5");
    }

    #[test]
    fn classical_exact_on_families() {
        for g in [path(14), cycle(11), grid(4, 5), random_connected(20, 0.15, 9)] {
            let net = Network::new(&g);
            let (d, r, rounds, _) = classical_diameter_radius(&net, 1).unwrap();
            assert_eq!(Some(d), g.diameter());
            assert_eq!(Some(r), g.radius());
            assert!(rounds > 0);
        }
    }

    #[test]
    fn avg_ecc_estimate_within_eps_usually() {
        let g = grid(6, 5);
        let truth = g.average_eccentricity().unwrap();
        let net = Network::new(&g);
        let mut ok = 0;
        for seed in 0..6 {
            let res = quantum_average_eccentricity(&net, 1.0, seed).unwrap();
            if (res.estimate - truth).abs() <= 1.0 {
                ok += 1;
            }
        }
        assert!(ok >= 4, "{ok}/6 within ε");
    }

    #[test]
    fn quantum_rounds_scale_sublinearly() {
        // The crossover against the Θ(n) classical baseline needs n in the
        // thousands (constants included) and lives in the bench harness
        // (EXPERIMENTS.md, E9); here we check the √n *shape*: growing n by
        // 4× at comparable D must grow quantum rounds far less than 4×.
        let g1 = random_connected(60, 0.2, 11);
        let g4 = random_connected(240, 0.05, 11);
        let d1 = g1.diameter().unwrap();
        let d4 = g4.diameter().unwrap();
        assert!(d4 <= 2 * d1.max(3), "families should have comparable D: {d1} vs {d4}");
        let net1 = Network::new(&g1);
        let net4 = Network::new(&g4);
        let r1 = quantum_diameter(&net1, 2).unwrap().rounds;
        let r4 = quantum_diameter(&net4, 2).unwrap().rounds;
        assert!((r4 as f64) < 3.0 * r1 as f64, "4× nodes should cost ≈ 2× rounds: {r1} -> {r4}");
    }
}
