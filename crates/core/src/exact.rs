//! Exact mode: the framework's quantum mechanics run on a real statevector
//! distributed over the network's nodes.
//!
//! The scalable drivers emulate quantum algorithms at the schedule level
//! (see DESIGN.md); this module validates the *quantum* content of the
//! construction itself at small sizes, with nothing emulated:
//!
//! * **Lemma 7 forward**: node `v`'s register occupies qubits
//!   `[v·q, (v+1)·q)` of a global `n·q`-qubit state. Starting from the
//!   leader's `Σᵢ αᵢ|i⟩` (all other registers `|0⟩`), applying CNOT
//!   fan-outs along the BFS-tree edges produces exactly
//!   `Σᵢ αᵢ|i⟩^{⊗n}` — verified by state fidelity. The corresponding round
//!   cost is measured by the classical chunk protocol on the same tree
//!   (the communication pattern is identical for every basis-state
//!   branch, which is *why* Lemma 7 works).
//! * **Lemma 7 reverse**: the fan-out undone; the leader's register
//!   returns to `Σᵢ αᵢ|i⟩` exactly.
//! * **Distributed Deutsch–Jozsa (Theorem 17)**: each node applies its
//!   local phase oracle `(−1)^{x_j^{(v)}}` to *its own* register copy;
//!   since every reachable basis state has all copies equal, the phases
//!   multiply to `(−1)^{⊕_v x_j^{(v)}}` — the distributed XOR query with no
//!   value communication at all. After un-distribution and local
//!   Hadamards, the leader's measurement is deterministic.

use congest::bfs::build_bfs_tree;
use congest::graph::Graph;
use congest::runtime::{Network, RuntimeError};
use congest::tree_comm::{distribute_register, gather_register, Register, Schedule};
use pquery::deutsch_jozsa::DjAnswer;
use qsim::complex::C64;
use qsim::state::{State, EPS};

/// Maximum total qubits (`n·q`) the exact mode will simulate.
pub const MAX_TOTAL_QUBITS: usize = 22;

/// Outcome of an exact Lemma 7 round trip.
#[derive(Debug, Clone)]
pub struct ExactDistributeResult {
    /// Fidelity of the distributed state with `Σᵢ αᵢ|i⟩^{⊗n}`.
    pub distribute_fidelity: f64,
    /// Fidelity of the re-gathered state with the original.
    pub roundtrip_fidelity: f64,
    /// Measured rounds of the distribute phase (chunk protocol).
    pub distribute_rounds: usize,
    /// Measured rounds of the gather phase.
    pub gather_rounds: usize,
}

/// Build the CNOT fan-out (or its inverse) for tree `parent[]` on a global
/// state with `q` qubits per node.
fn apply_fanout(
    state: &mut State,
    order: &[usize],
    parents: &[Option<usize>],
    q: usize,
    invert: bool,
) {
    let edges: Vec<(usize, usize)> =
        order.iter().filter_map(|&v| parents[v].map(|p| (p, v))).collect();
    let iter: Box<dyn Iterator<Item = &(usize, usize)>> =
        if invert { Box::new(edges.iter().rev()) } else { Box::new(edges.iter()) };
    for &(p, v) in iter {
        for b in 0..q {
            state.cnot(p * q + b, v * q + b);
        }
    }
}

/// Run Lemma 7 exactly: distribute the leader state `amplitudes` (over
/// `2^q` basis states) to all `n` nodes and back, verifying fidelities and
/// measuring rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`] from the measured chunk protocols.
///
/// # Panics
///
/// Panics if `n·q > MAX_TOTAL_QUBITS` or the amplitude vector is invalid.
pub fn exact_distribute_roundtrip(
    g: &Graph,
    leader: usize,
    amplitudes: Vec<C64>,
) -> Result<ExactDistributeResult, RuntimeError> {
    let n = g.n();
    let dim = amplitudes.len();
    assert!(dim.is_power_of_two() && dim >= 2);
    let q = dim.trailing_zeros() as usize;
    assert!(n * q <= MAX_TOTAL_QUBITS, "statevector too large: {n}×{q} qubits");

    let net = Network::new(g);
    let tree = build_bfs_tree(&net, leader)?;
    let parents: Vec<Option<usize>> = tree.views.iter().map(|v| v.parent).collect();
    let order = g.bfs_order(leader);

    // Global state: leader register holds ψ, everything else |0⟩.
    let mut amps = vec![C64::ZERO; 1usize << (n * q)];
    for (i, &a) in amplitudes.iter().enumerate() {
        amps[i << (leader * q)] = a;
    }
    let mut state = State::from_amplitudes(amps);

    // Forward fan-out.
    apply_fanout(&mut state, &order, &parents, q, false);

    // Expected Σᵢ αᵢ|i⟩^{⊗n}.
    let mut want = vec![C64::ZERO; 1usize << (n * q)];
    for (i, &a) in amplitudes.iter().enumerate() {
        let mut idx = 0usize;
        for v in 0..n {
            idx |= i << (v * q);
        }
        want[idx] = a;
    }
    let want = State::from_amplitudes(want);
    let distribute_fidelity = state.fidelity(&want);

    // Measured rounds for the same operation (chunk transport on the tree).
    let (copies, dstats) = distribute_register(
        &net,
        &tree.views,
        Register::from_value(q as u64, 0),
        Schedule::Pipelined,
    )?;

    // Reverse fan-out.
    apply_fanout(&mut state, &order, &parents, q, true);
    let mut orig = vec![C64::ZERO; 1usize << (n * q)];
    for (i, &a) in amplitudes.iter().enumerate() {
        orig[i << (leader * q)] = a;
    }
    let orig = State::from_amplitudes(orig);
    let roundtrip_fidelity = state.fidelity(&orig);

    let (_reg, gstats) = gather_register(&net, &tree.views, copies)?;

    Ok(ExactDistributeResult {
        distribute_fidelity,
        roundtrip_fidelity,
        distribute_rounds: dstats.rounds,
        gather_rounds: gstats.rounds,
    })
}

/// Outcome of an exact distributed Deutsch–Jozsa run.
#[derive(Debug, Clone)]
pub struct ExactDjResult {
    /// The measured answer.
    pub answer: DjAnswer,
    /// Probability of the measured outcome (must be 1: the algorithm is
    /// exact).
    pub outcome_probability: f64,
    /// Measured rounds (distribute + gather; the query itself is local).
    pub rounds: usize,
}

/// Run distributed Deutsch–Jozsa **exactly** on a statevector spread over
/// the network (Theorem 17): `local[v]` is node `v`'s share of the length-
/// `k` XOR input, `k` a power of two.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics if the state would exceed [`MAX_TOTAL_QUBITS`], shares are
/// malformed, or the XOR aggregate violates the promise.
pub fn exact_distributed_dj(
    g: &Graph,
    leader: usize,
    local: &[Vec<bool>],
) -> Result<ExactDjResult, RuntimeError> {
    let n = g.n();
    assert_eq!(local.len(), n);
    let k = local[0].len();
    assert!(k.is_power_of_two() && k >= 2);
    assert!(local.iter().all(|x| x.len() == k));
    let q = k.trailing_zeros() as usize;
    assert!(n * q <= MAX_TOTAL_QUBITS, "statevector too large");

    // Promise check on the aggregate.
    let agg: Vec<bool> = (0..k).map(|i| local.iter().fold(false, |a, x| a ^ x[i])).collect();
    let expected = qsim::deutsch_jozsa::check_promise(&agg).expect("promise violated");

    let net = Network::new(g);
    let tree = build_bfs_tree(&net, leader)?;
    let parents: Vec<Option<usize>> = tree.views.iter().map(|v| v.parent).collect();
    let order = g.bfs_order(leader);

    // Leader prepares H^{⊗q}|0⟩ in its register.
    let mut state = State::zero(n * q);
    for b in 0..q {
        state.h(leader * q + b);
    }

    // Lemma 7 forward (CNOT fan-out) — measured cost via the chunk
    // protocol.
    apply_fanout(&mut state, &order, &parents, q, false);
    let (copies, dstats) = distribute_register(
        &net,
        &tree.views,
        Register::from_value(q as u64, 0),
        Schedule::Pipelined,
    )?;

    // The query: every node phases its own register copy by its local
    // share — no communication at all (the XOR appears by phase
    // multiplication).
    for (v, shares) in local.iter().enumerate() {
        let vq = v * q;
        let mask = (k - 1) << vq;
        state.apply_phase_fn(|x| {
            let j = (x & mask) >> vq;
            if shares[j] {
                std::f64::consts::PI
            } else {
                0.0
            }
        });
    }

    // Lemma 7 reverse, measured.
    apply_fanout(&mut state, &order, &parents, q, true);
    let (_reg, gstats) = gather_register(&net, &tree.views, copies)?;

    // Leader: H^{⊗q} and measure its register.
    for b in 0..q {
        state.h(leader * q + b);
    }
    let mask = (k - 1) << (leader * q);
    let p_zero = state.probability_where(|x| x & mask == 0);
    let answer = if p_zero > 0.5 { DjAnswer::Constant } else { DjAnswer::Balanced };
    let outcome_probability = if p_zero > 0.5 { p_zero } else { 1.0 - p_zero };
    debug_assert_eq!(answer, expected, "exactness violated");
    debug_assert!(outcome_probability > 1.0 - EPS);

    Ok(ExactDjResult { answer, outcome_probability, rounds: dstats.rounds + gstats.rounds })
}

/// Outcome of an exact distributed Bernstein–Vazirani run.
#[derive(Debug, Clone)]
pub struct ExactBvResult {
    /// The recovered hidden string.
    pub recovered: Vec<bool>,
    /// Probability of the measured outcome (must be 1).
    pub outcome_probability: f64,
    /// Measured rounds (distribute + gather).
    pub rounds: usize,
}

/// Run distributed Bernstein–Vazirani **exactly** on a statevector spread
/// over the network: `local[v]` is node `v`'s XOR share of the hidden
/// `m`-bit string. Identical mechanics to [`exact_distributed_dj`], but
/// the local phase is `(−1)^{s^{(v)}·x}` and the leader's measurement
/// reveals the whole string.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics if the state would exceed [`MAX_TOTAL_QUBITS`] or shares are
/// malformed.
pub fn exact_distributed_bv(
    g: &Graph,
    leader: usize,
    local: &[Vec<bool>],
) -> Result<ExactBvResult, RuntimeError> {
    let n = g.n();
    assert_eq!(local.len(), n);
    let m = local[0].len();
    assert!(m >= 1 && local.iter().all(|x| x.len() == m));
    assert!(n * m <= MAX_TOTAL_QUBITS, "statevector too large");

    let net = Network::new(g);
    let tree = build_bfs_tree(&net, leader)?;
    let parents: Vec<Option<usize>> = tree.views.iter().map(|v| v.parent).collect();
    let order = g.bfs_order(leader);

    let mut state = State::zero(n * m);
    for b in 0..m {
        state.h(leader * m + b);
    }
    apply_fanout(&mut state, &order, &parents, m, false);
    let (copies, dstats) = distribute_register(
        &net,
        &tree.views,
        Register::from_value(m as u64, 0),
        Schedule::Pipelined,
    )?;

    // Each node phases its own copy by (−1)^{s^{(v)}·x}.
    for (v, share) in local.iter().enumerate() {
        let vm = v * m;
        let mask = ((1usize << m) - 1) << vm;
        let share = share.clone();
        state.apply_phase_fn(move |x| {
            let j = (x & mask) >> vm;
            let dot =
                share.iter().enumerate().fold(false, |acc, (i, &b)| acc ^ (b && (j >> i) & 1 == 1));
            if dot {
                std::f64::consts::PI
            } else {
                0.0
            }
        });
    }

    apply_fanout(&mut state, &order, &parents, m, true);
    let (_reg, gstats) = gather_register(&net, &tree.views, copies)?;

    for b in 0..m {
        state.h(leader * m + b);
    }
    // Measure the leader's register: deterministically |s⟩.
    let mask = ((1usize << m) - 1) << (leader * m);
    let mut best = (0usize, 0.0f64);
    for s in 0..(1usize << m) {
        let p = state.probability_where(|x| (x & mask) >> (leader * m) == s);
        if p > best.1 {
            best = (s, p);
        }
    }
    let recovered: Vec<bool> = (0..m).map(|i| (best.0 >> i) & 1 == 1).collect();
    debug_assert!(best.1 > 1.0 - EPS, "BV must be deterministic, got {}", best.1);
    Ok(ExactBvResult {
        recovered,
        outcome_probability: best.1,
        rounds: dstats.rounds + gstats.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{balanced_tree, path, star};
    use qsim::complex::c64;

    #[test]
    fn distribute_roundtrip_is_exact() {
        // 4 nodes × 2 qubits: ψ = (|0⟩ + i|3⟩)/√2.
        let g = path(4);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let amps = vec![c64(s, 0.0), C64::ZERO, C64::ZERO, c64(0.0, s)];
        let res = exact_distribute_roundtrip(&g, 0, amps).unwrap();
        assert!(res.distribute_fidelity > 1.0 - EPS, "fidelity {}", res.distribute_fidelity);
        assert!(res.roundtrip_fidelity > 1.0 - EPS);
        assert!(res.distribute_rounds > 0);
    }

    #[test]
    fn distribute_from_inner_leader() {
        let g = star(5);
        let amps = vec![c64(0.6, 0.0), c64(0.0, 0.8)];
        let res = exact_distribute_roundtrip(&g, 0, amps).unwrap();
        assert!(res.distribute_fidelity > 1.0 - EPS);
    }

    #[test]
    fn exact_dj_constant_and_balanced() {
        let g = balanced_tree(2, 2); // 7 nodes
                                     // k = 4 (q = 2): 7 × 2 = 14 qubits.
        let n = g.n();
        // Constant: shares XOR to all-ones.
        let mut local = vec![vec![false; 4]; n];
        local[0] = vec![true, true, true, true];
        local[3] = vec![true, false, true, false];
        local[5] = vec![true, false, true, false];
        let res = exact_distributed_dj(&g, 0, &local).unwrap();
        assert_eq!(res.answer, DjAnswer::Constant);
        assert!(res.outcome_probability > 1.0 - EPS);

        // Balanced.
        let mut local = vec![vec![false; 4]; n];
        local[2] = vec![true, false, true, false];
        let res = exact_distributed_dj(&g, 0, &local).unwrap();
        assert_eq!(res.answer, DjAnswer::Balanced);
        assert!(res.outcome_probability > 1.0 - EPS);
    }

    #[test]
    fn exact_bv_recovers_hidden_string() {
        // 5 nodes × 4 bits = 20 qubits.
        let g = path(5);
        for seed in 0..4u64 {
            let hidden: Vec<bool> = (0..4).map(|i| (seed >> i) & 1 == 1).collect();
            let inst = crate::bernstein_vazirani::BvInstance::random(5, &hidden, seed);
            let res = exact_distributed_bv(&g, 0, &inst.local).unwrap();
            assert_eq!(res.recovered, hidden, "seed {seed}");
            assert!(res.outcome_probability > 1.0 - EPS);
        }
    }

    #[test]
    fn exact_bv_agrees_with_scheduled_bv() {
        let g = star(4);
        let net = Network::new(&g);
        let hidden = vec![true, false, true];
        let inst = crate::bernstein_vazirani::BvInstance::random(4, &hidden, 3);
        let exact = exact_distributed_bv(&g, 0, &inst.local).unwrap();
        let emulated = crate::bernstein_vazirani::quantum_bv(&net, &inst, 1).unwrap();
        assert_eq!(exact.recovered, emulated.recovered);
    }

    #[test]
    fn exact_dj_agrees_with_emulation_on_all_small_promises() {
        let g = path(3);
        // k = 2, q = 1: enumerate all share patterns whose XOR is a
        // promise input.
        for bits in 0..64u32 {
            let local: Vec<Vec<bool>> =
                (0..3).map(|v| (0..2).map(|i| bits >> (v * 2 + i) & 1 == 1).collect()).collect();
            let agg: Vec<bool> =
                (0..2).map(|i| local.iter().fold(false, |a, x| a ^ x[i])).collect();
            if qsim::deutsch_jozsa::check_promise(&agg).is_err() {
                continue;
            }
            let want = qsim::deutsch_jozsa::deutsch_jozsa(&agg).unwrap();
            let res = exact_distributed_dj(&g, 0, &local).unwrap();
            assert_eq!(res.answer, want, "shares {bits:06b}");
        }
    }
}
