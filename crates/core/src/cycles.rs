//! Cycle detection (paper §5.2, Lemmas 23 and 25).
//!
//! Finding a cycle of length at most `k` splits into two cases, following
//! Censor-Hillel et al. `[CFGGLO20]`:
//!
//! * **Light cycles** (every vertex of degree ≤ `n^β`): truncated BFS to
//!   depth `⌈k/2⌉` from every light vertex, all floods running together
//!   with per-edge pipelining; a vertex that hears the same BFS token along
//!   two edge-distinct paths closes a cycle. Implemented as an honest
//!   message-passing protocol ([`BoundedFloodProtocol`]); the measured
//!   rounds are `O(k + n^{⌈k/2⌉β})` because a node's token load is its
//!   truncated-ball size.
//! * **Heavy cycles** (some vertex of degree > `n^β`): the value of a
//!   vertex `s` is the length of the smallest (≤ `k`) cycle through `s` or
//!   a neighbor of `s`; if a heavy cycle exists, at least `n^β` vertices
//!   attain the minimum, so parallel minimum finding with multiplicity
//!   `ℓ = n^β` (Lemma 3) through the framework needs only
//!   `O(√(n/(n^β·p)))` batches. The per-batch value computation (`p`
//!   parallel BFS-from-`s`-and-its-neighbors procedures on disjoint node
//!   sets) is **charged** `p + k` rounds per [PRT12; HW12] and computed
//!   structurally — see the substitution table in DESIGN.md.
//!
//! Balancing `β = (1 + log_n D)/(1 + 2⌈k/2⌉)` yields Lemma 23's
//! `O(D + (Dn)^{1/2 − 1/(4⌈k/2⌉+2)})` rounds; the clustered variant
//! (Lemma 25) removes the `D` dependence by running the detector inside
//! `2k`-separated clusters color by color.

use crate::framework::{CongestOracle, ValueProvider};
use congest::aggregate::{aggregate_batch, CommOp};
use congest::bfs::{build_bfs_tree, elect_leader};
use congest::clustering::{cluster, Clustering};
use congest::graph::{bits_for, Dist, Graph, NodeId};
use congest::runtime::{
    Ctx, MessageSize, Network, NodeProtocol, RoundLedger, RunStats, RuntimeError,
};
use pquery::minimum::{find_extremum_with_multiplicity, Extremum};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap};

/// Sentinel for "no cycle of length ≤ k found".
pub const NO_CYCLE: u64 = u64::MAX >> 1;

/// A truncated-BFS token: "source rank `src` is at distance `dist` from
/// me".
#[derive(Debug, Clone, Copy)]
pub struct FloodMsg {
    /// Source rank.
    pub src: usize,
    /// The sender's distance to that source.
    pub dist: Dist,
}

impl MessageSize for FloodMsg {
    fn size_bits(&self) -> u64 {
        2 + bits_for(self.src as u64) + bits_for(self.dist as u64)
    }
}

/// Truncated multi-source BFS with cycle detection — the light-cycle
/// detector. Every participating node floods a token to depth `delta`;
/// receiving a token for a known source from a non-parent edge (or two
/// tokens at once) closes a cycle of length `d₁ + d₂ + 1` (resp.
/// `d₁ + d₂`).
#[derive(Debug)]
pub struct BoundedFloodProtocol {
    /// `Some(rank)` if this node is a flood source.
    my_rank: Option<usize>,
    /// Whether this node participates (light) at all.
    participates: bool,
    delta: Dist,
    /// Per source: (best distance, parent edge).
    best: HashMap<usize, (Dist, NodeId)>,
    pending: BTreeSet<(Dist, usize)>,
    /// Smallest closed-walk (⇒ cycle) length detected at this node.
    detected: u64,
}

impl BoundedFloodProtocol {
    /// Instances: `sources[i]` floods token `i`; nodes not in
    /// `participants` ignore all traffic (the heavy vertices excluded from
    /// the light subgraph).
    pub fn instances(
        n: usize,
        sources: &[NodeId],
        participants: &[bool],
        delta: Dist,
    ) -> Vec<Self> {
        assert_eq!(participants.len(), n);
        let mut rank = vec![None; n];
        for (i, &s) in sources.iter().enumerate() {
            assert!(participants[s], "sources must participate");
            rank[s] = Some(i);
        }
        (0..n)
            .map(|v| {
                let mut pending = BTreeSet::new();
                let mut best = HashMap::new();
                if let Some(r) = rank[v] {
                    best.insert(r, (0, v));
                    pending.insert((0, r));
                }
                BoundedFloodProtocol {
                    my_rank: rank[v],
                    participates: participants[v],
                    delta,
                    best,
                    pending,
                    detected: NO_CYCLE,
                }
            })
            .collect()
    }

    /// The smallest cycle length witnessed at this node (`NO_CYCLE` if
    /// none).
    pub fn detected(&self) -> u64 {
        self.detected
    }
}

impl NodeProtocol for BoundedFloodProtocol {
    type Msg = FloodMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, FloodMsg>, inbox: &[(NodeId, FloodMsg)]) {
        if !self.participates {
            return;
        }
        for (from, msg) in inbox {
            let through = msg.dist + 1;
            match self.best.get(&msg.src).copied() {
                None => {
                    self.best.insert(msg.src, (through, *from));
                    if through < self.delta {
                        self.pending.insert((through, msg.src));
                    }
                }
                Some((d0, parent)) => {
                    if *from != parent {
                        // Two edge-distinct arrivals: closed walk of length
                        // d0 + msg.dist + 1 through the source.
                        let walk = d0 as u64 + msg.dist as u64 + 1;
                        self.detected = self.detected.min(walk);
                        if through < d0 {
                            self.pending.remove(&(d0, msg.src));
                            self.best.insert(msg.src, (through, *from));
                            if through < self.delta {
                                self.pending.insert((through, msg.src));
                            }
                        }
                    } else if through < d0 {
                        self.best.insert(msg.src, (through, *from));
                        if through < self.delta {
                            self.pending.insert((through, msg.src));
                        }
                    }
                }
            }
        }
        // Forward one token per round (pipelining), never back to the
        // parent edge, never to non-participants' benefit (they ignore it).
        while let Some(&(d, src)) = self.pending.iter().next() {
            self.pending.remove(&(d, src));
            if let Some(&(bd, parent)) = self.best.get(&src) {
                if bd == d {
                    let targets: Vec<NodeId> = ctx
                        .neighbors()
                        .iter()
                        .copied()
                        .filter(|&w| w != parent || d == 0)
                        .collect();
                    for w in targets {
                        ctx.send(w, FloodMsg { src, dist: d });
                    }
                    break;
                }
            }
        }
        let _ = self.my_rank;
    }

    fn is_done(&self) -> bool {
        !self.participates || self.pending.is_empty()
    }
}

/// Corollary 9 provider for heavy-cycle vertex values: `value(s)` is the
/// length of the smallest cycle (≤ `k`) through `s` or a neighbor of `s`
/// (`[CFGGLO20]`'s BFS procedure); the α(p) charge is `p + k` rounds
/// ([PRT12; HW12] parallel disjoint BFS). Structural substitution — see
/// module docs.
#[derive(Debug)]
pub struct HeavyCycleProvider {
    truth: Vec<u64>,
    k_len: usize,
    q: u64,
}

impl HeavyCycleProvider {
    /// Build for graph `g` and cycle-length bound `k`.
    pub fn new(g: &Graph, k: usize) -> Self {
        // Per-vertex shortest-cycle witnesses (genuine cycle lengths).
        let cyc: Vec<u64> = (0..g.n())
            .map(|v| match g.shortest_cycle_through(v) {
                Some(l) if l as usize <= k => l as u64,
                _ => NO_CYCLE,
            })
            .collect();
        let truth: Vec<u64> = (0..g.n())
            .map(|s| {
                let mut best = cyc[s];
                for &u in g.neighbors(s) {
                    best = best.min(cyc[u]);
                }
                best
            })
            .collect();
        HeavyCycleProvider { truth, k_len: k, q: 63 }
    }
}

impl ValueProvider for HeavyCycleProvider {
    fn k(&self) -> usize {
        self.truth.len()
    }

    fn q(&self) -> u64 {
        self.q
    }

    fn op(&self) -> CommOp {
        CommOp::Min
    }

    fn values_for(
        &mut self,
        _net: &Network<'_>,
        indices: &[usize],
        ledger: &mut RoundLedger,
    ) -> Result<Vec<Vec<u64>>, RuntimeError> {
        // Charged α(p) = p + k rounds for the p parallel BFS procedures.
        ledger.record(
            "alpha/heavy-cycle-bfs(charged)",
            RunStats { rounds: indices.len() + self.k_len, ..Default::default() },
        );
        let n = self.truth.len();
        Ok((0..n)
            .map(|v| {
                indices.iter().map(|&s| if s == v { self.truth[s] } else { NO_CYCLE }).collect()
            })
            .collect())
    }

    fn truth(&self, i: usize) -> u64 {
        self.truth[i]
    }
}

/// Result of a cycle-detection run.
#[derive(Debug, Clone)]
pub struct CycleResult {
    /// The smallest detected cycle length ≤ `k`, if any.
    pub length: Option<usize>,
    /// Measured + charged rounds.
    pub rounds: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Lemma 23's balance: `β = (1 + log_n D) / (1 + 2⌈k/2⌉)`.
pub fn beta(n: usize, d: usize, k: usize) -> f64 {
    let logn = (n.max(2) as f64).ln();
    let logd = (d.max(1) as f64).ln();
    (1.0 + logd / logn) / (1.0 + 2.0 * k.div_ceil(2) as f64)
}

/// Quantum detection of a cycle of length ≤ `k` (Lemma 23):
/// `O(D + (Dn)^{1/2 − 1/(4⌈k/2⌉+2)})` rounds, success probability ≥ 2/3,
/// one-sided (a reported length is a genuine cycle length).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn quantum_cycle_detection(
    net: &Network<'_>,
    k: usize,
    seed: u64,
) -> Result<CycleResult, RuntimeError> {
    assert!(k >= 3, "cycles have length at least 3");
    let g = net.graph();
    let n = g.n();
    let mut ledger = RoundLedger::new();

    let (leader, stats) = elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);
    let d_est = (tree.depth as usize).max(1);

    let b = beta(n, d_est, k);
    let threshold = (n as f64).powf(b).ceil() as usize;
    let delta = k.div_ceil(2) as Dist;

    // --- Light phase: honest truncated flood over the light subgraph. ---
    let participants: Vec<bool> = (0..n).map(|v| g.degree(v) <= threshold).collect();
    let sources: Vec<NodeId> = (0..n).filter(|&v| participants[v]).collect();
    let mut best_light = NO_CYCLE;
    if !sources.is_empty() {
        let run = net.run(BoundedFloodProtocol::instances(n, &sources, &participants, delta))?;
        ledger.record("light/flood", run.stats);
        let detections: Vec<Vec<u64>> = run.nodes.iter().map(|p| vec![p.detected()]).collect();
        let agg = aggregate_batch(net, &tree.views, &detections, 63, CommOp::Min)?;
        ledger.record("light/min-convergecast", agg.stats);
        best_light = agg.values[0];
    }

    // --- Heavy phase: framework minimum finding with multiplicity n^β. ---
    let any_heavy = (0..n).any(|v| g.degree(v) > threshold);
    let mut best_heavy = NO_CYCLE;
    if any_heavy {
        let provider = HeavyCycleProvider::new(g, k);
        let mut oracle = CongestOracle::setup(net, provider, 1, seed ^ 0xc1c1)?;
        let p = (d_est + k).min(n).max(1);
        oracle.set_p(p);
        let ell = threshold.max(1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
        let out = find_extremum_with_multiplicity(&mut oracle, Extremum::Min, ell, &mut rng);
        best_heavy = out.value;
        ledger.absorb("heavy", oracle.into_ledger());
    }

    let best = best_light.min(best_heavy);
    let length = if best <= k as u64 { Some(best as usize) } else { None };
    let rounds = ledger.total_rounds();
    Ok(CycleResult { length, rounds, ledger })
}

/// Classical baseline: truncated flood from **all** vertices (no degree
/// restriction) — `O(n + k)` measured rounds but with per-node token loads
/// up to `n`; deterministic and exact for cycles of length ≤ `k`
/// (within BFS reach `2⌈k/2⌉ + 1`).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_cycle_detection(
    net: &Network<'_>,
    k: usize,
    seed: u64,
) -> Result<CycleResult, RuntimeError> {
    assert!(k >= 3);
    let g = net.graph();
    let n = g.n();
    let mut ledger = RoundLedger::new();
    let (leader, stats) = elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);

    let participants = vec![true; n];
    let sources: Vec<NodeId> = (0..n).collect();
    let delta = k.div_ceil(2) as Dist;
    let run = net.run(BoundedFloodProtocol::instances(n, &sources, &participants, delta))?;
    ledger.record("flood", run.stats);
    let detections: Vec<Vec<u64>> = run.nodes.iter().map(|p| vec![p.detected()]).collect();
    let agg = aggregate_batch(net, &tree.views, &detections, 63, CommOp::Min)?;
    ledger.record("min-convergecast", agg.stats);
    let best = agg.values[0];
    let length = if best <= k as u64 { Some(best as usize) } else { None };
    let rounds = ledger.total_rounds();
    Ok(CycleResult { length, rounds, ledger })
}

/// Quantum detection without the `D` dependence (Lemma 25): cluster with
/// separation `d = 2k` (Lemma 24, charged), then per color run Lemma 23 on
/// every cluster's `k`-neighborhood in parallel (the clusters are `> 2k`
/// apart, so their neighborhoods are disjoint — the measured cost of a
/// color is the *maximum* over its clusters).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn quantum_cycle_detection_clustered(
    net: &Network<'_>,
    k: usize,
    seed: u64,
) -> Result<CycleResult, RuntimeError> {
    assert!(k >= 3);
    let g = net.graph();
    let mut ledger = RoundLedger::new();

    let clustering: Clustering = cluster(g, 2 * k);
    ledger.record(
        "clustering(charged)",
        RunStats { rounds: clustering.round_charge, ..Default::default() },
    );

    let mut best: u64 = NO_CYCLE;
    for color in 0..clustering.colors {
        let mut color_rounds = 0usize;
        for cl in clustering.of_color(color) {
            // The cluster's k-neighborhood, as its own compact graph.
            let ids = g.ball(&cl.members, k as congest::graph::Dist);
            if ids.len() < 3 {
                continue;
            }
            let (sub, _old_ids) = g.induced_subgraph(&ids);
            if !sub.is_connected() {
                // Run on each component via its own flood; simplest: skip
                // disconnected balls by bumping to the classical detector on
                // the largest component — for our generators balls are
                // connected, but stay safe.
                continue;
            }
            let sub_net = Network::new(&sub).with_bandwidth(net.cap_bits());
            let res = quantum_cycle_detection(&sub_net, k, seed ^ (color as u64) << 8)?;
            color_rounds = color_rounds.max(res.rounds);
            if let Some(l) = res.length {
                best = best.min(l as u64);
            }
        }
        ledger.record(
            &format!("color-{color}(max-over-clusters)"),
            RunStats { rounds: color_rounds, ..Default::default() },
        );
    }

    let length = if best <= k as u64 { Some(best as usize) } else { None };
    let rounds = ledger.total_rounds();
    Ok(CycleResult { length, rounds, ledger })
}

/// Lemma 23's upper bound: `O(D + (Dn)^{1/2 − 1/(4⌈k/2⌉+2)})`.
pub fn quantum_upper_bound(n: usize, d: usize, k: usize) -> f64 {
    let e = 0.5 - 1.0 / (4.0 * k.div_ceil(2) as f64 + 2.0);
    d as f64 + ((d * n) as f64).powf(e)
}

/// Lemma 25's upper bound: `O((k + (kn)^{1/2 − 1/(4⌈k/2⌉+2)})·log² n)`.
pub fn clustered_upper_bound(n: usize, k: usize) -> f64 {
    let e = 0.5 - 1.0 / (4.0 * k.div_ceil(2) as f64 + 2.0);
    let log_n = (n.max(2) as f64).log2();
    (k as f64 + ((k * n) as f64).powf(e)) * log_n * log_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{
        balanced_tree, cycle, cycle_with_body, grid, many_cycles, path, random_connected, star,
    };

    #[test]
    fn no_false_positives_on_trees() {
        for g in [path(20), star(15), balanced_tree(3, 3), congest::generators::random_tree(40, 7)]
        {
            let net = Network::new(&g);
            for k in [3usize, 5, 9] {
                let res = classical_cycle_detection(&net, k, 1).unwrap();
                assert_eq!(res.length, None, "tree reported a cycle of length ≤ {k}");
                let qres = quantum_cycle_detection(&net, k, 1).unwrap();
                assert_eq!(qres.length, None);
            }
        }
    }

    #[test]
    fn classical_detects_exact_girth() {
        for (g, girth) in [
            (cycle(6), 6usize),
            (cycle(9), 9),
            (grid(5, 5), 4),
            (cycle_with_body(7, 15, 3), 7),
            (many_cycles(5, 3, 0), 5),
        ] {
            let net = Network::new(&g);
            let res = classical_cycle_detection(&net, girth + 1, 2).unwrap();
            assert_eq!(res.length, Some(girth), "graph with girth {girth}");
            // k below girth: nothing to find.
            if girth > 3 {
                let res = classical_cycle_detection(&net, girth - 1, 2).unwrap();
                assert_eq!(res.length, None);
            }
        }
    }

    #[test]
    fn quantum_detects_cycles_usually() {
        let mut hits = 0;
        let mut total = 0;
        for (g, girth) in
            [(cycle_with_body(6, 20, 1), 6usize), (many_cycles(4, 4, 2), 4), (grid(6, 4), 4)]
        {
            let net = Network::new(&g);
            for seed in 0..3 {
                total += 1;
                let res = quantum_cycle_detection(&net, girth, seed).unwrap();
                if res.length == Some(girth) {
                    hits += 1;
                }
                if let Some(l) = res.length {
                    assert!(l >= girth, "one-sided: cannot report below the girth");
                }
            }
        }
        assert!(hits * 3 >= total * 2, "{hits}/{total}");
    }

    #[test]
    fn heavy_cycle_through_hub() {
        // A star whose hub sits on a triangle: the cycle is heavy.
        let mut edges: Vec<(usize, usize)> = (1..30).map(|v| (0, v)).collect();
        edges.push((1, 2)); // triangle 0-1-2
        let g = Graph::from_edges(30, edges).unwrap();
        let net = Network::new(&g);
        let mut hits = 0;
        for seed in 0..5 {
            let res = quantum_cycle_detection(&net, 3, seed).unwrap();
            if res.length == Some(3) {
                hits += 1;
            }
        }
        assert!(hits >= 3, "{hits}/5");
    }

    #[test]
    fn clustered_variant_agrees() {
        let g = many_cycles(6, 3, 1);
        let net = Network::new(&g);
        let mut hits = 0;
        for seed in 0..4 {
            let res = quantum_cycle_detection_clustered(&net, 6, seed).unwrap();
            if res.length == Some(6) {
                hits += 1;
            }
        }
        assert!(hits >= 2, "{hits}/4");
    }

    #[test]
    fn beta_decreases_with_k() {
        assert!(beta(1000, 10, 4) > beta(1000, 10, 8));
        assert!(beta(1000, 10, 4) > 0.0 && beta(1000, 10, 4) < 1.0);
    }

    #[test]
    fn bounds_sublinear_in_n() {
        let b1 = quantum_upper_bound(10_000, 20, 6);
        assert!(b1 < 10_000.0 / 2.0, "bound {b1} should be well sublinear");
        assert!(clustered_upper_bound(10_000, 6) > 0.0);
    }

    #[test]
    fn light_flood_respects_depth() {
        // On a long cycle, k = 4 floods reach depth 2 only: detection
        // impossible, few rounds.
        let g = cycle(40);
        let net = Network::new(&g);
        let res = classical_cycle_detection(&net, 4, 1).unwrap();
        assert_eq!(res.length, None);
    }

    #[test]
    fn random_graphs_match_reference() {
        for seed in 0..4 {
            let g = random_connected(36, 0.08, seed);
            let net = Network::new(&g);
            for k in [4usize, 6] {
                let res = classical_cycle_detection(&net, k, 5).unwrap();
                let truth = g.girth().filter(|&l| l as usize <= k);
                match (res.length, truth) {
                    (Some(l), Some(t)) => {
                        assert_eq!(l as u32, t, "seed {seed}, k {k}");
                    }
                    (None, None) => {}
                    (got, want) => panic!("seed {seed}, k {k}: got {got:?}, want {want:?}"),
                }
            }
        }
    }
}
