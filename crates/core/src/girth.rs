//! Girth computation (paper §5.3, Corollary 26).
//!
//! Strategy: first look for a triangle (the `Õ(n^{1/5})` quantum algorithm
//! of `[CFGLO22]` — a cited black box, charged and computed structurally per
//! the substitution table in DESIGN.md), then geometrically grow the bound
//! `k = 4, 4(1+μ), 4(1+μ)², …`, each level running the cycle detector of
//! Lemma 23/25. The error is one-sided (a found cycle is verified), so the
//! search never stops early with a wrong answer; a level may miss with
//! probability ≤ 1/3, matching the corollary's guarantee.
//!
//! A classical baseline (`O(n + D)` all-sources BFS detection, `[PRT12]`)
//! provides the separation against the classical `Ω(√n)` lower bound of
//! `[FHW12]`.

use crate::cycles::{classical_cycle_detection, quantum_cycle_detection, CycleResult};
use congest::runtime::{Network, RoundLedger, RuntimeError};

/// Result of a girth computation.
#[derive(Debug, Clone)]
pub struct GirthResult {
    /// The girth, or `None` for a forest.
    pub girth: Option<usize>,
    /// Measured + charged rounds.
    pub rounds: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Round charge of the cited `Õ(n^{1/5})` triangle-finding black box
/// `[CFGLO22]` — re-exported from [`crate::triangles`].
pub fn triangle_charge(n: usize) -> usize {
    crate::triangles::quantum_triangle_charge(n)
}

/// Quantum girth computation (Corollary 26):
/// `Õ((g + (gn)^{1/2 − 1/Θ(g)})/μ)` rounds, success probability ≥ 2/3.
///
/// No upper bound on the girth needs to be known in advance; the level
/// loop stops at `k > 2D + 1` (a graph with any cycle has one of length
/// ≤ 2D + 1).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics if `mu <= 0`.
pub fn quantum_girth(net: &Network<'_>, mu: f64, seed: u64) -> Result<GirthResult, RuntimeError> {
    assert!(mu > 0.0, "growth factor must be positive");
    let g = net.graph();
    let mut ledger = RoundLedger::new();

    // Step 1: triangle finding (black box, charged — crate::triangles).
    let tri = crate::triangles::quantum_triangle_detection(net)?;
    ledger.absorb("triangle", tri.ledger);
    if tri.triangle.is_some() {
        let rounds = ledger.total_rounds();
        return Ok(GirthResult { girth: Some(3), rounds, ledger });
    }

    // Step 2: geometric level search with the Lemma 23 detector.
    // Any cycle has length ≤ 2D + 1; past that, the graph is a forest.
    let diameter_cap = 2 * g.diameter().unwrap_or(0) as usize + 1;
    let mut k = 4usize;
    let mut level = 0usize;
    let mut found: Option<usize> = None;
    loop {
        let k_eff = k.min(diameter_cap.max(4));
        let res: CycleResult = quantum_cycle_detection(net, k_eff, seed ^ (level as u64) << 16)?;
        ledger.absorb(&format!("level-k{}", k_eff), res.ledger);
        if let Some(l) = res.length {
            found = Some(l);
            break;
        }
        if k >= diameter_cap {
            break;
        }
        level += 1;
        k = ((k as f64) * (1.0 + mu)).ceil() as usize;
    }
    let rounds = ledger.total_rounds();
    Ok(GirthResult { girth: found, rounds, ledger })
}

/// Classical baseline girth (`[PRT12]`-style): all-sources BFS detection,
/// `O(n + D)` measured rounds, exact.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_girth(net: &Network<'_>, seed: u64) -> Result<GirthResult, RuntimeError> {
    let g = net.graph();
    let cap = 2 * g.diameter().unwrap_or(0) as usize + 1;
    let res = classical_cycle_detection(net, cap.max(3), seed)?;
    let rounds = res.rounds;
    Ok(GirthResult { girth: res.length, rounds, ledger: res.ledger })
}

/// Corollary 26's upper bound:
/// `O((g + (gn)^{1/2 − 1/(4⌈g(1+μ)/2⌉+2)})·log²(n)/μ)`.
pub fn quantum_upper_bound(n: usize, g: usize, mu: f64) -> f64 {
    let gg = (g as f64 * (1.0 + mu) / 2.0).ceil();
    let e = 0.5 - 1.0 / (4.0 * gg + 2.0);
    let log_n = (n.max(2) as f64).log2();
    (g as f64 + ((g * n) as f64).powf(e)) * log_n * log_n / mu
}

/// The classical lower bound for girth approximation: `Ω(√n)` `[FHW12]`.
pub fn classical_lower_bound(n: usize) -> f64 {
    (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{
        balanced_tree, cycle, cycle_with_body, grid, many_cycles, random_tree,
    };

    mod petersen {
        use congest::graph::Graph;
        pub fn graph() -> Graph {
            let mut e = vec![];
            for i in 0..5 {
                e.push((i, (i + 1) % 5));
                e.push((5 + i, 5 + (i + 2) % 5));
                e.push((i, 5 + i));
            }
            Graph::from_edges(10, e).unwrap()
        }
    }

    #[test]
    fn classical_girth_exact() {
        for (g, want) in [
            (cycle(8), Some(8usize)),
            (grid(5, 4), Some(4)),
            (cycle_with_body(9, 12, 1), Some(9)),
            (balanced_tree(2, 4), None),
            (random_tree(30, 3), None),
        ] {
            let net = Network::new(&g);
            let res = classical_girth(&net, 1).unwrap();
            assert_eq!(res.girth, want);
        }
    }

    #[test]
    fn quantum_girth_usually_exact() {
        let mut hits = 0;
        let mut total = 0;
        for (g, want) in [
            (cycle_with_body(6, 15, 2), 6usize),
            (many_cycles(5, 3, 1), 5),
            (grid(5, 5), 4),
            (petersen::graph(), 5),
        ] {
            let net = Network::new(&g);
            for seed in 0..3 {
                total += 1;
                let res = quantum_girth(&net, 0.5, seed).unwrap();
                if let Some(l) = res.girth {
                    assert!(l >= want, "one-sided error violated: {l} < girth {want}");
                    if l == want {
                        hits += 1;
                    }
                }
            }
        }
        assert!(hits * 3 >= total * 2, "{hits}/{total}");
    }

    #[test]
    fn quantum_girth_on_forest_is_none() {
        let g = random_tree(25, 9);
        let net = Network::new(&g);
        let res = quantum_girth(&net, 0.5, 4).unwrap();
        assert_eq!(res.girth, None);
    }

    #[test]
    fn triangle_shortcut() {
        let g = congest::generators::lollipop(5, 8); // clique ⇒ triangles
        let net = Network::new(&g);
        let res = quantum_girth(&net, 0.5, 2).unwrap();
        assert_eq!(res.girth, Some(3));
        assert_eq!(res.rounds, triangle_charge(g.n()));
    }

    #[test]
    fn bounds_sublinear() {
        // The exponent 1/2 − 1/Θ(g) wins asymptotically; with the log²n/μ
        // factor the bound dips below n around n ≈ 10⁷ for g = 6.
        assert!(quantum_upper_bound(10_000_000, 6, 0.5) < 10_000_000.0);
        assert!(classical_lower_bound(10_000) == 100.0);
    }
}
