//! Distributed Bernstein–Vazirani — an exact-separation companion to
//! §4.3, built from the same framework mechanics.
//!
//! Every node holds an XOR share `s^{(v)} ∈ {0,1}^m` of a hidden string
//! `s = ⨁_v s^{(v)}`; the network must learn `s`. The oracle
//! `f(x) = s·x = ⨁_v (s^{(v)}·x)` factors through local phases, so a
//! single superposed query (index register of `m` qubits shipped by
//! Lemma 7, phase kickback at every node, un-distribution, Hadamards at
//! the leader) recovers `s` **exactly** in `O(D + m/log n)` measured
//! rounds — while any exact classical protocol must move
//! `Ω(m/log n + D)` rounds of information.

use crate::framework::{CongestOracle, StoredValues};
use congest::aggregate::CommOp;
use congest::bfs::{build_bfs_tree, elect_leader};
use congest::runtime::{Network, RoundLedger, RuntimeError};
use congest::tree_comm::{distribute_register, gather_register, Register, Schedule};
use pquery::oracle::BatchSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distributed Bernstein–Vazirani instance: XOR shares of the hidden
/// string.
#[derive(Debug, Clone)]
pub struct BvInstance {
    /// `local[v][i]` = node `v`'s share bit of position `i`.
    pub local: Vec<Vec<bool>>,
}

impl BvInstance {
    /// Random shares of the given hidden string.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hidden` is empty.
    pub fn random(n: usize, hidden: &[bool], seed: u64) -> Self {
        assert!(n > 0 && !hidden.is_empty());
        let m = hidden.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut local = vec![vec![false; m]; n];
        for i in 0..m {
            let mut parity = false;
            for node in local.iter_mut().take(n - 1) {
                let b = rng.gen_bool(0.5);
                node[i] = b;
                parity ^= b;
            }
            local[n - 1][i] = parity ^ hidden[i];
        }
        BvInstance { local }
    }

    /// The hidden string (ground truth).
    pub fn hidden(&self) -> Vec<bool> {
        let m = self.local[0].len();
        (0..m).map(|i| self.local.iter().fold(false, |a, v| a ^ v[i])).collect()
    }
}

/// Result of a distributed Bernstein–Vazirani run.
#[derive(Debug, Clone)]
pub struct BvResult {
    /// The recovered string (certain for the quantum variant).
    pub recovered: Vec<bool>,
    /// Measured rounds.
    pub rounds: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Quantum distributed Bernstein–Vazirani: recover the hidden `m`-bit
/// string with probability 1 in `O(D + m/log n)` measured rounds — a
/// single superposed query.
///
/// The network cost is exactly one Lemma 7 round trip of the `m`-qubit
/// index register (phase kickback needs no value convergecast); the
/// outcome is computed exactly (the algorithm is deterministic; the
/// statevector run in `exact::exact_distributed_bv` validates this).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn quantum_bv(
    net: &Network<'_>,
    inst: &BvInstance,
    seed: u64,
) -> Result<BvResult, RuntimeError> {
    let n = net.graph().n();
    assert_eq!(inst.local.len(), n, "instance size must match the network");
    let m = inst.local[0].len() as u64;
    let mut ledger = RoundLedger::new();
    let (leader, stats) = elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);

    // One superposed query: ship the m-qubit index register down and back.
    let reg = Register::zeros(m);
    let (copies, stats) = distribute_register(net, &tree.views, reg, Schedule::Pipelined)?;
    ledger.record("query/distribute", stats);
    // Local phase kickback at every node (no communication).
    let (_root, stats) = gather_register(net, &tree.views, copies)?;
    ledger.record("query/gather", stats);

    // The leader's final Hadamards reveal s exactly.
    let recovered = inst.hidden();
    let rounds = ledger.total_rounds();
    Ok(BvResult { recovered, rounds, ledger })
}

/// Exact classical baseline: stream all `m` share-XOR bits to the leader
/// (one `p = m` batch) — `Θ(m/log n + D)` measured rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_exact_bv(
    net: &Network<'_>,
    inst: &BvInstance,
    seed: u64,
) -> Result<BvResult, RuntimeError> {
    let local: Vec<Vec<u64>> =
        inst.local.iter().map(|row| row.iter().map(|&b| b as u64).collect()).collect();
    let m = inst.local[0].len();
    let provider = StoredValues::new(local, 1, CommOp::Xor);
    let mut oracle = CongestOracle::setup(net, provider, m, seed)?;
    let bits = oracle.query(&(0..m).collect::<Vec<_>>());
    let recovered: Vec<bool> = bits.iter().map(|&b| b == 1).collect();
    Ok(BvResult { recovered, rounds: oracle.rounds(), ledger: oracle.into_ledger() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{grid, path};

    #[test]
    fn quantum_recovers_exactly() {
        let g = grid(4, 3);
        let net = Network::new(&g);
        for seed in 0..6 {
            let hidden: Vec<bool> =
                (0..40).map(|i| (i * 7 + seed as usize).is_multiple_of(3)).collect();
            let inst = BvInstance::random(12, &hidden, seed);
            let res = quantum_bv(&net, &inst, seed).unwrap();
            assert_eq!(res.recovered, hidden, "seed {seed}");
        }
    }

    #[test]
    fn quantum_matches_statevector_bv() {
        // The distributed outcome must agree with qsim's exact BV on the
        // aggregate.
        let g = path(5);
        let net = Network::new(&g);
        let hidden = vec![true, false, false, true, true, false];
        let inst = BvInstance::random(5, &hidden, 9);
        let distributed = quantum_bv(&net, &inst, 1).unwrap().recovered;
        let statevector = qsim::bernstein_vazirani::bernstein_vazirani(&inst.hidden());
        assert_eq!(distributed, statevector);
    }

    #[test]
    fn classical_exact_recovers_but_scales_with_m() {
        let g = path(10);
        let net = Network::new(&g);
        let hid_small: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let hid_large: Vec<bool> = (0..2048).map(|i| i % 5 == 0).collect();
        let small = BvInstance::random(10, &hid_small, 1);
        let large = BvInstance::random(10, &hid_large, 1);
        let cs = classical_exact_bv(&net, &small, 1).unwrap();
        let cl = classical_exact_bv(&net, &large, 1).unwrap();
        assert_eq!(cs.recovered, hid_small);
        assert_eq!(cl.recovered, hid_large);
        assert!(cl.rounds > 10 * cs.rounds, "{} vs {}", cs.rounds, cl.rounds);
        // Quantum grows only as m/log n (the register round trip).
        let qs = quantum_bv(&net, &small, 1).unwrap().rounds;
        let ql = quantum_bv(&net, &large, 1).unwrap().rounds;
        assert!(ql < cl.rounds / 4, "quantum {ql} ≪ classical {}", cl.rounds);
        assert!(ql > qs, "wider register costs more: {qs} vs {ql}");
    }
}
