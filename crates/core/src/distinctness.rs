//! Distributed element distinctness (paper §4.2, Lemmas 12–15).
//!
//! Two variants:
//!
//! * **Distributed vector** (Lemma 12): each node holds `x^{(v)} ∈ [N]^k`;
//!   decide whether `x = Σ_v x^{(v)}` has a repeated entry. Quantum:
//!   `Õ(k^{2/3}D^{1/3} + D)` measured rounds via the parallel walk
//!   (Lemma 5) with `p = D`. Classical baseline: one batch `p = k`.
//! * **Between nodes** (Corollary 14): each node holds one value; `k = n`
//!   via the indicator reduction.
//!
//! Lower bounds (Lemmas 13, 15) from two-party disjointness on the
//! dumbbell / double-star topologies.

use crate::framework::{CongestOracle, IndicatorValues, StoredValues};
use congest::aggregate::CommOp;
use congest::graph::bits_for;
use congest::runtime::{Network, RoundLedger, RuntimeError};
use pquery::distinctness::element_distinctness;
use pquery::oracle::BatchSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distributed-vector distinctness instance.
#[derive(Debug, Clone)]
pub struct DistinctnessInstance {
    /// `local[v][i]` = node `v`'s share of entry `i`.
    pub local: Vec<Vec<u64>>,
    /// Value-domain bound `N` (aggregates lie in `[N·n]`).
    pub n_bound: u64,
}

impl DistinctnessInstance {
    /// Random instance whose aggregate is a permutation-like distinct
    /// vector, optionally with one planted collision `(i, j)`.
    ///
    /// Shares are additive: the aggregate entry is split randomly across
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics on empty dimensions or an out-of-range plant.
    pub fn random(n: usize, k: usize, plant: Option<(usize, usize)>, seed: u64) -> Self {
        assert!(n > 0 && k > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        // Distinct aggregate values 1000..1000+k, shuffled.
        let mut agg: Vec<u64> = (0..k as u64).map(|i| 1000 + i).collect();
        use rand::seq::SliceRandom;
        agg.shuffle(&mut rng);
        if let Some((i, j)) = plant {
            assert!(i < k && j < k && i != j, "bad plant");
            agg[j] = agg[i];
        }
        // Split each aggregate into n additive shares.
        let mut local = vec![vec![0u64; k]; n];
        for (i, &total) in agg.iter().enumerate() {
            let mut rest = total;
            for node in local.iter_mut().take(n - 1) {
                let part = rng.gen_range(0..=rest);
                node[i] = part;
                rest -= part;
            }
            local[n - 1][i] = rest;
        }
        DistinctnessInstance { local, n_bound: 1000 + k as u64 }
    }

    /// The aggregate vector (ground truth).
    pub fn aggregate(&self) -> Vec<u64> {
        let k = self.local[0].len();
        (0..k).map(|i| self.local.iter().map(|v| v[i]).sum()).collect()
    }

    /// The true colliding pair with smallest indices, if any.
    pub fn true_pair(&self) -> Option<(usize, usize)> {
        let agg = self.aggregate();
        let mut seen = std::collections::HashMap::new();
        for (i, &v) in agg.iter().enumerate() {
            if let Some(&j) = seen.get(&v) {
                return Some((j, i));
            }
            seen.insert(v, i);
        }
        None
    }
}

/// Result of a distinctness run.
#[derive(Debug, Clone)]
pub struct DistinctnessResult {
    /// The reported colliding pair, if any.
    pub pair: Option<(usize, usize)>,
    /// Measured rounds.
    pub rounds: usize,
    /// Oracle batches.
    pub batches: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

fn provider_for(net: &Network<'_>, inst: &DistinctnessInstance) -> StoredValues {
    let n = net.graph().n();
    assert_eq!(inst.local.len(), n, "instance size must match the network");
    let q = bits_for(inst.n_bound * n as u64);
    StoredValues::new(inst.local.clone(), q, CommOp::Sum)
}

/// Quantum element distinctness in a distributed vector (Lemma 12):
/// `Õ(k^{2/3}D^{1/3} + D)` measured rounds, success probability ≥ 2/3,
/// one-sided (a reported pair is always real).
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn quantum_distinctness(
    net: &Network<'_>,
    inst: &DistinctnessInstance,
    seed: u64,
) -> Result<DistinctnessResult, RuntimeError> {
    let provider = provider_for(net, inst);
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let p = oracle.suggested_p();
    oracle.set_p(p);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1357_9bdf);
    let out = element_distinctness(&mut oracle, &mut rng);
    Ok(DistinctnessResult {
        pair: out.pair,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Classical baseline: stream the whole aggregate to the leader in one
/// `p = k` batch — `Θ(k·⌈log N/log n⌉ + D)` measured rounds, deterministic.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn classical_distinctness(
    net: &Network<'_>,
    inst: &DistinctnessInstance,
    seed: u64,
) -> Result<DistinctnessResult, RuntimeError> {
    let provider = provider_for(net, inst);
    let k = inst.local[0].len();
    let mut oracle = CongestOracle::setup(net, provider, k, seed)?;
    let all: Vec<usize> = (0..k).collect();
    let agg = oracle.query(&all);
    let mut seen = std::collections::HashMap::new();
    let mut pair = None;
    for (i, &v) in agg.iter().enumerate() {
        if let Some(&j) = seen.get(&v) {
            pair = Some((j, i));
            break;
        }
        seen.insert(v, i);
    }
    Ok(DistinctnessResult {
        pair,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Quantum element distinctness *between nodes* (Corollary 14): node `v`
/// holds one value; `k = n` via the indicator reduction —
/// `Õ(n^{2/3}D^{1/3} + D)` measured rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn quantum_distinctness_between_nodes(
    net: &Network<'_>,
    values: &[u64],
    seed: u64,
) -> Result<DistinctnessResult, RuntimeError> {
    let n = net.graph().n();
    assert_eq!(values.len(), n, "one value per node");
    let q = bits_for(values.iter().copied().max().unwrap_or(0).max(1));
    let provider = IndicatorValues::new(values.to_vec(), q, CommOp::Sum);
    let mut oracle = CongestOracle::setup(net, provider, 1, seed)?;
    let p = oracle.suggested_p();
    oracle.set_p(p);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2468_ace0);
    let out = element_distinctness(&mut oracle, &mut rng);
    Ok(DistinctnessResult {
        pair: out.pair,
        rounds: oracle.rounds(),
        batches: oracle.batches(),
        ledger: oracle.into_ledger(),
    })
}

/// Lemma 12's upper bound:
/// `O((k^{2/3}D^{1/3} + D)(⌈log N/log n⌉ + ⌈log k/log n⌉))`.
pub fn quantum_upper_bound(k: usize, d: usize, n: usize, n_bound: u64) -> f64 {
    let log_n = bits_for(n as u64) as f64;
    let fac = (bits_for(n_bound) as f64 / log_n).ceil().max(1.0)
        + (bits_for(k as u64) as f64 / log_n).ceil().max(1.0);
    ((k as f64).powf(2.0 / 3.0) * (d as f64).powf(1.0 / 3.0) + d as f64) * fac
}

/// Lemma 13's classical lower bound: `Ω(k/log n + D)`.
pub fn classical_lower_bound(k: usize, d: usize, n: usize) -> f64 {
    k as f64 / bits_for(n as u64) as f64 + d as f64
}

/// Lemma 13/15's quantum lower bound: `Ω(∛(kD²) + √k)`.
pub fn quantum_lower_bound(k: usize, d: usize) -> f64 {
    (k as f64 * (d as f64).powi(2)).cbrt() + (k as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{double_star, grid, random_connected};

    #[test]
    fn instance_plant_and_truth() {
        let inst = DistinctnessInstance::random(5, 30, Some((3, 17)), 1);
        let agg = inst.aggregate();
        assert_eq!(agg[3], agg[17]);
        assert_eq!(inst.true_pair(), Some((3, 17)));
        let clean = DistinctnessInstance::random(5, 30, None, 2);
        assert_eq!(clean.true_pair(), None);
    }

    #[test]
    fn classical_finds_planted_pair() {
        let g = grid(3, 3);
        let net = Network::new(&g);
        let inst = DistinctnessInstance::random(9, 40, Some((7, 22)), 3);
        let res = classical_distinctness(&net, &inst, 1).unwrap();
        assert_eq!(res.pair, Some((7, 22)));
        assert_eq!(res.batches, 1);
    }

    #[test]
    fn quantum_finds_planted_pair_usually() {
        let g = random_connected(12, 0.15, 4);
        let net = Network::new(&g);
        let inst = DistinctnessInstance::random(12, 64, Some((5, 40)), 5);
        let mut hits = 0;
        for seed in 0..6 {
            let res = quantum_distinctness(&net, &inst, seed).unwrap();
            if let Some(p) = res.pair {
                assert_eq!(p, (5, 40), "one-sided: any reported pair is the real one");
                hits += 1;
            }
        }
        assert!(hits >= 3, "{hits}/6");
    }

    #[test]
    fn quantum_clean_instance_reports_none() {
        let g = grid(4, 3);
        let net = Network::new(&g);
        let inst = DistinctnessInstance::random(12, 48, None, 6);
        let res = quantum_distinctness(&net, &inst, 2).unwrap();
        assert_eq!(res.pair, None);
    }

    #[test]
    fn between_nodes_on_double_star() {
        let g = double_star(6, 6);
        let net = Network::new(&g);
        let mut values: Vec<u64> = (0..g.n() as u64).map(|v| 100 + v).collect();
        values[10] = values[2]; // plant a duplicate
        let mut found = 0;
        for seed in 0..6 {
            let res = quantum_distinctness_between_nodes(&net, &values, seed).unwrap();
            if let Some((i, j)) = res.pair {
                assert_eq!(values[i], values[j]);
                found += 1;
            }
        }
        assert!(found >= 3, "{found}/6");
    }

    #[test]
    fn quantum_beats_classical_for_large_k() {
        let g = random_connected(14, 0.25, 8);
        let net = Network::new(&g);
        let inst = DistinctnessInstance::random(14, 1000, Some((100, 900)), 9);
        let qr = quantum_distinctness(&net, &inst, 4).unwrap();
        let cr = classical_distinctness(&net, &inst, 4).unwrap();
        assert!(qr.rounds < cr.rounds, "quantum {} !< classical {}", qr.rounds, cr.rounds);
    }
}
