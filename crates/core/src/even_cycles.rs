//! Detecting cycles of **exactly** length `k ∈ {4, 6, 8, 10}` — the
//! extension sketched at the end of the paper's §5.2: using the color-BFS
//! technique of `[CFGGLO20]` in place of plain BFS gives
//! `Õ(n^{1/2 − 1/(2k+2)})` rounds in Quantum CONGEST, beating the
//! classical `Ω̃(√n)` bound of `[KR18]` for even-cycle detection.
//!
//! Structure mirrors Lemma 23: light vertices are handled by (color-)BFS
//! floods, heavy ones by framework minimum finding with multiplicity. The
//! color-BFS is the same cited black-box machinery as in the paper; we
//! charge its `O(k + n^{⌈k/2⌉β}·log n)` rounds and compute its output
//! structurally (substitution documented in DESIGN.md), while the heavy
//! phase runs through the measured framework exactly as in `cycles`.

use crate::framework::{CongestOracle, ValueProvider};
use congest::aggregate::CommOp;
use congest::bfs::{build_bfs_tree, elect_leader};
use congest::graph::Graph;
use congest::runtime::{Network, RoundLedger, RunStats, RuntimeError};
use pquery::minimum::{find_extremum_with_multiplicity, Extremum};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sentinel for "not on an exact-k cycle".
const NOT_FOUND: u64 = u64::MAX >> 1;

/// Reference (centralized): is vertex `v` on a simple cycle of exactly
/// length `k`? Canonical DFS: the cycle's minimum vertex is the anchor and
/// all other cycle vertices exceed it, so each cycle is enumerated once.
///
/// Intended for small `k` (≤ 10) on sparse graphs.
pub fn on_exact_cycle(g: &Graph, anchor: usize, k: usize) -> bool {
    assert!(k >= 3);
    fn dfs(
        g: &Graph,
        anchor: usize,
        path: &mut Vec<usize>,
        on_path: &mut [bool],
        k: usize,
    ) -> bool {
        let u = *path.last().unwrap();
        if path.len() == k {
            return g.has_edge(u, anchor);
        }
        for &w in g.neighbors(u) {
            if w > anchor && !on_path[w] {
                path.push(w);
                on_path[w] = true;
                if dfs(g, anchor, path, on_path, k) {
                    path.pop();
                    on_path[w] = false;
                    return true;
                }
                path.pop();
                on_path[w] = false;
            }
        }
        false
    }
    let mut on_path = vec![false; g.n()];
    on_path[anchor] = true;
    dfs(g, anchor, &mut vec![anchor], &mut on_path, k)
}

/// Reference: all vertices lying on some exactly-`k` cycle.
pub fn exact_cycle_vertices(g: &Graph, k: usize) -> Vec<bool> {
    let n = g.n();
    let mut on = vec![false; n];
    // Enumerate by canonical anchor; mark the whole found cycle.
    fn dfs_collect(
        g: &Graph,
        anchor: usize,
        path: &mut Vec<usize>,
        on_path: &mut [bool],
        k: usize,
        mark: &mut [bool],
    ) {
        let u = *path.last().unwrap();
        if path.len() == k {
            if g.has_edge(u, anchor) {
                for &x in path.iter() {
                    mark[x] = true;
                }
            }
            return;
        }
        for w in g.neighbors(u).to_vec() {
            if w > anchor && !on_path[w] {
                path.push(w);
                on_path[w] = true;
                dfs_collect(g, anchor, path, on_path, k, mark);
                path.pop();
                on_path[w] = false;
            }
        }
    }
    for anchor in 0..n {
        let mut on_path = vec![false; n];
        on_path[anchor] = true;
        dfs_collect(g, anchor, &mut vec![anchor], &mut on_path, k, &mut on);
    }
    on
}

/// Reference: does `g` contain a simple cycle of exactly length `k`?
pub fn has_exact_cycle(g: &Graph, k: usize) -> bool {
    (0..g.n()).any(|v| on_exact_cycle(g, v, k))
}

/// Value provider for the heavy phase: `value(s) = k` if an exact-`k`
/// cycle passes through `s` or a neighbor of `s`, else ∞ (color-BFS
/// black-box output, charged `p + k` per batch).
#[derive(Debug)]
struct ExactCycleProvider {
    truth: Vec<u64>,
    k_len: usize,
}

impl ExactCycleProvider {
    fn new(g: &Graph, k: usize) -> Self {
        let on = exact_cycle_vertices(g, k);
        let truth: Vec<u64> = (0..g.n())
            .map(|s| {
                let hit = on[s] || g.neighbors(s).iter().any(|&u| on[u]);
                if hit {
                    k as u64
                } else {
                    NOT_FOUND
                }
            })
            .collect();
        ExactCycleProvider { truth, k_len: k }
    }
}

impl ValueProvider for ExactCycleProvider {
    fn k(&self) -> usize {
        self.truth.len()
    }

    fn q(&self) -> u64 {
        63
    }

    fn op(&self) -> CommOp {
        CommOp::Min
    }

    fn values_for(
        &mut self,
        _net: &Network<'_>,
        indices: &[usize],
        ledger: &mut RoundLedger,
    ) -> Result<Vec<Vec<u64>>, RuntimeError> {
        ledger.record(
            "alpha/color-bfs(charged)",
            RunStats { rounds: indices.len() + self.k_len, ..Default::default() },
        );
        let n = self.truth.len();
        Ok((0..n)
            .map(|v| {
                indices.iter().map(|&s| if s == v { self.truth[s] } else { NOT_FOUND }).collect()
            })
            .collect())
    }

    fn truth(&self, i: usize) -> u64 {
        self.truth[i]
    }
}

/// Result of exact-length cycle detection.
#[derive(Debug, Clone)]
pub struct ExactCycleResult {
    /// Whether an exactly-`k` cycle was found.
    pub found: bool,
    /// Measured + charged rounds.
    pub rounds: usize,
    /// The full phase ledger.
    pub ledger: RoundLedger,
}

/// Quantum detection of a cycle of exactly length `k ∈ {4, 6, 8, 10}` in
/// `Õ(n^{1/2 − 1/(2k+2)})`-style rounds (Lemma 23 structure with color-BFS
/// values). One-sided: `found = true` implies a genuine exact-`k` cycle.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
///
/// # Panics
///
/// Panics unless `k ∈ {4, 6, 8, 10}`.
pub fn quantum_exact_even_cycle(
    net: &Network<'_>,
    k: usize,
    seed: u64,
) -> Result<ExactCycleResult, RuntimeError> {
    assert!(matches!(k, 4 | 6 | 8 | 10), "exact detection supports k = 4, 6, 8, 10");
    let g = net.graph();
    let n = g.n();
    let mut ledger = RoundLedger::new();

    let (leader, stats) = elect_leader(net, seed)?;
    ledger.record("setup/leader-election", stats);
    let tree = build_bfs_tree(net, leader)?;
    ledger.record("setup/bfs-tree", tree.stats);
    let d_est = (tree.depth as usize).max(1);

    let beta = 1.0 / (k as f64 + 1.0);
    let threshold = (n as f64).powf(beta).ceil() as usize;
    let log_n = (usize::BITS - n.leading_zeros()) as usize;

    // Light phase: color-BFS floods over light vertices (cited black box,
    // charged; output computed structurally on the light subgraph).
    let light_ids: Vec<usize> = (0..n).filter(|&v| g.degree(v) <= threshold).collect();
    let mut light_found = false;
    if light_ids.len() >= k {
        let (sub, _old) = g.induced_subgraph(&light_ids);
        if sub.m() > 0 {
            light_found = has_exact_cycle(&sub, k);
        }
        let charge = k
            + ((light_ids.len() as f64).powf(beta * (k as f64 / 2.0).ceil()).ceil() as usize)
                * log_n;
        ledger
            .record("light/color-bfs(charged)", RunStats { rounds: charge, ..Default::default() });
    }

    // Heavy phase: framework minimum finding with multiplicity n^β.
    let any_heavy = (0..n).any(|v| g.degree(v) > threshold);
    let mut heavy_found = false;
    if any_heavy {
        let provider = ExactCycleProvider::new(g, k);
        let mut oracle = CongestOracle::setup(net, provider, 1, seed ^ 0xec)?;
        let p = (d_est + k).min(n).max(1);
        oracle.set_p(p);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3ca7);
        let out =
            find_extremum_with_multiplicity(&mut oracle, Extremum::Min, threshold.max(1), &mut rng);
        heavy_found = out.value == k as u64;
        ledger.absorb("heavy", oracle.into_ledger());
    }

    let rounds = ledger.total_rounds();
    Ok(ExactCycleResult { found: light_found || heavy_found, rounds, ledger })
}

/// The extension's round target: `Õ(n^{1/2 − 1/(2k+2)})`.
pub fn exact_cycle_upper_bound(n: usize, k: usize) -> f64 {
    let e = 0.5 - 1.0 / (2.0 * k as f64 + 2.0);
    let log_n = (n.max(2) as f64).log2();
    (n as f64).powf(e) * log_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::generators::{cycle, grid, hypercube, random_tree, star};

    #[test]
    fn reference_exact_cycles() {
        assert!(has_exact_cycle(&cycle(6), 6));
        assert!(!has_exact_cycle(&cycle(6), 4));
        assert!(has_exact_cycle(&grid(4, 4), 4));
        assert!(has_exact_cycle(&grid(4, 4), 6)); // L-shaped hexagon
        assert!(!has_exact_cycle(&random_tree(20, 1), 4));
        assert!(has_exact_cycle(&hypercube(3), 4));
        assert!(has_exact_cycle(&hypercube(3), 6));
        assert!(has_exact_cycle(&hypercube(3), 8));
    }

    #[test]
    fn exact_cycle_vertices_marking() {
        let g = cycle(8);
        let on = exact_cycle_vertices(&g, 8);
        assert!(on.iter().all(|&b| b));
        let on4 = exact_cycle_vertices(&g, 4);
        assert!(on4.iter().all(|&b| !b));
    }

    #[test]
    fn quantum_detects_exact_even_cycles() {
        let mut hits = 0;
        for seed in 0..4 {
            let res = quantum_exact_even_cycle(&Network::new(&grid(5, 5)), 4, seed).unwrap();
            hits += res.found as usize;
        }
        assert!(hits >= 3, "{hits}/4");
    }

    #[test]
    fn quantum_never_invents_exact_cycles() {
        // C10 has no C4/C6/C8; trees have nothing.
        for (g, ks) in [
            (cycle(10), vec![4usize, 6, 8]),
            (random_tree(30, 2), vec![4, 6, 8, 10]),
            (star(20), vec![4, 6]),
        ] {
            let net = Network::new(&g);
            for k in ks {
                for seed in 0..2 {
                    let res = quantum_exact_even_cycle(&net, k, seed).unwrap();
                    assert!(!res.found, "invented a C{k} on {g:?}");
                }
            }
        }
    }

    #[test]
    fn heavy_exact_cycle_through_hub() {
        // A hub with many leaves sitting on a C4.
        let mut e: Vec<(usize, usize)> = (1..25).map(|v| (0, v)).collect();
        e.push((1, 25));
        e.push((25, 2)); // 0-1-25-2-0 is a C4 through heavy hub 0
        let g = Graph::from_edges(26, e).unwrap();
        let net = Network::new(&g);
        let mut hits = 0;
        for seed in 0..4 {
            hits += quantum_exact_even_cycle(&net, 4, seed).unwrap().found as usize;
        }
        assert!(hits >= 3, "{hits}/4");
    }

    #[test]
    #[should_panic(expected = "k = 4, 6, 8, 10")]
    fn odd_k_rejected() {
        let g = cycle(5);
        let _ = quantum_exact_even_cycle(&Network::new(&g), 5, 0);
    }

    #[test]
    fn bound_is_sublinear() {
        assert!(exact_cycle_upper_bound(1_000_000, 4) < 1_000_000.0);
        assert!(exact_cycle_upper_bound(10_000, 10) > exact_cycle_upper_bound(10_000, 4));
    }
}
