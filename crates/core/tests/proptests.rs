//! Property-based tests for the framework and its applications: the
//! CONGEST oracle must agree with reference folds on arbitrary inputs, the
//! classical baselines must be exact, and quantum answers must be sound
//! (one-sided) on arbitrary instances.

use congest::aggregate::CommOp;
use congest::generators::random_connected_m;
use congest::runtime::Network;
use dqc_core::cycles::classical_cycle_detection;
use dqc_core::distinctness::{classical_distinctness, DistinctnessInstance};
use dqc_core::framework::{CongestOracle, StoredValues};
use dqc_core::scheduling::{classical_meeting_scheduling, MeetingInstance};
use pquery::oracle::BatchSource;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = congest::Graph> {
    (4usize..24, 0u64..300).prop_map(|(n, seed)| random_connected_m(n, n - 1 + n / 3, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oracle_queries_equal_reference_fold(
        g in arb_graph(),
        k in 2usize..40,
        op_pick in 0usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let op = [CommOp::Sum, CommOp::Xor, CommOp::Min, CommOp::Max, CommOp::Or, CommOp::And][op_pick];
        let n = g.n();
        let q = 20u64;
        let lim = if op == CommOp::Sum { ((1u64 << q) - 1) / n as u64 } else { (1u64 << q) - 1 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let local: Vec<Vec<u64>> = (0..n)
            .map(|_| (0..k).map(|_| rng.gen_range(0..=lim)).collect())
            .collect();
        let provider = StoredValues::new(local.clone(), q, op);
        let net = Network::new(&g);
        let p = 1 + (k / 3).min(5);
        let mut oracle = CongestOracle::setup(&net, provider, p, seed).unwrap();
        // Query a few random batches and check against the fold.
        for _ in 0..3 {
            let width = 1 + rng.gen_range(0..p);
            let batch: Vec<usize> = (0..width).map(|_| rng.gen_range(0..k)).collect();
            let got = oracle.query(&batch);
            for (slot, &j) in batch.iter().enumerate() {
                let want = op.fold(local.iter().map(|v| v[j]));
                prop_assert_eq!(got[slot], want);
            }
        }
        // peek agrees with the fold too.
        for j in 0..k {
            let want = op.fold(local.iter().map(|v| v[j]));
            prop_assert_eq!(oracle.peek(j), want);
        }
    }

    #[test]
    fn classical_scheduling_always_exact(
        g in arb_graph(),
        k in 1usize..50,
        seed in any::<u64>(),
    ) {
        let inst = MeetingInstance::random(g.n(), k, 0.4, seed);
        let net = Network::new(&g);
        let res = classical_meeting_scheduling(&net, &inst, seed).unwrap();
        prop_assert_eq!(res.attendance, inst.best_attendance());
        prop_assert_eq!(inst.attendance()[res.slot], res.attendance);
    }

    #[test]
    fn classical_distinctness_always_exact(
        g in arb_graph(),
        k in 4usize..60,
        plant in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let plant_pair = plant.then_some((0, k - 1));
        let inst = DistinctnessInstance::random(g.n(), k, plant_pair, seed);
        let net = Network::new(&g);
        let res = classical_distinctness(&net, &inst, seed).unwrap();
        prop_assert_eq!(res.pair, inst.true_pair());
    }

    #[test]
    fn classical_cycle_detection_matches_reference(
        g in arb_graph(),
        k_pick in 0usize..3,
    ) {
        let k = [4usize, 6, 10][k_pick];
        let net = Network::new(&g);
        let res = classical_cycle_detection(&net, k, 5).unwrap();
        let want = g.girth().filter(|&gl| gl as usize <= k).map(|gl| gl as usize);
        prop_assert_eq!(res.length, want);
    }

    #[test]
    fn rounds_are_positive_and_ledger_sums(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let inst = MeetingInstance::random(g.n(), 12, 0.5, seed);
        let net = Network::new(&g);
        let res = classical_meeting_scheduling(&net, &inst, seed).unwrap();
        prop_assert!(res.rounds > 0);
        prop_assert_eq!(res.rounds, res.ledger.total_rounds());
    }
}
