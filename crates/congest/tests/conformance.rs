//! The conformance checker against deliberately broken protocols: a
//! cap-violating hog and a cross-non-edge sender must each be caught with
//! full round/edge provenance, while honest protocols report clean.

use congest::conformance::{check_protocol, FloodProtocol, Violation};
use congest::faults::{FaultPlan, Reliable, RetryConfig};
use congest::generators::{grid, path, star};
use congest::runtime::{Ctx, EngineMode, MessageSize, Network, NodeProtocol};

#[derive(Clone, Debug)]
struct Payload(u64);

impl MessageSize for Payload {
    fn size_bits(&self) -> u64 {
        self.0
    }
}

/// Sends `cap + 2` bits to its first neighbor in round 1 — a deliberate
/// bandwidth violation with known provenance.
#[derive(Debug)]
struct CapHog {
    done: bool,
}

impl NodeProtocol for CapHog {
    type Msg = Payload;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Payload>, _inbox: &[(usize, Payload)]) {
        if ctx.me() == 0 && ctx.round() == 1 {
            let cap = ctx.cap_bits();
            ctx.send(ctx.neighbors()[0], Payload(cap + 2));
            self.done = true;
        }
        if ctx.round() >= 1 {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// Node 0 addresses the far end of a path — a deliberate non-edge send.
#[derive(Debug)]
struct CrossSender {
    n: usize,
    done: bool,
}

impl NodeProtocol for CrossSender {
    type Msg = Payload;
    fn on_round(&mut self, ctx: &mut Ctx<'_, Payload>, _inbox: &[(usize, Payload)]) {
        if ctx.me() == 0 && ctx.round() == 2 {
            ctx.send(self.n - 1, Payload(1));
        }
        if ctx.round() >= 2 {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

#[test]
fn cap_violation_caught_with_round_and_edge_provenance() {
    let g = star(6);
    let net = Network::new(&g);
    let cap = net.cap_bits();
    let checked =
        check_protocol(&net, 3, || (0..6).map(|_| CapHog { done: false }).collect()).expect("run");
    assert!(!checked.report.is_clean());
    // Star center is node 0; its first neighbor is node 1.
    assert!(
        checked.report.violations.contains(&Violation::CapExceeded {
            round: 1,
            from: 0,
            to: 1,
            bits: cap + 2,
            cap
        }),
        "missing the expected provenance: {}",
        checked.report.render()
    );
    // No engine divergence: both engines audit identically.
    assert!(!checked
        .report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::EngineDivergence { .. })));
}

#[test]
fn cross_non_edge_send_caught_with_provenance() {
    let n = 7;
    let g = path(n);
    let net = Network::new(&g);
    let checked =
        check_protocol(&net, 2, || (0..n).map(|_| CrossSender { n, done: false }).collect())
            .expect("run");
    assert!(
        checked.report.violations.contains(&Violation::NonNeighborSend {
            round: 2,
            from: 0,
            to: n - 1
        }),
        "missing the expected provenance: {}",
        checked.report.render()
    );
    // The render carries the provenance for humans too.
    assert!(checked.report.render().contains("round 2: node 0 sent to non-neighbor 6"));
}

#[test]
fn audited_run_reports_every_breach_not_just_the_first() {
    // Three hogs on a star: each over-sends once; audit mode must record
    // all of them where the plain engine stops at the first.
    #[derive(Debug)]
    struct MultiHog {
        done: bool,
    }
    impl NodeProtocol for MultiHog {
        type Msg = Payload;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Payload>, _inbox: &[(usize, Payload)]) {
            if ctx.me() >= 1 && ctx.me() <= 3 && ctx.round() == 0 {
                ctx.send(0, Payload(ctx.cap_bits() + 1));
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }
    let g = star(8);
    let net = Network::new(&g);
    let violations = net
        .exec((0..8).map(|_| MultiHog { done: false }).collect::<Vec<_>>())
        .audited()
        .run()
        .expect("audited run")
        .violations;
    let caps = violations.iter().filter(|v| matches!(v, Violation::CapExceeded { .. })).count();
    assert_eq!(caps, 3, "expected one violation per hog: {violations:?}");
    // Plain mode errors instead.
    let err = net
        .run((0..8).map(|_| MultiHog { done: false }).collect::<Vec<_>>())
        .expect_err("plain engine aborts");
    assert!(matches!(err, congest::runtime::RuntimeError::BandwidthExceeded { from: 1, .. }));
}

#[test]
fn honest_protocols_are_clean_even_under_faults() {
    let g = grid(5, 4);
    let plan = FaultPlan::new(8).with_drop_rate(0.15).with_delay(0.1, 2);
    let net = Network::new(&g).with_faults(plan);
    let checked = check_protocol(&net, 4, || {
        Reliable::wrap_all(FloodProtocol::instances(g.n(), 0), RetryConfig::default())
    })
    .expect("faulted reliable flood");
    // Injected faults are not model violations: the run stays conformant,
    // the protocol stays correct, and the loss shows up only in `dropped`.
    assert!(checked.report.is_clean(), "{}", checked.report.render());
    assert!(checked.report.stats.dropped > 0);
    assert!(checked.run.nodes.iter().all(|r| r.inner().has_token));
}

#[test]
fn audit_findings_are_element_wise_identical_across_engines() {
    // A protocol that breaches the model both ways on a schedule spread
    // over many nodes and rounds: every third node over-sends to its first
    // neighbor, every fourth sends to a deliberate non-neighbor. Audited
    // runs must yield the *same* `Vec<Violation>` — same length, same
    // order, same round/edge provenance — whether the lanes are one or
    // many, fault-free or faulted.
    #[derive(Debug)]
    struct Misbehaver {
        n: usize,
        done: bool,
    }
    impl NodeProtocol for Misbehaver {
        type Msg = Payload;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Payload>, _inbox: &[(usize, Payload)]) {
            let me = ctx.me();
            if ctx.round() == me % 3 {
                if me % 3 == 0 {
                    ctx.send(ctx.neighbors()[0], Payload(ctx.cap_bits() + 1));
                }
                if me % 4 == 0 {
                    // The first node that is neither `me` nor adjacent.
                    if let Some(w) = (0..self.n).find(|w| *w != me && !ctx.neighbors().contains(w))
                    {
                        ctx.send(w, Payload(1));
                    }
                }
            }
            if ctx.round() >= 2 {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }
    let g = grid(6, 5);
    let make = || (0..g.n()).map(|_| Misbehaver { n: g.n(), done: false }).collect::<Vec<_>>();
    for plan in [None, Some(FaultPlan::new(23).with_drop_rate(0.25).with_delay(0.15, 2))] {
        let base = match &plan {
            Some(p) => Network::new(&g).with_faults(p.clone()),
            None => Network::new(&g),
        };
        let seq = base
            .clone()
            .with_engine(EngineMode::Sequential)
            .exec(make())
            .audited()
            .run()
            .expect("sequential audited run");
        assert!(!seq.violations.is_empty(), "the probe protocol must actually misbehave");
        for threads in [2usize, 3, 7] {
            let par = base
                .clone()
                .with_engine(EngineMode::Parallel { threads })
                .exec(make())
                .audited()
                .run()
                .expect("parallel audited run");
            assert_eq!(
                par.violations.len(),
                seq.violations.len(),
                "faulted={}: violation count diverged at {threads} threads",
                plan.is_some()
            );
            for (i, (s, p)) in seq.violations.iter().zip(&par.violations).enumerate() {
                assert_eq!(
                    s,
                    p,
                    "faulted={}: violation {i} diverged at {threads} threads",
                    plan.is_some()
                );
            }
            assert_eq!(par.stats, seq.stats);
        }
    }
}
