//! Fault-injection behaviour: deterministic schedules that replay
//! identically across engines, loss tolerance through `Reliable`, and the
//! negative paths — every budget exhaustion must surface as a clean
//! `RuntimeError`, never a panic or a hang.

use congest::conformance::FloodProtocol;
use congest::faults::{FaultPlan, Reliable, RetryConfig};
use congest::generators::{grid, path, random_connected_m};
use congest::graph::Graph;
use congest::runtime::{Ctx, EngineMode, MessageSize, Network, NodeProtocol, RuntimeError};

/// Run the same faulted protocol on the sequential engine and on 2-, 3-,
/// and 5-thread parallel engines; all observables must be bit-identical.
fn assert_faulted_engines_agree<P, F>(label: &str, g: &Graph, plan: &FaultPlan, make: F)
where
    P: NodeProtocol + Send + std::fmt::Debug,
    P::Msg: Send + Sync,
    F: Fn() -> Vec<P>,
{
    let reference = Network::new(g).with_faults(plan.clone());
    let ref_out = reference.exec(make()).traced().run_sequential().expect("reference run");
    let ref_states = format!("{:?}", ref_out.nodes);
    for threads in [2usize, 3, 5] {
        let net =
            Network::new(g).with_faults(plan.clone()).with_engine(EngineMode::Parallel { threads });
        let out = net.exec(make()).traced().run().expect("parallel run");
        assert_eq!(out.stats, ref_out.stats, "{label}: stats diverged at {threads} threads");
        assert_eq!(
            out.trace.rounds, ref_out.trace.rounds,
            "{label}: trace diverged at {threads} threads"
        );
        assert_eq!(
            format!("{:?}", out.nodes),
            ref_states,
            "{label}: node states diverged at {threads} threads"
        );
    }
}

#[test]
fn fault_schedule_is_identical_across_engines_and_replays() {
    for seed in [3u64, 17, 99] {
        let g = random_connected_m(48, 90, seed);
        let plan = FaultPlan::new(seed).with_drop_rate(0.25).with_delay(0.2, 3);
        let make = || Reliable::wrap_all(FloodProtocol::instances(48, 0), RetryConfig::default());
        assert_faulted_engines_agree(&format!("reliable-flood seed {seed}"), &g, &plan, make);

        // Replay: the same seed must reproduce the run exactly.
        let net = Network::new(&g).with_faults(plan.clone());
        let a = net.run_sequential(make()).expect("first replay");
        let b = net.run_sequential(make()).expect("second replay");
        assert_eq!(a.stats, b.stats, "seed {seed} did not replay");
        assert!(a.stats.dropped > 0, "seed {seed}: a 25% drop plan dropped nothing");
    }
}

#[test]
fn pure_delay_plans_preserve_flood_correctness() {
    // Delay is not loss: an unwrapped (retry-free) flood still reaches
    // every node, just later.
    let g = grid(6, 5);
    let clean = Network::new(&g).run(FloodProtocol::instances(30, 0)).expect("clean flood");
    let plan = FaultPlan::new(11).with_delay(1.0, 4);
    let net = Network::new(&g).with_faults(plan);
    let run = net.run(FloodProtocol::instances(30, 0)).expect("delayed flood");
    assert!(run.nodes.iter().all(|f| f.has_token));
    assert_eq!(run.stats.dropped, 0);
    assert!(
        run.stats.rounds > clean.stats.rounds,
        "delaying every message must cost rounds ({} vs {})",
        run.stats.rounds,
        clean.stats.rounds
    );
}

#[test]
fn link_down_interval_heals_and_reliable_crosses_it() {
    // The path's only route from 0 is down for rounds 0..8; a Reliable
    // flood keeps retrying and succeeds once the link heals.
    let g = path(5);
    let plan = FaultPlan::new(0).with_link_down(0, 1, 0..8);
    let net = Network::new(&g).with_faults(plan);
    let run = net
        .run(Reliable::wrap_all(
            FloodProtocol::instances(5, 0),
            RetryConfig { base_timeout: 2, max_attempts: 16 },
        ))
        .expect("reliable flood across an outage");
    assert!(run.nodes.iter().all(|r| r.inner().has_token));
    assert!(run.stats.rounds > 8, "cannot finish before the link heals");
    assert!(run.stats.dropped > 0, "the outage must have eaten the early attempts");
}

#[test]
fn retry_budget_exhaustion_is_an_error_not_a_hang() {
    // 100% drop: no retry budget survives. The run must end promptly with
    // RetryBudgetExhausted — not RoundLimitExceeded, not a hang.
    let g = path(4);
    let plan = FaultPlan::new(1).with_drop_rate(1.0);
    let cfg = RetryConfig { base_timeout: 2, max_attempts: 3 };
    for engine in [EngineMode::Sequential, EngineMode::Parallel { threads: 3 }] {
        let net = Network::new(&g).with_faults(plan.clone()).with_engine(engine);
        let err = net
            .run(Reliable::wrap_all(FloodProtocol::instances(4, 0), cfg))
            .expect_err("total loss must fail");
        match err {
            RuntimeError::RetryBudgetExhausted { from, attempts, .. } => {
                assert_eq!(from, 0, "node 0 is the only sender");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }
}

#[test]
fn lossy_network_without_reliable_hits_the_round_limit() {
    // A plain flood has no retries; if the only link is down forever the
    // protocol can never finish and the round limit fires (max-rounds
    // negative path).
    let g = path(3);
    let plan = FaultPlan::new(2).with_link_down(0, 1, 0..usize::MAX);
    let err = Network::new(&g)
        .with_faults(plan)
        .with_round_limit(64)
        .run(FloodProtocol::instances(3, 0))
        .expect_err("unreachable node must exhaust the round limit");
    assert_eq!(err, RuntimeError::RoundLimitExceeded { limit: 64 });
}

#[test]
fn oversized_message_is_a_protocol_error_even_under_faults() {
    // The global cap stays a hard protocol error with a fault plan active;
    // only the *degraded* cap downgrades to tail-dropping.
    #[derive(Debug)]
    struct Oversender {
        sent: bool,
    }
    #[derive(Clone, Debug)]
    struct Big(u64);
    impl MessageSize for Big {
        fn size_bits(&self) -> u64 {
            self.0
        }
    }
    impl NodeProtocol for Oversender {
        type Msg = Big;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Big>, _inbox: &[(usize, Big)]) {
            if ctx.me() == 0 && !self.sent {
                ctx.send(1, Big(ctx.cap_bits() + 1));
            }
            self.sent = true;
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }
    let g = path(2);
    let plan = FaultPlan::new(3).with_degraded_edge(0, 1, 2).with_drop_rate(0.5);
    let err = Network::new(&g)
        .with_faults(plan)
        .run(vec![Oversender { sent: false }, Oversender { sent: false }])
        .expect_err("oversized message must still error");
    assert!(matches!(err, RuntimeError::BandwidthExceeded { round: 0, from: 0, to: 1, .. }));
}

#[test]
fn degraded_edge_tail_drops_within_global_cap() {
    // Two 3-bit messages on a degraded (cap 4) edge: the first fits, the
    // second overflows the degraded cap — dropped as a fault, not an error.
    #[derive(Debug)]
    struct TwoSends {
        sent: bool,
        received: usize,
    }
    #[derive(Clone, Debug)]
    struct Three;
    impl MessageSize for Three {
        fn size_bits(&self) -> u64 {
            3
        }
    }
    impl NodeProtocol for TwoSends {
        type Msg = Three;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Three>, inbox: &[(usize, Three)]) {
            self.received += inbox.len();
            if ctx.me() == 0 && !self.sent {
                ctx.send(1, Three);
                ctx.send(1, Three);
            }
            self.sent = true;
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }
    let g = path(2);
    let plan = FaultPlan::new(4).with_degraded_edge(0, 1, 4);
    let net = Network::new(&g).with_bandwidth(16).with_faults(plan);
    let run = net
        .run(vec![TwoSends { sent: false, received: 0 }, TwoSends { sent: false, received: 0 }])
        .expect("degraded overflow is not an error");
    assert_eq!(run.stats.dropped, 1);
    assert_eq!(run.stats.messages, 1);
    assert_eq!(run.nodes[1].received, 1, "only the first message fits the degraded cap");
    // The offered load still shows both messages on the edge.
    assert_eq!(run.stats.max_edge_bits, 6);
}

#[test]
fn reliable_broadcast_survives_heavy_loss() {
    // 30% per-message drop on a grid: Reliable flood still reaches every
    // node, with the loss visible in the dropped counter.
    let g = grid(5, 4);
    let plan = FaultPlan::new(21).with_drop_rate(0.3);
    let net = Network::new(&g).with_faults(plan);
    let run = net
        .run(Reliable::wrap_all(FloodProtocol::instances(20, 7), RetryConfig::default()))
        .expect("reliable flood under 30% loss");
    assert!(run.nodes.iter().all(|r| r.inner().has_token));
    assert!(run.stats.dropped > 0);
}

#[test]
fn fault_free_reliable_flood_matches_plain_round_count() {
    // With no faults, stop-and-wait adds acks but each payload still takes
    // one hop per round, so the flood front moves at full speed.
    let g = path(8);
    let plain = Network::new(&g).run(FloodProtocol::instances(8, 0)).expect("plain");
    let wrapped = Network::new(&g)
        .run(Reliable::wrap_all(FloodProtocol::instances(8, 0), RetryConfig::default()))
        .expect("wrapped");
    assert!(wrapped.nodes.iter().all(|r| r.inner().has_token));
    // The token reaches the far end in the same number of rounds; the
    // trailing ack exchanges may add a constant tail.
    assert!(
        wrapped.stats.rounds >= plain.stats.rounds
            && wrapped.stats.rounds <= plain.stats.rounds + 4,
        "plain {} vs wrapped {}",
        plain.stats.rounds,
        wrapped.stats.rounds
    );
}
