//! Cross-engine determinism of the telemetry subsystem.
//!
//! The contract (see `congest::telemetry` module docs): an instrumented
//! run exports **byte-identical** trace and metrics files under every
//! `EngineMode`, fault-free and faulted alike. These tests run the same
//! instrumented workload on the sequential and the parallel engine and
//! compare the raw export strings.

use congest::bfs::BfsTreeProtocol;
use congest::conformance::FloodProtocol;
use congest::faults::{FaultPlan, Reliable, RetryConfig};
use congest::generators::grid;
use congest::runtime::{EngineMode, Network};
use congest::telemetry::Collector;

/// Run the workload once per engine mode and return the two exports.
fn exports_for<F>(workload: F) -> Vec<(String, String)>
where
    F: Fn(&mut Collector, EngineMode),
{
    [EngineMode::Sequential, EngineMode::Parallel { threads: 4 }]
        .into_iter()
        .map(|mode| {
            let mut col = Collector::new();
            workload(&mut col, mode);
            (col.to_chrome_jsonl(), col.metrics_json())
        })
        .collect()
}

#[test]
fn fault_free_exports_are_byte_identical_across_engines() {
    let g = grid(6, 5);
    let exports = exports_for(|col, mode| {
        let net = Network::new(&g).with_engine(mode);
        col.enter("flood");
        net.exec(FloodProtocol::instances(g.n(), 0)).telemetry(col).run().expect("flood");
        col.exit();
        col.enter("bfs");
        net.exec(BfsTreeProtocol::instances(g.n(), 0)).telemetry(col).run().expect("bfs");
        col.exit();
    });
    assert_eq!(exports[0].0, exports[1].0, "trace JSONL differs across engines");
    assert_eq!(exports[0].1, exports[1].1, "metrics JSON differs across engines");
    assert!(exports[0].0.contains("\"ph\":\"X\""));
}

#[test]
fn faulted_exports_are_byte_identical_across_engines() {
    let g = grid(6, 5);
    let plan = FaultPlan::new(19).with_drop_rate(0.3);
    let exports = exports_for(|col, mode| {
        let net = Network::new(&g).with_engine(mode).with_faults(plan.clone());
        col.enter("reliable-bfs");
        net.exec(Reliable::wrap_all(BfsTreeProtocol::instances(g.n(), 0), RetryConfig::default()))
            .telemetry(col)
            .run()
            .expect("reliable bfs under 30% loss");
        col.exit();
    });
    assert_eq!(exports[0].0, exports[1].0, "faulted trace JSONL differs across engines");
    assert_eq!(exports[0].1, exports[1].1, "faulted metrics JSON differs across engines");
}

#[test]
fn faulted_run_records_retries_and_edge_loads() {
    let g = grid(6, 5);
    let net = Network::new(&g)
        .with_engine(EngineMode::Sequential)
        .with_faults(FaultPlan::new(19).with_drop_rate(0.3));
    let mut col = Collector::new();
    col.enter("reliable-flood");
    net.exec(Reliable::wrap_all(FloodProtocol::instances(g.n(), 0), RetryConfig::default()))
        .telemetry(&mut col)
        .run()
        .expect("reliable flood under 30% loss");
    col.exit();

    // At 30% loss a grid flood loses some data or ack, so the stop-and-wait
    // wrapper must retransmit; the counters and the backoff histogram see it.
    assert!(col.counter("reliable.retries") > 0, "no retries recorded under 30% loss");
    assert!(col.counter("reliable.sends") > 0);
    assert!(col.counter("reliable.acks") > 0);
    assert!(col.histogram("reliable.backoff").is_some());
    assert!(col.counter("engine.dropped") > 0);
    // Every directed edge load is bounded by rounds * cap.
    let rounds = col.cursor();
    for (&(f, t), &bits) in col.edge_loads() {
        assert!(g.neighbors(f).contains(&t), "edge ({f},{t}) not in graph");
        assert!(bits <= rounds * net.cap_bits());
    }
    assert!(!col.edge_loads().is_empty());
    // Round samples cover the run and sum to the delivered bits counter.
    let sampled: u64 = col.round_samples().iter().map(|s| s.trace.bits).sum();
    assert_eq!(sampled, col.counter("engine.bits"));
}

#[test]
fn telemetry_run_matches_untelemetered_run() {
    // Recording must not perturb the run itself.
    let g = grid(6, 5);
    let net = Network::new(&g).with_engine(EngineMode::Sequential);
    let plain = net.run(FloodProtocol::instances(g.n(), 0)).expect("plain");
    let mut col = Collector::new();
    let telem = net
        .exec(FloodProtocol::instances(g.n(), 0))
        .telemetry(&mut col)
        .run()
        .expect("telemetered");
    assert_eq!(plain.stats, telem.stats);
    assert_eq!(col.cursor(), plain.stats.rounds as u64);
    assert_eq!(col.counter("engine.bits"), plain.stats.total_bits);
}
