//! Observer composition is free: attaching any combination of the built-in
//! observers (trace, audit, telemetry) — or custom [`RunObserver`]s — must
//! not perturb the run, and each observer must record the same artifact it
//! records when attached alone.

use congest::bfs::BfsTreeProtocol;
use congest::conformance::FloodProtocol;
use congest::faults::{FaultPlan, Reliable, RetryConfig};
use congest::generators::{grid, path, random_connected_m, star};
use congest::graph::{Graph, NodeId};
use congest::runtime::{EngineMode, Network, RunObserver, RunStats};
use congest::telemetry::Collector;
use proptest::prelude::*;

/// Random connected topologies crossed with an optional fault plan.
fn arb_network() -> impl Strategy<Value = (String, Graph, Option<FaultPlan>)> {
    ((0usize..4), (0usize..1000), (0u64..1000), any::<bool>()).prop_map(
        |(family, size, seed, faulted)| {
            let (name, g) = match family {
                0 => {
                    let n = 6 + size % 60;
                    (format!("path({n})"), path(n))
                }
                1 => {
                    let (w, h) = (2 + size % 8, 2 + seed as usize % 8);
                    (format!("grid({w}x{h})"), grid(w, h))
                }
                2 => {
                    let n = 6 + size % 60;
                    (format!("star({n})"), star(n))
                }
                _ => {
                    let n = 12 + size % 52;
                    (format!("random({n},{seed})"), random_connected_m(n, n + n / 2, seed))
                }
            };
            let plan = faulted
                .then(|| FaultPlan::new(seed ^ 0xABCD).with_drop_rate(0.2).with_delay(0.1, 2));
            (name, g, plan)
        },
    )
}

fn net_for<'g>(g: &'g Graph, plan: &Option<FaultPlan>, mode: EngineMode) -> Network<'g> {
    let net = Network::new(g).with_engine(mode);
    match plan {
        Some(p) => net.with_faults(p.clone()),
        None => net,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full pipeline (trace + audit + telemetry) yields the same
    /// statistics and final node states as a bare run, and its trace
    /// equals the trace of `.traced()` alone.
    #[test]
    fn composed_observers_do_not_perturb_the_run(
        input in arb_network(),
        mode_pick in 0usize..3,
        origin_pick in 0usize..1000,
    ) {
        let (name, g, plan) = input;
        let origin = origin_pick % g.n();
        let mode = match mode_pick {
            0 => EngineMode::Sequential,
            1 => EngineMode::Parallel { threads: 3 },
            _ => EngineMode::Auto,
        };
        let make = || {
            Reliable::wrap_all(FloodProtocol::instances(g.n(), origin), RetryConfig::default())
        };

        let bare = net_for(&g, &plan, mode).run(make()).expect("bare run");
        let traced_alone =
            net_for(&g, &plan, mode).exec(make()).traced().run().expect("traced run");
        let mut col = Collector::new();
        let full = net_for(&g, &plan, mode)
            .exec(make())
            .traced()
            .audited()
            .telemetry(&mut col)
            .run()
            .expect("fully observed run");

        prop_assert_eq!(full.stats, bare.stats, "observers perturbed the stats on {}", &name);
        prop_assert_eq!(
            format!("{:?}", full.nodes),
            format!("{:?}", bare.nodes),
            "observers perturbed the node states on {}", &name
        );
        prop_assert_eq!(traced_alone.stats, bare.stats);
        prop_assert_eq!(
            &full.trace.rounds,
            &traced_alone.trace.rounds,
            "composed trace differs from .traced() alone on {}", &name
        );
        // An honest protocol audits clean, and the collector saw the run.
        prop_assert!(full.violations.is_empty());
        prop_assert_eq!(col.cursor(), bare.stats.rounds as u64);
        prop_assert_eq!(col.counter("engine.bits"), bare.stats.total_bits);
    }
}

/// A custom observer exercising every hook, including the gated
/// per-message one.
#[derive(Default)]
struct CountingObserver {
    round_starts: usize,
    round_ends: usize,
    messages: u64,
    bits: u64,
    finishes: usize,
    finished_stats: Option<RunStats>,
}

impl RunObserver for &mut CountingObserver {
    fn observes_messages(&self) -> bool {
        true
    }
    fn on_round_start(&mut self, _round: usize) {
        self.round_starts += 1;
    }
    fn on_message(&mut self, _round: usize, _from: NodeId, _to: NodeId, bits: u64) {
        self.messages += 1;
        self.bits += bits;
    }
    fn on_round_end(
        &mut self,
        _round: usize,
        _trace: congest::runtime::RoundTrace,
        _shard: &mut congest::telemetry::Shard,
    ) {
        self.round_ends += 1;
    }
    fn on_finish(&mut self, stats: &RunStats) {
        self.finishes += 1;
        self.finished_stats = Some(*stats);
    }
}

#[test]
fn custom_observer_sees_every_delivered_message_under_every_engine() {
    let g = grid(7, 6);
    let plan = FaultPlan::new(41).with_drop_rate(0.2).with_delay(0.1, 3);
    for mode in [EngineMode::Sequential, EngineMode::Parallel { threads: 4 }] {
        let net = Network::new(&g).with_engine(mode).with_faults(plan.clone());
        let mut counter = CountingObserver::default();
        let run = net
            .run_with(
                Reliable::wrap_all(BfsTreeProtocol::instances(g.n(), 0), RetryConfig::default()),
                &mut counter,
            )
            .expect("observed run");
        // `on_message` fires once per *accepted* message — delayed ones
        // included, dropped ones not — which is exactly `stats.messages`.
        assert_eq!(counter.messages, run.stats.messages, "{mode:?}");
        assert_eq!(counter.bits, run.stats.total_bits, "{mode:?}");
        assert_eq!(counter.finishes, 1, "{mode:?}");
        assert_eq!(counter.finished_stats, Some(run.stats), "{mode:?}");
        // One start/end pair per executed round (trailing quiet rounds
        // included — the hooks see every loop iteration).
        assert_eq!(counter.round_starts, counter.round_ends, "{mode:?}");
        assert!(counter.round_starts >= run.stats.rounds, "{mode:?}");
        assert!(run.stats.dropped > 0, "the plan should actually drop something");
    }
}

#[test]
fn tuple_composition_reaches_both_observers() {
    let g = path(9);
    let net = Network::new(&g);
    let mut a = CountingObserver::default();
    let mut b = CountingObserver::default();
    let run = net.run_with(FloodProtocol::instances(9, 0), (&mut a, &mut b)).expect("composed run");
    for (label, c) in [("left", &a), ("right", &b)] {
        assert_eq!(c.messages, run.stats.messages, "{label}");
        assert_eq!(c.finishes, 1, "{label}");
        assert_eq!(c.finished_stats, Some(run.stats), "{label}");
    }
}
