//! The parallel engine's contract: for any protocol, topology, and thread
//! count, runs under `EngineMode::Parallel` produce results
//! byte-identical to the single-threaded reference engine — statistics,
//! per-round traces, and the full final node states.
//!
//! Node states are compared through their `Debug` rendering, which covers
//! every field of every protocol without requiring `PartialEq` on them.

use congest::aggregate::{AggregateBatchProtocol, CommOp};
use congest::bfs::{BfsTreeProtocol, TreeView};
use congest::generators::{grid, path, random_connected_m, star};
use congest::graph::Graph;
use congest::runtime::{EngineMode, Network, NodeProtocol, RuntimeError};
use congest::tree_comm::{BroadcastRegisterProtocol, Register, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn topologies(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("path(40)".into(), path(40)),
        ("grid(8x6)".into(), grid(8, 6)),
        (format!("random(48, seed {seed})"), random_connected_m(48, 96, seed)),
    ]
}

/// Run `make()`'s protocol set sequentially and under 2- and 5-thread
/// parallel engines on copies of `base` (keeping its bandwidth, limits,
/// and fault plan), asserting identical stats, traces, and node states.
fn assert_engines_agree_on<P, F>(label: &str, base: &Network<'_>, make: F)
where
    P: NodeProtocol + Send + std::fmt::Debug,
    P::Msg: Send + Sync,
    F: Fn(&Network<'_>) -> Vec<P>,
{
    let reference = base.clone().with_engine(EngineMode::Sequential);
    let ref_out =
        reference.exec(make(&reference)).traced().run_sequential().expect("reference run");
    let ref_states = format!("{:?}", ref_out.nodes);
    for threads in [2usize, 5] {
        let net = base.clone().with_engine(EngineMode::Parallel { threads });
        let out = net.exec(make(&net)).traced().run().expect("parallel run");
        assert_eq!(out.stats, ref_out.stats, "{label}: stats diverged at {threads} threads");
        assert_eq!(
            out.trace.rounds, ref_out.trace.rounds,
            "{label}: trace diverged at {threads} threads"
        );
        assert_eq!(
            format!("{:?}", out.nodes),
            ref_states,
            "{label}: node states diverged at {threads} threads"
        );
    }
}

/// [`assert_engines_agree_on`] over a default fault-free network.
fn assert_engines_agree<P, F>(label: &str, g: &Graph, make: F)
where
    P: NodeProtocol + Send + std::fmt::Debug,
    P::Msg: Send + Sync,
    F: Fn(&Network<'_>) -> Vec<P>,
{
    assert_engines_agree_on(label, &Network::new(g), make);
}

fn tree_views(net: &Network<'_>, root: usize) -> Vec<TreeView> {
    let run = net
        .run_sequential(BfsTreeProtocol::instances(net.graph().n(), root))
        .expect("bfs for tree views");
    run.nodes.iter().map(|p| p.tree_view()).collect()
}

#[test]
fn bfs_matches_sequential_everywhere() {
    for seed in [1u64, 2, 3] {
        for (name, g) in topologies(seed) {
            let root = seed as usize % g.n();
            assert_engines_agree(&format!("bfs/{name}"), &g, |net| {
                BfsTreeProtocol::instances(net.graph().n(), root)
            });
        }
    }
}

#[test]
fn aggregate_matches_sequential_everywhere() {
    for seed in [1u64, 2, 3] {
        for (name, g) in topologies(seed) {
            let views = tree_views(&Network::new(&g), 0);
            let mut rng = StdRng::seed_from_u64(seed);
            // Keep the Sum domain closed: each value below (2^q - 1) / n.
            let q = 16u64;
            let lim = ((1u64 << q) - 1) / g.n() as u64;
            let values: Vec<Vec<u64>> =
                (0..g.n()).map(|_| (0..4).map(|_| rng.gen_range(0u64..lim)).collect()).collect();
            assert_engines_agree(&format!("aggregate/{name}"), &g, |net| {
                AggregateBatchProtocol::instances(
                    &views,
                    &values,
                    q,
                    CommOp::Sum,
                    (net.cap_bits() - 1).min(64),
                )
            });
        }
    }
}

#[test]
fn tree_comm_matches_sequential_everywhere() {
    for seed in [1u64, 2, 3] {
        for (name, g) in topologies(seed) {
            let views = tree_views(&Network::new(&g), 0);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let words: Vec<u64> = (0..6).map(|_| rng.gen()).collect();
            let reg = Register::from_words(words.len() as u64 * 64, words);
            assert_engines_agree(&format!("tree_comm/{name}"), &g, |net| {
                BroadcastRegisterProtocol::instances(
                    &views,
                    reg.clone(),
                    (net.cap_bits() - 1).min(64),
                    Schedule::Pipelined,
                )
            });
        }
    }
}

#[test]
fn traced_and_untraced_runs_report_identical_stats() {
    for (name, g) in topologies(7) {
        let net = Network::new(&g);
        let n = g.n();
        let plain = net.run(BfsTreeProtocol::instances(n, 0)).expect("plain");
        let traced = net.exec(BfsTreeProtocol::instances(n, 0)).traced().run().expect("traced");
        let trace = &traced.trace;
        assert_eq!(plain.stats, traced.stats, "{name}: tracing changed the run statistics");
        assert_eq!(
            trace.total_bits(),
            traced.stats.total_bits,
            "{name}: trace accounts bits differently than the stats"
        );
        assert_eq!(
            trace.rounds.iter().map(|r| r.messages).sum::<u64>(),
            traced.stats.messages,
            "{name}: trace accounts messages differently than the stats"
        );
    }
}

#[test]
fn parallel_engine_reports_identical_errors() {
    // A star's hub broadcasting a cap-sized payload twice must fail with
    // the same first error under every engine.
    #[derive(Debug)]
    struct Hog {
        sent: bool,
    }
    #[derive(Clone, Debug)]
    struct Big(u64);
    impl congest::runtime::MessageSize for Big {
        fn size_bits(&self) -> u64 {
            self.0
        }
    }
    impl NodeProtocol for Hog {
        type Msg = Big;
        fn on_round(&mut self, ctx: &mut congest::runtime::Ctx<'_, Big>, _inbox: &[(usize, Big)]) {
            if !self.sent {
                let cap = ctx.cap_bits();
                for &w in &[ctx.neighbors()[0], ctx.neighbors()[0]] {
                    ctx.send(w, Big(cap));
                }
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }
    let g = star(20);
    let make = || (0..20).map(|_| Hog { sent: false }).collect::<Vec<_>>();
    let seq_err = Network::new(&g).run_sequential(make()).unwrap_err();
    assert!(matches!(seq_err, RuntimeError::BandwidthExceeded { .. }));
    for threads in [2usize, 3, 8] {
        let par_err =
            Network::new(&g).with_engine(EngineMode::Parallel { threads }).run(make()).unwrap_err();
        assert_eq!(par_err, seq_err, "error diverged at {threads} threads");
    }
}

/// The differential proptest of the two engines: random connected
/// topologies (path/grid/star/random, up to ~256 nodes) crossed with the
/// four protocol families must yield bit-identical stats, traces, and node
/// states under `Sequential` vs `Parallel` — with and without a fault
/// plan.
mod differential {
    use super::*;
    use congest::conformance::FloodProtocol;
    use congest::faults::{FaultPlan, Reliable, RetryConfig};
    use congest::generators::random_tree;
    use proptest::prelude::*;

    /// Random connected topologies: paths, grids, stars, random graphs, and
    /// random trees, up to ~256 nodes.
    fn arb_topology() -> impl Strategy<Value = (String, Graph)> {
        ((0usize..5), (0usize..1000), (0u64..1000)).prop_map(|(family, size, seed)| match family {
            0 => {
                let n = 8 + size % 249;
                (format!("path({n})"), path(n))
            }
            1 => {
                let (w, h) = (2 + size % 15, 2 + seed as usize % 15);
                (format!("grid({w}x{h})"), grid(w, h))
            }
            2 => {
                let n = 8 + size % 249;
                (format!("star({n})"), star(n))
            }
            3 => {
                let n = 16 + size % 177;
                (format!("random({n},{seed})"), random_connected_m(n, n + n / 2, seed))
            }
            _ => {
                let n = 8 + size % 121;
                (format!("tree({n},{seed})"), random_tree(n, seed))
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn flood_agrees(topo in arb_topology(), pick in 0usize..1000) {
            let (name, g) = topo;
            let origin = pick % g.n();
            assert_engines_agree(&format!("flood/{name}"), &g, |net| {
                FloodProtocol::instances(net.graph().n(), origin)
            });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn bfs_agrees(topo in arb_topology(), pick in 0usize..1000) {
            let (name, g) = topo;
            let root = pick % g.n();
            assert_engines_agree(&format!("bfs/{name}"), &g, |net| {
                BfsTreeProtocol::instances(net.graph().n(), root)
            });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn broadcast_agrees(topo in arb_topology(), seed in 0u64..1000) {
            let (name, g) = topo;
            let views = tree_views(&Network::new(&g), 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let words: Vec<u64> = (0..4).map(|_| rng.gen()).collect();
            let reg = Register::from_words(words.len() as u64 * 64, words);
            assert_engines_agree(&format!("broadcast/{name}"), &g, |net| {
                BroadcastRegisterProtocol::instances(
                    &views,
                    reg.clone(),
                    (net.cap_bits() - 1).min(64),
                    Schedule::Pipelined,
                )
            });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn tree_aggregate_agrees(topo in arb_topology(), seed in 0u64..1000) {
            let (name, g) = topo;
            let views = tree_views(&Network::new(&g), 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let q = 16u64;
            let lim = ((1u64 << q) - 1) / g.n() as u64;
            let values: Vec<Vec<u64>> = (0..g.n())
                .map(|_| (0..3).map(|_| rng.gen_range(0u64..lim.max(1))).collect())
                .collect();
            assert_engines_agree(&format!("aggregate/{name}"), &g, |net| {
                // Chunk headers cost 2 bits, so payload chunks get cap - 2.
                AggregateBatchProtocol::instances(
                    &views,
                    &values,
                    q,
                    CommOp::Sum,
                    (net.cap_bits() - 2).min(64),
                )
            });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn faulted_flood_agrees(topo in arb_topology(), fault_seed in 0u64..1000) {
            let (name, g) = topo;
            // The same seeded fault plan must replay identically on both
            // engines — drops, delays, and retransmissions included.
            let plan = FaultPlan::new(fault_seed).with_drop_rate(0.2).with_delay(0.1, 3);
            let net = Network::new(&g).with_faults(plan);
            assert_engines_agree_on(&format!("faulted-flood/{name}"), &net, |net| {
                Reliable::wrap_all(
                    FloodProtocol::instances(net.graph().n(), 0),
                    RetryConfig::default(),
                )
            });
        }
    }
}

#[test]
fn auto_mode_thresholds_on_network_size() {
    // Below the threshold Auto must stay sequential (observable only via
    // behavior equality — both paths must succeed and agree).
    let g = path(32);
    let net = Network::new(&g);
    assert_eq!(net.engine(), EngineMode::Auto);
    let a = net.run(BfsTreeProtocol::instances(32, 0)).expect("auto run");
    let b = net.run_sequential(BfsTreeProtocol::instances(32, 0)).expect("sequential run");
    assert_eq!(a.stats, b.stats);
    // Above the threshold Auto may parallelize; results must still agree.
    let g = path(600);
    let net = Network::new(&g);
    let a = net.run(BfsTreeProtocol::instances(600, 0)).expect("auto run large");
    let b = net.run_sequential(BfsTreeProtocol::instances(600, 0)).expect("sequential large");
    assert_eq!(a.stats, b.stats);
    assert_eq!(format!("{:?}", a.nodes), format!("{:?}", b.nodes));
}
