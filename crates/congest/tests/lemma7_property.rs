//! Lemma 7 as an executable invariant (E1's table, universally
//! quantified): on any tree, pipelined register distribution finishes in
//! `D + ⌈q/B⌉ + O(1)` measured rounds, while the store-and-forward
//! schedule needs at least `D · ⌈q/B⌉` — the multiplicative idle-wait cost
//! the paper's framework eliminates.

use congest::bfs::build_bfs_tree;
use congest::generators::random_tree;
use congest::runtime::Network;
use congest::tree_comm::{distribute_register, Register, Schedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipelined_is_additive_and_naive_is_multiplicative(
        n in 3usize..64,
        seed in 0u64..500,
        q in 1u64..400,
    ) {
        let g = random_tree(n, seed);
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let depth = tree.views.iter().map(|v| v.depth).max().unwrap() as u64;
        prop_assert!(depth >= 1, "a tree on n >= 3 nodes has depth >= 1 from its root");

        // The register travels in chunks of `chunk_bits` payload per
        // message (one tag bit reserved), matching tree_comm's schedule.
        let chunk_bits = (net.cap_bits() - 1).min(64);
        let chunks = q.div_ceil(chunk_bits);
        let reg = Register::from_value(q, if q >= 64 { u64::MAX } else { (1 << q) - 1 });

        let (copies, piped) =
            distribute_register(&net, &tree.views, reg.clone(), Schedule::Pipelined).unwrap();
        prop_assert!(copies.iter().all(|c| c == &reg));
        let piped = piped.rounds as u64;

        // Lemma 7: D + ⌈q/B⌉ + O(1), and no faster than either term alone.
        prop_assert!(
            piped <= depth + chunks + 2,
            "pipelined {} rounds exceeds D + ⌈q/B⌉ + 2 = {} + {} + 2",
            piped, depth, chunks
        );
        prop_assert!(piped >= depth.max(chunks));

        let (copies, naive) =
            distribute_register(&net, &tree.views, reg.clone(), Schedule::StoreAndForward).unwrap();
        prop_assert!(copies.iter().all(|c| c == &reg));
        let naive = naive.rounds as u64;

        // Store-and-forward pays the product: every tree level waits for
        // the full register before forwarding.
        prop_assert!(
            naive >= depth * chunks,
            "store-and-forward {} rounds beats D·⌈q/B⌉ = {}·{}",
            naive, depth, chunks
        );
        // And pipelining never loses.
        prop_assert!(piped <= naive);
    }
}
