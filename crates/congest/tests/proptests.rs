//! Property-based tests for the CONGEST substrate: structural invariants of
//! generators, distributed-vs-reference agreement, register algebra, and
//! protocol round bounds.

use congest::aggregate::{aggregate_batch, CommOp};
use congest::bfs::{build_bfs_tree, multi_source_bfs, source_eccentricities, validate_bfs_tree};
use congest::clustering::{cluster, validate};
use congest::generators::{random_connected_m, random_relabel, random_tree};
use congest::runtime::Network;
use congest::tree_comm::{distribute_register, gather_register, Register, Schedule};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = congest::Graph> {
    (4usize..40, 0u64..500).prop_flat_map(|(n, seed)| {
        let extra = n / 3;
        Just(random_connected_m(n, n - 1 + extra, seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_graphs_are_connected_simple(g in arb_graph()) {
        prop_assert!(g.is_connected());
        // Simplicity: neighbor lists sorted and duplicate-free.
        for v in 0..g.n() {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(!nb.contains(&v));
        }
    }

    #[test]
    fn relabelling_preserves_metric_invariants(g in arb_graph(), seed in 0u64..100) {
        let h = random_relabel(&g, seed);
        prop_assert_eq!(g.diameter(), h.diameter());
        prop_assert_eq!(g.radius(), h.radius());
        prop_assert_eq!(g.girth(), h.girth());
        prop_assert_eq!(g.m(), h.m());
    }

    #[test]
    fn distributed_bfs_matches_reference(g in arb_graph(), root_pick in 0usize..1000) {
        let root = root_pick % g.n();
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, root).unwrap();
        prop_assert!(validate_bfs_tree(&g, &tree));
        // Round bound: O(D).
        let d = g.diameter().unwrap() as usize;
        prop_assert!(tree.stats.rounds <= 2 * d + 4);
    }

    #[test]
    fn multi_bfs_distances_exact(g in arb_graph(), picks in proptest::collection::vec(0usize..1000, 1..6)) {
        let sources: Vec<usize> = picks.iter().map(|p| p % g.n()).collect();
        let net = Network::new(&g);
        let mbfs = multi_source_bfs(&net, &sources).unwrap();
        for v in 0..g.n() {
            for (i, &s) in sources.iter().enumerate() {
                prop_assert_eq!(Some(mbfs.dist[v][i]), g.bfs_distances(s)[v]);
            }
        }
    }

    #[test]
    fn source_eccentricities_exact(g in arb_graph(), picks in proptest::collection::vec(0usize..1000, 1..5)) {
        let sources: Vec<usize> = picks.iter().map(|p| p % g.n()).collect();
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let (ecc, _) = source_eccentricities(&net, &tree, &sources).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            prop_assert_eq!(Some(ecc[i]), g.eccentricity(s));
        }
    }

    #[test]
    fn aggregate_equals_reference_fold(
        g in arb_graph(),
        p in 1usize..6,
        op_pick in 0usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let op = [CommOp::Sum, CommOp::Xor, CommOp::Min, CommOp::Max, CommOp::Or, CommOp::And][op_pick];
        let q = 16u64;
        let lim = if op == CommOp::Sum { ((1u64 << q) - 1) / g.n() as u64 } else { (1u64 << q) - 1 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values: Vec<Vec<u64>> = (0..g.n())
            .map(|_| (0..p).map(|_| rng.gen_range(0..=lim.max(1))).collect())
            .collect();
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let agg = aggregate_batch(&net, &tree.views, &values, q, op).unwrap();
        for i in 0..p {
            let want = op.fold(values.iter().map(|v| v[i]));
            prop_assert_eq!(agg.values[i], want);
        }
    }

    #[test]
    fn register_roundtrip_over_any_tree(g in arb_graph(), q in 1u64..200, val in any::<u64>()) {
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let mut reg = Register::zeros(q);
        let lo = q.min(64);
        let v = if lo == 64 { val } else { val & ((1 << lo) - 1) };
        reg.set_bits(0, lo, v);
        let (copies, _) = distribute_register(&net, &tree.views, reg.clone(), Schedule::Pipelined).unwrap();
        for c in &copies {
            prop_assert_eq!(c, &reg);
        }
        let (back, _) = gather_register(&net, &tree.views, copies).unwrap();
        prop_assert_eq!(back, reg);
    }

    #[test]
    fn register_bit_algebra(offsets in proptest::collection::vec((0u64..190, 1u64..60, any::<u64>()), 1..8)) {
        // Non-overlapping writes then reads must round-trip.
        let mut reg = Register::zeros(256);
        let mut used: Vec<(u64, u64)> = Vec::new();
        for (off, len, val) in offsets {
            let off = off.min(256 - len);
            if used.iter().any(|&(o, l)| off < o + l && o < off + len) {
                continue;
            }
            let v = val & if len == 64 { u64::MAX } else { (1 << len) - 1 };
            reg.set_bits(off, len, v);
            used.push((off, len));
            prop_assert_eq!(reg.get_bits(off, len), v);
        }
        for &(off, len) in &used {
            let got = reg.get_bits(off, len);
            reg.set_bits(off, len, got); // idempotent rewrite
            prop_assert_eq!(reg.get_bits(off, len), got);
        }
    }

    #[test]
    fn clustering_properties_hold(g in arb_graph(), d in 1usize..6) {
        let c = cluster(&g, d);
        prop_assert!(validate(&g, &c).is_ok(), "{:?}", validate(&g, &c));
    }

    #[test]
    fn pack_unpack_roundtrip(fields in proptest::collection::vec(0u64..(1 << 20), 1..20)) {
        let r = Register::pack(&fields, 20);
        prop_assert_eq!(r.unpack(20), fields);
    }

    #[test]
    fn neighbor_rank_agrees_with_position_lookup(g in arb_graph(), picks in proptest::collection::vec((0usize..1000, 0usize..1000), 1..20)) {
        // neighbor_rank must be exactly "position of w in neighbors(v)",
        // for edges and non-edges alike — it is the index the engine's
        // zero-alloc router trusts for its per-edge load slots.
        for v in 0..g.n() {
            for (r, &w) in g.neighbors(v).iter().enumerate() {
                prop_assert_eq!(g.neighbor_rank(v, w), Some(r));
            }
        }
        for (a, b) in picks {
            let v = a % g.n();
            let w = b % g.n();
            let expect = g.neighbors(v).iter().position(|&x| x == w);
            prop_assert_eq!(g.neighbor_rank(v, w), expect, "v={} w={}", v, w);
            prop_assert_eq!(g.neighbor_rank(v, w).is_some(), g.has_edge(v, w));
        }
    }

    #[test]
    fn trees_have_no_cycles(n in 2usize..60, seed in 0u64..300) {
        let g = random_tree(n, seed);
        prop_assert_eq!(g.m(), n - 1);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.girth(), None);
    }
}
