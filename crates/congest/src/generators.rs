//! Network-topology generators.
//!
//! These cover the families used throughout the paper's upper- and
//! lower-bound arguments: paths and cycles (line networks for the
//! disjointness reductions), stars and double-stars (the element-distinctness
//! lower bound of Lemma 15), dumbbells (two hubs joined by a long path — the
//! `k`-vs-`D` trade-off graphs of Lemmas 11 and 13), trees, grids, random
//! connected graphs, and girth gadgets (a cycle of prescribed length hung off
//! a larger body).
//!
//! All random generators are deterministic given a seed.

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A path `0 — 1 — … — (n-1)`. Diameter `n - 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one node");
    Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1))).expect("valid path")
}

/// A cycle on `n >= 3` nodes. Diameter `⌊n/2⌋`, girth `n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("valid cycle")
}

/// The complete graph `K_n`. Diameter 1 (for `n >= 2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0);
    let mut e = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            e.push((u, v));
        }
    }
    Graph::from_edges(n, e).expect("valid complete graph")
}

/// A star: node 0 is the hub, nodes `1..n` are leaves. Diameter 2.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs a hub and at least one leaf");
    Graph::from_edges(n, (1..n).map(|v| (0, v))).expect("valid star")
}

/// Two stars with `a` and `b` leaves whose hubs are joined by an edge —
/// the lower-bound topology of Lemma 15 (element distinctness between
/// nodes). Hub A is node 0, hub B is node `a + 1`.
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn double_star(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0);
    let hub_a = 0;
    let hub_b = a + 1;
    let n = a + b + 2;
    let mut e: Vec<(NodeId, NodeId)> = Vec::with_capacity(a + b + 1);
    for leaf in 1..=a {
        e.push((hub_a, leaf));
    }
    for leaf in (hub_b + 1)..n {
        e.push((hub_b, leaf));
    }
    e.push((hub_a, hub_b));
    Graph::from_edges(n, e).expect("valid double star")
}

/// A "dumbbell": two hubs with `a` and `b` leaves each, joined by a path of
/// `len` intermediate nodes, so the hubs are `len + 1` apart. This is the
/// `D`-separated two-player topology of the Lemma 11/13 reductions.
///
/// Node layout: hub A = 0, A-leaves `1..=a`, path `a+1 .. a+len`,
/// hub B = `a + len + 1`, B-leaves after it.
///
/// Returns the graph together with `(hub_a, hub_b)`.
pub fn dumbbell(a: usize, b: usize, len: usize) -> (Graph, (NodeId, NodeId)) {
    let hub_a = 0;
    let path_start = a + 1;
    let hub_b = a + len + 1;
    let n = a + b + len + 2;
    let mut e = Vec::new();
    for leaf in 1..=a {
        e.push((hub_a, leaf));
    }
    for leaf in (hub_b + 1)..n {
        e.push((hub_b, leaf));
    }
    if len == 0 {
        e.push((hub_a, hub_b));
    } else {
        e.push((hub_a, path_start));
        for i in 0..len - 1 {
            e.push((path_start + i, path_start + i + 1));
        }
        e.push((path_start + len - 1, hub_b));
    }
    (Graph::from_edges(n, e).expect("valid dumbbell"), (hub_a, hub_b))
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 = single root).
///
/// # Panics
///
/// Panics if `arity == 0`.
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity > 0);
    let mut e = Vec::new();
    let mut level: Vec<NodeId> = vec![0];
    let mut next_id = 1;
    for _ in 0..depth {
        let mut next_level = Vec::with_capacity(level.len() * arity);
        for &p in &level {
            for _ in 0..arity {
                e.push((p, next_id));
                next_level.push(next_id);
                next_id += 1;
            }
        }
        level = next_level;
    }
    Graph::from_edges(next_id, e).expect("valid tree")
}

/// A `w × h` grid graph. Diameter `w + h - 2`.
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0);
    let idx = |x: usize, y: usize| y * w + x;
    let mut e = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                e.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                e.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, e).expect("valid grid")
}

/// The `dim`-dimensional hypercube (`2^dim` nodes, diameter `dim`).
///
/// # Panics
///
/// Panics if `dim == 0` or `dim > 20`.
pub fn hypercube(dim: usize) -> Graph {
    assert!(dim > 0 && dim <= 20);
    let n = 1usize << dim;
    let mut e = Vec::new();
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if u > v {
                e.push((v, u));
            }
        }
    }
    Graph::from_edges(n, e).expect("valid hypercube")
}

/// A uniformly random labelled tree on `n` nodes (Prüfer sequence).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0);
    if n == 1 {
        return Graph::from_edges(1, []).expect("single node");
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("two nodes");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut e = Vec::with_capacity(n - 1);
    // Min-heap over current leaves.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
        (0..n).filter(|&v| degree[v] == 1).map(std::cmp::Reverse).collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = heap.pop().expect("Prüfer invariant: a leaf exists");
        e.push((leaf, p));
        degree[p] -= 1;
        if degree[p] == 1 {
            heap.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(u) = heap.pop().unwrap();
    let std::cmp::Reverse(v) = heap.pop().unwrap();
    e.push((u, v));
    Graph::from_edges(n, e).expect("valid Prüfer tree")
}

/// A connected Erdős–Rényi-style graph: a random spanning tree plus each
/// remaining pair independently with probability `p`.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn random_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0);
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let tree = random_tree(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut e: Vec<(NodeId, NodeId)> = tree.edges().to_vec();
    for u in 0..n {
        for v in (u + 1)..n {
            if !tree.has_edge(u, v) && rng.gen_bool(p) {
                e.push((u, v));
            }
        }
    }
    Graph::from_edges(n, e).expect("valid random connected graph")
}

/// A random connected graph with exactly `m >= n - 1` edges: a random
/// spanning tree plus `m - (n-1)` distinct random extra edges.
///
/// # Panics
///
/// Panics if `m < n - 1` or `m` exceeds `n(n-1)/2`.
pub fn random_connected_m(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > 0);
    assert!(m + 1 >= n, "need at least n-1 edges for connectivity");
    assert!(m <= n * (n - 1) / 2, "too many edges for a simple graph");
    let tree = random_tree(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef_cafe_f00d);
    let mut edges: Vec<(NodeId, NodeId)> = tree.edges().to_vec();
    let mut have: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if have.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(n, edges).expect("valid random graph")
}

/// A "lollipop": a clique of size `c` attached to a path of length `len`.
/// High-diameter, high-degree mix used to stress pipelined protocols.
///
/// # Panics
///
/// Panics if `c < 2`.
pub fn lollipop(c: usize, len: usize) -> Graph {
    assert!(c >= 2);
    let n = c + len;
    let mut e = Vec::new();
    for u in 0..c {
        for v in (u + 1)..c {
            e.push((u, v));
        }
    }
    for i in 0..len {
        let prev = if i == 0 { c - 1 } else { c + i - 1 };
        e.push((prev, c + i));
    }
    Graph::from_edges(n, e).expect("valid lollipop")
}

/// A girth gadget: one cycle of length `g` plus a random tree body of
/// `body` extra nodes hanging off cycle node 0, so the graph has `g + body`
/// nodes and girth exactly `g` (the body is acyclic).
///
/// # Panics
///
/// Panics if `g < 3`.
pub fn cycle_with_body(g: usize, body: usize, seed: u64) -> Graph {
    assert!(g >= 3);
    let n = g + body;
    let mut e: Vec<(NodeId, NodeId)> = (0..g).map(|i| (i, (i + 1) % g)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for v in g..n {
        // Attach each body node to a uniformly random earlier node, so the
        // body is a tree rooted somewhere on (or hanging from) the cycle.
        let anchor = if v == g { 0 } else { rng.gen_range(0..v) };
        e.push((anchor, v));
    }
    Graph::from_edges(n, e).expect("valid cycle-with-body")
}

/// A graph that contains many vertex-disjoint cycles of length `g` plus a
/// connecting spine; used to exercise heavy/light cycle detection. Returns
/// a connected graph with `copies` disjoint `g`-cycles whose node 0s are
/// joined into a path.
///
/// # Panics
///
/// Panics if `g < 3` or `copies == 0`.
pub fn many_cycles(g: usize, copies: usize, seed: u64) -> Graph {
    assert!(g >= 3 && copies > 0);
    let _ = seed;
    let n = g * copies;
    let mut e = Vec::new();
    for c in 0..copies {
        let base = c * g;
        for i in 0..g {
            e.push((base + i, base + (i + 1) % g));
        }
        if c + 1 < copies {
            e.push((base, base + g)); // spine between anchor nodes
        }
    }
    Graph::from_edges(n, e).expect("valid many-cycles graph")
}

/// A star of `n` nodes whose hub lies on a cycle of length `g`: the hub
/// plus `g − 1` of its leaves are joined into a `g`-cycle. The cycle is
/// *heavy* (it passes through the degree-`n − 1` hub), making it the
/// worst case for truncated-BFS flooding and the best case for the
/// heavy-cycle search of Lemma 23.
///
/// # Panics
///
/// Panics if `g < 3` or `n < g`.
pub fn hub_cycle(n: usize, g: usize) -> Graph {
    assert!(g >= 3 && n >= g, "need at least g nodes");
    // Nodes: hub 0; chain 1..g-1 (only its endpoints touch the hub, so the
    // unique short cycle is 0-1-2-…-(g-1)-0 of length exactly g); the rest
    // are hub leaves.
    let mut e: Vec<(NodeId, NodeId)> = vec![(0, 1), (0, g - 1)];
    for i in 1..g - 1 {
        e.push((i, i + 1));
    }
    for leaf in g..n {
        e.push((0, leaf));
    }
    Graph::from_edges(n, e).expect("valid hub cycle")
}

/// A wheel: a cycle of `n − 1` nodes plus a hub adjacent to all of them.
/// Diameter 2, girth 3.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs a hub and a 3-cycle");
    let rim = n - 1;
    let mut e: Vec<(NodeId, NodeId)> = (0..rim).map(|i| (1 + i, 1 + (i + 1) % rim)).collect();
    for v in 1..n {
        e.push((0, v));
    }
    Graph::from_edges(n, e).expect("valid wheel")
}

/// The complete bipartite graph `K_{a,b}`. Girth 4 (for `a, b ≥ 2`).
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0);
    let mut e = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            e.push((u, a + v));
        }
    }
    Graph::from_edges(a + b, e).expect("valid complete bipartite graph")
}

/// A barbell: two `c`-cliques joined by a path of `len` nodes.
///
/// # Panics
///
/// Panics if `c < 2`.
pub fn barbell(c: usize, len: usize) -> Graph {
    assert!(c >= 2);
    let n = 2 * c + len;
    let mut e = Vec::new();
    for block in 0..2 {
        let base = block * (c + len);
        for u in 0..c {
            for v in (u + 1)..c {
                e.push((base + u, base + v));
            }
        }
    }
    // Path from clique-1 node c-1 through the bridge to clique-2 node 0.
    let mut prev = c - 1;
    for i in 0..len {
        e.push((prev, c + i));
        prev = c + i;
    }
    e.push((prev, c + len));
    Graph::from_edges(n, e).expect("valid barbell")
}

/// A caterpillar: a spine path with `legs` leaves per spine node — the
/// tree family with maximal leaf congestion.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0);
    let n = spine * (1 + legs);
    let mut e = Vec::new();
    for i in 0..spine.saturating_sub(1) {
        e.push((i, i + 1));
    }
    for (s, base) in (0..spine).map(|s| (s, spine + s * legs)) {
        for l in 0..legs {
            e.push((s, base + l));
        }
    }
    Graph::from_edges(n, e).expect("valid caterpillar")
}

/// A random `d`-regular graph (pairing model with retries); falls back to
/// fewer edges only if the final matching is infeasible, so degrees are
/// `d` for all nodes on success.
///
/// # Panics
///
/// Panics if `n·d` is odd, `d >= n`, or a simple matching cannot be found
/// in 200 attempts.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d >= 1 && d < n);
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..200 {
        let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut used = std::collections::HashSet::new();
        let mut edges = Vec::with_capacity(n * d / 2);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            let key = (u.min(v), u.max(v));
            if !used.insert(key) {
                continue 'attempt;
            }
            edges.push(key);
        }
        let g = Graph::from_edges(n, edges).expect("pairing produced a simple graph");
        if g.is_connected() {
            return g;
        }
    }
    panic!("could not sample a connected {d}-regular graph on {n} nodes");
}

/// Random permutation of `0..n`, used to shuffle node labels in tests so no
/// protocol accidentally depends on the generator's labelling.
pub fn random_relabel(g: &Graph, seed: u64) -> Graph {
    let n = g.n();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|&(u, v)| (perm[u], perm[v])).collect();
    Graph::from_edges(n, edges).expect("relabelling preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_diameter() {
        assert_eq!(path(1).diameter(), Some(0));
        assert_eq!(path(10).diameter(), Some(9));
    }

    #[test]
    fn cycle_girth_and_diameter() {
        for n in [3usize, 4, 7, 12] {
            let g = cycle(n);
            assert_eq!(g.girth(), Some(n as u32));
            assert_eq!(g.diameter(), Some((n / 2) as u32));
        }
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn double_star_shape() {
        let g = double_star(3, 4);
        assert_eq!(g.n(), 9);
        assert_eq!(g.degree(0), 4); // 3 leaves + hub link
        assert_eq!(g.degree(4), 5); // 4 leaves + hub link
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    fn dumbbell_hub_distance() {
        for len in [0usize, 1, 5] {
            let (g, (ha, hb)) = dumbbell(3, 3, len);
            assert!(g.is_connected());
            assert_eq!(g.bfs_distances(ha)[hb], Some((len + 1) as u32));
        }
    }

    #[test]
    fn balanced_tree_sizes() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert_eq!(g.diameter(), Some(6));
    }

    #[test]
    fn grid_diameter() {
        let g = grid(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.diameter(), Some(5));
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn hypercube_props() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.girth(), Some(4));
        assert!((0..16).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(20, seed);
            assert_eq!(g.m(), 19);
            assert!(g.is_connected());
            assert_eq!(g.girth(), None);
        }
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(30, 0.1, seed);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_connected_m_edge_count() {
        let g = random_connected_m(20, 40, 7);
        assert_eq!(g.m(), 40);
        assert!(g.is_connected());
    }

    #[test]
    fn lollipop_connected() {
        let g = lollipop(5, 10);
        assert!(g.is_connected());
        assert_eq!(g.n(), 15);
        assert_eq!(g.girth(), Some(3));
    }

    #[test]
    fn cycle_with_body_girth() {
        for seed in 0..3 {
            let g = cycle_with_body(7, 20, seed);
            assert!(g.is_connected());
            assert_eq!(g.girth(), Some(7));
        }
    }

    #[test]
    fn many_cycles_structure() {
        let g = many_cycles(5, 4, 0);
        assert!(g.is_connected());
        assert_eq!(g.girth(), Some(5));
        assert_eq!(g.n(), 20);
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(8);
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(g.girth(), Some(3));
        assert_eq!(g.degree(0), 7);
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert_eq!(g.girth(), Some(4));
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 3);
        assert!(g.is_connected());
        assert_eq!(g.n(), 11);
        assert_eq!(g.girth(), Some(3));
        assert!(g.diameter().unwrap() >= 5);
    }

    #[test]
    fn caterpillar_is_tree() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 19);
        assert!(g.is_connected());
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn random_regular_degrees() {
        for seed in 0..3 {
            let g = random_regular(20, 4, seed);
            assert!(g.is_connected());
            assert!((0..20).all(|v| g.degree(v) == 4));
        }
    }

    #[test]
    fn hub_cycle_structure() {
        for gl in [3usize, 5, 6, 8] {
            let g = hub_cycle(40, gl);
            assert!(g.is_connected());
            assert_eq!(g.girth(), Some(gl as u32), "g = {gl}");
            assert_eq!(g.degree(0), 40 - gl + 2, "hub degree");
        }
    }

    #[test]
    fn relabel_preserves_invariants() {
        let g = grid(5, 4);
        let h = random_relabel(&g, 99);
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        assert_eq!(g.diameter(), h.diameter());
        assert_eq!(g.girth(), h.girth());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_connected(25, 0.15, 42);
        let b = random_connected(25, 0.15, 42);
        assert_eq!(a.edges(), b.edges());
    }
}
