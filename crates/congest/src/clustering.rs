//! `d`-separated low-diameter clustering — the black-box of Lemma 24
//! (`[EFFKO21]`, Theorem 17) used by the cycle-detection algorithm of
//! Lemma 25.
//!
//! The guarantee: a set of clusters such that
//!
//! 1. every node is in at least one cluster,
//! 2. every cluster has (weak) diameter `O(d log n)`,
//! 3. clusters are colored with `O(log n)` colors, and
//! 4. same-color clusters are at distance `> d` from each other in `G`.
//!
//! **Substitution note (see DESIGN.md):** the paper cites this construction
//! as a black box and only consumes the cluster *structure* plus the stated
//! `O(d log² n)` round charge. We compute the structure centrally with a
//! region-growing (ball-carving) argument and return the round charge, so
//! downstream algorithms are measured faithfully. The construction and its
//! four properties are property-tested.

use crate::graph::{Dist, Graph, NodeId};
use std::collections::VecDeque;

/// One cluster of a [`Clustering`].
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Center node the ball was grown from.
    pub center: NodeId,
    /// Color class (same-color clusters are `> d` apart).
    pub color: usize,
    /// Member nodes.
    pub members: Vec<NodeId>,
    /// Ball radius in `G` (so weak diameter ≤ `2·radius`).
    pub radius: Dist,
}

/// A complete `d`-separated clustering, plus the CONGEST round charge of
/// the cited distributed construction.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Separation parameter `d`.
    pub d: usize,
    /// All clusters.
    pub clusters: Vec<Cluster>,
    /// Number of colors used.
    pub colors: usize,
    /// Round charge of the distributed construction: `O(d log² n)`.
    pub round_charge: usize,
}

impl Clustering {
    /// `cluster_of[v]` = indices of the clusters containing `v`.
    pub fn membership(&self, n: usize) -> Vec<Vec<usize>> {
        let mut m = vec![Vec::new(); n];
        for (i, c) in self.clusters.iter().enumerate() {
            for &v in &c.members {
                m[v].push(i);
            }
        }
        m
    }

    /// Clusters of a given color.
    pub fn of_color(&self, color: usize) -> impl Iterator<Item = &Cluster> {
        self.clusters.iter().filter(move |c| c.color == color)
    }
}

/// Distances from `src` restricted to nodes in `alive`.
fn bfs_within(g: &Graph, src: NodeId, alive: &[bool]) -> Vec<Option<Dist>> {
    let mut dist = vec![None; g.n()];
    if !alive[src] {
        return dist;
    }
    dist[src] = Some(0);
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u].unwrap();
        for &w in g.neighbors(u) {
            if alive[w] && dist[w].is_none() {
                dist[w] = Some(du + 1);
                q.push_back(w);
            }
        }
    }
    dist
}

/// Build a `d`-separated clustering of `g` (see module docs).
///
/// Deterministic: centers are chosen as the smallest-id uncovered node.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn cluster(g: &Graph, d: usize) -> Clustering {
    assert!(d > 0, "separation parameter must be positive");
    let n = g.n();
    let log_n = (usize::BITS - n.leading_zeros()) as usize;
    let mut covered = vec![false; n];
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut colors = 0usize;

    while covered.iter().any(|&c| !c) {
        let color = colors;
        colors += 1;
        // Nodes still available to this color (not yet carved or buffered
        // this round).
        let mut alive = vec![true; n];
        // Carve balls while an uncovered, still-alive center exists.
        while let Some(center) = (0..n).find(|&v| !covered[v] && alive[v]) {
            // Region growing: radii are multiples of (d + 1); stop when the
            // next shell no longer doubles the ball.
            let dist = bfs_within(g, center, &alive);
            let step = d + 1;
            let ball_size = |r: usize| -> usize {
                dist.iter().filter(|x| x.is_some_and(|dd| (dd as usize) <= r)).count()
            };
            let mut t = 0usize;
            while ball_size((t + 1) * step) > 2 * ball_size(t * step) {
                t += 1;
            }
            let radius = ((t + 1) * step) as Dist;
            let members: Vec<NodeId> =
                (0..n).filter(|&v| dist[v].is_some_and(|dd| dd <= radius)).collect();
            // Remove the ball and a (d+1)-buffer from this color's pool; the
            // buffer stays uncovered and is handled by later colors.
            let buffer_radius = radius + step as Dist;
            for v in 0..n {
                if dist[v].is_some_and(|dd| dd <= buffer_radius) {
                    alive[v] = false;
                }
            }
            for &v in &members {
                covered[v] = true;
            }
            clusters.push(Cluster { center, color, members, radius });
        }
        assert!(
            colors <= 4 * log_n + 4,
            "region-growing color bound violated (n = {n}, colors = {colors})"
        );
    }

    // Round charge of the cited distributed construction: O(d log² n).
    let round_charge = d * log_n * log_n;
    Clustering { d, clusters, colors, round_charge }
}

/// Validate the four clustering properties against `g` (used by tests and
/// by debug assertions in consumers).
pub fn validate(g: &Graph, c: &Clustering) -> Result<(), String> {
    let n = g.n();
    let log_n = (usize::BITS - n.leading_zeros()) as usize;
    // 1. cover
    let mut covered = vec![false; n];
    for cl in &c.clusters {
        for &v in &cl.members {
            covered[v] = true;
        }
    }
    if let Some(v) = covered.iter().position(|&x| !x) {
        return Err(format!("node {v} is in no cluster"));
    }
    // 2. weak diameter O(d log n): radius ≤ (d+1)(log₂ n + 1)
    for cl in &c.clusters {
        let bound = ((c.d + 1) * (log_n + 1)) as Dist;
        if cl.radius > bound {
            return Err(format!(
                "cluster at {} has radius {} > bound {}",
                cl.center, cl.radius, bound
            ));
        }
        let dist = g.bfs_distances(cl.center);
        for &v in &cl.members {
            match dist[v] {
                Some(dd) if dd <= cl.radius => {}
                _ => return Err(format!("member {v} outside ball of {}", cl.center)),
            }
        }
    }
    // 3. O(log n) colors
    if c.colors > 4 * log_n + 4 {
        return Err(format!("{} colors exceed 4 log n + 4", c.colors));
    }
    // 4. same-color separation > d
    for color in 0..c.colors {
        let same: Vec<&Cluster> = c.of_color(color).collect();
        for (i, a) in same.iter().enumerate() {
            // BFS from all of a's members at once.
            let mut dist = vec![Dist::MAX; n];
            let mut q = VecDeque::new();
            for &v in &a.members {
                dist[v] = 0;
                q.push_back(v);
            }
            while let Some(u) = q.pop_front() {
                if (dist[u] as usize) > c.d {
                    continue;
                }
                for &w in g.neighbors(u) {
                    if dist[w] == Dist::MAX {
                        dist[w] = dist[u] + 1;
                        q.push_back(w);
                    }
                }
            }
            for b in same.iter().skip(i + 1) {
                for &v in &b.members {
                    if (dist[v] as usize) <= c.d {
                        return Err(format!(
                            "color {color}: clusters at {} and {} are within d = {}",
                            a.center, b.center, c.d
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, grid, path, random_connected, star};

    #[test]
    fn clustering_properties_on_families() {
        for (g, d) in [
            (path(60), 3usize),
            (cycle(50), 4),
            (grid(10, 8), 2),
            (star(40), 5),
            (random_connected(70, 0.05, 11), 3),
        ] {
            let c = cluster(&g, d);
            validate(&g, &c).unwrap();
        }
    }

    #[test]
    fn single_cluster_when_d_large() {
        let g = path(10);
        let c = cluster(&g, 20);
        validate(&g, &c).unwrap();
        assert_eq!(c.clusters.len(), 1, "whole graph fits one ball");
        assert_eq!(c.colors, 1);
    }

    #[test]
    fn round_charge_scales_with_d() {
        let g = path(100);
        let c1 = cluster(&g, 2);
        let c2 = cluster(&g, 8);
        assert!(c2.round_charge > c1.round_charge);
    }

    #[test]
    fn membership_index() {
        let g = grid(6, 6);
        let c = cluster(&g, 2);
        let mem = c.membership(g.n());
        assert!(mem.iter().all(|m| !m.is_empty()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_d_rejected() {
        cluster(&path(5), 0);
    }
}
