//! Register transport over a BFS tree — the mechanics of the paper's
//! Lemma 7.
//!
//! The leader holds a `q`-(qu)bit register; `O(D + q/log n)` rounds suffice
//! to turn `Σᵢ αᵢ|i⟩` into `Σᵢ αᵢ|i⟩^{⊗n}` with one copy per node, because a
//! node can forward each `log n`-qubit chunk the round after receiving it
//! (**pipelining**). The reverse (un-distribution) is also provided.
//!
//! In the simulator a register in a (basis-state) superposition branch is a
//! classical bit string: by linearity it suffices to track one basis state —
//! the protocol's communication pattern, and hence its round count, is the
//! same for every branch, which is exactly why Lemma 7 works. Chunks are
//! charged their true size in qubits.
//!
//! [`BroadcastRegisterProtocol`] supports both the pipelined schedule and
//! the naive store-and-forward schedule (`O(D·q/log n)` rounds), so the
//! benefit of Lemma 7's pipelining is *measurable* (experiment E1).

use crate::bfs::TreeView;
use crate::graph::NodeId;
use crate::runtime::{Ctx, MessageSize, Network, NodeProtocol, RunStats, RuntimeError};
use std::collections::VecDeque;

/// A register of `bits ≤ 64·words.len()` (qu)bits, stored little-endian in
/// 64-bit words. One classical basis-state branch of a quantum register.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Register {
    bits: u64,
    words: Vec<u64>,
}

impl Register {
    /// A register of `bits` qubits initialized to the basis state `|value⟩`
    /// (value must fit).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, or `value` does not fit in `bits` bits.
    pub fn from_value(bits: u64, value: u64) -> Self {
        assert!(bits > 0, "register needs at least one bit");
        if bits < 64 {
            assert!(value < (1u64 << bits), "value does not fit in {bits} bits");
        }
        let nwords = bits.div_ceil(64) as usize;
        let mut words = vec![0u64; nwords];
        words[0] = value;
        Register { bits, words }
    }

    /// A register from raw words (`bits` may span several words).
    ///
    /// # Panics
    ///
    /// Panics if the word count does not match `⌈bits/64⌉` or trailing bits
    /// are set.
    pub fn from_words(bits: u64, words: Vec<u64>) -> Self {
        assert!(bits > 0);
        assert_eq!(words.len() as u64, bits.div_ceil(64), "word count mismatch");
        let rem = bits % 64;
        if rem != 0 {
            assert_eq!(words.last().unwrap() >> rem, 0, "trailing bits set");
        }
        Register { bits, words }
    }

    /// An all-zero register of `bits` qubits.
    pub fn zeros(bits: u64) -> Self {
        Self::from_value(bits, 0)
    }

    /// The register width in (qu)bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The raw words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The register's value as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    pub fn value(&self) -> u64 {
        assert!(self.bits <= 64, "register wider than 64 bits");
        self.words[0]
    }

    /// Read `len ≤ 64` bits starting at bit offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the register.
    pub fn get_bits(&self, off: u64, len: u64) -> u64 {
        assert!(len <= 64 && off + len <= self.bits, "bit range out of bounds");
        if len == 0 {
            return 0;
        }
        let w = (off / 64) as usize;
        let s = off % 64;
        let lo = self.words[w] >> s;
        let hi = if s + len > 64 { self.words[w + 1] << (64 - s) } else { 0 };
        let v = lo | hi;
        if len == 64 {
            v
        } else {
            v & ((1u64 << len) - 1)
        }
    }

    /// Write `len ≤ 64` bits at offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the register or `value` does not fit.
    pub fn set_bits(&mut self, off: u64, len: u64, value: u64) {
        assert!(len <= 64 && off + len <= self.bits, "bit range out of bounds");
        if len == 0 {
            return;
        }
        if len < 64 {
            assert!(value < (1u64 << len), "value does not fit");
        }
        let w = (off / 64) as usize;
        let s = off % 64;
        let mask_lo = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        self.words[w] &= !(mask_lo << s);
        self.words[w] |= value << s;
        if s + len > 64 {
            let hi_len = s + len - 64;
            let hi_mask = (1u64 << hi_len) - 1;
            self.words[w + 1] &= !hi_mask;
            self.words[w + 1] |= value >> (64 - s);
        }
    }

    /// Pack `p` fields of `field_bits` each into one register — used to ship
    /// a batch of `p` query indices as a single `p·⌈log k⌉`-qubit register
    /// (Theorem 8).
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty or a field does not fit.
    pub fn pack(fields: &[u64], field_bits: u64) -> Self {
        assert!(!fields.is_empty());
        let total = field_bits * fields.len() as u64;
        let mut r = Register::zeros(total);
        for (i, &f) in fields.iter().enumerate() {
            r.set_bits(i as u64 * field_bits, field_bits, f);
        }
        r
    }

    /// Inverse of [`pack`](Self::pack).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a multiple of `field_bits`.
    pub fn unpack(&self, field_bits: u64) -> Vec<u64> {
        assert_eq!(self.bits % field_bits, 0, "register not a whole number of fields");
        (0..self.bits / field_bits).map(|i| self.get_bits(i * field_bits, field_bits)).collect()
    }
}

/// A chunk of a register in flight: up to 64 bits plus a 1-bit stream tag.
#[derive(Debug, Clone, Copy)]
pub struct Chunk {
    /// Number of payload qubits (1..=64).
    pub nbits: u64,
    /// The payload bits (little-endian).
    pub payload: u64,
}

impl MessageSize for Chunk {
    fn size_bits(&self) -> u64 {
        self.nbits + 1
    }
}

/// Forwarding schedule for [`BroadcastRegisterProtocol`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Forward each chunk the round after it arrives — Lemma 7's
    /// `O(D + q/log n)`.
    Pipelined,
    /// Forward only after the whole register arrived — the naive
    /// `O(D · q/log n)` baseline.
    StoreAndForward,
}

/// Broadcast of a `q`-qubit register from the tree root to every node.
#[derive(Debug)]
pub struct BroadcastRegisterProtocol {
    tree: TreeView,
    schedule: Schedule,
    q: u64,
    chunk_bits: u64,
    /// Received (or initial, at the root) register contents.
    reg: Register,
    /// Number of bits received so far (root: all of them).
    have: u64,
    /// Number of bits already forwarded to the children.
    sent: u64,
}

impl BroadcastRegisterProtocol {
    /// Instances for a broadcast of `reg` (held by the root) down `views`.
    ///
    /// `chunk_bits` is the per-round chunk size; callers use
    /// `net.cap_bits() - 1` (one tag bit) capped at 64.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits == 0` or no view is a root.
    pub fn instances(
        views: &[TreeView],
        root_reg: Register,
        chunk_bits: u64,
        schedule: Schedule,
    ) -> Vec<Self> {
        assert!(chunk_bits > 0);
        assert!(views.iter().any(|v| v.parent.is_none()), "no root in tree views");
        let q = root_reg.bits();
        views
            .iter()
            .map(|view| {
                let is_root = view.parent.is_none();
                BroadcastRegisterProtocol {
                    tree: view.clone(),
                    schedule,
                    q,
                    chunk_bits: chunk_bits.min(64),
                    reg: if is_root { root_reg.clone() } else { Register::zeros(q) },
                    have: if is_root { q } else { 0 },
                    sent: 0,
                }
            })
            .collect()
    }

    /// The locally held register copy (complete after the run).
    pub fn register(&self) -> &Register {
        &self.reg
    }

    fn may_send(&self) -> bool {
        match self.schedule {
            Schedule::Pipelined => self.sent < self.have,
            Schedule::StoreAndForward => self.have == self.q && self.sent < self.q,
        }
    }
}

impl NodeProtocol for BroadcastRegisterProtocol {
    type Msg = Chunk;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Chunk>, inbox: &[(NodeId, Chunk)]) {
        for (from, chunk) in inbox {
            debug_assert_eq!(Some(*from), self.tree.parent, "chunks only flow from the parent");
            self.reg.set_bits(self.have, chunk.nbits, chunk.payload);
            self.have += chunk.nbits;
        }
        if self.may_send() && !self.tree.children.is_empty() {
            let len = self.chunk_bits.min(self.have - self.sent);
            let payload = self.reg.get_bits(self.sent, len);
            for &c in &self.tree.children.clone() {
                ctx.send(c, Chunk { nbits: len, payload });
            }
            self.sent += len;
        }
    }

    fn is_done(&self) -> bool {
        self.have == self.q && (self.tree.children.is_empty() || self.sent == self.q)
    }
}

/// Un-distribution (the reverse direction of Lemma 7): every node holds a
/// copy of the register; all non-root copies are uncomputed against the
/// parent's copy. Since the fan-out CNOTs on distinct tree edges commute,
/// every edge can ship its copy simultaneously, so this takes
/// `O(⌈q/log n⌉)` rounds — within Lemma 7's `O(D + q/log n)` budget.
///
/// Each node verifies that the received child copies equal its own
/// (uncompute would otherwise leave garbage); a mismatch marks the run
/// corrupt.
#[derive(Debug)]
pub struct GatherRegisterProtocol {
    tree: TreeView,
    q: u64,
    chunk_bits: u64,
    reg: Register,
    sent: u64,
    /// Per-child progress: (received bits, mismatch seen).
    child_have: Vec<(NodeId, u64)>,
    mismatch: bool,
}

impl GatherRegisterProtocol {
    /// Instances given each node's tree view and its local register copy.
    ///
    /// # Panics
    ///
    /// Panics if register widths disagree or `chunk_bits == 0`.
    pub fn instances(views: &[TreeView], regs: Vec<Register>, chunk_bits: u64) -> Vec<Self> {
        assert!(chunk_bits > 0);
        assert_eq!(views.len(), regs.len());
        let q = regs[0].bits();
        views
            .iter()
            .zip(regs)
            .map(|(view, reg)| {
                assert_eq!(reg.bits(), q, "all copies must have the same width");
                GatherRegisterProtocol {
                    tree: view.clone(),
                    q,
                    chunk_bits: chunk_bits.min(64),
                    child_have: view.children.iter().map(|&c| (c, 0)).collect(),
                    reg,
                    sent: 0,
                    mismatch: false,
                }
            })
            .collect()
    }

    /// Whether an uncompute mismatch was detected at this node.
    pub fn mismatch(&self) -> bool {
        self.mismatch
    }

    /// The retained register (meaningful at the root).
    pub fn register(&self) -> &Register {
        &self.reg
    }
}

impl NodeProtocol for GatherRegisterProtocol {
    type Msg = Chunk;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Chunk>, inbox: &[(NodeId, Chunk)]) {
        for (from, chunk) in inbox {
            let slot = self
                .child_have
                .iter_mut()
                .find(|(c, _)| c == from)
                .expect("chunks only flow from children");
            let expect = self.reg.get_bits(slot.1, chunk.nbits);
            if expect != chunk.payload {
                self.mismatch = true;
            }
            slot.1 += chunk.nbits;
        }
        if let Some(parent) = self.tree.parent {
            if self.sent < self.q {
                let len = self.chunk_bits.min(self.q - self.sent);
                let payload = self.reg.get_bits(self.sent, len);
                ctx.send(parent, Chunk { nbits: len, payload });
                self.sent += len;
            }
        }
    }

    fn is_done(&self) -> bool {
        (self.tree.parent.is_none() || self.sent == self.q)
            && self.child_have.iter().all(|&(_, h)| h == self.q)
    }
}

/// Driver for Lemma 7 (forward direction): broadcast `reg` from the root of
/// `tree` to every node. Returns all node copies and the measured stats.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn distribute_register(
    net: &Network<'_>,
    views: &[TreeView],
    reg: Register,
    schedule: Schedule,
) -> Result<(Vec<Register>, RunStats), RuntimeError> {
    let chunk = (net.cap_bits().saturating_sub(1)).clamp(1, 64);
    let run = net.run(BroadcastRegisterProtocol::instances(views, reg, chunk, schedule))?;
    Ok((run.nodes.iter().map(|p| p.register().clone()).collect(), run.stats))
}

/// Driver for Lemma 7 (reverse direction): uncompute all non-root copies.
/// Returns the root's retained register and the measured stats.
///
/// # Errors
///
/// Propagates [`RuntimeError`]; a copy mismatch is reported as a panic in
/// debug builds and a `mismatch` flag otherwise — it indicates a protocol
/// bug, not an input error.
pub fn gather_register(
    net: &Network<'_>,
    views: &[TreeView],
    regs: Vec<Register>,
) -> Result<(Register, RunStats), RuntimeError> {
    let chunk = (net.cap_bits().saturating_sub(1)).clamp(1, 64);
    let root = views.iter().position(|v| v.parent.is_none()).expect("tree has a root");
    let run = net.run(GatherRegisterProtocol::instances(views, regs, chunk))?;
    debug_assert!(run.nodes.iter().all(|p| !p.mismatch()), "uncompute mismatch");
    Ok((run.nodes[root].register().clone(), run.stats))
}

/// The queue used by pipelined fan-in/fan-out protocols; exported for reuse.
pub type ChunkQueue = VecDeque<Chunk>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::build_bfs_tree;
    use crate::generators::{balanced_tree, path, random_connected, star};

    #[test]
    fn register_bit_twiddling() {
        let mut r = Register::zeros(100);
        r.set_bits(0, 10, 0x3ff);
        r.set_bits(60, 10, 0x2aa); // straddles the word boundary
        r.set_bits(90, 10, 0x155);
        assert_eq!(r.get_bits(0, 10), 0x3ff);
        assert_eq!(r.get_bits(60, 10), 0x2aa);
        assert_eq!(r.get_bits(90, 10), 0x155);
        assert_eq!(r.get_bits(10, 50), 0);
    }

    #[test]
    fn register_pack_unpack_roundtrip() {
        let fields = vec![3u64, 17, 0, 255, 128];
        let r = Register::pack(&fields, 9);
        assert_eq!(r.bits(), 45);
        assert_eq!(r.unpack(9), fields);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn register_rejects_oversized_value() {
        Register::from_value(3, 8);
    }

    #[test]
    fn register_full_word() {
        let r = Register::from_value(64, u64::MAX);
        assert_eq!(r.get_bits(0, 64), u64::MAX);
        assert_eq!(r.value(), u64::MAX);
    }

    fn patterned_register(q: u64) -> Register {
        let mut reg = Register::zeros(q);
        let mut off = 0;
        let mut i = 0u64;
        while off < q {
            let len = 13.min(q - off);
            reg.set_bits(off, len, (i * 2654435761) & ((1 << len) - 1));
            off += len;
            i += 1;
        }
        reg
    }

    fn roundtrip(g: &crate::graph::Graph, q: u64) -> (usize, usize) {
        let net = Network::new(g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let reg = patterned_register(q);
        let (copies, s1) =
            distribute_register(&net, &tree.views, reg.clone(), Schedule::Pipelined).unwrap();
        for c in &copies {
            assert_eq!(c, &reg, "every node must hold the root's register");
        }
        let (back, s2) = gather_register(&net, &tree.views, copies).unwrap();
        assert_eq!(back, reg);
        (s1.rounds, s2.rounds)
    }

    #[test]
    fn distribute_gather_roundtrip_families() {
        for g in [path(12), star(10), balanced_tree(3, 3), random_connected(25, 0.1, 3)] {
            roundtrip(&g, 130);
        }
    }

    #[test]
    fn pipelined_beats_store_and_forward() {
        // Long path, wide register: pipelining must win by ~D×.
        let g = path(30);
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let q = 20 * net.cap_bits();
        let reg = Register::zeros(q);
        let (_, fast) =
            distribute_register(&net, &tree.views, reg.clone(), Schedule::Pipelined).unwrap();
        let (_, slow) =
            distribute_register(&net, &tree.views, reg, Schedule::StoreAndForward).unwrap();
        assert!(
            fast.rounds * 5 < slow.rounds,
            "pipelined {} vs naive {}",
            fast.rounds,
            slow.rounds
        );
        // Lemma 7: pipelined ≈ D + q/log n.
        let d = 29;
        let chunks = (q as usize).div_ceil(net.cap_bits() as usize - 1);
        assert!(fast.rounds <= 2 * (d + chunks), "rounds {} too slow", fast.rounds);
    }

    #[test]
    fn gather_rounds_independent_of_depth() {
        // The reverse direction parallelizes across edges.
        let q = 256;
        let mut rounds = vec![];
        for n in [10usize, 40] {
            let g = path(n);
            // Fix the bandwidth so the chunk count is the same for both.
            let net = Network::new(&g).with_bandwidth(16);
            let tree = build_bfs_tree(&net, 0).unwrap();
            let regs = vec![Register::from_value(q, 42); n];
            let (_, s) = gather_register(&net, &tree.views, regs).unwrap();
            rounds.push(s.rounds);
        }
        assert_eq!(rounds[0], rounds[1], "gather should not depend on D");
    }

    #[test]
    fn broadcast_single_node() {
        let g = crate::graph::Graph::from_edges(1, []).unwrap();
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let reg = Register::from_value(8, 77);
        let (copies, stats) =
            distribute_register(&net, &tree.views, reg.clone(), Schedule::Pipelined).unwrap();
        assert_eq!(copies[0], reg);
        assert_eq!(stats.rounds, 0);
    }
}
