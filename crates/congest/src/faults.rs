//! Deterministic, seeded fault injection for the round engine.
//!
//! A [`FaultPlan`] describes how the network misbehaves — per-round message
//! drops, link-down intervals, per-edge bandwidth degradation, and bounded
//! delivery delay — and is attached to a [`Network`](crate::runtime::Network)
//! with [`with_faults`](crate::runtime::Network::with_faults). Faults are
//! applied *at delivery time*, inside the engine's routing step, after the
//! model's own validation: a message that names a non-neighbor or overflows
//! the global bandwidth cap is still a protocol error; a message the plan
//! drops is a simulated network fault.
//!
//! # Determinism
//!
//! Every fault decision is a pure hash of
//! `(plan seed, round, from, to, outbox index)` — there is no sequential RNG
//! stream to advance — so the schedule is a function of the traffic alone.
//! Because the sequential and parallel engines present each sender's outbox
//! in the same order, the same seed yields bit-identical faulted runs on
//! both engines, and replaying a run reproduces it exactly.
//!
//! # Loss tolerance
//!
//! Plain protocols treat the network as reliable; under a lossy plan they
//! may simply never terminate (the engine then reports
//! [`RoundLimitExceeded`](crate::runtime::RuntimeError::RoundLimitExceeded)).
//! The [`Reliable`] wrapper adds a per-link stop-and-wait acknowledgement
//! protocol with round-budgeted retransmission and exponential backoff, so
//! any [`NodeProtocol`] can opt into loss tolerance unchanged. When a link's
//! retry budget is exhausted the run aborts with
//! [`RuntimeError::RetryBudgetExhausted`] instead of hanging.

use crate::graph::{bits_for, Graph, NodeId};
use crate::runtime::{Ctx, MessageSize, NodeProtocol, RuntimeError};
use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform value in `[0, 1)` using the top 53 bits.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// What the fault plan decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// Deliver normally at the start of the next round.
    Deliver,
    /// Silently lose the message.
    Drop,
    /// Deliver `1 + d` rounds late.
    Delay(usize),
}

/// A scheduled outage of one undirected link.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LinkDown {
    u: NodeId,
    v: NodeId,
    rounds: Range<usize>,
}

/// A deterministic, seeded description of network faults.
///
/// Plans are built with the `with_*` methods and attached to a network via
/// [`Network::with_faults`](crate::runtime::Network::with_faults). All
/// scheduling is derived from the seed by pure hashing — see the
/// [module docs](self) for the determinism contract.
///
/// # Examples
///
/// ```
/// use congest::faults::FaultPlan;
///
/// let plan = FaultPlan::new(7).with_drop_rate(0.1).with_delay(0.2, 3);
/// assert_eq!(plan.seed(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    delay_rate: f64,
    max_delay: usize,
    link_down: Vec<LinkDown>,
    degraded: Vec<(NodeId, NodeId, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 0,
            link_down: Vec::new(),
            degraded: Vec::new(),
        }
    }

    /// The seed all fault decisions are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each delivered message independently with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be in [0, 1]");
        self.drop_rate = rate;
        self
    }

    /// Delay each message independently with probability `rate`, by a
    /// uniform `1..=max_delay` extra rounds. Delayed messages still arrive
    /// (delay is bounded, not loss), merely late.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn with_delay(mut self, rate: f64, max_delay: usize) -> Self {
        assert!((0.0..=1.0).contains(&rate), "delay rate must be in [0, 1]");
        self.delay_rate = rate;
        self.max_delay = if rate > 0.0 { max_delay } else { 0 };
        self
    }

    /// Take the undirected link `{u, v}` down for the given round interval:
    /// every message crossing it in a round within `rounds` is lost.
    pub fn with_link_down(mut self, u: NodeId, v: NodeId, rounds: Range<usize>) -> Self {
        self.link_down.push(LinkDown { u, v, rounds });
        self
    }

    /// Reduce the capacity of the undirected link `{u, v}` to `cap_bits`
    /// per direction per round. Traffic beyond the degraded cap (but within
    /// the network's global cap) is tail-dropped as a fault; traffic beyond
    /// the global cap remains a protocol error.
    pub fn with_degraded_edge(mut self, u: NodeId, v: NodeId, cap_bits: u64) -> Self {
        self.degraded.push((u, v, cap_bits));
        self
    }

    /// Take `count` seed-chosen edges of `g` down for the round interval.
    /// The selection comes from [`Graph::sample_edges`] with this plan's
    /// seed, so it replays identically.
    pub fn with_random_link_down(mut self, g: &Graph, count: usize, rounds: Range<usize>) -> Self {
        for (u, v) in g.sample_edges(count, self.seed ^ 0x11_4D0) {
            self.link_down.push(LinkDown { u, v, rounds: rounds.clone() });
        }
        self
    }

    /// Degrade `count` seed-chosen edges of `g` to `cap_bits` per round.
    pub fn with_random_degraded(mut self, g: &Graph, count: usize, cap_bits: u64) -> Self {
        for (u, v) in g.sample_edges(count, self.seed ^ 0xDE_64A) {
            self.degraded.push((u, v, cap_bits));
        }
        self
    }

    /// Whether the link `from -> to` is down in `round`.
    pub(crate) fn link_is_down(&self, round: usize, from: NodeId, to: NodeId) -> bool {
        self.link_down.iter().any(|l| {
            ((l.u == from && l.v == to) || (l.u == to && l.v == from)) && l.rounds.contains(&round)
        })
    }

    /// The degraded capacity of `from -> to`, if this plan degrades it.
    pub(crate) fn degraded_cap(&self, from: NodeId, to: NodeId) -> Option<u64> {
        self.degraded
            .iter()
            .find(|&&(u, v, _)| (u == from && v == to) || (u == to && v == from))
            .map(|&(_, _, cap)| cap)
    }

    /// One message's fate: a pure hash of the plan seed and the message's
    /// coordinates (`round`, sender, receiver, position in the sender's
    /// outbox), identical across engines and replays.
    pub(crate) fn decide(&self, round: usize, from: NodeId, to: NodeId, idx: usize) -> Delivery {
        if self.drop_rate > 0.0 {
            let h = self.hash(0xD20B, round, from, to, idx);
            if unit(h) < self.drop_rate {
                return Delivery::Drop;
            }
        }
        if self.delay_rate > 0.0 && self.max_delay > 0 {
            let h = self.hash(0xDE1A, round, from, to, idx);
            if unit(h) < self.delay_rate {
                return Delivery::Delay(1 + (mix64(h) % self.max_delay as u64) as usize);
            }
        }
        Delivery::Deliver
    }

    /// Fold the message coordinates into the seed with a per-kind salt.
    #[inline]
    fn hash(&self, kind: u64, round: usize, from: NodeId, to: NodeId, idx: usize) -> u64 {
        let mut h = mix64(self.seed ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for field in [round as u64, from as u64, to as u64, idx as u64] {
            h = mix64(h ^ field.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        h
    }
}

/// Retransmission parameters of the [`Reliable`] wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Rounds to wait for an acknowledgement before the first retransmit.
    /// Values below 2 are treated as 2 (a data/ack round trip takes two
    /// rounds even on a fault-free link).
    pub base_timeout: usize,
    /// Total transmission attempts per message (first send included) before
    /// the link gives up and the run aborts with
    /// [`RuntimeError::RetryBudgetExhausted`].
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    /// `base_timeout: 4, max_attempts: 30`: a stop-and-wait chain fails
    /// only if *every* attempt loses its data or its ack, so at a 30%
    /// per-message drop rate one chain survives with probability
    /// `1 - 0.51^30 ≈ 1 - 2·10⁻⁹` — effectively certain even across the
    /// thousands of link-chains of a full experiment sweep.
    fn default() -> Self {
        RetryConfig { base_timeout: 4, max_attempts: 30 }
    }
}

impl RetryConfig {
    /// The timeout before retransmit number `attempt` (1-based): exponential
    /// backoff doubling up to 8× the base.
    fn timeout(&self, attempt: u32) -> usize {
        self.base_timeout.max(2) << (attempt - 1).min(3)
    }
}

/// The wire format of the [`Reliable`] wrapper: payloads carry a sequence
/// number, acknowledgements are cumulative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReliableMsg<M> {
    /// An application payload with its per-link sequence number.
    Data {
        /// Per-link send sequence number, starting at 0.
        seq: u32,
        /// The wrapped protocol's message.
        payload: M,
    },
    /// Cumulative acknowledgement: every payload up to `seq` has arrived.
    Ack {
        /// Highest in-order sequence number received.
        seq: u32,
    },
}

impl<M: MessageSize> MessageSize for ReliableMsg<M> {
    fn size_bits(&self) -> u64 {
        // 1 tag bit plus the sequence number's width; Data adds its payload.
        match self {
            ReliableMsg::Data { seq, payload } => 1 + bits_for(*seq as u64) + payload.size_bits(),
            ReliableMsg::Ack { seq } => 1 + bits_for(*seq as u64),
        }
    }
}

/// One message awaiting acknowledgement on a link.
#[derive(Debug, Clone)]
struct InFlight<M> {
    seq: u32,
    msg: M,
    attempts: u32,
    retry_at: usize,
}

/// Per-neighbor stop-and-wait state.
#[derive(Debug, Clone)]
struct LinkState<M> {
    peer: NodeId,
    /// Payloads queued behind the in-flight message, FIFO.
    queue: VecDeque<M>,
    in_flight: Option<InFlight<M>>,
    next_seq: u32,
    /// Receiver side: the next sequence number expected from `peer`.
    recv_expected: u32,
    /// Whether an acknowledgement must be emitted this round.
    ack_pending: bool,
}

impl<M> LinkState<M> {
    fn new(peer: NodeId) -> Self {
        LinkState {
            peer,
            queue: VecDeque::new(),
            in_flight: None,
            next_seq: 0,
            recv_expected: 0,
            ack_pending: false,
        }
    }

    fn quiet(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_none()
    }
}

/// A loss-tolerance wrapper: runs any [`NodeProtocol`] over per-link
/// stop-and-wait acknowledged channels with round-budgeted retransmission.
///
/// Each directed link carries at most one unacknowledged payload; further
/// sends queue FIFO behind it, so the wrapped protocol observes exactly the
/// per-link message order it emitted, merely later. An unacknowledged
/// payload is retransmitted with exponential backoff; once
/// [`RetryConfig::max_attempts`] transmissions fail, the node reports
/// [`RuntimeError::RetryBudgetExhausted`] through
/// [`NodeProtocol::failure`] and the engine aborts the run.
///
/// # Examples
///
/// ```
/// use congest::faults::{FaultPlan, Reliable, RetryConfig};
/// use congest::conformance::FloodProtocol;
/// use congest::generators::grid;
/// use congest::runtime::Network;
///
/// let g = grid(4, 3);
/// let net = Network::new(&g).with_faults(FaultPlan::new(5).with_drop_rate(0.2));
/// let nodes = Reliable::wrap_all(FloodProtocol::instances(g.n(), 0), RetryConfig::default());
/// let run = net.run(nodes)?;
/// assert!(run.nodes.iter().all(|r| r.inner().has_token));
/// # Ok::<(), congest::runtime::RuntimeError>(())
/// ```
pub struct Reliable<P: NodeProtocol> {
    inner: P,
    cfg: RetryConfig,
    links: Vec<LinkState<P::Msg>>,
    delivered: Vec<(NodeId, P::Msg)>,
    inner_out: Vec<(NodeId, P::Msg)>,
    failed: Option<RuntimeError>,
}

impl<P: NodeProtocol> Reliable<P> {
    /// Wrap a single protocol instance.
    pub fn new(inner: P, cfg: RetryConfig) -> Self {
        Reliable {
            inner,
            cfg,
            links: Vec::new(),
            delivered: Vec::new(),
            inner_out: Vec::new(),
            failed: None,
        }
    }

    /// Wrap every instance of a protocol vector with the same config.
    pub fn wrap_all(inner: Vec<P>, cfg: RetryConfig) -> Vec<Self> {
        inner.into_iter().map(|p| Reliable::new(p, cfg)).collect()
    }

    /// The wrapped protocol state.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwrap into the inner protocol state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn link_mut(links: &mut [LinkState<P::Msg>], peer: NodeId) -> Option<&mut LinkState<P::Msg>> {
        links.iter_mut().find(|l| l.peer == peer)
    }
}

impl<P> fmt::Debug for Reliable<P>
where
    P: NodeProtocol + fmt::Debug,
    P::Msg: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reliable")
            .field("inner", &self.inner)
            .field("links", &self.links)
            .field("failed", &self.failed)
            .finish()
    }
}

impl<P: NodeProtocol> NodeProtocol for Reliable<P> {
    type Msg = ReliableMsg<P::Msg>;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(NodeId, Self::Msg)]) {
        if self.links.is_empty() && !ctx.neighbors().is_empty() {
            self.links = ctx.neighbors().iter().map(|&p| LinkState::new(p)).collect();
        }
        if self.failed.is_some() {
            return; // quiesce; the engine surfaces the failure this round
        }
        let round = ctx.round();

        // 1. Intake: deliver in-order payloads to the inner protocol,
        // clear acknowledged in-flight messages, and note acks to emit.
        self.delivered.clear();
        for (from, msg) in inbox {
            let Some(link) = Self::link_mut(&mut self.links, *from) else { continue };
            match msg {
                ReliableMsg::Data { seq, payload } => {
                    if *seq == link.recv_expected {
                        self.delivered.push((*from, payload.clone()));
                        link.recv_expected += 1;
                    }
                    // Duplicates (a retransmit whose original arrived) are
                    // re-acknowledged so the sender stops retrying.
                    link.ack_pending = true;
                }
                ReliableMsg::Ack { seq } => {
                    if link.in_flight.as_ref().is_some_and(|f| f.seq <= *seq) {
                        link.in_flight = None;
                    }
                }
            }
        }

        // 2. The wrapped protocol's round, on the reliable view: its inbox
        // is the in-order payload stream, its sends go to the link queues.
        let mut inner_out = std::mem::take(&mut self.inner_out);
        inner_out.clear();
        {
            let neighbors = ctx.neighbors();
            let (me, n, cap) = (ctx.me(), ctx.n(), ctx.cap_bits());
            let mut inner_ctx =
                Ctx::internal(me, round, n, cap, neighbors, &mut inner_out, ctx.tel_shard());
            self.inner.on_round(&mut inner_ctx, &self.delivered);
        }
        for (to, m) in inner_out.drain(..) {
            match Self::link_mut(&mut self.links, to) {
                Some(link) => link.queue.push_back(m),
                // A non-neighbor send cannot be made reliable; forward it
                // raw so the engine reports the usual protocol error.
                None => ctx.send(to, ReliableMsg::Data { seq: 0, payload: m }),
            }
        }
        self.inner_out = inner_out;

        // 3. Emit per link, in neighbor order: pending ack, then either the
        // next queued payload or a timed-out retransmission.
        let me = ctx.me();
        for link in &mut self.links {
            if link.ack_pending {
                link.ack_pending = false;
                ctx.send(link.peer, ReliableMsg::Ack { seq: link.recv_expected.wrapping_sub(1) });
                ctx.count("reliable.acks", 1);
            }
            match &mut link.in_flight {
                None => {
                    if let Some(m) = link.queue.pop_front() {
                        let seq = link.next_seq;
                        link.next_seq += 1;
                        ctx.send(link.peer, ReliableMsg::Data { seq, payload: m.clone() });
                        ctx.count("reliable.sends", 1);
                        link.in_flight = Some(InFlight {
                            seq,
                            msg: m,
                            attempts: 1,
                            retry_at: round + self.cfg.timeout(1),
                        });
                    }
                }
                Some(f) if round >= f.retry_at => {
                    if f.attempts >= self.cfg.max_attempts {
                        self.failed = Some(RuntimeError::RetryBudgetExhausted {
                            round,
                            from: me,
                            to: link.peer,
                            attempts: f.attempts,
                        });
                        ctx.count("reliable.exhausted", 1);
                    } else {
                        f.attempts += 1;
                        ctx.send(
                            link.peer,
                            ReliableMsg::Data { seq: f.seq, payload: f.msg.clone() },
                        );
                        let backoff = self.cfg.timeout(f.attempts);
                        f.retry_at = round + backoff;
                        ctx.count("reliable.retries", 1);
                        ctx.observe("reliable.backoff", backoff as u64);
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn is_done(&self) -> bool {
        self.failed.is_none() && self.inner.is_done() && self.links.iter().all(LinkState::quiet)
    }

    fn failure(&self) -> Option<RuntimeError> {
        self.failed.clone().or_else(|| self.inner.failure())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, path};

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let plan = FaultPlan::new(42).with_drop_rate(0.5).with_delay(0.3, 4);
        for round in 0..20 {
            for idx in 0..5 {
                let a = plan.decide(round, 3, 7, idx);
                let b = plan.decide(round, 3, 7, idx);
                assert_eq!(a, b);
            }
        }
        // A different seed gives a different schedule somewhere.
        let other = FaultPlan::new(43).with_drop_rate(0.5).with_delay(0.3, 4);
        let differs = (0..200).any(|r| plan.decide(r, 0, 1, 0) != other.decide(r, 0, 1, 0));
        assert!(differs, "seeds 42 and 43 produced identical 200-round schedules");
    }

    #[test]
    fn drop_rate_extremes() {
        let never = FaultPlan::new(1);
        let always = FaultPlan::new(1).with_drop_rate(1.0);
        for r in 0..50 {
            assert_eq!(never.decide(r, 0, 1, 0), Delivery::Deliver);
            assert_eq!(always.decide(r, 0, 1, 0), Delivery::Drop);
        }
    }

    #[test]
    fn link_down_is_undirected_and_interval_bounded() {
        let plan = FaultPlan::new(0).with_link_down(2, 5, 3..7);
        assert!(!plan.link_is_down(2, 2, 5));
        assert!(plan.link_is_down(3, 2, 5));
        assert!(plan.link_is_down(6, 5, 2));
        assert!(!plan.link_is_down(7, 2, 5));
        assert!(!plan.link_is_down(4, 2, 4));
    }

    #[test]
    fn degraded_cap_is_undirected() {
        let plan = FaultPlan::new(0).with_degraded_edge(1, 2, 6);
        assert_eq!(plan.degraded_cap(1, 2), Some(6));
        assert_eq!(plan.degraded_cap(2, 1), Some(6));
        assert_eq!(plan.degraded_cap(0, 1), None);
    }

    #[test]
    fn random_selections_replay() {
        let g = grid(5, 5);
        let a = FaultPlan::new(9).with_random_link_down(&g, 4, 0..10);
        let b = FaultPlan::new(9).with_random_link_down(&g, 4, 0..10);
        assert_eq!(a, b);
        let c = FaultPlan::new(10).with_random_link_down(&g, 4, 0..10);
        assert_ne!(a.link_down, c.link_down);
    }

    #[test]
    fn reliable_message_sizes_count_header_and_payload() {
        #[derive(Clone, Debug)]
        struct Bits(u64);
        impl MessageSize for Bits {
            fn size_bits(&self) -> u64 {
                self.0
            }
        }
        let data = ReliableMsg::Data { seq: 5, payload: Bits(10) };
        assert_eq!(data.size_bits(), 1 + 3 + 10);
        let ack: ReliableMsg<Bits> = ReliableMsg::Ack { seq: 0 };
        assert_eq!(ack.size_bits(), 1 + 1);
    }

    #[test]
    fn reliable_roundtrip_on_clean_path() {
        use crate::conformance::FloodProtocol;
        use crate::runtime::Network;
        let g = path(6);
        let net = Network::new(&g);
        let run = net
            .run_sequential(Reliable::wrap_all(
                FloodProtocol::instances(6, 0),
                RetryConfig::default(),
            ))
            .expect("clean reliable flood");
        assert!(run.nodes.iter().all(|r| r.inner().has_token));
        assert_eq!(run.stats.dropped, 0);
    }
}
