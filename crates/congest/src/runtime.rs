//! The synchronous round engine.
//!
//! The (Quantum) CONGEST model proceeds in synchronous rounds: in each round
//! every node may send one message of `O(log n)` (qu)bits to each neighbor,
//! then receives its neighbors' messages and performs unlimited local
//! computation. The engine executes a per-node state machine
//! ([`NodeProtocol`]) round by round, enforces the per-edge bandwidth cap,
//! and counts rounds — the measured quantity in every experiment.
//!
//! Determinism: the engine itself is deterministic; protocols that need
//! randomness own a seeded RNG, so a whole run is reproducible from its
//! seeds. The parallel engine ([`EngineMode`]) preserves this bit for bit:
//! nodes are partitioned into contiguous [`NodeId`] chunks, each worker
//! processes its chunk in id order, and the per-chunk results (outgoing
//! messages, statistics, first error) are merged back in chunk order — so
//! every observable output equals the sequential engine's. See
//! `DESIGN.md`, "Engine internals".

use crate::conformance::Violation;
use crate::faults::{Delivery, FaultPlan};
use crate::graph::{bits_for, Graph, NodeId};
use crate::telemetry::{Collector, Shard};
use std::collections::VecDeque;
use std::fmt;

/// Size accounting for protocol messages.
///
/// Every message declares its size in (qu)bits; the engine sums sizes per
/// directed edge per round and rejects the run if any edge exceeds the cap.
/// Quantum payloads (e.g. the register chunks of Lemma 7) report their size
/// in qubits; the model treats classical bits and qubits identically for
/// bandwidth purposes.
pub trait MessageSize {
    /// The number of (qu)bits this message occupies on a link.
    fn size_bits(&self) -> u64;
}

/// A per-node protocol state machine.
///
/// One value of the implementing type exists per node. The engine calls
/// [`on_round`](Self::on_round) for every node in every round (round 0
/// delivers an empty inbox), collecting outgoing messages through
/// [`Ctx`].
pub trait NodeProtocol {
    /// Message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// One synchronous round: react to `inbox` (messages sent to this node
    /// in the previous round) and queue outgoing messages on `ctx`.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(NodeId, Self::Msg)]);

    /// Whether this node has finished its part of the protocol. The run
    /// ends when every node is done and no messages are in flight.
    fn is_done(&self) -> bool;

    /// An error this node wants to abort the run with.
    ///
    /// The engine polls every node after each round (in node-id order, so
    /// the first failing node determines the error deterministically) and
    /// aborts the run with the reported error. The default never fails;
    /// wrappers like [`Reliable`](crate::faults::Reliable) use this to
    /// surface exhausted retry budgets as clean [`RuntimeError`]s instead
    /// of hanging until the round limit.
    fn failure(&self) -> Option<RuntimeError> {
        None
    }
}

/// Per-round context handed to a node: identity, topology view, and the
/// outbox.
///
/// A node only sees its own id, its neighbor list, and the global constants
/// `n` and the bandwidth cap — exactly the initial knowledge the CONGEST
/// model grants.
pub struct Ctx<'a, M> {
    me: NodeId,
    // (fields documented on the accessors)
    round: usize,
    n: usize,
    cap_bits: u64,
    neighbors: &'a [NodeId],
    out: &'a mut Vec<(NodeId, M)>,
    /// Telemetry staging buffer; `None` on untelemetered runs, so the
    /// instrumentation methods compile to a null check.
    tel: Option<&'a mut Shard>,
}

impl<M> fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("me", &self.me)
            .field("round", &self.round)
            .finish()
    }
}

impl<'a, M: MessageSize> Ctx<'a, M> {
    /// Crate-internal constructor for wrappers (e.g.
    /// [`Reliable`](crate::faults::Reliable)) that run an inner protocol's
    /// round against their own outbox buffer.
    pub(crate) fn internal(
        me: NodeId,
        round: usize,
        n: usize,
        cap_bits: u64,
        neighbors: &'a [NodeId],
        out: &'a mut Vec<(NodeId, M)>,
        tel: Option<&'a mut Shard>,
    ) -> Self {
        Ctx { me, round, n, cap_bits, neighbors, out, tel }
    }

    /// Reborrow this context's telemetry buffer so a wrapper (e.g.
    /// [`Reliable`](crate::faults::Reliable)) can hand it to an inner
    /// protocol's context.
    pub(crate) fn tel_shard(&mut self) -> Option<&mut Shard> {
        self.tel.as_deref_mut()
    }

    /// This node's identifier.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Total number of nodes (global knowledge in the model).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-edge per-round bandwidth cap in (qu)bits.
    #[inline]
    pub fn cap_bits(&self) -> u64 {
        self.cap_bits
    }

    /// The sorted neighbor list of this node.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.neighbors
    }

    /// Queue `msg` for delivery to neighbor `to` at the start of the next
    /// round.
    ///
    /// The engine validates that `to` is a neighbor and that the edge's
    /// bandwidth cap is respected; violations abort the run with an error
    /// rather than silently producing an unfaithful round count.
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Queue `msg` to every neighbor.
    ///
    /// The final neighbor receives `msg` itself; only the first
    /// `degree - 1` deliveries pay for a clone.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        if let Some((&last, rest)) = self.neighbors.split_last() {
            self.out.reserve(self.neighbors.len());
            for &w in rest {
                self.out.push((w, msg.clone()));
            }
            self.out.push((last, msg));
        }
    }

    /// Queue a batch of addressed messages in one call.
    ///
    /// Equivalent to calling [`send`](Self::send) for each pair, in order,
    /// but lets the outbox grow in a single reservation.
    pub fn send_many<I>(&mut self, msgs: I)
    where
        I: IntoIterator<Item = (NodeId, M)>,
    {
        self.out.extend(msgs);
    }

    /// Whether this run records telemetry (i.e. it was started with
    /// [`Network::run_telemetry`]). Protocols can use this to skip
    /// building labels for [`mark`](Self::mark) on untelemetered runs;
    /// [`count`](Self::count) and [`observe`](Self::observe) are cheap
    /// enough to call unconditionally.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        self.tel.is_some()
    }

    /// Emit an instant telemetry event at this node and round (e.g.
    /// `"became-leader"`). No-op unless the run records telemetry.
    #[inline]
    pub fn mark(&mut self, label: &str) {
        if let Some(t) = self.tel.as_deref_mut() {
            t.marks.push((self.me, label.to_string()));
        }
    }

    /// Add `v` to a named telemetry counter (e.g.
    /// `("reliable.retries", 1)`). No-op unless the run records telemetry;
    /// the static name means the disabled path allocates nothing.
    #[inline]
    pub fn count(&mut self, name: &'static str, v: u64) {
        if let Some(t) = self.tel.as_deref_mut() {
            t.counts.push((name, v));
        }
    }

    /// Record `v` in a named telemetry histogram (e.g. a backoff wait in
    /// rounds). No-op unless the run records telemetry.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        if let Some(t) = self.tel.as_deref_mut() {
            t.observations.push((name, v));
        }
    }
}

/// Why a run was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum RuntimeError {
    /// A node addressed a message to a non-neighbor.
    NotANeighbor { round: usize, from: NodeId, to: NodeId },
    /// The traffic on a directed edge exceeded the cap in some round.
    BandwidthExceeded { round: usize, from: NodeId, to: NodeId, bits: u64, cap: u64 },
    /// The protocol did not terminate within the round limit.
    RoundLimitExceeded { limit: usize },
    /// The number of protocol instances does not match the node count.
    WrongNodeCount { expected: usize, got: usize },
    /// A [`Reliable`](crate::faults::Reliable) link exhausted its
    /// retransmission budget without receiving an acknowledgement.
    RetryBudgetExhausted { round: usize, from: NodeId, to: NodeId, attempts: u32 },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NotANeighbor { round, from, to } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            RuntimeError::BandwidthExceeded { round, from, to, bits, cap } => write!(
                f,
                "round {round}: edge {from}->{to} carried {bits} bits, cap is {cap}"
            ),
            RuntimeError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
            RuntimeError::WrongNodeCount { expected, got } => {
                write!(f, "expected {expected} protocol instances, got {got}")
            }
            RuntimeError::RetryBudgetExhausted { round, from, to, attempts } => write!(
                f,
                "round {round}: link {from}->{to} gave up after {attempts} unacknowledged attempts"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Aggregate statistics of one protocol run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds used (index of the last round in
    /// which any message was in flight, plus one).
    pub rounds: usize,
    /// Total number of messages delivered (immediately or after an
    /// injected delay; dropped messages are not counted here).
    pub messages: u64,
    /// Total (qu)bits delivered.
    pub total_bits: u64,
    /// The largest per-edge per-round load observed, in (qu)bits. Counts
    /// *offered* traffic — messages a fault plan later dropped still loaded
    /// the edge when they were sent.
    pub max_edge_bits: u64,
    /// Messages lost to fault injection (drops, link-down intervals, and
    /// degraded-cap overflow). Always 0 without a fault plan.
    pub dropped: u64,
}

impl RunStats {
    /// Merge stats of a subsequent phase into this one (rounds add up).
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_edge_bits = self.max_edge_bits.max(other.max_edge_bits);
        self.dropped += other.dropped;
    }
}

/// The result of a completed run: the final node states plus statistics.
#[derive(Debug)]
pub struct Run<P> {
    /// Final per-node protocol states, indexed by [`NodeId`].
    pub nodes: Vec<P>,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Per-round record of a traced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// Messages sent this round that will be delivered (possibly late,
    /// under a delaying fault plan).
    pub messages: u64,
    /// Total (qu)bits in those messages.
    pub bits: u64,
    /// The most loaded directed edge `(from, to, bits)` this round, by
    /// offered traffic.
    pub busiest_edge: Option<(NodeId, NodeId, u64)>,
    /// Messages sent this round that fault injection discarded.
    pub dropped: u64,
}

/// A per-round congestion trace produced by [`Network::run_traced`].
///
/// # Examples
///
/// ```
/// use congest::generators::path;
/// use congest::runtime::Network;
/// use congest::bfs::BfsTreeProtocol;
///
/// let g = path(6);
/// let net = Network::new(&g);
/// let (_run, trace) = net.run_traced(BfsTreeProtocol::instances(6, 0))?;
/// assert!(!trace.rounds.is_empty());
/// println!("{}", trace.render(20));
/// # Ok::<(), congest::runtime::RuntimeError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One entry per executed round.
    pub rounds: Vec<RoundTrace>,
}

impl Trace {
    /// The round with the highest bit volume, if any traffic flowed.
    ///
    /// Ties are resolved to the **first** such round. This tie-break is
    /// part of the API contract: peak rounds are compared when diffing
    /// traces across engines and replays, so the choice must not depend
    /// on iteration internals.
    pub fn peak_round(&self) -> Option<(usize, &RoundTrace)> {
        let mut best: Option<(usize, &RoundTrace)> = None;
        for (i, r) in self.rounds.iter().enumerate() {
            if best.is_none_or(|(_, b): (usize, &RoundTrace)| r.bits > b.bits) {
                best = Some((i, r));
            }
        }
        best.filter(|(_, r)| r.bits > 0)
    }

    /// Total delivered bits.
    pub fn total_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.bits).sum()
    }

    /// Render an ASCII bit-volume histogram, `width` columns.
    ///
    /// Output is bounded: traces with at most `width` rounds get one
    /// exact line per round; longer traces are bucketed into at most
    /// `width` contiguous round groups (each line sums its group's bits
    /// and messages), so an 18 000-round trace renders in `width` lines
    /// instead of 18 000.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        let mut out = String::new();
        if self.rounds.len() <= width {
            let max = self.rounds.iter().map(|r| r.bits).max().unwrap_or(0).max(1);
            for (i, r) in self.rounds.iter().enumerate() {
                let bar = (r.bits * width as u64 / max) as usize;
                out.push_str(&format!(
                    "round {i:>4} | {:<width$} | {:>6} bits, {:>4} msgs\n",
                    "#".repeat(bar),
                    r.bits,
                    r.messages,
                    width = width
                ));
            }
            return out;
        }
        let per = self.rounds.len().div_ceil(width);
        let groups: Vec<(usize, usize, u64, u64)> = self
            .rounds
            .chunks(per)
            .enumerate()
            .map(|(g, chunk)| {
                let start = g * per;
                let end = start + chunk.len() - 1;
                let bits: u64 = chunk.iter().map(|r| r.bits).sum();
                let msgs: u64 = chunk.iter().map(|r| r.messages).sum();
                (start, end, bits, msgs)
            })
            .collect();
        let max = groups.iter().map(|&(_, _, b, _)| b).max().unwrap_or(0).max(1);
        for (start, end, bits, msgs) in groups {
            let bar = (bits * width as u64 / max) as usize;
            out.push_str(&format!(
                "rounds {start:>5}-{end:<5} | {:<width$} | {bits:>8} bits, {msgs:>6} msgs\n",
                "#".repeat(bar),
                width = width
            ));
        }
        out
    }
}

/// How the engine executes each round's `on_round` calls.
///
/// All modes produce bit-identical results (statistics, traces, final node
/// states, and the first error of a failing run); the mode only chooses how
/// the work is scheduled onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Parallelize when the network is large enough to amortize the
    /// per-round thread fan-out ([`PARALLEL_NODE_THRESHOLD`] nodes) and the
    /// host has more than one core; otherwise run sequentially.
    #[default]
    Auto,
    /// Always run the single-threaded engine.
    Sequential,
    /// Always fan out across `threads` workers (clamped to at least 1).
    Parallel {
        /// Number of worker threads per round.
        threads: usize,
    },
}

/// Minimum node count at which [`EngineMode::Auto`] parallelizes.
///
/// Below this, a round's work is comparable to the cost of spawning the
/// scoped worker threads, so the sequential engine wins.
pub const PARALLEL_NODE_THRESHOLD: usize = 256;

/// A CONGEST network: a topology plus execution parameters.
///
/// # Examples
///
/// ```
/// use congest::generators::path;
/// use congest::runtime::Network;
///
/// let g = path(8);
/// let net = Network::new(&g);
/// assert!(net.cap_bits() >= 3); // at least ⌈log₂ n⌉
/// ```
#[derive(Debug, Clone)]
pub struct Network<'g> {
    graph: &'g Graph,
    cap_bits: u64,
    max_rounds: usize,
    engine: EngineMode,
    faults: Option<FaultPlan>,
}

/// Default bandwidth multiplier: each link carries up to
/// `DEFAULT_BANDWIDTH_FACTOR · ⌈log₂ n⌉` (qu)bits per round, the constant in
/// the model's `O(log n)` message size. A factor of 4 lets one message carry
/// a tag, a node id, a distance, and a value word without artificial
/// fragmentation.
pub const DEFAULT_BANDWIDTH_FACTOR: u64 = 4;

impl<'g> Network<'g> {
    /// A network over `graph` with the default bandwidth cap
    /// (`4⌈log₂ n⌉` bits) and a generous round limit.
    pub fn new(graph: &'g Graph) -> Self {
        let cap = DEFAULT_BANDWIDTH_FACTOR * bits_for(graph.n().saturating_sub(1) as u64);
        Network {
            graph,
            cap_bits: cap,
            max_rounds: 1_000_000,
            engine: EngineMode::Auto,
            faults: None,
        }
    }

    /// Override the per-edge per-round bandwidth cap.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn with_bandwidth(mut self, bits: u64) -> Self {
        assert!(bits > 0, "bandwidth cap must be positive");
        self.cap_bits = bits;
        self
    }

    /// Override the round limit after which a run is aborted.
    pub fn with_round_limit(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Select how rounds are executed (default: [`EngineMode::Auto`]).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// The configured execution mode.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Attach a deterministic fault plan; subsequent runs inject its drops,
    /// outages, degradations, and delays at delivery time. See
    /// [`faults`](crate::faults) for the semantics and the determinism
    /// contract.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The worker count a run over `n_nodes` nodes would use right now.
    fn effective_threads(&self, n_nodes: usize) -> usize {
        let raw = match self.engine {
            EngineMode::Sequential => 1,
            EngineMode::Parallel { threads } => threads,
            EngineMode::Auto => {
                if n_nodes >= PARALLEL_NODE_THRESHOLD {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    1
                }
            }
        };
        raw.clamp(1, n_nodes.max(1))
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The per-edge per-round bandwidth cap in (qu)bits.
    pub fn cap_bits(&self) -> u64 {
        self.cap_bits
    }

    /// Execute `nodes[v]` as the protocol instance at node `v` until every
    /// node is done and no messages are in flight.
    ///
    /// Scheduling follows [`with_engine`](Self::with_engine); every mode
    /// yields bit-identical results. Protocols that cannot satisfy the
    /// `Send`/`Sync` bounds can always use
    /// [`run_sequential`](Self::run_sequential).
    ///
    /// # Errors
    ///
    /// Returns an error if a node sends to a non-neighbor, an edge exceeds
    /// the bandwidth cap, the round limit is hit, or `nodes.len() != n`.
    pub fn run<P>(&self, nodes: Vec<P>) -> Result<Run<P>, RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        match self.effective_threads(nodes.len()) {
            1 => self.run_impl(nodes, None, None, None),
            threads => self.run_parallel_impl(nodes, None, None, None, threads),
        }
    }

    /// Like [`run`](Self::run), but records structured telemetry into
    /// `tel`: per-round samples, per-edge cumulative load, and any
    /// marks/counters/histograms the protocol emits through
    /// [`Ctx::mark`]/[`Ctx::count`]/[`Ctx::observe`]. The run is wrapped
    /// in no span — callers typically bracket it with
    /// [`Collector::enter`]/[`Collector::exit`]; the collector's cursor
    /// advances by the run's measured rounds.
    ///
    /// Recording is deterministic: the same run produces byte-identical
    /// collector exports under every [`EngineMode`] (see the
    /// [`telemetry`](crate::telemetry) module docs for the contract).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_telemetry<P>(&self, nodes: Vec<P>, tel: &mut Collector) -> Result<Run<P>, RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        match self.effective_threads(nodes.len()) {
            1 => self.run_impl(nodes, None, None, Some(tel)),
            threads => self.run_parallel_impl(nodes, None, None, Some(tel), threads),
        }
    }

    /// Like [`run`](Self::run), but also records a per-round
    /// [`Trace`] — message/bit counts and the busiest edge of every round —
    /// for congestion analysis and debugging.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_traced<P>(&self, nodes: Vec<P>) -> Result<(Run<P>, Trace), RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        let mut trace = Trace::default();
        let run = match self.effective_threads(nodes.len()) {
            1 => self.run_impl(nodes, Some(&mut trace), None, None)?,
            threads => self.run_parallel_impl(nodes, Some(&mut trace), None, None, threads)?,
        };
        trace.rounds.truncate(run.stats.rounds);
        Ok((run, trace))
    }

    /// Like [`run_traced`](Self::run_traced), but in *audit mode*: model
    /// breaches (bandwidth-cap overflow, non-neighbor sends) are recorded
    /// as [`Violation`]s with round/edge provenance instead of aborting the
    /// run, and every breach is reported rather than just the first.
    ///
    /// Audited cap overflows still deliver their message; audited
    /// non-neighbor sends are discarded (there is no edge to carry them).
    /// This is the substrate of [`conformance`](crate::conformance).
    ///
    /// # Errors
    ///
    /// Only hard failures error here: wrong node count, round-limit
    /// exhaustion, and protocol-reported failures such as
    /// [`RetryBudgetExhausted`](RuntimeError::RetryBudgetExhausted).
    pub fn run_audited<P>(
        &self,
        nodes: Vec<P>,
    ) -> Result<(Run<P>, Trace, Vec<Violation>), RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        let mut trace = Trace::default();
        let mut violations = Vec::new();
        let run = match self.effective_threads(nodes.len()) {
            1 => self.run_impl(nodes, Some(&mut trace), Some(&mut violations), None)?,
            threads => {
                self.run_parallel_impl(
                    nodes,
                    Some(&mut trace),
                    Some(&mut violations),
                    None,
                    threads,
                )?
            }
        };
        trace.rounds.truncate(run.stats.rounds);
        Ok((run, trace, violations))
    }

    /// [`run`](Self::run) on the single-threaded engine, regardless of the
    /// configured [`EngineMode`]. This is the reference implementation the
    /// parallel engine is checked against, and the only entry point for
    /// protocols whose state is not `Send`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_sequential<P: NodeProtocol>(&self, nodes: Vec<P>) -> Result<Run<P>, RuntimeError> {
        self.run_impl(nodes, None, None, None)
    }

    /// [`run_telemetry`](Self::run_telemetry) on the single-threaded
    /// engine — the only telemetry entry point for protocols whose state
    /// is not `Send`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_sequential_telemetry<P: NodeProtocol>(
        &self,
        nodes: Vec<P>,
        tel: &mut Collector,
    ) -> Result<Run<P>, RuntimeError> {
        self.run_impl(nodes, None, None, Some(tel))
    }

    /// [`run_traced`](Self::run_traced) on the single-threaded engine.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_sequential_traced<P: NodeProtocol>(
        &self,
        nodes: Vec<P>,
    ) -> Result<(Run<P>, Trace), RuntimeError> {
        let mut trace = Trace::default();
        let run = self.run_impl(nodes, Some(&mut trace), None, None)?;
        trace.rounds.truncate(run.stats.rounds);
        Ok((run, trace))
    }

    /// Validate and deliver one sender's outbox, updating run statistics
    /// and the round accumulator.
    ///
    /// Per-edge load is accumulated in `router`'s rank-indexed slot array —
    /// one `O(log deg)` rank lookup per message, no per-sender allocation —
    /// and only the touched slots are flushed and reset, so routing cost is
    /// proportional to traffic rather than to the sender's degree.
    #[inline]
    #[allow(clippy::too_many_arguments)] // internal hot path; grouping into a struct buys nothing
    fn route_sender<M: MessageSize>(
        &self,
        from: NodeId,
        round: usize,
        outbox: &mut Vec<(NodeId, M)>,
        next_inboxes: &mut [Vec<(NodeId, M)>],
        wheel: &mut DelayWheel<M>,
        router: &mut Router,
        (stats, acc): (&mut RunStats, &mut RoundAccum),
        mut audit: Option<&mut Vec<Violation>>,
        edges: Option<&mut Vec<(NodeId, NodeId, u64)>>,
    ) -> Result<(), RuntimeError> {
        for (idx, (to, msg)) in outbox.drain(..).enumerate() {
            let Some(rank) = self.graph.neighbor_rank(from, to) else {
                match audit.as_deref_mut() {
                    Some(v) => {
                        v.push(Violation::NonNeighborSend { round, from, to });
                        continue; // no edge exists to carry the message
                    }
                    None => return Err(RuntimeError::NotANeighbor { round, from, to }),
                }
            };
            let bits = msg.size_bits();
            if router.slots[rank] == 0 {
                router.touched.push(rank);
            }
            router.slots[rank] += bits;
            if router.slots[rank] > self.cap_bits {
                match audit.as_deref_mut() {
                    Some(v) => v.push(Violation::CapExceeded {
                        round,
                        from,
                        to,
                        bits: router.slots[rank],
                        cap: self.cap_bits,
                    }),
                    None => {
                        return Err(RuntimeError::BandwidthExceeded {
                            round,
                            from,
                            to,
                            bits: router.slots[rank],
                            cap: self.cap_bits,
                        })
                    }
                }
            }
            // Model validation passed (or was audited); now the fault plan
            // decides the message's fate. Dropped messages still loaded the
            // edge above — only delivery accounting skips them.
            let mut delay = 0usize;
            if let Some(plan) = &self.faults {
                // Outages and tail-drops beyond a degraded cap both lose
                // the message; otherwise the seeded hash decides.
                let verdict = if plan.link_is_down(round, from, to)
                    || plan.degraded_cap(from, to).is_some_and(|c| router.slots[rank] > c)
                {
                    Delivery::Drop
                } else {
                    plan.decide(round, from, to, idx)
                };
                match verdict {
                    Delivery::Drop => {
                        stats.dropped += 1;
                        acc.dropped += 1;
                        continue;
                    }
                    Delivery::Delay(d) => delay = d,
                    Delivery::Deliver => {}
                }
            }
            stats.messages += 1;
            stats.total_bits += bits;
            acc.messages += 1;
            acc.bits += bits;
            if delay == 0 {
                next_inboxes[to].push((from, msg));
            } else {
                wheel.schedule(delay, to, from, msg);
            }
        }
        router.flush(from, self.graph.neighbors(from), stats, acc, edges);
        Ok(())
    }

    fn run_impl<P: NodeProtocol>(
        &self,
        mut nodes: Vec<P>,
        mut trace: Option<&mut Trace>,
        mut audit: Option<&mut Vec<Violation>>,
        mut tel: Option<&mut Collector>,
    ) -> Result<Run<P>, RuntimeError> {
        let n = self.graph.n();
        if nodes.len() != n {
            return Err(RuntimeError::WrongNodeCount { expected: n, got: nodes.len() });
        }
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut stats = RunStats::default();
        let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
        let mut router = Router::new(self.graph.max_degree());
        let mut wheel = DelayWheel::new();
        let mut last_active_round = 0usize;
        let mut shard = match tel.as_deref_mut() {
            Some(col) => {
                col.begin_engine_run();
                Some(Shard::default())
            }
            None => None,
        };

        for round in 0..self.max_rounds {
            let mut any_sent = false;
            let mut acc = RoundAccum::default();
            for v in 0..n {
                outbox.clear();
                {
                    let mut ctx = Ctx {
                        me: v,
                        round,
                        n,
                        cap_bits: self.cap_bits,
                        neighbors: self.graph.neighbors(v),
                        out: &mut outbox,
                        tel: shard.as_mut(),
                    };
                    nodes[v].on_round(&mut ctx, &inboxes[v]);
                }
                if outbox.is_empty() {
                    continue;
                }
                any_sent = true;
                self.route_sender(
                    v,
                    round,
                    &mut outbox,
                    &mut next_inboxes,
                    &mut wheel,
                    &mut router,
                    (&mut stats, &mut acc),
                    audit.as_deref_mut(),
                    shard.as_mut().map(|s| &mut s.edges),
                )?;
            }
            if let Some(e) = nodes.iter().find_map(|p| p.failure()) {
                return Err(e);
            }
            if any_sent {
                last_active_round = round + 1;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.rounds.push(RoundTrace {
                    messages: acc.messages,
                    bits: acc.bits,
                    busiest_edge: acc.busiest,
                    dropped: acc.dropped,
                });
            }
            if let (Some(col), Some(sh)) = (tel.as_deref_mut(), shard.as_mut()) {
                col.engine_round(
                    RoundTrace {
                        messages: acc.messages,
                        bits: acc.bits,
                        busiest_edge: acc.busiest,
                        dropped: acc.dropped,
                    },
                    sh,
                );
            }
            // Delayed messages that matured this round arrive with the next
            // round's inboxes, after every regular send; like a regular
            // send, a matured delivery keeps the run active.
            if wheel.pop_due(&mut next_inboxes) {
                last_active_round = round + 1;
            }
            let in_flight = next_inboxes.iter().any(|b| !b.is_empty()) || !wheel.is_empty();
            if !in_flight && nodes.iter().all(|p| p.is_done()) {
                stats.rounds = last_active_round;
                if let Some(col) = tel {
                    col.finish_engine_run(&stats);
                }
                return Ok(Run { nodes, stats });
            }
            for v in 0..n {
                inboxes[v].clear();
                std::mem::swap(&mut inboxes[v], &mut next_inboxes[v]);
            }
        }
        Err(RuntimeError::RoundLimitExceeded { limit: self.max_rounds })
    }

    /// Run one round's `on_round` calls for a contiguous chunk of nodes
    /// starting at id `base`, staging validated sends and statistics in
    /// `lane`. Stops at the chunk's first error, exactly where the
    /// sequential engine would.
    #[allow(clippy::too_many_arguments)] // internal hot path; grouping into a struct buys nothing
    fn round_for_chunk<P: NodeProtocol>(
        &self,
        round: usize,
        base: NodeId,
        chunk: &mut [P],
        inboxes: &[Vec<(NodeId, P::Msg)>],
        lane: &mut Lane<P::Msg>,
        audit: bool,
        telemetry: bool,
    ) {
        let n = self.graph.n();
        lane.result = LaneResult::default();
        for (i, node) in chunk.iter_mut().enumerate() {
            let v = base + i;
            lane.outbox.clear();
            {
                let mut ctx = Ctx {
                    me: v,
                    round,
                    n,
                    cap_bits: self.cap_bits,
                    neighbors: self.graph.neighbors(v),
                    out: &mut lane.outbox,
                    tel: if telemetry { Some(&mut lane.shard) } else { None },
                };
                node.on_round(&mut ctx, &inboxes[v]);
            }
            if lane.outbox.is_empty() {
                continue;
            }
            lane.result.any_sent = true;
            for (idx, (to, msg)) in lane.outbox.drain(..).enumerate() {
                let Some(rank) = self.graph.neighbor_rank(v, to) else {
                    if audit {
                        lane.result.violations.push(Violation::NonNeighborSend {
                            round,
                            from: v,
                            to,
                        });
                        continue;
                    }
                    lane.result.error = Some(RuntimeError::NotANeighbor { round, from: v, to });
                    return;
                };
                let bits = msg.size_bits();
                if lane.router.slots[rank] == 0 {
                    lane.router.touched.push(rank);
                }
                lane.router.slots[rank] += bits;
                if lane.router.slots[rank] > self.cap_bits {
                    if audit {
                        lane.result.violations.push(Violation::CapExceeded {
                            round,
                            from: v,
                            to,
                            bits: lane.router.slots[rank],
                            cap: self.cap_bits,
                        });
                    } else {
                        lane.result.error = Some(RuntimeError::BandwidthExceeded {
                            round,
                            from: v,
                            to,
                            bits: lane.router.slots[rank],
                            cap: self.cap_bits,
                        });
                        return;
                    }
                }
                let mut delay = 0u32;
                if let Some(plan) = &self.faults {
                    let verdict = if plan.link_is_down(round, v, to)
                        || plan
                            .degraded_cap(v, to)
                            .is_some_and(|c| lane.router.slots[rank] > c)
                    {
                        Delivery::Drop
                    } else {
                        plan.decide(round, v, to, idx)
                    };
                    match verdict {
                        Delivery::Drop => {
                            lane.result.stats.dropped += 1;
                            lane.result.acc.dropped += 1;
                            continue;
                        }
                        Delivery::Delay(d) => delay = d as u32,
                        Delivery::Deliver => {}
                    }
                }
                lane.result.stats.messages += 1;
                lane.result.stats.total_bits += bits;
                lane.sends.push((to, v, delay, msg));
            }
            lane.router.flush(
                v,
                self.graph.neighbors(v),
                &mut lane.result.stats,
                &mut lane.result.acc,
                if telemetry { Some(&mut lane.shard.edges) } else { None },
            );
        }
    }

    /// The multi-threaded engine: each round fans the node loop out over
    /// `threads` scoped workers, one contiguous [`NodeId`] chunk per
    /// worker, then merges the staged per-lane results in chunk order.
    ///
    /// Merging in chunk (= node id) order reproduces the sequential
    /// engine's inbox ordering, statistics, busiest-edge choice, and first
    /// error exactly; see `DESIGN.md`, "Engine internals".
    fn run_parallel_impl<P>(
        &self,
        mut nodes: Vec<P>,
        mut trace: Option<&mut Trace>,
        mut audit: Option<&mut Vec<Violation>>,
        mut tel: Option<&mut Collector>,
        threads: usize,
    ) -> Result<Run<P>, RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        let n = self.graph.n();
        if nodes.len() != n {
            return Err(RuntimeError::WrongNodeCount { expected: n, got: nodes.len() });
        }
        let chunk_len = n.div_ceil(threads);
        let max_degree = self.graph.max_degree();
        let auditing = audit.is_some();
        let telemetering = tel.is_some();
        let mut lanes: Vec<Lane<P::Msg>> = (0..threads)
            .map(|_| Lane {
                outbox: Vec::new(),
                router: Router::new(max_degree),
                sends: Vec::new(),
                result: LaneResult::default(),
                shard: Shard::default(),
            })
            .collect();
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); n];
        let mut stats = RunStats::default();
        let mut wheel = DelayWheel::new();
        let mut last_active_round = 0usize;
        // Per-lane telemetry shards are merged into this buffer in chunk
        // (= node id) order each round, reproducing the sequential
        // engine's emission order exactly.
        let mut round_shard = Shard::default();
        if let Some(col) = tel.as_deref_mut() {
            col.begin_engine_run();
        }

        for round in 0..self.max_rounds {
            {
                let inboxes = &inboxes;
                std::thread::scope(|s| {
                    for (t, (chunk, lane)) in
                        nodes.chunks_mut(chunk_len).zip(lanes.iter_mut()).enumerate()
                    {
                        s.spawn(move || {
                            self.round_for_chunk(
                                round,
                                t * chunk_len,
                                chunk,
                                inboxes,
                                lane,
                                auditing,
                                telemetering,
                            );
                        });
                    }
                });
            }
            // The first error in lane order is the first error in node
            // order: chunks are contiguous and each lane stops at its own
            // first error.
            if let Some(e) = lanes.iter_mut().find_map(|l| l.result.error.take()) {
                return Err(e);
            }
            let mut any_sent = false;
            let mut acc = RoundAccum::default();
            for lane in &mut lanes {
                let r = &lane.result;
                stats.messages += r.stats.messages;
                stats.total_bits += r.stats.total_bits;
                stats.max_edge_bits = stats.max_edge_bits.max(r.stats.max_edge_bits);
                stats.dropped += r.stats.dropped;
                any_sent |= r.any_sent;
                // The lane's stats are exactly this round's deltas (the
                // lane result is reset at the top of each round).
                acc.messages += r.stats.messages;
                acc.bits += r.stats.total_bits;
                acc.dropped += r.stats.dropped;
                if let Some((f, t, b)) = r.acc.busiest {
                    if acc.busiest.is_none_or(|(_, _, bb)| b > bb) {
                        acc.busiest = Some((f, t, b));
                    }
                }
                if let Some(sink) = audit.as_deref_mut() {
                    sink.append(&mut lane.result.violations);
                }
                if telemetering {
                    round_shard.marks.append(&mut lane.shard.marks);
                    round_shard.counts.append(&mut lane.shard.counts);
                    round_shard.observations.append(&mut lane.shard.observations);
                    round_shard.edges.append(&mut lane.shard.edges);
                }
                for (to, from, delay, msg) in lane.sends.drain(..) {
                    if delay == 0 {
                        next_inboxes[to].push((from, msg));
                    } else {
                        wheel.schedule(delay as usize, to, from, msg);
                    }
                }
            }
            if let Some(e) = nodes.iter().find_map(|p| p.failure()) {
                return Err(e);
            }
            if any_sent {
                last_active_round = round + 1;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.rounds.push(RoundTrace {
                    messages: acc.messages,
                    bits: acc.bits,
                    busiest_edge: acc.busiest,
                    dropped: acc.dropped,
                });
            }
            if let Some(col) = tel.as_deref_mut() {
                col.engine_round(
                    RoundTrace {
                        messages: acc.messages,
                        bits: acc.bits,
                        busiest_edge: acc.busiest,
                        dropped: acc.dropped,
                    },
                    &mut round_shard,
                );
            }
            if wheel.pop_due(&mut next_inboxes) {
                last_active_round = round + 1;
            }
            let in_flight = next_inboxes.iter().any(|b| !b.is_empty()) || !wheel.is_empty();
            if !in_flight && nodes.iter().all(|p| p.is_done()) {
                stats.rounds = last_active_round;
                if let Some(col) = tel {
                    col.finish_engine_run(&stats);
                }
                return Ok(Run { nodes, stats });
            }
            for v in 0..n {
                inboxes[v].clear();
                std::mem::swap(&mut inboxes[v], &mut next_inboxes[v]);
            }
        }
        Err(RuntimeError::RoundLimitExceeded { limit: self.max_rounds })
    }
}

/// Rank-indexed per-edge load accounting for one sender at a time.
///
/// `slots[r]` is the bits queued this round on the edge to the sender's
/// rank-`r` neighbor; `touched` lists the dirty ranks so resetting costs
/// `O(edges used)`, not `O(degree)`. A zero-size message may push its rank
/// twice, which only makes the flush revisit a slot it already cleared.
#[derive(Debug)]
struct Router {
    slots: Vec<u64>,
    touched: Vec<usize>,
}

impl Router {
    fn new(max_degree: usize) -> Self {
        Router { slots: vec![0; max_degree], touched: Vec::new() }
    }

    /// Fold the touched per-edge loads of sender `from` into the run and
    /// round accumulators, and reset the slots for the next sender.
    #[inline]
    fn flush(
        &mut self,
        from: NodeId,
        neighbors: &[NodeId],
        stats: &mut RunStats,
        acc: &mut RoundAccum,
        mut edges: Option<&mut Vec<(NodeId, NodeId, u64)>>,
    ) {
        for &r in &self.touched {
            let load = self.slots[r];
            self.slots[r] = 0;
            stats.max_edge_bits = stats.max_edge_bits.max(load);
            if acc.busiest.is_none_or(|(_, _, b)| load > b) {
                acc.busiest = Some((from, neighbors[r], load));
            }
            // Telemetry-only per-edge load feed; `load == 0` slots (from a
            // zero-size message's double-push) are skipped like elsewhere.
            if load > 0 {
                if let Some(sink) = edges.as_deref_mut() {
                    sink.push((from, neighbors[r], load));
                }
            }
        }
        self.touched.clear();
    }
}

/// Per-round trace accumulator, filled inside the send loop so a traced
/// run measures each message exactly once.
#[derive(Debug, Default, Clone, Copy)]
struct RoundAccum {
    messages: u64,
    bits: u64,
    busiest: Option<(NodeId, NodeId, u64)>,
    dropped: u64,
}

/// One worker's round output in the parallel engine.
#[derive(Debug, Default)]
struct LaneResult {
    stats: RunStats,
    acc: RoundAccum,
    any_sent: bool,
    error: Option<RuntimeError>,
    /// Audit-mode findings, in this lane's node order; the coordinator
    /// concatenates lanes in chunk order, reproducing sequential order.
    violations: Vec<Violation>,
}

/// One worker's persistent buffers: reused round after round so the steady
/// state allocates nothing.
struct Lane<M> {
    outbox: Vec<(NodeId, M)>,
    router: Router,
    /// Validated `(to, from, delay, msg)` tuples in sender order, merged
    /// into the next round's inboxes (or the delay wheel) by the
    /// coordinating thread. `delay == 0` means normal next-round delivery.
    sends: Vec<(NodeId, NodeId, u32, M)>,
    result: LaneResult,
    /// Telemetry staged by this lane's chunk, drained by the coordinator
    /// in chunk order each round (empty on untelemetered runs).
    shard: Shard,
}

/// Future deliveries scheduled by a delaying fault plan.
///
/// Slot `d` holds the messages that mature `d` round boundaries from now:
/// at the end of each round the front slot is appended (in scheduling
/// order) to the next round's inboxes, after all regular sends. Scheduling
/// order is sender order within a round and round order across rounds, so
/// both engines produce the same arrival order.
#[derive(Debug)]
struct DelayWheel<M> {
    slots: VecDeque<Vec<(NodeId, NodeId, M)>>,
}

impl<M> DelayWheel<M> {
    fn new() -> Self {
        DelayWheel { slots: VecDeque::new() }
    }

    /// Schedule `msg` to arrive `delay` rounds later than normal delivery.
    fn schedule(&mut self, delay: usize, to: NodeId, from: NodeId, msg: M) {
        while self.slots.len() <= delay {
            self.slots.push_back(Vec::new());
        }
        self.slots[delay].push((to, from, msg));
    }

    /// Move the messages that mature at this round boundary into
    /// `next_inboxes`; returns whether anything was delivered.
    fn pop_due(&mut self, next_inboxes: &mut [Vec<(NodeId, M)>]) -> bool {
        match self.slots.pop_front() {
            Some(due) if !due.is_empty() => {
                for (to, from, msg) in due {
                    next_inboxes[to].push((from, msg));
                }
                true
            }
            _ => false,
        }
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Vec::is_empty)
    }
}

/// A named-phase ledger used by drivers that compose several protocol runs
/// (leader election, then BFS, then `b` query batches, …) into one
/// algorithm, as the paper's proofs do.
///
/// # Examples
///
/// ```
/// use congest::runtime::{RoundLedger, RunStats};
///
/// let mut ledger = RoundLedger::new();
/// ledger.record("bfs", RunStats { rounds: 7, ..Default::default() });
/// ledger.record("query-batch", RunStats { rounds: 12, ..Default::default() });
/// assert_eq!(ledger.total_rounds(), 19);
/// assert_eq!(ledger.phases().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundLedger {
    phases: Vec<(String, RunStats)>,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed phase.
    pub fn record(&mut self, name: &str, stats: RunStats) {
        self.phases.push((name.to_string(), stats));
    }

    /// All recorded phases in order.
    pub fn phases(&self) -> &[(String, RunStats)] {
        &self.phases
    }

    /// Total rounds across phases — the algorithm's round complexity.
    pub fn total_rounds(&self) -> usize {
        self.phases.iter().map(|(_, s)| s.rounds).sum()
    }

    /// Total rounds spent in phases whose name starts with `prefix`.
    pub fn rounds_for(&self, prefix: &str) -> usize {
        self.phases
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, s)| s.rounds)
            .sum()
    }

    /// Sum of all message counts.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|(_, s)| s.messages).sum()
    }

    /// Sum of all delivered (qu)bits.
    pub fn total_bits(&self) -> u64 {
        self.phases.iter().map(|(_, s)| s.total_bits).sum()
    }

    /// Fold another ledger's phases into this one, prefixing their names.
    pub fn absorb(&mut self, prefix: &str, other: RoundLedger) {
        for (name, stats) in other.phases {
            self.phases.push((format!("{prefix}/{name}"), stats));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path, star};

    /// A flood protocol: node 0 emits a token; everyone forwards it once.
    #[derive(Debug)]
    struct Flood {
        has_token: bool,
        forwarded: bool,
    }

    #[derive(Clone, Debug)]
    struct Token;

    impl MessageSize for Token {
        fn size_bits(&self) -> u64 {
            1
        }
    }

    impl NodeProtocol for Flood {
        type Msg = Token;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Token>, inbox: &[(NodeId, Token)]) {
            if !inbox.is_empty() {
                self.has_token = true;
            }
            if self.has_token && !self.forwarded {
                ctx.broadcast(Token);
                self.forwarded = true;
            }
        }
        fn is_done(&self) -> bool {
            self.forwarded
        }
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n).map(|v| Flood { has_token: v == 0, forwarded: false }).collect()
    }

    #[test]
    fn flood_takes_diameter_rounds() {
        let g = path(10);
        let run = Network::new(&g).run(flood_nodes(10)).unwrap();
        assert!(run.nodes.iter().all(|f| f.has_token));
        // Node 0 sends in round 0; node 9 receives in round 9's inbox and
        // forwards in round 9. Last message in flight was sent in round 9.
        assert_eq!(run.stats.rounds, 10);
    }

    #[test]
    fn flood_on_star_takes_two_rounds() {
        let g = star(12);
        let run = Network::new(&g).run(flood_nodes(12)).unwrap();
        assert!(run.nodes.iter().all(|f| f.has_token));
        assert_eq!(run.stats.rounds, 2);
    }

    #[test]
    fn message_and_bit_counts() {
        let g = path(3);
        let run = Network::new(&g).run(flood_nodes(3)).unwrap();
        // 0 -> 1 ; 1 -> {0, 2} ; 2 -> 1 : four messages of one bit.
        assert_eq!(run.stats.messages, 4);
        assert_eq!(run.stats.total_bits, 4);
        assert_eq!(run.stats.max_edge_bits, 1);
    }

    /// Protocol that tries to push too many bits across an edge.
    #[derive(Debug)]
    struct Hog {
        sent: bool,
    }

    #[derive(Clone, Debug)]
    struct Big(u64);

    impl MessageSize for Big {
        fn size_bits(&self) -> u64 {
            self.0
        }
    }

    impl NodeProtocol for Hog {
        type Msg = Big;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Big>, _inbox: &[(NodeId, Big)]) {
            if ctx.me() == 0 && !self.sent {
                let cap = ctx.cap_bits();
                ctx.send(1, Big(cap + 1));
                self.sent = true;
            } else {
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn bandwidth_cap_enforced() {
        let g = path(2);
        let err = Network::new(&g)
            .run(vec![Hog { sent: false }, Hog { sent: false }])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BandwidthExceeded { .. }));
    }

    #[test]
    fn split_messages_also_capped() {
        // Two messages whose sum exceeds the cap must also be rejected.
        #[derive(Debug)]
        struct TwoSends {
            sent: bool,
        }
        impl NodeProtocol for TwoSends {
            type Msg = Big;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Big>, _inbox: &[(NodeId, Big)]) {
                if ctx.me() == 0 && !self.sent {
                    let cap = ctx.cap_bits();
                    ctx.send(1, Big(cap));
                    ctx.send(1, Big(1));
                }
                self.sent = true;
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        let g = path(2);
        let err = Network::new(&g)
            .run(vec![TwoSends { sent: false }, TwoSends { sent: false }])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BandwidthExceeded { .. }));
    }

    #[test]
    fn non_neighbor_send_rejected() {
        #[derive(Debug)]
        struct Bad {
            sent: bool,
        }
        impl NodeProtocol for Bad {
            type Msg = Token;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Token>, _inbox: &[(NodeId, Token)]) {
                if ctx.me() == 0 && !self.sent {
                    ctx.send(2, Token); // 0 and 2 are not adjacent on a path
                }
                self.sent = true;
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        let g = path(3);
        let err = Network::new(&g)
            .run((0..3).map(|_| Bad { sent: false }).collect())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NotANeighbor { from: 0, to: 2, .. }));
    }

    #[test]
    fn round_limit_enforced() {
        /// Never terminates: keeps bouncing the token.
        #[derive(Debug)]
        struct Forever;
        impl NodeProtocol for Forever {
            type Msg = Token;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Token>, _inbox: &[(NodeId, Token)]) {
                ctx.broadcast(Token);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = path(2);
        let err = Network::new(&g)
            .with_round_limit(10)
            .run(vec![Forever, Forever])
            .unwrap_err();
        assert_eq!(err, RuntimeError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn wrong_node_count_rejected() {
        let g = path(3);
        let err = Network::new(&g).run(flood_nodes(2)).unwrap_err();
        assert_eq!(err, RuntimeError::WrongNodeCount { expected: 3, got: 2 });
    }

    #[test]
    fn silent_protocol_uses_zero_rounds() {
        #[derive(Debug)]
        struct Quiet;
        impl NodeProtocol for Quiet {
            type Msg = Token;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, Token>, _inbox: &[(NodeId, Token)]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = path(4);
        let run = Network::new(&g).run(vec![Quiet, Quiet, Quiet, Quiet]).unwrap();
        assert_eq!(run.stats.rounds, 0);
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let g = path(6);
        let net = Network::new(&g);
        let plain = net.run(flood_nodes(6)).unwrap();
        let (traced, trace) = net.run_traced(flood_nodes(6)).unwrap();
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(trace.rounds.len(), traced.stats.rounds);
        assert_eq!(trace.total_bits(), traced.stats.total_bits);
        let (peak_round, peak) = trace.peak_round().unwrap();
        assert!(peak.bits >= 1 && peak_round < trace.rounds.len());
        assert!(trace.render(10).contains("round"));
    }

    #[test]
    fn trace_busiest_edge_within_cap() {
        let g = star(8);
        let net = Network::new(&g);
        let (_, trace) = net.run_traced(flood_nodes(8)).unwrap();
        for r in &trace.rounds {
            if let Some((_, _, bits)) = r.busiest_edge {
                assert!(bits <= net.cap_bits());
            }
        }
    }

    #[test]
    fn trace_render_output_is_bounded() {
        // E6-sized traces (~18k rounds) must render in at most `width`
        // lines, not one line per round.
        let mut trace = Trace::default();
        for i in 0..18_000u64 {
            trace.rounds.push(RoundTrace {
                messages: 1 + i % 7,
                bits: 8 + i % 129,
                busiest_edge: None,
                dropped: 0,
            });
        }
        let rendered = trace.render(40);
        assert!(rendered.lines().count() <= 40, "{} lines", rendered.lines().count());
        assert!(rendered.contains("rounds "));
        // The grouped lines still account for every bit and message.
        let bits_sum: u64 = rendered
            .lines()
            .map(|l| {
                let tail = l.split('|').nth(2).unwrap();
                tail.split_whitespace().next().unwrap().parse::<u64>().unwrap()
            })
            .sum();
        assert_eq!(bits_sum, trace.total_bits());
        // Small traces keep the exact per-round form.
        let mut small = Trace::default();
        for _ in 0..5 {
            small.rounds.push(RoundTrace { messages: 1, bits: 4, ..Default::default() });
        }
        let rendered = small.render(40);
        assert_eq!(rendered.lines().count(), 5);
        assert!(rendered.contains("round    0 |"));
    }

    #[test]
    fn peak_round_ties_break_to_first() {
        let mut trace = Trace::default();
        for bits in [3u64, 9, 1, 9, 2] {
            trace.rounds.push(RoundTrace { messages: 1, bits, ..Default::default() });
        }
        let (idx, peak) = trace.peak_round().unwrap();
        assert_eq!(idx, 1, "tie between rounds 1 and 3 must pin to the first");
        assert_eq!(peak.bits, 9);
        // All-quiet traces report no peak.
        let quiet = Trace { rounds: vec![RoundTrace::default(); 4] };
        assert!(quiet.peak_round().is_none());
    }

    #[test]
    fn ledger_accumulates() {
        let mut ledger = RoundLedger::new();
        ledger.record(
            "a",
            RunStats { rounds: 3, messages: 5, total_bits: 50, max_edge_bits: 10, dropped: 0 },
        );
        ledger.record(
            "a2",
            RunStats { rounds: 4, messages: 1, total_bits: 8, max_edge_bits: 8, dropped: 0 },
        );
        ledger.record("b", RunStats { rounds: 2, ..Default::default() });
        assert_eq!(ledger.total_rounds(), 9);
        assert_eq!(ledger.rounds_for("a"), 7);
        assert_eq!(ledger.total_messages(), 6);
        assert_eq!(ledger.total_bits(), 58);
        let mut outer = RoundLedger::new();
        outer.absorb("phase1", ledger);
        assert_eq!(outer.total_rounds(), 9);
        assert!(outer.phases()[0].0.starts_with("phase1/"));
    }
}
