//! The synchronous round engine.
//!
//! The (Quantum) CONGEST model proceeds in synchronous rounds: in each round
//! every node may send one message of `O(log n)` (qu)bits to each neighbor,
//! then receives its neighbors' messages and performs unlimited local
//! computation. The engine executes a per-node state machine
//! ([`NodeProtocol`]) round by round, enforces the per-edge bandwidth cap,
//! and counts rounds — the measured quantity in every experiment.
//!
//! Determinism: the engine itself is deterministic; protocols that need
//! randomness own a seeded RNG, so a whole run is reproducible from its
//! seeds. The parallel engine ([`EngineMode`]) preserves this bit for bit:
//! nodes are partitioned into contiguous [`NodeId`] chunks, each worker
//! processes its chunk in id order, and the per-chunk results (outgoing
//! messages, statistics, first error) are merged back in chunk order — so
//! every observable output equals the sequential engine's. See
//! `DESIGN.md`, "Engine internals".

use crate::conformance::Violation;
use crate::faults::{Delivery, FaultPlan};
use crate::graph::{bits_for, Graph, NodeId};
use crate::telemetry::{Collector, Shard};
use std::collections::VecDeque;
use std::fmt;

/// Size accounting for protocol messages.
///
/// Every message declares its size in (qu)bits; the engine sums sizes per
/// directed edge per round and rejects the run if any edge exceeds the cap.
/// Quantum payloads (e.g. the register chunks of Lemma 7) report their size
/// in qubits; the model treats classical bits and qubits identically for
/// bandwidth purposes.
pub trait MessageSize {
    /// The number of (qu)bits this message occupies on a link.
    fn size_bits(&self) -> u64;
}

/// A per-node protocol state machine.
///
/// One value of the implementing type exists per node. The engine calls
/// [`on_round`](Self::on_round) for every node in every round (round 0
/// delivers an empty inbox), collecting outgoing messages through
/// [`Ctx`].
pub trait NodeProtocol {
    /// Message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// One synchronous round: react to `inbox` (messages sent to this node
    /// in the previous round) and queue outgoing messages on `ctx`.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(NodeId, Self::Msg)]);

    /// Whether this node has finished its part of the protocol. The run
    /// ends when every node is done and no messages are in flight.
    fn is_done(&self) -> bool;

    /// An error this node wants to abort the run with.
    ///
    /// The engine polls every node after each round (in node-id order, so
    /// the first failing node determines the error deterministically) and
    /// aborts the run with the reported error. The default never fails;
    /// wrappers like [`Reliable`](crate::faults::Reliable) use this to
    /// surface exhausted retry budgets as clean [`RuntimeError`]s instead
    /// of hanging until the round limit.
    fn failure(&self) -> Option<RuntimeError> {
        None
    }
}

/// Per-round context handed to a node: identity, topology view, and the
/// outbox.
///
/// A node only sees its own id, its neighbor list, and the global constants
/// `n` and the bandwidth cap — exactly the initial knowledge the CONGEST
/// model grants.
pub struct Ctx<'a, M> {
    me: NodeId,
    // (fields documented on the accessors)
    round: usize,
    n: usize,
    cap_bits: u64,
    neighbors: &'a [NodeId],
    out: &'a mut Vec<(NodeId, M)>,
    /// Telemetry staging buffer; `None` on untelemetered runs, so the
    /// instrumentation methods compile to a null check.
    tel: Option<&'a mut Shard>,
}

impl<M> fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx").field("me", &self.me).field("round", &self.round).finish()
    }
}

impl<'a, M: MessageSize> Ctx<'a, M> {
    /// Crate-internal constructor for wrappers (e.g.
    /// [`Reliable`](crate::faults::Reliable)) that run an inner protocol's
    /// round against their own outbox buffer.
    pub(crate) fn internal(
        me: NodeId,
        round: usize,
        n: usize,
        cap_bits: u64,
        neighbors: &'a [NodeId],
        out: &'a mut Vec<(NodeId, M)>,
        tel: Option<&'a mut Shard>,
    ) -> Self {
        Ctx { me, round, n, cap_bits, neighbors, out, tel }
    }

    /// Reborrow this context's telemetry buffer so a wrapper (e.g.
    /// [`Reliable`](crate::faults::Reliable)) can hand it to an inner
    /// protocol's context.
    pub(crate) fn tel_shard(&mut self) -> Option<&mut Shard> {
        self.tel.as_deref_mut()
    }

    /// This node's identifier.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Total number of nodes (global knowledge in the model).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-edge per-round bandwidth cap in (qu)bits.
    #[inline]
    pub fn cap_bits(&self) -> u64 {
        self.cap_bits
    }

    /// The sorted neighbor list of this node.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.neighbors
    }

    /// Queue `msg` for delivery to neighbor `to` at the start of the next
    /// round.
    ///
    /// The engine validates that `to` is a neighbor and that the edge's
    /// bandwidth cap is respected; violations abort the run with an error
    /// rather than silently producing an unfaithful round count.
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Queue `msg` to every neighbor.
    ///
    /// The final neighbor receives `msg` itself; only the first
    /// `degree - 1` deliveries pay for a clone.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        if let Some((&last, rest)) = self.neighbors.split_last() {
            self.out.reserve(self.neighbors.len());
            for &w in rest {
                self.out.push((w, msg.clone()));
            }
            self.out.push((last, msg));
        }
    }

    /// Queue a batch of addressed messages in one call.
    ///
    /// Equivalent to calling [`send`](Self::send) for each pair, in order,
    /// but lets the outbox grow in a single reservation.
    pub fn send_many<I>(&mut self, msgs: I)
    where
        I: IntoIterator<Item = (NodeId, M)>,
    {
        self.out.extend(msgs);
    }

    /// Whether this run records telemetry (i.e. it was started with
    /// [`Exec::telemetry`] attached). Protocols can use this to skip
    /// building labels for [`mark`](Self::mark) on untelemetered runs;
    /// [`count`](Self::count) and [`observe`](Self::observe) are cheap
    /// enough to call unconditionally.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        self.tel.is_some()
    }

    /// Emit an instant telemetry event at this node and round (e.g.
    /// `"became-leader"`). No-op unless the run records telemetry.
    #[inline]
    pub fn mark(&mut self, label: &str) {
        if let Some(t) = self.tel.as_deref_mut() {
            t.marks.push((self.me, label.to_string()));
        }
    }

    /// Add `v` to a named telemetry counter (e.g.
    /// `("reliable.retries", 1)`). No-op unless the run records telemetry;
    /// the static name means the disabled path allocates nothing.
    #[inline]
    pub fn count(&mut self, name: &'static str, v: u64) {
        if let Some(t) = self.tel.as_deref_mut() {
            t.counts.push((name, v));
        }
    }

    /// Record `v` in a named telemetry histogram (e.g. a backoff wait in
    /// rounds). No-op unless the run records telemetry.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        if let Some(t) = self.tel.as_deref_mut() {
            t.observations.push((name, v));
        }
    }
}

/// Why a run was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum RuntimeError {
    /// A node addressed a message to a non-neighbor.
    NotANeighbor { round: usize, from: NodeId, to: NodeId },
    /// The traffic on a directed edge exceeded the cap in some round.
    BandwidthExceeded { round: usize, from: NodeId, to: NodeId, bits: u64, cap: u64 },
    /// The protocol did not terminate within the round limit.
    RoundLimitExceeded { limit: usize },
    /// The number of protocol instances does not match the node count.
    WrongNodeCount { expected: usize, got: usize },
    /// A [`Reliable`](crate::faults::Reliable) link exhausted its
    /// retransmission budget without receiving an acknowledgement.
    RetryBudgetExhausted { round: usize, from: NodeId, to: NodeId, attempts: u32 },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NotANeighbor { round, from, to } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            RuntimeError::BandwidthExceeded { round, from, to, bits, cap } => {
                write!(f, "round {round}: edge {from}->{to} carried {bits} bits, cap is {cap}")
            }
            RuntimeError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
            RuntimeError::WrongNodeCount { expected, got } => {
                write!(f, "expected {expected} protocol instances, got {got}")
            }
            RuntimeError::RetryBudgetExhausted { round, from, to, attempts } => write!(
                f,
                "round {round}: link {from}->{to} gave up after {attempts} unacknowledged attempts"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Aggregate statistics of one protocol run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of communication rounds used (index of the last round in
    /// which any message was in flight, plus one).
    pub rounds: usize,
    /// Total number of messages delivered (immediately or after an
    /// injected delay; dropped messages are not counted here).
    pub messages: u64,
    /// Total (qu)bits delivered.
    pub total_bits: u64,
    /// The largest per-edge per-round load observed, in (qu)bits. Counts
    /// *offered* traffic — messages a fault plan later dropped still loaded
    /// the edge when they were sent.
    pub max_edge_bits: u64,
    /// Messages lost to fault injection (drops, link-down intervals, and
    /// degraded-cap overflow). Always 0 without a fault plan.
    pub dropped: u64,
}

impl RunStats {
    /// Merge stats of a subsequent phase into this one (rounds add up).
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_edge_bits = self.max_edge_bits.max(other.max_edge_bits);
        self.dropped += other.dropped;
    }
}

/// The result of a completed run: the final node states plus statistics.
#[derive(Debug)]
pub struct Run<P> {
    /// Final per-node protocol states, indexed by [`NodeId`].
    pub nodes: Vec<P>,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Per-round record of a traced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// Messages sent this round that will be delivered (possibly late,
    /// under a delaying fault plan).
    pub messages: u64,
    /// Total (qu)bits in those messages.
    pub bits: u64,
    /// The most loaded directed edge `(from, to, bits)` this round, by
    /// offered traffic.
    pub busiest_edge: Option<(NodeId, NodeId, u64)>,
    /// Messages sent this round that fault injection discarded.
    pub dropped: u64,
}

/// A per-round congestion trace produced by [`Exec::traced`].
///
/// # Examples
///
/// ```
/// use congest::generators::path;
/// use congest::runtime::Network;
/// use congest::bfs::BfsTreeProtocol;
///
/// let g = path(6);
/// let net = Network::new(&g);
/// let trace = net.exec(BfsTreeProtocol::instances(6, 0)).traced().run()?.trace;
/// assert!(!trace.rounds.is_empty());
/// println!("{}", trace.render(20));
/// # Ok::<(), congest::runtime::RuntimeError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One entry per executed round.
    pub rounds: Vec<RoundTrace>,
}

impl Trace {
    /// The round with the highest bit volume, if any traffic flowed.
    ///
    /// Ties are resolved to the **first** such round. This tie-break is
    /// part of the API contract: peak rounds are compared when diffing
    /// traces across engines and replays, so the choice must not depend
    /// on iteration internals.
    pub fn peak_round(&self) -> Option<(usize, &RoundTrace)> {
        let mut best: Option<(usize, &RoundTrace)> = None;
        for (i, r) in self.rounds.iter().enumerate() {
            if best.is_none_or(|(_, b): (usize, &RoundTrace)| r.bits > b.bits) {
                best = Some((i, r));
            }
        }
        best.filter(|(_, r)| r.bits > 0)
    }

    /// Total delivered bits.
    pub fn total_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.bits).sum()
    }

    /// Render an ASCII bit-volume histogram, `width` columns.
    ///
    /// Output is bounded: traces with at most `width` rounds get one
    /// exact line per round; longer traces are bucketed into at most
    /// `width` contiguous round groups (each line sums its group's bits
    /// and messages), so an 18 000-round trace renders in `width` lines
    /// instead of 18 000.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        let mut out = String::new();
        if self.rounds.len() <= width {
            let max = self.rounds.iter().map(|r| r.bits).max().unwrap_or(0).max(1);
            for (i, r) in self.rounds.iter().enumerate() {
                let bar = (r.bits * width as u64 / max) as usize;
                out.push_str(&format!(
                    "round {i:>4} | {:<width$} | {:>6} bits, {:>4} msgs\n",
                    "#".repeat(bar),
                    r.bits,
                    r.messages,
                    width = width
                ));
            }
            return out;
        }
        let per = self.rounds.len().div_ceil(width);
        let groups: Vec<(usize, usize, u64, u64)> = self
            .rounds
            .chunks(per)
            .enumerate()
            .map(|(g, chunk)| {
                let start = g * per;
                let end = start + chunk.len() - 1;
                let bits: u64 = chunk.iter().map(|r| r.bits).sum();
                let msgs: u64 = chunk.iter().map(|r| r.messages).sum();
                (start, end, bits, msgs)
            })
            .collect();
        let max = groups.iter().map(|&(_, _, b, _)| b).max().unwrap_or(0).max(1);
        for (start, end, bits, msgs) in groups {
            let bar = (bits * width as u64 / max) as usize;
            out.push_str(&format!(
                "rounds {start:>5}-{end:<5} | {:<width$} | {bits:>8} bits, {msgs:>6} msgs\n",
                "#".repeat(bar),
                width = width
            ));
        }
        out
    }
}

/// How the engine executes each round's `on_round` calls.
///
/// All modes produce bit-identical results (statistics, traces, final node
/// states, and the first error of a failing run); the mode only chooses how
/// the work is scheduled onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Parallelize when the network is large enough to amortize the
    /// per-round thread fan-out ([`PARALLEL_NODE_THRESHOLD`] nodes) and the
    /// host has more than one core; otherwise run sequentially.
    #[default]
    Auto,
    /// Always run the single-threaded engine.
    Sequential,
    /// Always fan out across `threads` workers (clamped to at least 1).
    Parallel {
        /// Number of worker threads per round.
        threads: usize,
    },
}

/// Minimum node count at which [`EngineMode::Auto`] parallelizes.
///
/// Below this, a round's work is comparable to the cost of spawning the
/// scoped worker threads, so the sequential engine wins.
pub const PARALLEL_NODE_THRESHOLD: usize = 256;

/// A CONGEST network: a topology plus execution parameters.
///
/// # Examples
///
/// ```
/// use congest::generators::path;
/// use congest::runtime::Network;
///
/// let g = path(8);
/// let net = Network::new(&g);
/// assert!(net.cap_bits() >= 3); // at least ⌈log₂ n⌉
/// ```
#[derive(Debug, Clone)]
pub struct Network<'g> {
    graph: &'g Graph,
    cap_bits: u64,
    max_rounds: usize,
    engine: EngineMode,
    faults: Option<FaultPlan>,
}

/// Default bandwidth multiplier: each link carries up to
/// `DEFAULT_BANDWIDTH_FACTOR · ⌈log₂ n⌉` (qu)bits per round, the constant in
/// the model's `O(log n)` message size. A factor of 4 lets one message carry
/// a tag, a node id, a distance, and a value word without artificial
/// fragmentation.
pub const DEFAULT_BANDWIDTH_FACTOR: u64 = 4;

impl<'g> Network<'g> {
    /// A network over `graph` with the default bandwidth cap
    /// (`4⌈log₂ n⌉` bits) and a generous round limit.
    pub fn new(graph: &'g Graph) -> Self {
        let cap = DEFAULT_BANDWIDTH_FACTOR * bits_for(graph.n().saturating_sub(1) as u64);
        Network {
            graph,
            cap_bits: cap,
            max_rounds: 1_000_000,
            engine: EngineMode::Auto,
            faults: None,
        }
    }

    /// Override the per-edge per-round bandwidth cap.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn with_bandwidth(mut self, bits: u64) -> Self {
        assert!(bits > 0, "bandwidth cap must be positive");
        self.cap_bits = bits;
        self
    }

    /// Override the round limit after which a run is aborted.
    pub fn with_round_limit(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Select how rounds are executed (default: [`EngineMode::Auto`]).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// The configured execution mode.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Attach a deterministic fault plan; subsequent runs inject its drops,
    /// outages, degradations, and delays at delivery time. See
    /// [`faults`](crate::faults) for the semantics and the determinism
    /// contract.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The worker count a run over `n_nodes` nodes would use right now.
    fn effective_threads(&self, n_nodes: usize) -> usize {
        let raw = match self.engine {
            EngineMode::Sequential => 1,
            EngineMode::Parallel { threads } => threads,
            EngineMode::Auto => {
                if n_nodes >= PARALLEL_NODE_THRESHOLD {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    1
                }
            }
        };
        raw.clamp(1, n_nodes.max(1))
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The per-edge per-round bandwidth cap in (qu)bits.
    pub fn cap_bits(&self) -> u64 {
        self.cap_bits
    }

    /// Execute `nodes[v]` as the protocol instance at node `v` until every
    /// node is done and no messages are in flight.
    ///
    /// Scheduling follows [`with_engine`](Self::with_engine); every mode
    /// yields bit-identical results. Protocols that cannot satisfy the
    /// `Send`/`Sync` bounds can always use
    /// [`run_sequential`](Self::run_sequential). To record traces,
    /// violations, or telemetry alongside the run, use the
    /// [`exec`](Self::exec) builder.
    ///
    /// # Errors
    ///
    /// Returns an error if a node sends to a non-neighbor, an edge exceeds
    /// the bandwidth cap, the round limit is hit, or `nodes.len() != n`.
    pub fn run<P>(&self, nodes: Vec<P>) -> Result<Run<P>, RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        self.run_with(nodes, ())
    }

    /// Start building an observed run.
    ///
    /// `net.exec(nodes)` followed by any combination of
    /// [`traced`](Exec::traced), [`audited`](Exec::audited), and
    /// [`telemetry`](Exec::telemetry), finished with [`run`](Exec::run)
    /// (or [`run_sequential`](Exec::run_sequential) for protocols whose
    /// state is not `Send`), returns a typed [`RunOutput`] carrying
    /// exactly the artifacts that were requested.
    ///
    /// # Examples
    ///
    /// ```
    /// use congest::generators::path;
    /// use congest::runtime::Network;
    /// use congest::bfs::BfsTreeProtocol;
    ///
    /// let g = path(6);
    /// let net = Network::new(&g);
    /// let out = net.exec(BfsTreeProtocol::instances(6, 0)).traced().run()?;
    /// assert_eq!(out.trace.rounds.len(), out.stats.rounds);
    /// # Ok::<(), congest::runtime::RuntimeError>(())
    /// ```
    pub fn exec<P: NodeProtocol>(&self, nodes: Vec<P>) -> Exec<'_, 'g, P> {
        Exec { net: self, nodes, trace: (), audit: (), tel: () }
    }

    /// [`run`](Self::run) with a caller-supplied [`RunObserver`] pipeline.
    ///
    /// This is the generic substrate under [`exec`](Self::exec): the three
    /// built-in observers (`&mut Trace`, `&mut Vec<Violation>`,
    /// `&mut Collector`) and any custom observer compose with nested
    /// `(A, B)` tuples.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run), except that model breaches are reported
    /// through [`RunObserver::on_violation`] instead of aborting when
    /// `obs.audits()` is true.
    pub fn run_with<P, O>(&self, nodes: Vec<P>, obs: O) -> Result<Run<P>, RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
        O: RunObserver,
    {
        match self.effective_threads(nodes.len()) {
            1 => self.exec_loop(nodes, obs, 1, SeqDriver),
            threads => self.exec_loop(nodes, obs, threads, ParDriver),
        }
    }

    /// [`run`](Self::run) on the single-threaded engine, regardless of the
    /// configured [`EngineMode`]. This is the reference implementation the
    /// parallel engine is checked against, and the only entry point for
    /// protocols whose state is not `Send`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_sequential<P: NodeProtocol>(&self, nodes: Vec<P>) -> Result<Run<P>, RuntimeError> {
        self.run_sequential_with(nodes, ())
    }

    /// [`run_with`](Self::run_with) on the single-threaded engine — the
    /// observer entry point for protocols whose state is not `Send`.
    ///
    /// # Errors
    ///
    /// Same as [`run_with`](Self::run_with).
    pub fn run_sequential_with<P: NodeProtocol, O: RunObserver>(
        &self,
        nodes: Vec<P>,
        obs: O,
    ) -> Result<Run<P>, RuntimeError> {
        self.exec_loop(nodes, obs, 1, SeqDriver)
    }

    /// Like [`run`](Self::run), but records structured telemetry into
    /// `tel`. See [`Exec::telemetry`] for the semantics.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    #[deprecated(note = "use `net.exec(nodes).telemetry(tel).run()`")]
    pub fn run_telemetry<P>(
        &self,
        nodes: Vec<P>,
        tel: &mut Collector,
    ) -> Result<Run<P>, RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        let out = self.exec(nodes).telemetry(tel).run()?;
        Ok(Run { nodes: out.nodes, stats: out.stats })
    }

    /// Like [`run`](Self::run), but also records a per-round [`Trace`].
    /// See [`Exec::traced`].
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    #[deprecated(note = "use `net.exec(nodes).traced().run()`")]
    pub fn run_traced<P>(&self, nodes: Vec<P>) -> Result<(Run<P>, Trace), RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        let out = self.exec(nodes).traced().run()?;
        Ok((Run { nodes: out.nodes, stats: out.stats }, out.trace))
    }

    /// Traced run in *audit mode*: model breaches are recorded as
    /// [`Violation`]s instead of aborting. See [`Exec::audited`].
    ///
    /// # Errors
    ///
    /// Only hard failures error here: wrong node count, round-limit
    /// exhaustion, and protocol-reported failures such as
    /// [`RetryBudgetExhausted`](RuntimeError::RetryBudgetExhausted).
    #[deprecated(note = "use `net.exec(nodes).traced().audited().run()`")]
    pub fn run_audited<P>(
        &self,
        nodes: Vec<P>,
    ) -> Result<(Run<P>, Trace, Vec<Violation>), RuntimeError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync,
    {
        let out = self.exec(nodes).traced().audited().run()?;
        Ok((Run { nodes: out.nodes, stats: out.stats }, out.trace, out.violations))
    }

    /// Telemetry on the single-threaded engine. See [`Exec::telemetry`].
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    #[deprecated(note = "use `net.exec(nodes).telemetry(tel).run_sequential()`")]
    pub fn run_sequential_telemetry<P: NodeProtocol>(
        &self,
        nodes: Vec<P>,
        tel: &mut Collector,
    ) -> Result<Run<P>, RuntimeError> {
        let out = self.exec(nodes).telemetry(tel).run_sequential()?;
        Ok(Run { nodes: out.nodes, stats: out.stats })
    }

    /// Traced run on the single-threaded engine. See [`Exec::traced`].
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    #[deprecated(note = "use `net.exec(nodes).traced().run_sequential()`")]
    pub fn run_sequential_traced<P: NodeProtocol>(
        &self,
        nodes: Vec<P>,
    ) -> Result<(Run<P>, Trace), RuntimeError> {
        let out = self.exec(nodes).traced().run_sequential()?;
        Ok((Run { nodes: out.nodes, stats: out.stats }, out.trace))
    }

    /// Validate one sender's outbox against the model, apply fault
    /// verdicts, and hand each surviving message to `sink` — the single
    /// validation/fault/delivery path shared by both engines.
    ///
    /// Per-edge load is accumulated in `router`'s rank-indexed slot array —
    /// one `O(log deg)` rank lookup per message, no per-sender allocation —
    /// and only the touched slots are flushed and reset, so routing cost is
    /// proportional to traffic rather than to the sender's degree.
    ///
    /// Returns `false` when the sender's chunk must stop: a non-audited
    /// model breach was staged in `result.error`. In audit mode breaches
    /// become [`Violation`]s in `result.violations` instead and the outbox
    /// keeps draining (audited cap overflows still deliver; audited
    /// non-neighbor sends are discarded — there is no edge to carry them).
    #[inline]
    #[allow(clippy::too_many_arguments)] // internal hot path; grouping into a struct buys nothing
    fn route_outbox<M: MessageSize, S: SendSink<M>>(
        &self,
        from: NodeId,
        round: usize,
        outbox: &mut Vec<(NodeId, M)>,
        router: &mut Router,
        result: &mut LaneResult,
        edges: Option<&mut Vec<(NodeId, NodeId, u64)>>,
        sink: &mut S,
        auditing: bool,
    ) -> bool {
        for (idx, (to, msg)) in outbox.drain(..).enumerate() {
            let Some(rank) = self.graph.neighbor_rank(from, to) else {
                if auditing {
                    result.violations.push(Violation::NonNeighborSend { round, from, to });
                    continue; // no edge exists to carry the message
                }
                result.error = Some(RuntimeError::NotANeighbor { round, from, to });
                return false;
            };
            let bits = msg.size_bits();
            if router.slots[rank] == 0 {
                router.touched.push(rank);
            }
            router.slots[rank] += bits;
            if router.slots[rank] > self.cap_bits {
                if auditing {
                    result.violations.push(Violation::CapExceeded {
                        round,
                        from,
                        to,
                        bits: router.slots[rank],
                        cap: self.cap_bits,
                    });
                } else {
                    result.error = Some(RuntimeError::BandwidthExceeded {
                        round,
                        from,
                        to,
                        bits: router.slots[rank],
                        cap: self.cap_bits,
                    });
                    return false;
                }
            }
            // Model validation passed (or was audited); now the fault plan
            // decides the message's fate. Dropped messages still loaded the
            // edge above — only delivery accounting skips them.
            let mut delay = 0u32;
            if let Some(plan) = &self.faults {
                // Outages and tail-drops beyond a degraded cap both lose
                // the message; otherwise the seeded hash decides.
                let verdict = if plan.link_is_down(round, from, to)
                    || plan.degraded_cap(from, to).is_some_and(|c| router.slots[rank] > c)
                {
                    Delivery::Drop
                } else {
                    plan.decide(round, from, to, idx)
                };
                match verdict {
                    Delivery::Drop => {
                        result.stats.dropped += 1;
                        continue;
                    }
                    Delivery::Delay(d) => delay = d as u32,
                    Delivery::Deliver => {}
                }
            }
            result.stats.messages += 1;
            result.stats.total_bits += bits;
            sink.accept(to, from, delay, bits, msg);
        }
        router.flush(from, self.graph.neighbors(from), &mut result.stats, &mut result.acc, edges);
        true
    }

    /// Run one round's `on_round` calls for a contiguous chunk of nodes
    /// starting at id `base`, routing every sender's outbox through
    /// [`route_outbox`](Self::route_outbox) into `sink`. Stops at the
    /// chunk's first error, exactly where a fully sequential sweep would.
    #[allow(clippy::too_many_arguments)] // internal hot path; grouping into a struct buys nothing
    fn round_for_chunk<P: NodeProtocol, S: SendSink<P::Msg>>(
        &self,
        round: usize,
        base: NodeId,
        chunk: &mut [P],
        inboxes: &[Vec<(NodeId, P::Msg)>],
        lane: &mut LaneCore<P::Msg>,
        sink: &mut S,
        auditing: bool,
        telemetering: bool,
    ) {
        let n = self.graph.n();
        lane.result = LaneResult::default();
        for (i, node) in chunk.iter_mut().enumerate() {
            let v = base + i;
            lane.outbox.clear();
            {
                let mut ctx = Ctx {
                    me: v,
                    round,
                    n,
                    cap_bits: self.cap_bits,
                    neighbors: self.graph.neighbors(v),
                    out: &mut lane.outbox,
                    tel: if telemetering { Some(&mut lane.shard) } else { None },
                };
                node.on_round(&mut ctx, &inboxes[v]);
            }
            if lane.outbox.is_empty() {
                continue;
            }
            lane.result.any_sent = true;
            if !self.route_outbox(
                v,
                round,
                &mut lane.outbox,
                &mut lane.router,
                &mut lane.result,
                if telemetering { Some(&mut lane.shard.edges) } else { None },
                sink,
                auditing,
            ) {
                return;
            }
        }
    }

    /// The round loop — the only one in the crate; both engines execute
    /// this exact body. `driver` chooses how each round's `on_round` calls
    /// are scheduled (inline on one lane, or fanned out over scoped worker
    /// threads staging into per-lane buffers), [`ExecCore`] holds the
    /// engine-agnostic run state, and `obs` receives the [`RunObserver`]
    /// hooks at fixed points of the loop.
    ///
    /// Merging lanes in chunk (= node id) order reproduces a sequential
    /// sweep's inbox ordering, statistics, busiest-edge choice, and first
    /// error exactly; see `DESIGN.md`, "Engine internals".
    fn exec_loop<P, O, D>(
        &self,
        mut nodes: Vec<P>,
        mut obs: O,
        threads: usize,
        driver: D,
    ) -> Result<Run<P>, RuntimeError>
    where
        P: NodeProtocol,
        O: RunObserver,
        D: RoundDriver<P>,
    {
        let n = self.graph.n();
        if nodes.len() != n {
            return Err(RuntimeError::WrongNodeCount { expected: n, got: nodes.len() });
        }
        let mut core = ExecCore::new(n, self.graph.max_degree(), threads, &obs);
        for round in 0..self.max_rounds {
            obs.on_round_start(round);
            driver.drive(self, round, &mut nodes, &mut core, &mut obs);
            // The first error in lane order is the first error in node
            // order: chunks are contiguous and each lane stops at its own
            // first error.
            if let Some(e) = core.first_error() {
                return Err(e);
            }
            let (any_sent, round_trace) = core.merge_round(round, &mut obs);
            if let Some(e) = nodes.iter().find_map(|p| p.failure()) {
                return Err(e);
            }
            if any_sent {
                core.last_active_round = round + 1;
            }
            obs.on_round_end(round, round_trace, &mut core.round_shard);
            // Delayed messages that matured this round arrive with the next
            // round's inboxes, after every regular send; like a regular
            // send, a matured delivery keeps the run active.
            if core.wheel.pop_due(&mut core.next_inboxes) {
                core.last_active_round = round + 1;
            }
            if core.quiescent() && nodes.iter().all(|p| p.is_done()) {
                core.stats.rounds = core.last_active_round;
                obs.on_finish(&core.stats);
                return Ok(Run { nodes, stats: core.stats });
            }
            core.advance();
        }
        Err(RuntimeError::RoundLimitExceeded { limit: self.max_rounds })
    }
}

/// Hooks into the execution core, composable into a pipeline.
///
/// One observer pipeline is attached per run (via the [`Exec`] builder or
/// [`Network::run_with`]); the engine invokes the hooks at fixed points of
/// its single round loop, identically under every [`EngineMode`]:
///
/// * [`on_round_start`](Self::on_round_start) — before any `on_round` call
///   of the round;
/// * [`on_message`](Self::on_message) — once per message accepted for
///   delivery (immediate or delayed, not dropped), in sender order; only
///   invoked when [`observes_messages`](Self::observes_messages) is true;
/// * [`on_violation`](Self::on_violation) — once per model breach, in
///   sender order; only in audit mode ([`audits`](Self::audits));
/// * [`on_round_end`](Self::on_round_end) — after the round's messages
///   are routed, with the round's aggregate [`RoundTrace`] and the merged
///   telemetry staging [`Shard`];
/// * [`on_finish`](Self::on_finish) — once, with the final [`RunStats`],
///   when the run completes successfully (never on an error path).
///
/// Within a round, each hook's own call sequence is engine-invariant
/// (global node order); the interleaving *between* `on_message` and
/// `on_violation` calls of the same round is unspecified.
///
/// Every hook has a no-op default, `()` is the empty pipeline, and two
/// pipelines compose as an `(A, B)` tuple — so a disabled concern costs
/// one statically known untaken branch and `net.run(..)` monomorphizes to
/// the bare engine. The three built-in observers are `&mut Trace`,
/// `&mut Vec<Violation>` (audit), and `&mut Collector` (telemetry).
pub trait RunObserver {
    /// Whether model breaches should be recorded through
    /// [`on_violation`](Self::on_violation) instead of aborting the run.
    fn audits(&self) -> bool {
        false
    }

    /// Whether the run stages protocol telemetry: per-lane [`Shard`]s are
    /// allocated and [`Ctx::mark`]/[`Ctx::count`]/[`Ctx::observe`] record.
    fn collects_telemetry(&self) -> bool {
        false
    }

    /// Whether [`on_message`](Self::on_message) should be invoked. The
    /// per-message hook is gated so the common observers (trace, audit,
    /// telemetry) pay nothing for it.
    fn observes_messages(&self) -> bool {
        false
    }

    /// Called at the top of every round, before any `on_round` call.
    fn on_round_start(&mut self, round: usize) {
        let _ = round;
    }

    /// Called once per message accepted for delivery — immediately or
    /// after an injected delay, but not for dropped messages — at the
    /// round it was sent. Gated by
    /// [`observes_messages`](Self::observes_messages).
    fn on_message(&mut self, round: usize, from: NodeId, to: NodeId, bits: u64) {
        let _ = (round, from, to, bits);
    }

    /// Called once per audited model breach, in sender order. Only invoked
    /// when [`audits`](Self::audits) is true; otherwise the first breach
    /// aborts the run with a [`RuntimeError`].
    fn on_violation(&mut self, violation: &Violation) {
        let _ = violation;
    }

    /// Called at the end of every round with its aggregate trace and the
    /// round's merged telemetry staging buffer (empty unless
    /// [`collects_telemetry`](Self::collects_telemetry) is true).
    fn on_round_end(&mut self, round: usize, trace: RoundTrace, shard: &mut Shard) {
        let _ = (round, trace, shard);
    }

    /// Called once, after the final round, when the run completes
    /// successfully.
    fn on_finish(&mut self, stats: &RunStats) {
        let _ = stats;
    }
}

/// The empty pipeline: a bare run with no observation.
impl RunObserver for () {}

/// Composition: both observers receive every hook; the capability queries
/// are OR-ed.
impl<A: RunObserver, B: RunObserver> RunObserver for (A, B) {
    fn audits(&self) -> bool {
        self.0.audits() || self.1.audits()
    }

    fn collects_telemetry(&self) -> bool {
        self.0.collects_telemetry() || self.1.collects_telemetry()
    }

    fn observes_messages(&self) -> bool {
        self.0.observes_messages() || self.1.observes_messages()
    }

    fn on_round_start(&mut self, round: usize) {
        self.0.on_round_start(round);
        self.1.on_round_start(round);
    }

    fn on_message(&mut self, round: usize, from: NodeId, to: NodeId, bits: u64) {
        self.0.on_message(round, from, to, bits);
        self.1.on_message(round, from, to, bits);
    }

    fn on_violation(&mut self, violation: &Violation) {
        self.0.on_violation(violation);
        self.1.on_violation(violation);
    }

    fn on_round_end(&mut self, round: usize, trace: RoundTrace, shard: &mut Shard) {
        self.0.on_round_end(round, trace, shard);
        self.1.on_round_end(round, trace, shard);
    }

    fn on_finish(&mut self, stats: &RunStats) {
        self.0.on_finish(stats);
        self.1.on_finish(stats);
    }
}

/// The tracing observer: records one [`RoundTrace`] per executed round and
/// truncates trailing quiet rounds to the measured round count on finish
/// (the single place that fixup happens).
impl RunObserver for &mut Trace {
    fn on_round_end(&mut self, _round: usize, trace: RoundTrace, _shard: &mut Shard) {
        self.rounds.push(trace);
    }

    fn on_finish(&mut self, stats: &RunStats) {
        self.rounds.truncate(stats.rounds);
    }
}

/// The audit observer: switches the engine into audit mode and collects
/// every [`Violation`] in deterministic (round, then sender) order.
impl RunObserver for &mut Vec<Violation> {
    fn audits(&self) -> bool {
        true
    }

    fn on_violation(&mut self, violation: &Violation) {
        self.push(violation.clone());
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for () {}
    impl Sealed for super::Trace {}
    impl Sealed for Vec<super::Violation> {}
    impl Sealed for &mut crate::telemetry::Collector {}
}

/// A slot of the [`Exec`] builder: either `()` (absent) or an owned
/// artifact (a [`Trace`], a `Vec<Violation>`, a borrowed
/// [`Collector`]) that lends itself out as the matching built-in
/// [`RunObserver`] for the duration of the run. Sealed; the slot types are
/// fixed by the builder methods.
pub trait ObserverSlot: sealed::Sealed {
    /// The observer this slot lends while the run executes.
    type Obs<'a>: RunObserver
    where
        Self: 'a;

    /// Borrow the slot as a live observer.
    fn observer(&mut self) -> Self::Obs<'_>;
}

impl ObserverSlot for () {
    type Obs<'a> = ();
    fn observer(&mut self) -> Self::Obs<'_> {}
}

impl ObserverSlot for Trace {
    type Obs<'a> = &'a mut Trace;
    fn observer(&mut self) -> Self::Obs<'_> {
        self
    }
}

impl ObserverSlot for Vec<Violation> {
    type Obs<'a> = &'a mut Vec<Violation>;
    fn observer(&mut self) -> Self::Obs<'_> {
        self
    }
}

impl ObserverSlot for &mut Collector {
    type Obs<'a>
        = &'a mut Collector
    where
        Self: 'a;
    fn observer(&mut self) -> Self::Obs<'_> {
        self
    }
}

/// A configured-but-not-yet-started run, created by [`Network::exec`].
///
/// The type parameters track which artifacts were requested: each of
/// [`traced`](Self::traced), [`audited`](Self::audited), and
/// [`telemetry`](Self::telemetry) fills its slot (callable once, enforced
/// at compile time), and [`run`](Self::run) /
/// [`run_sequential`](Self::run_sequential) return a [`RunOutput`] typed
/// by the filled slots.
pub struct Exec<'n, 'g, P, T = (), A = (), C = ()> {
    net: &'n Network<'g>,
    nodes: Vec<P>,
    trace: T,
    audit: A,
    tel: C,
}

impl<P, T, A, C> fmt::Debug for Exec<'_, '_, P, T, A, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Exec").field("nodes", &self.nodes.len()).finish_non_exhaustive()
    }
}

impl<'n, 'g, P, A, C> Exec<'n, 'g, P, (), A, C> {
    /// Record a per-round [`Trace`] — message/bit counts and the busiest
    /// edge of every round — for congestion analysis and debugging. The
    /// trace is returned as [`RunOutput::trace`].
    pub fn traced(self) -> Exec<'n, 'g, P, Trace, A, C> {
        Exec {
            net: self.net,
            nodes: self.nodes,
            trace: Trace::default(),
            audit: self.audit,
            tel: self.tel,
        }
    }
}

impl<'n, 'g, P, T, C> Exec<'n, 'g, P, T, (), C> {
    /// Run in *audit mode*: model breaches (bandwidth-cap overflow,
    /// non-neighbor sends) are recorded as [`Violation`]s with round/edge
    /// provenance instead of aborting the run, and every breach is
    /// reported rather than just the first.
    ///
    /// Audited cap overflows still deliver their message; audited
    /// non-neighbor sends are discarded (there is no edge to carry them).
    /// The findings are returned as [`RunOutput::violations`], in
    /// deterministic (round, then sender) order under every engine. This
    /// is the substrate of [`conformance`](crate::conformance).
    pub fn audited(self) -> Exec<'n, 'g, P, T, Vec<Violation>, C> {
        Exec {
            net: self.net,
            nodes: self.nodes,
            trace: self.trace,
            audit: Vec::new(),
            tel: self.tel,
        }
    }
}

impl<'n, 'g, P, T, A> Exec<'n, 'g, P, T, A, ()> {
    /// Record structured telemetry into `tel`: per-round samples, per-edge
    /// cumulative load, and any marks/counters/histograms the protocol
    /// emits through [`Ctx::mark`]/[`Ctx::count`]/[`Ctx::observe`]. The
    /// run is wrapped in no span — callers typically bracket it with
    /// [`Collector::enter`]/[`Collector::exit`]; the collector's cursor
    /// advances by the run's measured rounds.
    ///
    /// Recording is deterministic: the same run produces byte-identical
    /// collector exports under every [`EngineMode`] (see the
    /// [`telemetry`](crate::telemetry) module docs for the contract).
    pub fn telemetry<'c>(self, tel: &'c mut Collector) -> Exec<'n, 'g, P, T, A, &'c mut Collector> {
        Exec { net: self.net, nodes: self.nodes, trace: self.trace, audit: self.audit, tel }
    }
}

impl<P, T, A, C> Exec<'_, '_, P, T, A, C>
where
    P: NodeProtocol,
    T: ObserverSlot,
    A: ObserverSlot,
    C: ObserverSlot,
{
    /// Execute the run under the configured [`EngineMode`] (like
    /// [`Network::run`]).
    ///
    /// # Errors
    ///
    /// Same as [`Network::run`], except that when [`audited`](Self::audited)
    /// was requested, model breaches become [`RunOutput::violations`]
    /// instead of errors.
    pub fn run(self) -> Result<RunOutput<P, T, A>, RuntimeError>
    where
        P: Send,
        P::Msg: Send + Sync,
    {
        let Exec { net, nodes, mut trace, mut audit, mut tel } = self;
        let run = net.run_with(nodes, ((trace.observer(), audit.observer()), tel.observer()))?;
        Ok(RunOutput { nodes: run.nodes, stats: run.stats, trace, violations: audit })
    }

    /// Execute the run on the single-threaded engine, regardless of the
    /// configured [`EngineMode`] — the only builder entry point for
    /// protocols whose state is not `Send`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_sequential(self) -> Result<RunOutput<P, T, A>, RuntimeError> {
        let Exec { net, nodes, mut trace, mut audit, mut tel } = self;
        let run =
            net.run_sequential_with(nodes, ((trace.observer(), audit.observer()), tel.observer()))?;
        Ok(RunOutput { nodes: run.nodes, stats: run.stats, trace, violations: audit })
    }
}

/// The typed result of a built run (see [`Network::exec`]).
///
/// `trace` and `violations` are typed by the builder calls that requested
/// them: `()` when not requested, a [`Trace`] after [`Exec::traced`], a
/// `Vec<Violation>` after [`Exec::audited`]. Telemetry is written into the
/// borrowed [`Collector`] and does not appear here.
#[derive(Debug)]
pub struct RunOutput<P, T = (), A = ()> {
    /// Final per-node protocol states, indexed by [`NodeId`].
    pub nodes: Vec<P>,
    /// Measured statistics.
    pub stats: RunStats,
    /// Per-round congestion trace ([`Exec::traced`]), else `()`.
    pub trace: T,
    /// Audit findings in deterministic order ([`Exec::audited`]), else `()`.
    pub violations: A,
}

/// Engine-agnostic state of one run: the inbox double-buffer, the delay
/// wheel, run statistics, and the per-lane staging buffers. Both engines
/// execute the single loop in `Network::exec_loop` over this core; a
/// [`RoundDriver`] only chooses how the `on_round` calls land on the
/// lanes.
struct ExecCore<M> {
    /// Nodes per lane (`n.div_ceil(lanes)`); lane `t` owns ids
    /// `[t·chunk_len, (t+1)·chunk_len)`.
    chunk_len: usize,
    inboxes: Vec<Vec<(NodeId, M)>>,
    next_inboxes: Vec<Vec<(NodeId, M)>>,
    wheel: DelayWheel<M>,
    lanes: Vec<Lane<M>>,
    stats: RunStats,
    last_active_round: usize,
    /// Per-lane telemetry shards are merged into this buffer in chunk
    /// (= node id) order each round, reproducing a sequential sweep's
    /// emission order exactly; [`RunObserver::on_round_end`] drains it.
    round_shard: Shard,
    auditing: bool,
    telemetering: bool,
    want_messages: bool,
}

impl<M: MessageSize> ExecCore<M> {
    fn new<O: RunObserver>(n: usize, max_degree: usize, lanes: usize, obs: &O) -> Self {
        ExecCore {
            chunk_len: n.div_ceil(lanes.max(1)),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            next_inboxes: (0..n).map(|_| Vec::new()).collect(),
            wheel: DelayWheel::new(),
            lanes: (0..lanes).map(|_| Lane::new(max_degree)).collect(),
            stats: RunStats::default(),
            last_active_round: 0,
            round_shard: Shard::default(),
            auditing: obs.audits(),
            telemetering: obs.collects_telemetry(),
            want_messages: obs.observes_messages(),
        }
    }

    /// The first staged routing error in lane (= node) order, if any.
    fn first_error(&mut self) -> Option<RuntimeError> {
        self.lanes.iter_mut().find_map(|l| l.core.result.error.take())
    }

    /// Fold every lane's round results into the run: statistics, audit
    /// findings (through [`RunObserver::on_violation`]), telemetry shards,
    /// and staged sends (delivered to the next round's inboxes or the
    /// delay wheel), all in chunk (= node id) order. Returns whether any
    /// node sent this round plus the round's aggregate trace.
    fn merge_round<O: RunObserver>(&mut self, round: usize, obs: &mut O) -> (bool, RoundTrace) {
        let ExecCore {
            lanes,
            next_inboxes,
            wheel,
            stats,
            round_shard,
            telemetering,
            want_messages,
            ..
        } = self;
        let (telemetering, want_messages) = (*telemetering, *want_messages);
        let mut any_sent = false;
        let mut acc = RoundAccum::default();
        for lane in lanes.iter_mut() {
            let r = &lane.core.result;
            stats.messages += r.stats.messages;
            stats.total_bits += r.stats.total_bits;
            stats.max_edge_bits = stats.max_edge_bits.max(r.stats.max_edge_bits);
            stats.dropped += r.stats.dropped;
            any_sent |= r.any_sent;
            // The lane's stats are exactly this round's deltas (the lane
            // result is reset at the top of each round).
            acc.messages += r.stats.messages;
            acc.bits += r.stats.total_bits;
            acc.dropped += r.stats.dropped;
            if let Some((f, t, b)) = r.acc.busiest {
                if acc.busiest.is_none_or(|(_, _, bb)| b > bb) {
                    acc.busiest = Some((f, t, b));
                }
            }
            for v in lane.core.result.violations.drain(..) {
                obs.on_violation(&v);
            }
            if telemetering {
                round_shard.marks.append(&mut lane.core.shard.marks);
                round_shard.counts.append(&mut lane.core.shard.counts);
                round_shard.observations.append(&mut lane.core.shard.observations);
                round_shard.edges.append(&mut lane.core.shard.edges);
            }
            for (to, from, delay, msg) in lane.sends.drain(..) {
                if want_messages {
                    obs.on_message(round, from, to, msg.size_bits());
                }
                if delay == 0 {
                    next_inboxes[to].push((from, msg));
                } else {
                    wheel.schedule(delay as usize, to, from, msg);
                }
            }
        }
        (
            any_sent,
            RoundTrace {
                messages: acc.messages,
                bits: acc.bits,
                busiest_edge: acc.busiest,
                dropped: acc.dropped,
            },
        )
    }

    /// Whether no message is waiting for the next round (inboxes and the
    /// delay wheel are empty).
    fn quiescent(&self) -> bool {
        !self.next_inboxes.iter().any(|b| !b.is_empty()) && self.wheel.is_empty()
    }

    /// Swap the inbox double-buffer for the next round.
    fn advance(&mut self) {
        for (inbox, next) in self.inboxes.iter_mut().zip(self.next_inboxes.iter_mut()) {
            inbox.clear();
            std::mem::swap(inbox, next);
        }
    }
}

/// How one round's `on_round` calls are scheduled onto the lanes. The loop
/// body, validation path, and merge logic are shared ([`ExecCore`]); a
/// driver only chooses inline execution or a scoped-thread fan-out.
trait RoundDriver<P: NodeProtocol> {
    fn drive<O: RunObserver>(
        &self,
        net: &Network<'_>,
        round: usize,
        nodes: &mut [P],
        core: &mut ExecCore<P::Msg>,
        obs: &mut O,
    );
}

/// Single-lane driver: runs the whole node range inline and delivers each
/// validated send straight into the next round's inboxes (or the delay
/// wheel) — no staging, no `Send` bounds.
struct SeqDriver;

impl<P: NodeProtocol> RoundDriver<P> for SeqDriver {
    fn drive<O: RunObserver>(
        &self,
        net: &Network<'_>,
        round: usize,
        nodes: &mut [P],
        core: &mut ExecCore<P::Msg>,
        obs: &mut O,
    ) {
        let ExecCore {
            inboxes,
            next_inboxes,
            wheel,
            lanes,
            auditing,
            telemetering,
            want_messages,
            ..
        } = core;
        let mut sink =
            DeliverSink { next_inboxes, wheel, obs, want_messages: *want_messages, round };
        net.round_for_chunk(
            round,
            0,
            nodes,
            inboxes,
            &mut lanes[0].core,
            &mut sink,
            *auditing,
            *telemetering,
        );
    }
}

/// Scoped-thread driver: one contiguous [`NodeId`] chunk per lane, sends
/// staged per lane and merged in chunk order by the coordinator.
struct ParDriver;

impl<P> RoundDriver<P> for ParDriver
where
    P: NodeProtocol + Send,
    P::Msg: Send + Sync,
{
    fn drive<O: RunObserver>(
        &self,
        net: &Network<'_>,
        round: usize,
        nodes: &mut [P],
        core: &mut ExecCore<P::Msg>,
        _obs: &mut O,
    ) {
        let ExecCore { inboxes, lanes, chunk_len, auditing, telemetering, .. } = core;
        let (chunk_len, auditing, telemetering) = (*chunk_len, *auditing, *telemetering);
        let inboxes: &[Vec<(NodeId, P::Msg)>] = inboxes;
        std::thread::scope(|s| {
            for (t, (chunk, lane)) in nodes.chunks_mut(chunk_len).zip(lanes.iter_mut()).enumerate()
            {
                s.spawn(move || {
                    let Lane { core: lane_core, sends } = lane;
                    net.round_for_chunk(
                        round,
                        t * chunk_len,
                        chunk,
                        inboxes,
                        lane_core,
                        &mut StageSink { sends },
                        auditing,
                        telemetering,
                    );
                });
            }
        });
    }
}

/// Where `Network::route_outbox` puts a message that survived validation
/// and the fault verdict.
trait SendSink<M> {
    /// Accept a message for delivery `delay` extra rounds from now
    /// (`delay == 0` is normal next-round delivery).
    fn accept(&mut self, to: NodeId, from: NodeId, delay: u32, bits: u64, msg: M);
}

/// Stages sends in a lane buffer for the coordinator to merge — the
/// parallel driver's sink (workers may not touch the shared inboxes).
struct StageSink<'a, M> {
    sends: &'a mut Vec<(NodeId, NodeId, u32, M)>,
}

impl<M> SendSink<M> for StageSink<'_, M> {
    #[inline]
    fn accept(&mut self, to: NodeId, from: NodeId, delay: u32, _bits: u64, msg: M) {
        self.sends.push((to, from, delay, msg));
    }
}

/// Delivers straight into the next round's inboxes or the delay wheel —
/// the sequential driver's sink (the coordinator is the only thread, so
/// staging would be a wasted copy).
struct DeliverSink<'a, M, O> {
    next_inboxes: &'a mut Vec<Vec<(NodeId, M)>>,
    wheel: &'a mut DelayWheel<M>,
    obs: &'a mut O,
    want_messages: bool,
    round: usize,
}

impl<M, O: RunObserver> SendSink<M> for DeliverSink<'_, M, O> {
    #[inline]
    fn accept(&mut self, to: NodeId, from: NodeId, delay: u32, bits: u64, msg: M) {
        if self.want_messages {
            self.obs.on_message(self.round, from, to, bits);
        }
        if delay == 0 {
            self.next_inboxes[to].push((from, msg));
        } else {
            self.wheel.schedule(delay as usize, to, from, msg);
        }
    }
}

/// Rank-indexed per-edge load accounting for one sender at a time.
///
/// `slots[r]` is the bits queued this round on the edge to the sender's
/// rank-`r` neighbor; `touched` lists the dirty ranks so resetting costs
/// `O(edges used)`, not `O(degree)`. A zero-size message may push its rank
/// twice, which only makes the flush revisit a slot it already cleared.
#[derive(Debug)]
struct Router {
    slots: Vec<u64>,
    touched: Vec<usize>,
}

impl Router {
    fn new(max_degree: usize) -> Self {
        Router { slots: vec![0; max_degree], touched: Vec::new() }
    }

    /// Fold the touched per-edge loads of sender `from` into the run and
    /// round accumulators, and reset the slots for the next sender.
    #[inline]
    fn flush(
        &mut self,
        from: NodeId,
        neighbors: &[NodeId],
        stats: &mut RunStats,
        acc: &mut RoundAccum,
        mut edges: Option<&mut Vec<(NodeId, NodeId, u64)>>,
    ) {
        for &r in &self.touched {
            let load = self.slots[r];
            self.slots[r] = 0;
            stats.max_edge_bits = stats.max_edge_bits.max(load);
            if acc.busiest.is_none_or(|(_, _, b)| load > b) {
                acc.busiest = Some((from, neighbors[r], load));
            }
            // Telemetry-only per-edge load feed; `load == 0` slots (from a
            // zero-size message's double-push) are skipped like elsewhere.
            if load > 0 {
                if let Some(sink) = edges.as_deref_mut() {
                    sink.push((from, neighbors[r], load));
                }
            }
        }
        self.touched.clear();
    }
}

/// Per-round trace accumulator, filled inside the send loop so a traced
/// run measures each message exactly once.
#[derive(Debug, Default, Clone, Copy)]
struct RoundAccum {
    messages: u64,
    bits: u64,
    busiest: Option<(NodeId, NodeId, u64)>,
    dropped: u64,
}

/// One lane's round output, reset at the top of every round.
#[derive(Debug, Default)]
struct LaneResult {
    stats: RunStats,
    acc: RoundAccum,
    any_sent: bool,
    error: Option<RuntimeError>,
    /// Audit-mode findings, in this lane's node order; the coordinator
    /// replays lanes in chunk order, reproducing sequential order.
    violations: Vec<Violation>,
}

/// One lane's persistent working state — everything `round_for_chunk`
/// touches — reused round after round so the steady state allocates
/// nothing. The sequential engine runs one of these inline; the parallel
/// engine hands one to each worker thread.
struct LaneCore<M> {
    outbox: Vec<(NodeId, M)>,
    router: Router,
    result: LaneResult,
    /// Telemetry staged by this lane's chunk, drained by the coordinator
    /// in chunk order each round (empty on untelemetered runs).
    shard: Shard,
}

/// A [`LaneCore`] plus the parallel engine's staging buffer.
struct Lane<M> {
    core: LaneCore<M>,
    /// Validated `(to, from, delay, msg)` tuples in sender order, staged by
    /// [`StageSink`] and merged into the next round's inboxes (or the
    /// delay wheel) by the coordinating thread; always empty on the
    /// sequential engine, whose [`DeliverSink`] bypasses staging.
    sends: Vec<(NodeId, NodeId, u32, M)>,
}

impl<M> Lane<M> {
    fn new(max_degree: usize) -> Self {
        Lane {
            core: LaneCore {
                outbox: Vec::new(),
                router: Router::new(max_degree),
                result: LaneResult::default(),
                shard: Shard::default(),
            },
            sends: Vec::new(),
        }
    }
}

/// Future deliveries scheduled by a delaying fault plan.
///
/// Slot `d` holds the messages that mature `d` round boundaries from now:
/// at the end of each round the front slot is appended (in scheduling
/// order) to the next round's inboxes, after all regular sends. Scheduling
/// order is sender order within a round and round order across rounds, so
/// both engines produce the same arrival order.
#[derive(Debug)]
struct DelayWheel<M> {
    slots: VecDeque<Vec<(NodeId, NodeId, M)>>,
}

impl<M> DelayWheel<M> {
    fn new() -> Self {
        DelayWheel { slots: VecDeque::new() }
    }

    /// Schedule `msg` to arrive `delay` rounds later than normal delivery.
    fn schedule(&mut self, delay: usize, to: NodeId, from: NodeId, msg: M) {
        while self.slots.len() <= delay {
            self.slots.push_back(Vec::new());
        }
        self.slots[delay].push((to, from, msg));
    }

    /// Move the messages that mature at this round boundary into
    /// `next_inboxes`; returns whether anything was delivered.
    fn pop_due(&mut self, next_inboxes: &mut [Vec<(NodeId, M)>]) -> bool {
        match self.slots.pop_front() {
            Some(due) if !due.is_empty() => {
                for (to, from, msg) in due {
                    next_inboxes[to].push((from, msg));
                }
                true
            }
            _ => false,
        }
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Vec::is_empty)
    }
}

/// A named-phase ledger used by drivers that compose several protocol runs
/// (leader election, then BFS, then `b` query batches, …) into one
/// algorithm, as the paper's proofs do.
///
/// # Examples
///
/// ```
/// use congest::runtime::{RoundLedger, RunStats};
///
/// let mut ledger = RoundLedger::new();
/// ledger.record("bfs", RunStats { rounds: 7, ..Default::default() });
/// ledger.record("query-batch", RunStats { rounds: 12, ..Default::default() });
/// assert_eq!(ledger.total_rounds(), 19);
/// assert_eq!(ledger.phases().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundLedger {
    phases: Vec<(String, RunStats)>,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed phase.
    pub fn record(&mut self, name: &str, stats: RunStats) {
        self.phases.push((name.to_string(), stats));
    }

    /// All recorded phases in order.
    pub fn phases(&self) -> &[(String, RunStats)] {
        &self.phases
    }

    /// Total rounds across phases — the algorithm's round complexity.
    pub fn total_rounds(&self) -> usize {
        self.phases.iter().map(|(_, s)| s.rounds).sum()
    }

    /// Total rounds spent in phases whose name starts with `prefix`.
    pub fn rounds_for(&self, prefix: &str) -> usize {
        self.phases.iter().filter(|(n, _)| n.starts_with(prefix)).map(|(_, s)| s.rounds).sum()
    }

    /// Sum of all message counts.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|(_, s)| s.messages).sum()
    }

    /// Sum of all delivered (qu)bits.
    pub fn total_bits(&self) -> u64 {
        self.phases.iter().map(|(_, s)| s.total_bits).sum()
    }

    /// Fold another ledger's phases into this one, prefixing their names.
    pub fn absorb(&mut self, prefix: &str, other: RoundLedger) {
        for (name, stats) in other.phases {
            self.phases.push((format!("{prefix}/{name}"), stats));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path, star};

    /// A flood protocol: node 0 emits a token; everyone forwards it once.
    #[derive(Debug)]
    struct Flood {
        has_token: bool,
        forwarded: bool,
    }

    #[derive(Clone, Debug)]
    struct Token;

    impl MessageSize for Token {
        fn size_bits(&self) -> u64 {
            1
        }
    }

    impl NodeProtocol for Flood {
        type Msg = Token;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Token>, inbox: &[(NodeId, Token)]) {
            if !inbox.is_empty() {
                self.has_token = true;
            }
            if self.has_token && !self.forwarded {
                ctx.broadcast(Token);
                self.forwarded = true;
            }
        }
        fn is_done(&self) -> bool {
            self.forwarded
        }
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n).map(|v| Flood { has_token: v == 0, forwarded: false }).collect()
    }

    #[test]
    fn flood_takes_diameter_rounds() {
        let g = path(10);
        let run = Network::new(&g).run(flood_nodes(10)).unwrap();
        assert!(run.nodes.iter().all(|f| f.has_token));
        // Node 0 sends in round 0; node 9 receives in round 9's inbox and
        // forwards in round 9. Last message in flight was sent in round 9.
        assert_eq!(run.stats.rounds, 10);
    }

    #[test]
    fn flood_on_star_takes_two_rounds() {
        let g = star(12);
        let run = Network::new(&g).run(flood_nodes(12)).unwrap();
        assert!(run.nodes.iter().all(|f| f.has_token));
        assert_eq!(run.stats.rounds, 2);
    }

    #[test]
    fn message_and_bit_counts() {
        let g = path(3);
        let run = Network::new(&g).run(flood_nodes(3)).unwrap();
        // 0 -> 1 ; 1 -> {0, 2} ; 2 -> 1 : four messages of one bit.
        assert_eq!(run.stats.messages, 4);
        assert_eq!(run.stats.total_bits, 4);
        assert_eq!(run.stats.max_edge_bits, 1);
    }

    /// Protocol that tries to push too many bits across an edge.
    #[derive(Debug)]
    struct Hog {
        sent: bool,
    }

    #[derive(Clone, Debug)]
    struct Big(u64);

    impl MessageSize for Big {
        fn size_bits(&self) -> u64 {
            self.0
        }
    }

    impl NodeProtocol for Hog {
        type Msg = Big;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Big>, _inbox: &[(NodeId, Big)]) {
            if ctx.me() == 0 && !self.sent {
                let cap = ctx.cap_bits();
                ctx.send(1, Big(cap + 1));
                self.sent = true;
            } else {
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn bandwidth_cap_enforced() {
        let g = path(2);
        let err = Network::new(&g).run(vec![Hog { sent: false }, Hog { sent: false }]).unwrap_err();
        assert!(matches!(err, RuntimeError::BandwidthExceeded { .. }));
    }

    #[test]
    fn split_messages_also_capped() {
        // Two messages whose sum exceeds the cap must also be rejected.
        #[derive(Debug)]
        struct TwoSends {
            sent: bool,
        }
        impl NodeProtocol for TwoSends {
            type Msg = Big;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Big>, _inbox: &[(NodeId, Big)]) {
                if ctx.me() == 0 && !self.sent {
                    let cap = ctx.cap_bits();
                    ctx.send(1, Big(cap));
                    ctx.send(1, Big(1));
                }
                self.sent = true;
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        let g = path(2);
        let err = Network::new(&g)
            .run(vec![TwoSends { sent: false }, TwoSends { sent: false }])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BandwidthExceeded { .. }));
    }

    #[test]
    fn non_neighbor_send_rejected() {
        #[derive(Debug)]
        struct Bad {
            sent: bool,
        }
        impl NodeProtocol for Bad {
            type Msg = Token;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Token>, _inbox: &[(NodeId, Token)]) {
                if ctx.me() == 0 && !self.sent {
                    ctx.send(2, Token); // 0 and 2 are not adjacent on a path
                }
                self.sent = true;
            }
            fn is_done(&self) -> bool {
                self.sent
            }
        }
        let g = path(3);
        let err = Network::new(&g).run((0..3).map(|_| Bad { sent: false }).collect()).unwrap_err();
        assert!(matches!(err, RuntimeError::NotANeighbor { from: 0, to: 2, .. }));
    }

    #[test]
    fn round_limit_enforced() {
        /// Never terminates: keeps bouncing the token.
        #[derive(Debug)]
        struct Forever;
        impl NodeProtocol for Forever {
            type Msg = Token;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Token>, _inbox: &[(NodeId, Token)]) {
                ctx.broadcast(Token);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = path(2);
        let err = Network::new(&g).with_round_limit(10).run(vec![Forever, Forever]).unwrap_err();
        assert_eq!(err, RuntimeError::RoundLimitExceeded { limit: 10 });
    }

    #[test]
    fn wrong_node_count_rejected() {
        let g = path(3);
        let err = Network::new(&g).run(flood_nodes(2)).unwrap_err();
        assert_eq!(err, RuntimeError::WrongNodeCount { expected: 3, got: 2 });
    }

    #[test]
    fn silent_protocol_uses_zero_rounds() {
        #[derive(Debug)]
        struct Quiet;
        impl NodeProtocol for Quiet {
            type Msg = Token;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, Token>, _inbox: &[(NodeId, Token)]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = path(4);
        let run = Network::new(&g).run(vec![Quiet, Quiet, Quiet, Quiet]).unwrap();
        assert_eq!(run.stats.rounds, 0);
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let g = path(6);
        let net = Network::new(&g);
        let plain = net.run(flood_nodes(6)).unwrap();
        let traced = net.exec(flood_nodes(6)).traced().run().unwrap();
        let trace = traced.trace;
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(trace.rounds.len(), traced.stats.rounds);
        assert_eq!(trace.total_bits(), traced.stats.total_bits);
        let (peak_round, peak) = trace.peak_round().unwrap();
        assert!(peak.bits >= 1 && peak_round < trace.rounds.len());
        assert!(trace.render(10).contains("round"));
    }

    #[test]
    fn trace_busiest_edge_within_cap() {
        let g = star(8);
        let net = Network::new(&g);
        let trace = net.exec(flood_nodes(8)).traced().run().unwrap().trace;
        for r in &trace.rounds {
            if let Some((_, _, bits)) = r.busiest_edge {
                assert!(bits <= net.cap_bits());
            }
        }
    }

    #[test]
    fn trace_render_output_is_bounded() {
        // E6-sized traces (~18k rounds) must render in at most `width`
        // lines, not one line per round.
        let mut trace = Trace::default();
        for i in 0..18_000u64 {
            trace.rounds.push(RoundTrace {
                messages: 1 + i % 7,
                bits: 8 + i % 129,
                busiest_edge: None,
                dropped: 0,
            });
        }
        let rendered = trace.render(40);
        assert!(rendered.lines().count() <= 40, "{} lines", rendered.lines().count());
        assert!(rendered.contains("rounds "));
        // The grouped lines still account for every bit and message.
        let bits_sum: u64 = rendered
            .lines()
            .map(|l| {
                let tail = l.split('|').nth(2).unwrap();
                tail.split_whitespace().next().unwrap().parse::<u64>().unwrap()
            })
            .sum();
        assert_eq!(bits_sum, trace.total_bits());
        // Small traces keep the exact per-round form.
        let mut small = Trace::default();
        for _ in 0..5 {
            small.rounds.push(RoundTrace { messages: 1, bits: 4, ..Default::default() });
        }
        let rendered = small.render(40);
        assert_eq!(rendered.lines().count(), 5);
        assert!(rendered.contains("round    0 |"));
    }

    #[test]
    fn peak_round_ties_break_to_first() {
        let mut trace = Trace::default();
        for bits in [3u64, 9, 1, 9, 2] {
            trace.rounds.push(RoundTrace { messages: 1, bits, ..Default::default() });
        }
        let (idx, peak) = trace.peak_round().unwrap();
        assert_eq!(idx, 1, "tie between rounds 1 and 3 must pin to the first");
        assert_eq!(peak.bits, 9);
        // All-quiet traces report no peak.
        let quiet = Trace { rounds: vec![RoundTrace::default(); 4] };
        assert!(quiet.peak_round().is_none());
    }

    #[test]
    fn ledger_accumulates() {
        let mut ledger = RoundLedger::new();
        ledger.record(
            "a",
            RunStats { rounds: 3, messages: 5, total_bits: 50, max_edge_bits: 10, dropped: 0 },
        );
        ledger.record(
            "a2",
            RunStats { rounds: 4, messages: 1, total_bits: 8, max_edge_bits: 8, dropped: 0 },
        );
        ledger.record("b", RunStats { rounds: 2, ..Default::default() });
        assert_eq!(ledger.total_rounds(), 9);
        assert_eq!(ledger.rounds_for("a"), 7);
        assert_eq!(ledger.total_messages(), 6);
        assert_eq!(ledger.total_bits(), 58);
        let mut outer = RoundLedger::new();
        outer.absorb("phase1", ledger);
        assert_eq!(outer.total_rounds(), 9);
        assert!(outer.phases()[0].0.starts_with("phase1/"));
    }
}
