//! Model-conformance checking: audited runs and a cross-engine oracle.
//!
//! The CONGEST results of the paper (Lemma 7, Theorem 8, …) are only as
//! trustworthy as the simulator's enforcement of the model contract. This
//! module turns that contract into checkable invariants:
//!
//! * **per-edge bandwidth** — every directed edge carries at most
//!   `cap_bits` (qu)bits per round;
//! * **locality** — messages travel only between graph neighbors;
//! * **round accounting** — the per-round trace is monotone and consistent
//!   with the aggregate statistics (`rounds` equals the number of recorded
//!   rounds, per-round message/bit/drop counts sum to the totals, and the
//!   busiest recorded edge never exceeds the observed maximum);
//! * **engine agreement** — [`EngineMode::Sequential`] and
//!   [`EngineMode::Parallel`] produce bit-identical statistics, traces, and
//!   final node states for the same protocol and seed.
//!
//! Where the plain engine *aborts* on the first contract breach, an audited
//! run ([`Exec::audited`](crate::runtime::Exec::audited))
//! records every breach as a [`Violation`] with round and edge provenance
//! and keeps going, so a single run reports all of a protocol's violations.
//! [`check_protocol`] wraps the whole procedure into one call.

use crate::graph::NodeId;
use crate::runtime::{
    Ctx, EngineMode, MessageSize, Network, NodeProtocol, Run, RunStats, RuntimeError, Trace,
};
use std::fmt;

/// One breach of the CONGEST model contract, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A directed edge carried more than the cap in one round.
    CapExceeded {
        /// Round in which the edge overflowed.
        round: usize,
        /// Sending endpoint.
        from: NodeId,
        /// Receiving endpoint.
        to: NodeId,
        /// Bits the edge carried when the overflow was detected.
        bits: u64,
        /// The configured cap.
        cap: u64,
    },
    /// A node addressed a message to a non-neighbor.
    NonNeighborSend {
        /// Round of the offending send.
        round: usize,
        /// The sender.
        from: NodeId,
        /// The non-adjacent addressee.
        to: NodeId,
    },
    /// The per-round trace disagrees with the aggregate statistics.
    TraceInconsistent {
        /// Which accounting identity failed.
        field: &'static str,
        /// The value implied by the statistics.
        expected: u64,
        /// The value implied by the trace.
        got: u64,
    },
    /// The sequential and parallel engines disagreed on an observable.
    EngineDivergence {
        /// Which observable diverged ("stats", "trace", "node states", …).
        field: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CapExceeded { round, from, to, bits, cap } => {
                write!(f, "round {round}: edge {from}->{to} carried {bits} bits, cap is {cap}")
            }
            Violation::NonNeighborSend { round, from, to } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            Violation::TraceInconsistent { field, expected, got } => {
                write!(f, "trace inconsistent: {field} is {got}, stats imply {expected}")
            }
            Violation::EngineDivergence { field } => {
                write!(f, "sequential and parallel engines disagree on {field}")
            }
        }
    }
}

/// The outcome of a conformance check.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Every violation found, in detection order (audited model breaches
    /// first, then trace inconsistencies, then engine divergences).
    pub violations: Vec<Violation>,
    /// Statistics of the audited sequential run.
    pub stats: RunStats,
}

impl ConformanceReport {
    /// Whether the run upheld every checked invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// A human-readable one-line-per-violation summary.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "conformance: clean".to_string();
        }
        let mut out = format!("conformance: {} violation(s)\n", self.violations.len());
        for v in &self.violations {
            out.push_str(&format!("  - {v}\n"));
        }
        out
    }
}

/// A fully checked run: the report plus the sequential run's outputs, so
/// callers can additionally assert protocol-level correctness.
#[derive(Debug)]
pub struct Checked<P> {
    /// The conformance findings.
    pub report: ConformanceReport,
    /// The audited sequential run (final node states and statistics).
    pub run: Run<P>,
    /// The audited sequential run's per-round trace.
    pub trace: Trace,
}

/// Check the trace/statistics accounting identities of one audited run.
///
/// Returns violations only — an empty vector means the accounting is
/// internally consistent and within `cap`.
pub fn validate_trace(stats: &RunStats, trace: &Trace, cap: u64) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut check = |field: &'static str, expected: u64, got: u64| {
        if expected != got {
            out.push(Violation::TraceInconsistent { field, expected, got });
        }
    };
    check("recorded rounds", stats.rounds as u64, trace.rounds.len() as u64);
    check("message total", stats.messages, trace.rounds.iter().map(|r| r.messages).sum());
    check("bit total", stats.total_bits, trace.rounds.iter().map(|r| r.bits).sum());
    check("drop total", stats.dropped, trace.rounds.iter().map(|r| r.dropped).sum());
    let peak =
        trace.rounds.iter().filter_map(|r| r.busiest_edge.map(|(_, _, b)| b)).max().unwrap_or(0);
    if peak > stats.max_edge_bits {
        out.push(Violation::TraceInconsistent {
            field: "busiest recorded edge",
            expected: stats.max_edge_bits,
            got: peak,
        });
    }
    if stats.max_edge_bits > cap {
        out.push(Violation::TraceInconsistent {
            field: "max edge load within cap",
            expected: cap,
            got: stats.max_edge_bits,
        });
    }
    out
}

/// Run `make()`'s protocol under both engines with full auditing and return
/// every violation found: model breaches (with round/edge provenance),
/// accounting inconsistencies, and any observable divergence between the
/// sequential reference and a `threads`-worker parallel run.
///
/// The network's fault plan, bandwidth, and round limit apply as
/// configured; its [`EngineMode`] is overridden per run.
///
/// # Errors
///
/// Propagates hard runtime errors (wrong node count, round-limit or
/// retry-budget exhaustion) from either engine. Model breaches do *not*
/// error here — they are the violations being collected.
pub fn check_protocol<P, F>(
    net: &Network<'_>,
    threads: usize,
    make: F,
) -> Result<Checked<P>, RuntimeError>
where
    P: NodeProtocol + Send + fmt::Debug,
    P::Msg: Send + Sync,
    F: Fn() -> Vec<P>,
{
    let seq_net = net.clone().with_engine(EngineMode::Sequential);
    let seq = seq_net.exec(make()).traced().audited().run()?;
    let par_net = net.clone().with_engine(EngineMode::Parallel { threads: threads.max(2) });
    let par = par_net.exec(make()).traced().audited().run()?;

    let mut violations = seq.violations.clone();
    violations.extend(validate_trace(&seq.stats, &seq.trace, net.cap_bits()));
    if par.stats != seq.stats {
        violations.push(Violation::EngineDivergence { field: "stats" });
    }
    if par.trace.rounds != seq.trace.rounds {
        violations.push(Violation::EngineDivergence { field: "trace" });
    }
    if format!("{:?}", par.nodes) != format!("{:?}", seq.nodes) {
        violations.push(Violation::EngineDivergence { field: "node states" });
    }
    if par.violations != seq.violations {
        violations.push(Violation::EngineDivergence { field: "audit findings" });
    }
    Ok(Checked {
        report: ConformanceReport { violations, stats: seq.stats },
        run: Run { nodes: seq.nodes, stats: seq.stats },
        trace: seq.trace,
    })
}

/// A one-bit flood: the origin holds a token, every node forwards it once.
///
/// The simplest nontrivial CONGEST protocol — `D + 1` rounds, one bit per
/// edge per direction — used as the conformance probe and in the fault
/// experiments (its correctness condition, "every node has the token", is
/// checkable at a glance).
#[derive(Debug, Clone)]
pub struct FloodProtocol {
    /// Whether this node has received (or originated) the token.
    pub has_token: bool,
    /// Whether this node already forwarded the token to its neighbors.
    pub forwarded: bool,
}

/// The flood token: one bit on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodToken;

impl MessageSize for FloodToken {
    fn size_bits(&self) -> u64 {
        1
    }
}

impl FloodProtocol {
    /// One instance per node; only `origin` starts with the token.
    pub fn instances(n: usize, origin: NodeId) -> Vec<Self> {
        (0..n).map(|v| FloodProtocol { has_token: v == origin, forwarded: false }).collect()
    }
}

impl NodeProtocol for FloodProtocol {
    type Msg = FloodToken;

    fn on_round(&mut self, ctx: &mut Ctx<'_, FloodToken>, inbox: &[(NodeId, FloodToken)]) {
        if !inbox.is_empty() {
            self.has_token = true;
        }
        if self.has_token && !self.forwarded {
            ctx.broadcast(FloodToken);
            self.forwarded = true;
        }
    }

    fn is_done(&self) -> bool {
        self.forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, path};

    #[test]
    fn flood_probe_is_clean_everywhere() {
        for g in [path(12), grid(4, 5)] {
            let net = Network::new(&g);
            let checked =
                check_protocol(&net, 3, || FloodProtocol::instances(g.n(), 0)).expect("run");
            assert!(checked.report.is_clean(), "{}", checked.report.render());
            assert!(checked.run.nodes.iter().all(|f| f.has_token));
            assert_eq!(checked.report.render(), "conformance: clean");
        }
    }

    #[test]
    fn validate_trace_flags_inconsistencies() {
        let g = path(5);
        let net = Network::new(&g);
        let out = net.exec(FloodProtocol::instances(5, 0)).traced().audited().run().expect("run");
        let (run, mut trace) = (Run { nodes: out.nodes, stats: out.stats }, out.trace);
        assert!(validate_trace(&run.stats, &trace, net.cap_bits()).is_empty());
        // Tamper with the trace: each identity must catch its breach.
        let mut miscounted = trace.clone();
        miscounted.rounds[0].messages += 1;
        let found = validate_trace(&run.stats, &miscounted, net.cap_bits());
        assert!(found
            .iter()
            .any(|v| matches!(v, Violation::TraceInconsistent { field: "message total", .. })));
        trace.rounds.pop();
        let found = validate_trace(&run.stats, &trace, net.cap_bits());
        assert!(found
            .iter()
            .any(|v| matches!(v, Violation::TraceInconsistent { field: "recorded rounds", .. })));
    }

    #[test]
    fn violations_render_with_provenance() {
        let v = Violation::CapExceeded { round: 3, from: 1, to: 2, bits: 40, cap: 20 };
        assert_eq!(v.to_string(), "round 3: edge 1->2 carried 40 bits, cap is 20");
        let v = Violation::NonNeighborSend { round: 5, from: 0, to: 9 };
        assert_eq!(v.to_string(), "round 5: node 0 sent to non-neighbor 9");
    }
}
