//! Semigroup aggregation of query batches — the query step of Theorem 8.
//!
//! After the leader distributes a batch of `p` query indices
//! `j₁, …, j_p ∈ [k]` (via [`crate::tree_comm`]), every node `v` holds the
//! `p` local query results `x_{jᵢ}^{(v)}`, each `q ≤ 64` bits. This module
//! computes `⊕_v x_{jᵢ}^{(v)}` for all `i` at the tree root:
//!
//! * leaves send their results up, **strictly in batch order** — the
//!   paper's schedule ("as soon as the leaves are done with the first
//!   query value they can start with the second"), which also means no
//!   per-chunk headers: the receiver counts;
//! * an internal node combines each child subtree value with its own using
//!   the commutative-semigroup operation `⊕`, **echoes each child's value
//!   back** so the child can uncompute its register (the quantum protocol
//!   must not leave entangled garbage), and forwards the combined value up;
//! * pipelining yields `O((D + p)·⌈q/log n⌉)` rounds instead of
//!   `O(D·p·⌈q/log n⌉)`.
//!
//! A node cannot stream a value bit-by-bit before its children's values
//! are complete (the `⊕` needs whole operands) — exactly the caveat in the
//! paper's proof of Theorem 8.

use crate::bfs::TreeView;
use crate::graph::NodeId;
use crate::runtime::{Ctx, MessageSize, Network, NodeProtocol, RunStats, RuntimeError};
use std::collections::VecDeque;

/// A commutative-semigroup operation on `q ≤ 64`-bit values, the `⊕` of
/// Theorem 8.
///
/// All variants are associative and commutative; `Sum` wraps modulo `2^64`
/// (the applications in the paper keep sums below `n·N`, well within range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// Wrapping addition.
    Sum,
    /// Bitwise XOR (the `⊕` of distributed Deutsch–Jozsa).
    Xor,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
}

impl CommOp {
    /// Combine two values.
    #[inline]
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            CommOp::Sum => a.wrapping_add(b),
            CommOp::Xor => a ^ b,
            CommOp::Min => a.min(b),
            CommOp::Max => a.max(b),
            CommOp::Or => a | b,
            CommOp::And => a & b,
        }
    }

    /// The identity element (for folds).
    #[inline]
    pub fn identity(self) -> u64 {
        match self {
            CommOp::Sum | CommOp::Xor | CommOp::Or => 0,
            CommOp::Min => u64::MAX,
            CommOp::Max => 0,
            CommOp::And => u64::MAX,
        }
    }

    /// Fold an iterator of values.
    pub fn fold<I: IntoIterator<Item = u64>>(self, iter: I) -> u64 {
        iter.into_iter().fold(self.identity(), |a, b| self.combine(a, b))
    }
}

/// A chunk of a value flowing up (`Up`) or echoed back down (`Echo`).
/// No index header: values travel strictly in batch order, so the receiver
/// counts chunks (`q` bits per value).
#[derive(Debug, Clone, Copy)]
pub enum AggMsg {
    /// Chunk of the sender's next in-order combined subtree value.
    Up {
        /// Number of payload bits in this chunk.
        nbits: u64,
        /// Payload bits.
        payload: u64,
    },
    /// Chunk of the echo of the recipient's next in-order contribution.
    Echo {
        /// Number of payload bits in this chunk.
        nbits: u64,
        /// Payload bits.
        payload: u64,
    },
}

impl MessageSize for AggMsg {
    fn size_bits(&self) -> u64 {
        match self {
            AggMsg::Up { nbits, .. } | AggMsg::Echo { nbits, .. } => 2 + nbits,
        }
    }
}

/// Incoming in-order chunk stream: reassembles consecutive `q`-bit values.
#[derive(Debug, Default, Clone)]
struct StreamIn {
    /// Next value index to complete.
    idx: usize,
    bits: u64,
    partial: u64,
}

impl StreamIn {
    /// Feed a chunk; returns a completed value if one just finished.
    fn feed(&mut self, q: u64, nbits: u64, payload: u64) -> Option<(usize, u64)> {
        self.partial |= (payload & mask(nbits)) << self.bits;
        self.bits += nbits;
        debug_assert!(self.bits <= q, "chunk overruns value boundary");
        if self.bits == q {
            let v = self.partial;
            let i = self.idx;
            self.idx += 1;
            self.bits = 0;
            self.partial = 0;
            Some((i, v))
        } else {
            None
        }
    }
}

/// Outgoing in-order chunk stream over a queue of whole values.
#[derive(Debug, Default, Clone)]
struct StreamOut {
    queue: VecDeque<u64>,
    bits_sent: u64,
}

impl StreamOut {
    fn push(&mut self, v: u64) {
        self.queue.push_back(v);
    }

    /// Produce the next chunk of up to `chunk` bits, if anything is queued.
    fn next_chunk(&mut self, q: u64, chunk: u64) -> Option<(u64, u64)> {
        let v = *self.queue.front()?;
        let len = chunk.min(q - self.bits_sent);
        let payload = (v >> self.bits_sent) & mask(len);
        self.bits_sent += len;
        if self.bits_sent == q {
            self.queue.pop_front();
            self.bits_sent = 0;
        }
        Some((len, payload))
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[inline]
fn mask(len: u64) -> u64 {
    if len == 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// Per-node state of the aggregation protocol.
#[derive(Debug)]
pub struct AggregateBatchProtocol {
    tree: TreeView,
    op: CommOp,
    q: u64,
    p: usize,
    chunk_bits: u64,
    /// Combined subtree values (starts as this node's own results).
    acc: Vec<u64>,
    /// Children whose value for index `i` is still outstanding.
    missing: Vec<usize>,
    /// Next index to forward up (strictly in order).
    next_up: usize,
    up_out: StreamOut,
    /// In-order reassembly per child, parallel to `tree.children`.
    child_in: Vec<StreamIn>,
    /// Echo streams per child (values echo in the order they arrived).
    echo_out: Vec<StreamOut>,
    /// Echo reassembly from the parent.
    echo_in: StreamIn,
    echoes_received: usize,
    /// Set if an echo did not match the value we sent (uncompute failure).
    echo_mismatch: bool,
}

impl AggregateBatchProtocol {
    /// Instances given tree views, per-node value vectors (all of length
    /// `p`), the value width `q ≤ 64`, the operation, and the chunk size.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent lengths, `q == 0`, `q > 64`, values not
    /// fitting in `q` bits, or `chunk_bits == 0`.
    pub fn instances(
        views: &[TreeView],
        values: &[Vec<u64>],
        q: u64,
        op: CommOp,
        chunk_bits: u64,
    ) -> Vec<Self> {
        assert_eq!(views.len(), values.len());
        assert!((1..=64).contains(&q), "value width must be 1..=64 bits");
        assert!(chunk_bits > 0);
        let p = values.first().map_or(0, |v| v.len());
        views
            .iter()
            .zip(values)
            .map(|(view, vals)| {
                assert_eq!(vals.len(), p, "every node supplies p values");
                if q < 64 {
                    assert!(vals.iter().all(|&v| v < (1u64 << q)), "value wider than q bits");
                }
                let nc = view.children.len();
                AggregateBatchProtocol {
                    tree: view.clone(),
                    op,
                    q,
                    p,
                    chunk_bits: chunk_bits.min(64),
                    acc: vals.clone(),
                    missing: vec![nc; p],
                    next_up: 0,
                    up_out: StreamOut::default(),
                    child_in: vec![StreamIn::default(); nc],
                    echo_out: vec![StreamOut::default(); nc],
                    echo_in: StreamIn::default(),
                    echoes_received: 0,
                    echo_mismatch: false,
                }
            })
            .collect()
    }

    /// The aggregated values (meaningful at the root after the run).
    pub fn aggregates(&self) -> &[u64] {
        &self.acc
    }

    /// Whether an uncompute echo mismatched (protocol-bug detector).
    pub fn echo_mismatch(&self) -> bool {
        self.echo_mismatch
    }

    fn child_pos(&self, c: NodeId) -> usize {
        self.tree
            .children
            .iter()
            .position(|&x| x == c)
            .expect("Up messages only flow from children")
    }
}

impl NodeProtocol for AggregateBatchProtocol {
    type Msg = AggMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, AggMsg>, inbox: &[(NodeId, AggMsg)]) {
        for (from, msg) in inbox {
            match *msg {
                AggMsg::Up { nbits, payload } => {
                    let pos = self.child_pos(*from);
                    if let Some((idx, v)) = self.child_in[pos].feed(self.q, nbits, payload) {
                        let combined = self.op.combine(self.acc[idx], v);
                        assert!(
                            self.q == 64 || combined < (1u64 << self.q),
                            "semigroup domain not closed: {combined} exceeds {} bits; \
                             pick q = log|A| large enough for aggregates (Theorem 8)",
                            self.q
                        );
                        self.acc[idx] = combined;
                        self.missing[idx] -= 1;
                        self.echo_out[pos].push(v);
                    }
                }
                AggMsg::Echo { nbits, payload } => {
                    if let Some((idx, v)) = self.echo_in.feed(self.q, nbits, payload) {
                        if v != self.acc[idx] {
                            self.echo_mismatch = true;
                        }
                        self.echoes_received += 1;
                    }
                }
            }
        }
        // Queue the next in-order completed values for the parent.
        if self.tree.parent.is_some() {
            while self.next_up < self.p && self.missing[self.next_up] == 0 {
                self.up_out.push(self.acc[self.next_up]);
                self.next_up += 1;
            }
        }
        // Stream one Up chunk per round toward the parent.
        if let Some(parent) = self.tree.parent {
            if let Some((nbits, payload)) = self.up_out.next_chunk(self.q, self.chunk_bits) {
                ctx.send(parent, AggMsg::Up { nbits, payload });
            }
        }
        // Stream one Echo chunk per round toward each child.
        for pos in 0..self.tree.children.len() {
            if let Some((nbits, payload)) = self.echo_out[pos].next_chunk(self.q, self.chunk_bits) {
                ctx.send(self.tree.children[pos], AggMsg::Echo { nbits, payload });
            }
        }
    }

    fn is_done(&self) -> bool {
        let combined_all = self.missing.iter().all(|&m| m == 0);
        let sent_all =
            self.tree.parent.is_none() || (self.next_up == self.p && self.up_out.is_idle());
        let echoed_all = self.tree.parent.is_none() || self.echoes_received == self.p;
        let echo_out_done = self.echo_out.iter().all(|s| s.is_idle());
        combined_all && sent_all && echoed_all && echo_out_done
    }
}

/// Result of one aggregated query batch.
#[derive(Debug, Clone)]
pub struct BatchAggregate {
    /// `⊕_v x_{jᵢ}^{(v)}` for each batch index `i`.
    pub values: Vec<u64>,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Driver: aggregate a batch of `p` per-node value vectors at the root of
/// `views` under `op`, with values of width `q ≤ 64` bits.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn aggregate_batch(
    net: &Network<'_>,
    views: &[TreeView],
    values: &[Vec<u64>],
    q: u64,
    op: CommOp,
) -> Result<BatchAggregate, RuntimeError> {
    let chunk = net.cap_bits().saturating_sub(2).clamp(1, 64);
    let root = views.iter().position(|v| v.parent.is_none()).expect("tree has a root");
    let run = net.run(AggregateBatchProtocol::instances(views, values, q, op, chunk))?;
    debug_assert!(run.nodes.iter().all(|n| !n.echo_mismatch()), "uncompute echo mismatch");
    Ok(BatchAggregate { values: run.nodes[root].aggregates().to_vec(), stats: run.stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::build_bfs_tree;
    use crate::generators::{balanced_tree, path, random_connected, star};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn comm_op_laws() {
        let ops = [CommOp::Sum, CommOp::Xor, CommOp::Min, CommOp::Max, CommOp::Or, CommOp::And];
        let vals = [0u64, 1, 7, 255, 1 << 40, u64::MAX];
        for op in ops {
            for &a in &vals {
                assert_eq!(op.combine(a, op.identity()), a, "{op:?} identity");
                for &b in &vals {
                    assert_eq!(op.combine(a, b), op.combine(b, a), "{op:?} commutative");
                    for &c in &vals {
                        assert_eq!(
                            op.combine(op.combine(a, b), c),
                            op.combine(a, op.combine(b, c)),
                            "{op:?} associative"
                        );
                    }
                }
            }
        }
    }

    fn check_aggregate(g: &crate::graph::Graph, p: usize, q: u64, op: CommOp, seed: u64) -> usize {
        let net = Network::new(g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let full = if q == 64 { u64::MAX } else { (1u64 << q) - 1 };
        // Sum must stay inside the q-bit domain across all n nodes.
        let lim = if op == CommOp::Sum { (full / g.n() as u64).max(1) } else { full };
        let values: Vec<Vec<u64>> =
            (0..g.n()).map(|_| (0..p).map(|_| rng.gen_range(0..=lim)).collect()).collect();
        let agg = aggregate_batch(&net, &tree.views, &values, q, op).unwrap();
        for i in 0..p {
            let want = op.fold(values.iter().map(|v| v[i]));
            assert_eq!(agg.values[i], want, "index {i} under {op:?}");
        }
        agg.stats.rounds
    }

    #[test]
    fn aggregates_match_reference_fold() {
        for op in [CommOp::Sum, CommOp::Xor, CommOp::Min, CommOp::Max, CommOp::Or, CommOp::And] {
            check_aggregate(&random_connected(20, 0.12, 5), 7, 16, op, 42);
        }
    }

    #[test]
    fn aggregate_on_families() {
        for g in [path(15), star(12), balanced_tree(2, 4)] {
            check_aggregate(&g, 5, 10, CommOp::Sum, 1);
        }
    }

    #[test]
    fn single_node_aggregate() {
        let g = crate::graph::Graph::from_edges(1, []).unwrap();
        check_aggregate(&g, 4, 8, CommOp::Max, 9);
    }

    #[test]
    fn wide_values_are_chunked() {
        // q = 64 > cap on a small graph forces chunking.
        let g = path(6);
        let rounds = check_aggregate(&g, 3, 64, CommOp::Xor, 3);
        assert!(rounds > 0);
    }

    #[test]
    fn large_batch_small_network() {
        // p = 512 >> n = 8: headerless in-order streaming must not break
        // the bandwidth cap (regression test for the log k > log n case).
        let g = path(8);
        let rounds = check_aggregate(&g, 512, 8, CommOp::Xor, 4);
        assert!(rounds >= 512, "at least one round per value on a path");
    }

    #[test]
    fn pipelining_beats_sequential_bound() {
        // (D + p) scaling, not D * p: on a path of length D with p values,
        // rounds must be well below p * D once both are large.
        let g = path(24);
        let d = 23usize;
        let p = 20usize;
        let rounds = check_aggregate(&g, p, 8, CommOp::Sum, 7);
        assert!(rounds < d * p, "rounds {rounds} should be ~(D + p), far below D*p = {}", d * p);
        assert!(rounds >= d, "information must cross the path");
    }

    #[test]
    fn empty_batch_is_trivial() {
        let g = path(4);
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let values: Vec<Vec<u64>> = vec![vec![]; 4];
        let agg = aggregate_batch(&net, &tree.views, &values, 8, CommOp::Sum).unwrap();
        assert!(agg.values.is_empty());
        assert_eq!(agg.stats.rounds, 0);
    }
}
