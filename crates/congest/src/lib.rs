//! # congest — a deterministic CONGEST-model network simulator
//!
//! This crate is the distributed-computing substrate for the reproduction of
//! *"A Framework for Distributed Quantum Queries in the CONGEST Model"*
//! (van Apeldoorn & de Vos, PODC 2022). It provides:
//!
//! * [`graph`] — immutable network topologies with centralized reference
//!   algorithms (BFS, eccentricities, girth) used as ground truth;
//! * [`generators`] — the topology families used in the paper's upper- and
//!   lower-bound arguments;
//! * [`runtime`] — the synchronous round engine: per-node state machines,
//!   per-edge bandwidth caps of `O(log n)` (qu)bits, exact round counting;
//! * [`bfs`] — BFS trees, pipelined multi-source BFS (`O(|S| + D)`),
//!   source eccentricities (Lemma 20), leader election;
//! * [`tree_comm`] — pipelined register distribution and gathering over a
//!   BFS tree (the mechanics of Lemma 7);
//! * [`aggregate`] — commutative-semigroup convergecast with uncompute
//!   echoes (the query step of Theorem 8);
//! * [`clustering`] — `d`-separated low-diameter clustering (Lemma 24);
//! * [`faults`] — deterministic, seeded fault injection (drops, outages,
//!   degraded links, delays) and the [`Reliable`](faults::Reliable)
//!   ack/retry wrapper for loss tolerance;
//! * [`conformance`] — audited runs that report every model-contract
//!   breach with round/edge provenance, plus a cross-engine differential
//!   checker;
//! * [`telemetry`] — structured, deterministic run telemetry: hierarchical
//!   spans on the round timebase, counters/histograms, per-edge load, and
//!   Perfetto-compatible trace export.
//!
//! Rounds are *measured by execution*, never computed from formulas: every
//! protocol here is an honest message-passing state machine, and the engine
//! rejects runs that exceed the bandwidth cap.
//!
//! # Quickstart
//!
//! ```
//! use congest::generators::grid;
//! use congest::runtime::Network;
//! use congest::bfs::build_bfs_tree;
//!
//! let g = grid(8, 8);
//! let net = Network::new(&g);
//! let tree = build_bfs_tree(&net, 0)?;
//! assert_eq!(tree.depth, 14); // corner-to-corner
//! println!("BFS took {} rounds", tree.stats.rounds);
//! # Ok::<(), congest::runtime::RuntimeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod bfs;
pub mod clustering;
pub mod conformance;
pub mod faults;
pub mod generators;
pub mod graph;
pub mod runtime;
pub mod telemetry;
pub mod tree_comm;

pub use graph::{Dist, Graph, NodeId};
pub use runtime::{
    Exec, Network, NodeProtocol, RoundLedger, RunObserver, RunOutput, RunStats, RuntimeError,
};
