//! Undirected graph representation used as the CONGEST network topology.
//!
//! The graph is stored in compressed-sparse-row (CSR) form: construction is
//! `O(n + m)`, neighbor iteration is contiguous, and the structure is
//! immutable after construction — matching the CONGEST model where the
//! topology is fixed for the lifetime of an execution.
//!
//! Besides the topology itself this module provides *reference* (centralized)
//! graph algorithms — BFS distances, eccentricities, diameter, radius, girth,
//! shortest-cycle queries. These are used to validate the distributed
//! protocols against ground truth and to construct worst-case inputs; they
//! are **not** part of any protocol's round count.

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a network node, in `0..n`.
///
/// The CONGEST model gives every node a unique `O(log n)`-bit identifier;
/// we use the dense integers `0..n` so an identifier always fits in
/// `⌈log₂ n⌉` bits.
pub type NodeId = usize;

/// Distance value; `u32::MAX` never occurs in a connected graph of
/// supported size.
pub type Dist = u32;

/// Error produced when constructing a [`Graph`] from an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum GraphError {
    /// An endpoint was `>= n`.
    EndpointOutOfRange { edge: (NodeId, NodeId), n: usize },
    /// A self-loop `(v, v)` was supplied; CONGEST links connect distinct nodes.
    SelfLoop(NodeId),
    /// The same undirected edge appeared twice.
    DuplicateEdge(NodeId, NodeId),
    /// A graph with zero nodes was requested.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { edge, n } => {
                write!(f, "edge ({}, {}) has endpoint outside 0..{}", edge.0, edge.1, n)
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::Empty => write!(f, "graph must have at least one node"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, undirected, simple graph in CSR form.
///
/// # Examples
///
/// ```
/// use congest::graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.diameter(), Some(3));
/// # Ok::<(), congest::graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists, length `2m`.
    neighbors: Vec<NodeId>,
    /// The original edge list with `u < v`, sorted.
    edges: Vec<(NodeId, NodeId)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph").field("n", &self.n).field("m", &self.edges.len()).finish()
    }
}

impl Graph {
    /// Builds a graph on `n` nodes from an iterator of undirected edges.
    ///
    /// Edges may be given in either orientation; they are normalized to
    /// `u < v`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops, duplicate
    /// edges, or `n == 0`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut norm: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            if u >= n || v >= n {
                return Err(GraphError::EndpointOutOfRange { edge: (u, v), n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            norm.push((u.min(v), u.max(v)));
        }
        norm.sort_unstable();
        for w in norm.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge(w[0].0, w[0].1));
            }
        }
        let mut deg = vec![0usize; n];
        for &(u, v) in &norm {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut neighbors = vec![0; 2 * norm.len()];
        let mut fill = offsets.clone();
        for &(u, v) in &norm {
            neighbors[fill[u]] = v;
            fill[u] += 1;
            neighbors[fill[v]] = u;
            fill[v] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(Graph { n, offsets, neighbors, edges: norm })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The normalized (`u < v`, sorted) edge list.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// A deterministic pseudo-random sample of up to `count` distinct edges.
    ///
    /// The same `(graph, count, seed)` always yields the same sample in the
    /// same order — the selection is a partial Fisher–Yates shuffle driven
    /// by a SplitMix64 stream, with no global RNG involved — so fault plans
    /// built from it replay identically across engines and processes.
    pub fn sample_edges(&self, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut edges = self.edges.clone();
        let count = count.min(edges.len());
        let mut state = seed;
        for i in 0..count {
            // SplitMix64: advance, then finalize into a well-mixed draw.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let j = i + (z % (edges.len() - i) as u64) as usize;
            edges.swap(i, j);
        }
        edges.truncate(count);
        edges
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether `{u, v}` is an edge (binary search on the sorted adjacency).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The index of `w` within the sorted neighbor list of `v`, or `None`
    /// if `{v, w}` is not an edge.
    ///
    /// `neighbor_rank(v, w) == Some(r)` iff `neighbors(v)[r] == w`; the rank
    /// is a dense per-endpoint edge index, which lets the round engine keep
    /// per-edge load counters in a flat array instead of a keyed map.
    #[inline]
    pub fn neighbor_rank(&self, v: NodeId, w: NodeId) -> Option<usize> {
        if v == w {
            return None;
        }
        self.neighbors(v).binary_search(&w).ok()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of bits needed to name a node: `⌈log₂ n⌉`, at least 1.
    pub fn id_bits(&self) -> u64 {
        bits_for(self.n.saturating_sub(1) as u64)
    }

    /// BFS distances from `src`; `None` for unreachable nodes.
    ///
    /// This is a centralized reference algorithm (`O(n + m)`).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<Dist>> {
        assert!(src < self.n, "source {src} out of range");
        let mut dist = vec![None; self.n];
        dist[src] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].unwrap();
            for &w in self.neighbors(u) {
                if dist[w].is_none() {
                    dist[w] = Some(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected. A single node counts as connected.
    pub fn is_connected(&self) -> bool {
        self.bfs_distances(0).iter().all(|d| d.is_some())
    }

    /// Eccentricity of `v` (max distance to any node), or `None` if the
    /// graph is disconnected.
    pub fn eccentricity(&self, v: NodeId) -> Option<Dist> {
        let d = self.bfs_distances(v);
        let mut ecc = 0;
        for x in d {
            ecc = ecc.max(x?);
        }
        Some(ecc)
    }

    /// All eccentricities, or `None` if disconnected. `O(n(n + m))`.
    pub fn eccentricities(&self) -> Option<Vec<Dist>> {
        (0..self.n).map(|v| self.eccentricity(v)).collect()
    }

    /// Diameter (max eccentricity), or `None` if disconnected.
    pub fn diameter(&self) -> Option<Dist> {
        Some(self.eccentricities()?.into_iter().max().unwrap_or(0))
    }

    /// Radius (min eccentricity), or `None` if disconnected.
    pub fn radius(&self) -> Option<Dist> {
        Some(self.eccentricities()?.into_iter().min().unwrap_or(0))
    }

    /// Average eccentricity, or `None` if disconnected.
    pub fn average_eccentricity(&self) -> Option<f64> {
        let e = self.eccentricities()?;
        Some(e.iter().map(|&x| x as f64).sum::<f64>() / self.n as f64)
    }

    /// Length of the shortest cycle through node `v`, if any, found by BFS
    /// from `v`: the first time two distinct BFS-tree branches from `v`
    /// meet (by edge or at a node) closes the shortest cycle through `v`.
    pub fn shortest_cycle_through(&self, v: NodeId) -> Option<Dist> {
        // BFS labelling each visited node with the first-hop branch it was
        // reached through; an edge between different branches, or between a
        // node and `v`'s other neighbor, closes a cycle through `v`.
        let mut dist = vec![Dist::MAX; self.n];
        let mut branch = vec![usize::MAX; self.n];
        dist[v] = 0;
        let mut queue = VecDeque::new();
        for (i, &w) in self.neighbors(v).iter().enumerate() {
            if dist[w] == Dist::MAX {
                dist[w] = 1;
                branch[w] = i;
                queue.push_back(w);
            } else {
                // Multi-edge impossible in a simple graph.
                unreachable!("simple graph cannot revisit a neighbor of v");
            }
        }
        let mut best = None;
        while let Some(u) = queue.pop_front() {
            if let Some(b) = best {
                if 2 * dist[u] >= b {
                    break;
                }
            }
            for &w in self.neighbors(u) {
                if w == v {
                    continue;
                }
                if dist[w] == Dist::MAX {
                    dist[w] = dist[u] + 1;
                    branch[w] = branch[u];
                    queue.push_back(w);
                } else if branch[w] != branch[u] {
                    let cand = dist[u] + dist[w] + 1;
                    best = Some(best.map_or(cand, |b: Dist| b.min(cand)));
                }
            }
        }
        best
    }

    /// The girth (length of the shortest cycle), or `None` for a forest.
    ///
    /// Centralized reference: `O(n(n + m))` via
    /// [`shortest_cycle_through`](Self::shortest_cycle_through) per node.
    pub fn girth(&self) -> Option<Dist> {
        (0..self.n).filter_map(|v| self.shortest_cycle_through(v)).min()
    }

    /// Whether the graph contains a cycle of length at most `k`.
    pub fn has_cycle_at_most(&self, k: Dist) -> bool {
        self.girth().is_some_and(|g| g <= k)
    }

    /// A BFS tree from `root`, as a parent array (`parent[root] == root`).
    ///
    /// Ties (several neighbors at the same distance) are broken toward the
    /// smallest parent identifier, matching the distributed BFS protocol's
    /// deterministic tie-break so trees can be compared in tests.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or `root >= n`.
    pub fn bfs_tree(&self, root: NodeId) -> Vec<NodeId> {
        let dist = self.bfs_distances(root);
        let mut parent = vec![usize::MAX; self.n];
        parent[root] = root;
        for v in 0..self.n {
            if v == root {
                continue;
            }
            let dv = dist[v].expect("bfs_tree requires a connected graph");
            let p = self
                .neighbors(v)
                .iter()
                .copied()
                .find(|&u| dist[u] == Some(dv - 1))
                .expect("BFS invariant: some neighbor is one closer to the root");
            parent[v] = p;
        }
        parent
    }

    /// Nodes sorted by distance from `root`, i.e. a valid top-down
    /// processing order of the BFS tree.
    pub fn bfs_order(&self, root: NodeId) -> Vec<NodeId> {
        let dist = self.bfs_distances(root);
        let mut order: Vec<NodeId> = (0..self.n).collect();
        order.sort_by_key(|&v| dist[v].unwrap_or(Dist::MAX));
        order
    }

    /// All nodes within distance `radius` of any node in `seeds`.
    ///
    /// # Panics
    ///
    /// Panics if a seed is out of range.
    pub fn ball(&self, seeds: &[NodeId], radius: Dist) -> Vec<NodeId> {
        let mut dist = vec![Dist::MAX; self.n];
        let mut queue = VecDeque::new();
        for &s in seeds {
            assert!(s < self.n, "seed {s} out of range");
            if dist[s] == Dist::MAX {
                dist[s] = 0;
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            if dist[u] >= radius {
                continue;
            }
            for &w in self.neighbors(u) {
                if dist[w] == Dist::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        (0..self.n).filter(|&v| dist[v] != Dist::MAX).collect()
    }

    /// The subgraph induced by `nodes` (which may be unsorted but must be
    /// duplicate-free), with nodes relabelled `0..nodes.len()` in the given
    /// order. Returns the subgraph and the old-id list (`new → old`).
    ///
    /// # Panics
    ///
    /// Panics on duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut remap = vec![usize::MAX; self.n];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(v < self.n, "node {v} out of range");
            assert!(remap[v] == usize::MAX, "duplicate node {v}");
            remap[v] = i;
        }
        let edges: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .filter(|&&(u, v)| remap[u] != usize::MAX && remap[v] != usize::MAX)
            .map(|&(u, v)| (remap[u], remap[v]))
            .collect();
        let sub = Graph::from_edges(nodes.len().max(1), edges).expect("induced subgraph is valid");
        (sub, nodes.to_vec())
    }

    /// Histogram of degrees (index = degree).
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_degree() + 1];
        for v in 0..self.n {
            h[self.degree(v)] += 1;
        }
        h
    }
}

/// Number of bits needed to represent values `0..=x`: `⌈log₂(x + 1)⌉`,
/// at least 1.
///
/// # Examples
///
/// ```
/// use congest::graph::bits_for;
/// assert_eq!(bits_for(0), 1);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(2), 2);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// ```
pub fn bits_for(x: u64) -> u64 {
    (64 - x.leading_zeros() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn construction_normalizes_and_sorts() {
        let g = Graph::from_edges(3, [(2, 1), (1, 0)]).unwrap();
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            Graph::from_edges(2, [(0, 2)]),
            Err(GraphError::EndpointOutOfRange { .. })
        ));
        assert!(matches!(Graph::from_edges(2, [(1, 1)]), Err(GraphError::SelfLoop(1))));
        assert!(matches!(
            Graph::from_edges(2, [(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(0, 1))
        ));
        assert!(matches!(Graph::from_edges(0, []), Err(GraphError::Empty)));
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, []).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
        assert_eq!(g.radius(), Some(0));
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn path_metrics() {
        let g = path(5);
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.radius(), Some(2));
        assert_eq!(g.eccentricity(0), Some(4));
        assert_eq!(g.eccentricity(2), Some(2));
        assert_eq!(g.girth(), None);
        assert!(!g.has_cycle_at_most(100));
    }

    #[test]
    fn cycle_metrics() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(g.diameter(), Some(3));
        assert_eq!(g.radius(), Some(3));
        assert_eq!(g.girth(), Some(6));
        assert!(g.has_cycle_at_most(6));
        assert!(!g.has_cycle_at_most(5));
        for v in 0..6 {
            assert_eq!(g.shortest_cycle_through(v), Some(6));
        }
    }

    #[test]
    fn triangle_with_tail_girth() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.girth(), Some(3));
        assert_eq!(g.shortest_cycle_through(0), Some(3));
        assert_eq!(g.shortest_cycle_through(4), None);
    }

    #[test]
    fn complete_graph_girth_three() {
        let mut edges = vec![];
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, edges).unwrap();
        assert_eq!(g.girth(), Some(3));
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn petersen_girth_five() {
        // The Petersen graph: outer 5-cycle, inner 5-star polygon, spokes.
        let mut e = vec![];
        for i in 0..5 {
            e.push((i, (i + 1) % 5)); // outer cycle
            e.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
            e.push((i, 5 + i)); // spokes
        }
        let g = Graph::from_edges(10, e).unwrap();
        assert_eq!(g.girth(), Some(5));
        assert_eq!(g.diameter(), Some(2));
        assert!(g.has_cycle_at_most(5));
        assert!(!g.has_cycle_at_most(4));
    }

    #[test]
    fn disconnected_reports_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.radius(), None);
        assert_eq!(g.eccentricity(0), None);
    }

    #[test]
    fn bfs_tree_parents_decrease_distance() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]).unwrap();
        let parent = g.bfs_tree(0);
        let dist = g.bfs_distances(0);
        assert_eq!(parent[0], 0);
        for v in 1..6 {
            assert_eq!(dist[parent[v]].unwrap() + 1, dist[v].unwrap());
        }
    }

    #[test]
    fn even_cycle_shortest_through_each_node() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for v in 0..4 {
            assert_eq!(g.shortest_cycle_through(v), Some(4));
        }
    }

    #[test]
    fn ball_and_induced_subgraph() {
        let g = path(10);
        assert_eq!(g.ball(&[5], 2), vec![3, 4, 5, 6, 7]);
        assert_eq!(g.ball(&[0, 9], 1), vec![0, 1, 8, 9]);
        assert_eq!(g.ball(&[4], 0), vec![4]);
        let (sub, ids) = g.induced_subgraph(&[3, 4, 5, 7]);
        assert_eq!(sub.n(), 4);
        assert_eq!(sub.m(), 2); // 3-4, 4-5; node 7 isolated
        assert_eq!(ids, vec![3, 4, 5, 7]);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        path(5).induced_subgraph(&[1, 1]);
    }

    #[test]
    fn neighbor_rank_indexes_adjacency() {
        let g = Graph::from_edges(5, [(0, 1), (0, 3), (0, 4), (2, 3)]).unwrap();
        assert_eq!(g.neighbor_rank(0, 1), Some(0));
        assert_eq!(g.neighbor_rank(0, 3), Some(1));
        assert_eq!(g.neighbor_rank(0, 4), Some(2));
        assert_eq!(g.neighbor_rank(0, 2), None);
        assert_eq!(g.neighbor_rank(0, 0), None);
        assert_eq!(g.neighbor_rank(3, 0), Some(0));
        assert_eq!(g.neighbor_rank(3, 2), Some(1));
        for v in 0..5 {
            for (r, &w) in g.neighbors(v).iter().enumerate() {
                assert_eq!(g.neighbor_rank(v, w), Some(r));
            }
        }
    }

    #[test]
    fn degree_histogram_counts() {
        let g = path(5);
        let h = g.degree_histogram();
        assert_eq!(h, vec![0, 2, 3]); // two endpoints, three inner nodes
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn id_bits_matches_n() {
        let g = path(2);
        assert_eq!(g.id_bits(), 1);
        let g = path(1000);
        assert_eq!(g.id_bits(), 10);
    }
}
