//! Structured, deterministic telemetry for protocol runs.
//!
//! The flat per-round [`Trace`](crate::runtime::Trace) answers *how much*
//! a run cost; this module answers *where* the cost went. A [`Collector`]
//! records
//!
//! * **spans** — a hierarchy of named intervals (protocol → phase → batch)
//!   measured on the round-index timebase, entered either by drivers
//!   ([`Collector::enter`]/[`Collector::exit`], [`Collector::record_run`],
//!   [`Collector::absorb_ledger`]) or implicitly around an instrumented
//!   engine run;
//! * **counters and histograms** — monotone sums and power-of-two-bucketed
//!   distributions, bumped by drivers or by protocols through
//!   [`Ctx::count`](crate::runtime::Ctx::count) /
//!   [`Ctx::observe`](crate::runtime::Ctx::observe);
//! * **per-round samples** — the engine's message/bit/drop accounting,
//!   subsuming [`RoundTrace`], each stamped with its absolute round index;
//! * **per-edge cumulative load** — total (qu)bits offered per directed
//!   edge, for congestion heatmaps;
//! * **marks** — instant per-node events emitted by protocols via
//!   [`Ctx::mark`](crate::runtime::Ctx::mark).
//!
//! # Determinism contract
//!
//! Everything a [`Collector`] records from the engine is **round-indexed,
//! never wall-clock-timed**, and recorded in node order: the parallel
//! engine stages telemetry in per-lane shard buffers and merges them back
//! in fixed chunk (= node id) order, so a run instrumented under
//! [`EngineMode::Sequential`](crate::runtime::EngineMode) and under
//! `EngineMode::Parallel { .. }` exports **byte-identical** trace and
//! metrics files. The single explicitly non-deterministic input is
//! [`Collector::wall_annotation`], an opt-in wall-clock note that is kept
//! in a separate section of the metrics export and never enters the trace
//! timeline.
//!
//! # Overhead when disabled
//!
//! Telemetry is off unless a run attaches a collector via
//! [`Exec::telemetry`](crate::runtime::Exec::telemetry): without one the
//! engine passes a `None` sink, so the only cost is one untaken branch per
//! routed sender and a null field in each per-round context — nothing is
//! allocated and no string is formatted.
//!
//! # Export formats
//!
//! * [`Collector::to_chrome_jsonl`] — Chrome trace-event objects, one JSON
//!   object per line (Perfetto's JSON importer accepts newline-delimited
//!   events). The `ts`/`dur` fields carry **round indices**, not
//!   microseconds.
//! * [`Collector::metrics_json`] — a compact machine-readable summary:
//!   counters, histograms, span table, per-edge loads.
//! * [`Collector::render`] — a terminal report: span tree with round
//!   attribution, counters, bucketed histograms, and a per-edge
//!   congestion heatmap.

use crate::graph::NodeId;
use crate::runtime::{RoundLedger, RoundTrace, RunObserver, RunStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One named interval on the round timebase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span label, e.g. `"meeting-scheduling"`, `"batch"`, `"distribute"`.
    pub name: String,
    /// Nesting depth (0 = root).
    pub depth: u16,
    /// Round index at which the span opened.
    pub start: u64,
    /// Rounds covered (set when the span closes; open spans report 0).
    pub rounds: u64,
}

/// One engine round, stamped with its absolute round index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSample {
    /// Absolute round index on the collector's timebase.
    pub round: u64,
    /// The round's accounting (same shape as a traced run's entry).
    pub trace: RoundTrace,
}

/// An instant per-node event emitted by a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mark {
    /// Absolute round index.
    pub round: u64,
    /// The emitting node.
    pub node: NodeId,
    /// Event label.
    pub label: String,
}

/// A power-of-two-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts observations whose bit width is `i` (bucket 0 holds
/// the value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7,
/// …), so the bucket layout is value-independent and merges are exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        let idx = (64 - v.leading_zeros()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Mean observation (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(bucket lower bound, count)` for every non-empty bucket, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// Per-round telemetry staged by one engine worker before the coordinator
/// folds it into the [`Collector`].
///
/// The sequential engine owns exactly one shard; the parallel engine owns
/// one per lane and merges them in chunk (= node id) order, which is what
/// makes instrumented runs bit-identical across
/// [`EngineMode`](crate::runtime::EngineMode)s.
#[derive(Debug, Default)]
pub struct Shard {
    /// `(node, label)` marks, in emission (= node) order.
    pub(crate) marks: Vec<(NodeId, String)>,
    /// Counter bumps, in emission order.
    pub(crate) counts: Vec<(&'static str, u64)>,
    /// Histogram observations, in emission order.
    pub(crate) observations: Vec<(&'static str, u64)>,
    /// Per-edge offered load `(from, to, bits)` flushed by the router.
    pub(crate) edges: Vec<(NodeId, NodeId, u64)>,
}

/// The recording surface shared by telemetry sinks.
///
/// [`Collector`] is the concrete implementation used throughout the repo;
/// the trait exists so drivers that only *record* (spans, counters,
/// histograms, round advances) can be written against the interface and
/// tested with lightweight fakes, without committing to the collector's
/// storage or export formats.
pub trait Recorder {
    /// Open a span at the current position on the round timebase.
    fn enter(&mut self, name: &str);
    /// Close the innermost open span.
    fn exit(&mut self);
    /// Advance the round timebase by `rounds`.
    fn advance(&mut self, rounds: u64);
    /// Add `v` to the named counter.
    fn add(&mut self, name: &str, v: u64);
    /// Record one observation in the named histogram.
    fn observe(&mut self, name: &str, v: u64);

    /// Record a completed phase as a leaf span covering `stats.rounds`
    /// rounds, folding its totals into the standard `engine.*` counters.
    fn record_run(&mut self, name: &str, stats: &RunStats) {
        self.enter(name);
        self.advance(stats.rounds as u64);
        self.add("engine.messages", stats.messages);
        self.add("engine.bits", stats.total_bits);
        self.add("engine.dropped", stats.dropped);
        self.exit();
    }
}

/// The telemetry observer: enables shard staging in the engine and folds
/// each round's accounting + shard contents into the collector, advancing
/// its cursor by the run's measured rounds on finish. Attached by
/// [`Exec::telemetry`](crate::runtime::Exec::telemetry).
impl RunObserver for &mut Collector {
    fn collects_telemetry(&self) -> bool {
        true
    }

    fn on_round_start(&mut self, round: usize) {
        if round == 0 {
            self.begin_engine_run();
        }
    }

    fn on_round_end(&mut self, _round: usize, trace: RoundTrace, shard: &mut Shard) {
        self.engine_round(trace, shard);
    }

    fn on_finish(&mut self, stats: &RunStats) {
        self.finish_engine_run(stats);
    }
}

impl Recorder for Collector {
    fn enter(&mut self, name: &str) {
        Collector::enter(self, name);
    }
    fn exit(&mut self) {
        Collector::exit(self);
    }
    fn advance(&mut self, rounds: u64) {
        Collector::advance(self, rounds);
    }
    fn add(&mut self, name: &str, v: u64) {
        Collector::add(self, name, v);
    }
    fn observe(&mut self, name: &str, v: u64) {
        Collector::observe(self, name, v);
    }
}

/// The telemetry sink: spans, counters, histograms, round samples, edge
/// loads, and marks, all on one round-indexed timebase.
///
/// # Examples
///
/// ```
/// use congest::telemetry::Collector;
/// use congest::runtime::RunStats;
///
/// let mut col = Collector::new();
/// col.enter("protocol");
/// col.record_run("setup", &RunStats { rounds: 4, ..Default::default() });
/// col.record_run("query", &RunStats { rounds: 9, ..Default::default() });
/// col.exit();
/// assert_eq!(col.cursor(), 13);
/// assert_eq!(col.spans().len(), 3);
/// assert!(col.to_chrome_jsonl().lines().count() >= 3);
/// ```
#[derive(Debug, Default)]
pub struct Collector {
    spans: Vec<Span>,
    stack: Vec<usize>,
    cursor: u64,
    in_run_round: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    edges: BTreeMap<(NodeId, NodeId), u64>,
    rounds: Vec<RoundSample>,
    marks: Vec<Mark>,
    wall: Vec<(String, u64)>,
}

impl Collector {
    /// An empty collector at round 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current position on the round timebase.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Advance the timebase by `rounds` (used after an uninstrumented
    /// phase whose cost is known from its [`RunStats`]).
    pub fn advance(&mut self, rounds: u64) {
        self.cursor += rounds;
    }

    /// Open a span at the current cursor.
    pub fn enter(&mut self, name: &str) {
        let depth = self.stack.len() as u16;
        self.stack.push(self.spans.len());
        self.spans.push(Span { name: name.to_string(), depth, start: self.cursor, rounds: 0 });
    }

    /// Close the innermost open span; its length is the rounds elapsed
    /// since [`enter`](Self::enter).
    ///
    /// # Panics
    ///
    /// Panics if no span is open.
    pub fn exit(&mut self) {
        let idx = self.stack.pop().expect("exit without a matching enter");
        self.spans[idx].rounds = self.cursor - self.spans[idx].start;
    }

    /// Record a completed phase as a leaf span covering `stats.rounds`
    /// rounds, and fold its message/bit/drop totals into the counters.
    pub fn record_run(&mut self, name: &str, stats: &RunStats) {
        self.enter(name);
        self.advance(stats.rounds as u64);
        self.add("engine.messages", stats.messages);
        self.add("engine.bits", stats.total_bits);
        self.add("engine.dropped", stats.dropped);
        self.exit();
    }

    /// Convert a driver's [`RoundLedger`] into a span tree rooted at
    /// `protocol`: consecutive phases sharing the same `/`-prefix (e.g.
    /// the `batch/...` triplets of the framework oracle) are grouped under
    /// one parent span, so a ledger like `setup/leader-election,
    /// setup/bfs-tree, batch/distribute, batch/aggregate, batch/gather,
    /// batch/distribute, …` becomes `protocol → {setup → …, batch → …}`.
    pub fn absorb_ledger(&mut self, protocol: &str, ledger: &RoundLedger) {
        self.enter(protocol);
        let phases = ledger.phases();
        let mut i = 0;
        while i < phases.len() {
            let (name, _) = &phases[i];
            match name.split_once('/') {
                Some((group, _)) => {
                    self.enter(group);
                    while i < phases.len() {
                        let (n, stats) = &phases[i];
                        match n.split_once('/') {
                            Some((g, rest)) if g == group => {
                                self.record_run(rest, stats);
                                i += 1;
                            }
                            _ => break,
                        }
                    }
                    self.exit();
                }
                None => {
                    let (_, stats) = &phases[i];
                    self.record_run(name, stats);
                    i += 1;
                }
            }
        }
        self.exit();
    }

    /// Add `v` to the named counter.
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Record one observation in the named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Attach an explicitly non-deterministic wall-clock annotation (in
    /// microseconds). Annotations live in their own section of the metrics
    /// export, never in the trace timeline — see the module docs'
    /// determinism contract.
    pub fn wall_annotation(&mut self, name: &str, micros: u64) {
        self.wall.push((name.to_string(), micros));
    }

    /// All spans, in open (pre-)order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The named counter's value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Per-round samples of every instrumented engine run, in order.
    pub fn round_samples(&self) -> &[RoundSample] {
        &self.rounds
    }

    /// Cumulative offered load per directed edge, sorted by `(from, to)`.
    pub fn edge_loads(&self) -> &BTreeMap<(NodeId, NodeId), u64> {
        &self.edges
    }

    /// Protocol marks, in round then node order.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    // --- engine-facing interface (crate-internal) --------------------

    /// Start an instrumented engine run: local round 0 is the cursor.
    pub(crate) fn begin_engine_run(&mut self) {
        self.in_run_round = 0;
    }

    /// Fold one executed round into the collector: the round's accounting
    /// plus the (already node-ordered) shard contents.
    pub(crate) fn engine_round(&mut self, trace: RoundTrace, shard: &mut Shard) {
        let round = self.cursor + self.in_run_round;
        self.in_run_round += 1;
        self.rounds.push(RoundSample { round, trace });
        for (node, label) in shard.marks.drain(..) {
            self.marks.push(Mark { round, node, label });
        }
        for (name, v) in shard.counts.drain(..) {
            *self.counters.entry(name.to_string()).or_insert(0) += v;
        }
        for (name, v) in shard.observations.drain(..) {
            self.histograms.entry(name.to_string()).or_default().observe(v);
        }
        for (from, to, bits) in shard.edges.drain(..) {
            *self.edges.entry((from, to)).or_insert(0) += bits;
        }
    }

    /// End an instrumented engine run that measured `rounds` rounds:
    /// trailing quiet samples are truncated (mirroring
    /// [`Trace`](crate::runtime::Trace)'s truncation) and the cursor
    /// advances, folding the run's totals into the counters.
    pub(crate) fn finish_engine_run(&mut self, stats: &RunStats) {
        let end = self.cursor + stats.rounds as u64;
        self.rounds.retain(|s| s.round < end);
        self.cursor = end;
        self.in_run_round = 0;
        self.add("engine.messages", stats.messages);
        self.add("engine.bits", stats.total_bits);
        self.add("engine.dropped", stats.dropped);
    }

    // --- exporters ---------------------------------------------------

    /// Export as Chrome trace-event JSONL: one event object per line,
    /// loadable by Perfetto and `chrome://tracing` (both accept
    /// newline-delimited event objects). `ts` and `dur` are **round
    /// indices**.
    pub fn to_chrome_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"congest rounds\"}}\n",
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{\"depth\":{}}}}}",
                json_escape(&s.name),
                s.start,
                s.rounds,
                s.depth
            );
        }
        for m in &self.marks {
            let _ = writeln!(
                out,
                "{{\"name\":{},\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                json_escape(&m.label),
                m.round,
                m.node + 1
            );
        }
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "{{\"name\":\"round\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"messages\":{},\"bits\":{},\"dropped\":{}}}}}",
                r.round, r.trace.messages, r.trace.bits, r.trace.dropped
            );
        }
        out
    }

    /// Export the compact metrics summary as a JSON object.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"rounds\": {},", self.cursor);
        out.push_str("  \"counters\": {");
        let items: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("{}: {}", json_escape(k), v)).collect();
        out.push_str(&items.join(", "));
        out.push_str("},\n");
        out.push_str("  \"histograms\": {");
        let items: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> =
                    h.buckets().iter().map(|(lo, c)| format!("[{lo}, {c}]")).collect();
                format!(
                    "{}: {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                    json_escape(k),
                    h.count,
                    h.sum,
                    h.max,
                    buckets.join(", ")
                )
            })
            .collect();
        out.push_str(&items.join(", "));
        out.push_str("},\n");
        out.push_str("  \"spans\": [");
        let items: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": {}, \"depth\": {}, \"start\": {}, \"rounds\": {}}}",
                    json_escape(&s.name),
                    s.depth,
                    s.start,
                    s.rounds
                )
            })
            .collect();
        out.push_str(&items.join(", "));
        out.push_str("],\n");
        out.push_str("  \"edges\": [");
        let items: Vec<String> =
            self.edges.iter().map(|(&(f, t), &bits)| format!("[{f}, {t}, {bits}]")).collect();
        out.push_str(&items.join(", "));
        out.push_str("],\n");
        out.push_str("  \"wall_annotations\": [");
        let items: Vec<String> =
            self.wall.iter().map(|(k, us)| format!("[{}, {}]", json_escape(k), us)).collect();
        out.push_str(&items.join(", "));
        out.push_str("]\n}\n");
        out
    }

    /// Render a terminal report: span tree with round attribution,
    /// counters, bucketed histograms, and the per-edge congestion heatmap
    /// (`width` bounds both bar width and the number of heatmap rows).
    pub fn render(&self, width: usize) -> String {
        let width = width.max(8);
        let mut out = String::new();
        let total = self.cursor.max(1);
        out.push_str("phase breakdown (rounds):\n");
        for s in &self.spans {
            let bar = ((s.rounds * width as u64) / total) as usize;
            let _ = writeln!(
                out,
                "  {:indent$}{:<24} {:>7} | {}",
                "",
                s.name,
                s.rounds,
                "#".repeat(bar),
                indent = 2 * s.depth as usize
            );
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<32} {v:>12}");
            }
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {k} (count {}, mean {:.1}, max {}):",
                h.count,
                h.mean(),
                h.max
            );
            let peak = h.buckets().iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
            for (lo, c) in h.buckets() {
                let bar = ((c * width as u64) / peak) as usize;
                let _ = writeln!(out, "  >= {lo:>10} | {:<width$} {c}", "#".repeat(bar));
            }
        }
        if !self.edges.is_empty() {
            let _ = writeln!(
                out,
                "edge load heatmap (top {width} of {} edges, bits):",
                self.edges.len()
            );
            let mut loads: Vec<(NodeId, NodeId, u64)> =
                self.edges.iter().map(|(&(f, t), &b)| (f, t, b)).collect();
            // Hottest first; ties broken by (from, to) so the report is
            // stable across engines and replays.
            loads.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
            let peak = loads.first().map_or(1, |l| l.2).max(1);
            const RAMP: &[u8] = b" .:-=+*#%@";
            for &(f, t, bits) in loads.iter().take(width) {
                let bar = ((bits * width as u64) / peak) as usize;
                let shade = RAMP[(bits * (RAMP.len() as u64 - 1) / peak) as usize] as char;
                let _ =
                    writeln!(out, "  {f:>5} -> {t:<5} {shade} {:<width$} {bits}", "#".repeat(bar));
            }
        }
        out
    }
}

/// A JSON string literal for `s`: quotes, backslashes, and control bytes
/// escaped per RFC 8259 (non-ASCII passes through as UTF-8).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_nesting_and_cursor() {
        let mut col = Collector::new();
        col.enter("protocol");
        col.enter("setup");
        col.advance(5);
        col.exit();
        col.enter("batch");
        col.record_run("distribute", &RunStats { rounds: 3, messages: 7, ..Default::default() });
        col.record_run("gather", &RunStats { rounds: 2, ..Default::default() });
        col.exit();
        col.exit();
        assert_eq!(col.cursor(), 10);
        let spans = col.spans();
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0], Span { name: "protocol".into(), depth: 0, start: 0, rounds: 10 });
        assert_eq!(spans[2].name, "batch");
        assert_eq!(spans[2].start, 5);
        assert_eq!(spans[2].rounds, 5);
        assert_eq!(spans[3].depth, 2);
        assert_eq!(col.counter("engine.messages"), 7);
    }

    #[test]
    fn absorb_ledger_groups_prefixes() {
        let mut ledger = RoundLedger::new();
        ledger.record("setup/leader", RunStats { rounds: 2, ..Default::default() });
        ledger.record("setup/bfs", RunStats { rounds: 3, ..Default::default() });
        ledger.record("batch/distribute", RunStats { rounds: 4, ..Default::default() });
        ledger.record("batch/gather", RunStats { rounds: 1, ..Default::default() });
        ledger.record("certify", RunStats { rounds: 6, ..Default::default() });
        let mut col = Collector::new();
        col.absorb_ledger("meeting", &ledger);
        let names: Vec<(&str, u16, u64)> =
            col.spans().iter().map(|s| (s.name.as_str(), s.depth, s.rounds)).collect();
        assert_eq!(
            names,
            vec![
                ("meeting", 0, 16),
                ("setup", 1, 5),
                ("leader", 2, 2),
                ("bfs", 2, 3),
                ("batch", 1, 5),
                ("distribute", 2, 4),
                ("gather", 2, 1),
                ("certify", 1, 6),
            ]
        );
        assert_eq!(col.cursor(), 16);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.max, 1000);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (512, 1)]);
    }

    #[test]
    fn engine_round_merges_shard_in_order() {
        let mut col = Collector::new();
        col.advance(10); // a prior phase
        col.begin_engine_run();
        let mut shard = Shard::default();
        shard.marks.push((3, "probe".into()));
        shard.counts.push(("reliable.retries", 2));
        shard.observations.push(("reliable.backoff", 4));
        shard.edges.push((0, 1, 8));
        shard.edges.push((0, 1, 8));
        col.engine_round(RoundTrace { messages: 2, bits: 16, ..Default::default() }, &mut shard);
        col.engine_round(RoundTrace::default(), &mut shard);
        col.finish_engine_run(&RunStats {
            rounds: 1,
            messages: 2,
            total_bits: 16,
            ..Default::default()
        });
        assert_eq!(col.cursor(), 11);
        // The trailing quiet round was truncated.
        assert_eq!(col.round_samples().len(), 1);
        assert_eq!(col.round_samples()[0].round, 10);
        assert_eq!(col.marks(), &[Mark { round: 10, node: 3, label: "probe".into() }]);
        assert_eq!(col.counter("reliable.retries"), 2);
        assert_eq!(col.edge_loads()[&(0, 1)], 16);
        assert_eq!(col.histogram("reliable.backoff").unwrap().count, 1);
    }

    #[test]
    fn chrome_jsonl_lines_are_json_objects() {
        let mut col = Collector::new();
        col.enter("a \"quoted\" span\n");
        col.advance(3);
        col.exit();
        let out = col.to_chrome_jsonl();
        assert!(out.lines().count() >= 2);
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(out.contains("\\\"quoted\\\""));
        assert!(out.contains("\"ph\":\"X\""));
    }

    #[test]
    fn metrics_json_shape() {
        let mut col = Collector::new();
        col.enter("p");
        col.advance(2);
        col.exit();
        col.add("c", 5);
        col.observe("h", 3);
        col.wall_annotation("build", 1234);
        let json = col.metrics_json();
        assert!(json.contains("\"rounds\": 2"));
        assert!(json.contains("\"c\": 5"));
        assert!(json.contains("\"buckets\": [[2, 1]]"));
        assert!(json.contains("\"wall_annotations\": [[\"build\", 1234]]"));
    }

    #[test]
    fn json_escape_adversarial() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_escape("tab\tnl\ncr\r"), "\"tab\\tnl\\ncr\\r\"");
        assert_eq!(json_escape("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        // Non-ASCII passes through unescaped (valid UTF-8 JSON).
        assert_eq!(json_escape("héllo ∞ 日本"), "\"héllo ∞ 日本\"");
        assert_eq!(json_escape(""), "\"\"");
    }

    #[test]
    fn render_contains_sections() {
        let mut col = Collector::new();
        col.enter("proto");
        col.advance(4);
        col.exit();
        col.add("engine.bits", 40);
        col.observe("batch.width", 3);
        let mut shard = Shard::default();
        shard.edges.push((0, 1, 30));
        shard.edges.push((1, 2, 10));
        col.begin_engine_run();
        col.engine_round(RoundTrace::default(), &mut shard);
        col.finish_engine_run(&RunStats { rounds: 1, ..Default::default() });
        let r = col.render(16);
        assert!(r.contains("phase breakdown"));
        assert!(r.contains("proto"));
        assert!(r.contains("counters:"));
        assert!(r.contains("histogram batch.width"));
        assert!(r.contains("edge load heatmap"));
        assert!(r.contains("0 -> 1"));
    }
}
