//! Distributed breadth-first-search protocols.
//!
//! * [`BfsTreeProtocol`] — the folklore `O(D)` BFS-tree construction used by
//!   Lemma 7 (footnote 2 in the paper): starting from the root, each node
//!   declares itself scanned in round `i` if a neighbor did so in round
//!   `i − 1`, picking any (here: the smallest-id) such neighbor as parent.
//! * [`MultiBfsProtocol`] — pipelined BFS from a set `S` of sources in
//!   `O(|S| + D)` rounds ([PRT12; HW12]), the ingredient of Lemma 20: every
//!   node learns its distance to every source while each edge forwards at
//!   most one announcement per round.
//! * [`EccAggregateProtocol`] — pipelined convergecast + broadcast over a
//!   BFS tree computing `ecc(s) = max_v d(v, s)` for every source in
//!   `O(|S| + D)` rounds, completing Lemma 20.

use crate::graph::{bits_for, Dist, Graph, NodeId};
use crate::runtime::{Ctx, MessageSize, Network, NodeProtocol, Run, RunStats, RuntimeError};
use std::collections::BTreeSet;

/// A node's local view of a spanning tree: its parent (None at the root)
/// and its children. Produced by BFS-tree construction, consumed by every
/// tree-based protocol (broadcast, convergecast, aggregation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeView {
    /// Parent in the tree; `None` iff this node is the root.
    pub parent: Option<NodeId>,
    /// Children in the tree, sorted.
    pub children: Vec<NodeId>,
    /// Distance from the root.
    pub depth: Dist,
}

/// Messages of the BFS-tree protocol.
#[derive(Debug, Clone)]
pub enum BfsMsg {
    /// "I was scanned at distance `dist`."
    Token {
        /// Sender's BFS distance from the root.
        dist: Dist,
    },
    /// "I chose you as my parent."
    Adopt,
}

impl MessageSize for BfsMsg {
    fn size_bits(&self) -> u64 {
        match self {
            BfsMsg::Token { dist } => 2 + bits_for(*dist as u64),
            BfsMsg::Adopt => 2,
        }
    }
}

/// Per-node state of the folklore BFS-tree construction.
#[derive(Debug)]
pub struct BfsTreeProtocol {
    root: bool,
    dist: Option<Dist>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    announced: bool,
}

impl BfsTreeProtocol {
    /// Protocol instances for all `n` nodes with the given root.
    pub fn instances(n: usize, root: NodeId) -> Vec<Self> {
        assert!(root < n, "root out of range");
        (0..n)
            .map(|v| BfsTreeProtocol {
                root: v == root,
                dist: if v == root { Some(0) } else { None },
                parent: None,
                children: Vec::new(),
                announced: false,
            })
            .collect()
    }

    /// This node's distance from the root (available after the run).
    pub fn dist(&self) -> Option<Dist> {
        self.dist
    }

    /// This node's tree view (available after the run).
    pub fn tree_view(&self) -> TreeView {
        TreeView {
            parent: self.parent,
            children: self.children.clone(),
            depth: self.dist.unwrap_or(0),
        }
    }
}

impl NodeProtocol for BfsTreeProtocol {
    type Msg = BfsMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, BfsMsg>, inbox: &[(NodeId, BfsMsg)]) {
        // Collect adoptions and candidate parents.
        let mut best: Option<(Dist, NodeId)> = None;
        for (from, msg) in inbox {
            match msg {
                BfsMsg::Adopt => {
                    self.children.push(*from);
                    self.children.sort_unstable();
                }
                BfsMsg::Token { dist } => {
                    let cand = (*dist, *from);
                    if self.dist.is_none() && best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
        }
        if self.dist.is_none() {
            if let Some((d, p)) = best {
                self.dist = Some(d + 1);
                self.parent = Some(p);
                ctx.send(p, BfsMsg::Adopt);
            }
        }
        if let Some(d) = self.dist {
            if !self.announced {
                ctx.broadcast(BfsMsg::Token { dist: d });
                self.announced = true;
            }
        }
        let _ = self.root;
    }

    fn is_done(&self) -> bool {
        self.announced
    }
}

/// Result of building a BFS tree: per-node tree views and distances.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// Per-node tree view.
    pub views: Vec<TreeView>,
    /// Per-node distance from the root.
    pub dist: Vec<Dist>,
    /// Depth of the tree (= eccentricity of the root).
    pub depth: Dist,
    /// Measured statistics of the construction run.
    pub stats: RunStats,
}

/// Driver: build a BFS tree rooted at `root` on `net`, measuring rounds.
///
/// # Errors
///
/// Propagates [`RuntimeError`]; also fails with
/// [`RuntimeError::RoundLimitExceeded`] on disconnected graphs (the
/// protocol can never finish there).
pub fn build_bfs_tree(net: &Network<'_>, root: NodeId) -> Result<BfsTree, RuntimeError> {
    let n = net.graph().n();
    let run: Run<BfsTreeProtocol> = net.run(BfsTreeProtocol::instances(n, root))?;
    let views: Vec<TreeView> = run.nodes.iter().map(|p| p.tree_view()).collect();
    let dist: Vec<Dist> = run.nodes.iter().map(|p| p.dist().unwrap_or(Dist::MAX)).collect();
    let depth = dist.iter().copied().max().unwrap_or(0);
    Ok(BfsTree { root, views, dist, depth, stats: run.stats })
}

/// Messages of the pipelined multi-source BFS: "source `src` is at distance
/// `dist` from me".
#[derive(Debug, Clone, Copy)]
pub struct MultiBfsMsg {
    /// Rank of the source in the source list (fits in `log |S|` bits, but
    /// we charge a full id: sources are nodes).
    pub src: usize,
    /// The sender's distance to that source.
    pub dist: Dist,
}

impl MessageSize for MultiBfsMsg {
    fn size_bits(&self) -> u64 {
        2 + bits_for(self.src as u64) + bits_for(self.dist as u64)
    }
}

/// Per-node state of the pipelined multi-source BFS ([PRT12; HW12] style:
/// one announcement per edge per round, smallest distance first).
#[derive(Debug)]
pub struct MultiBfsProtocol {
    /// `best[i]` = current best known distance to source `i`.
    best: Vec<Dist>,
    /// Announcements not yet forwarded, ordered by (dist, source rank).
    pending: BTreeSet<(Dist, usize)>,
}

impl MultiBfsProtocol {
    /// Instances for all nodes given the list of source node-ids.
    pub fn instances(n: usize, sources: &[NodeId]) -> Vec<Self> {
        let s = sources.len();
        (0..n)
            .map(|v| {
                let mut best = vec![Dist::MAX; s];
                let mut pending = BTreeSet::new();
                for (i, &src) in sources.iter().enumerate() {
                    if src == v {
                        best[i] = 0;
                        pending.insert((0, i));
                    }
                }
                MultiBfsProtocol { best, pending }
            })
            .collect()
    }

    /// Distances to every source (by source rank), available after the run.
    pub fn distances(&self) -> &[Dist] {
        &self.best
    }
}

impl NodeProtocol for MultiBfsProtocol {
    type Msg = MultiBfsMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, MultiBfsMsg>, inbox: &[(NodeId, MultiBfsMsg)]) {
        for (_, msg) in inbox {
            let through = msg.dist + 1;
            if through < self.best[msg.src] {
                // A stale pending entry for this source (with the old, larger
                // distance) may remain; it is skipped when popped.
                self.pending.remove(&(self.best[msg.src], msg.src));
                self.best[msg.src] = through;
                self.pending.insert((through, msg.src));
            }
        }
        // Forward the most urgent pending announcement, one per round.
        while let Some(&(d, i)) = self.pending.iter().next() {
            self.pending.remove(&(d, i));
            if self.best[i] == d {
                ctx.broadcast(MultiBfsMsg { src: i, dist: d });
                break;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Result of a multi-source BFS.
#[derive(Debug, Clone)]
pub struct MultiBfs {
    /// `dist[v][i]` = distance from node `v` to source rank `i`.
    pub dist: Vec<Vec<Dist>>,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Driver: run pipelined BFS from `sources`, measuring rounds.
///
/// After the run, every node knows its distance to every source — the
/// `O(|S| + D)`-round primitive behind Lemma 20 and the cycle-detection
/// procedures of Section 5.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn multi_source_bfs(net: &Network<'_>, sources: &[NodeId]) -> Result<MultiBfs, RuntimeError> {
    let n = net.graph().n();
    let run: Run<MultiBfsProtocol> = net.run(MultiBfsProtocol::instances(n, sources))?;
    Ok(MultiBfs {
        dist: run.nodes.iter().map(|p| p.distances().to_vec()).collect(),
        stats: run.stats,
    })
}

/// Messages of the eccentricity aggregation: per-source maxima flowing up
/// the tree, final eccentricities flowing down.
#[derive(Debug, Clone, Copy)]
pub enum EccMsg {
    /// Subtree maximum distance to source rank `src`.
    Up {
        /// Source rank.
        src: usize,
        /// Maximum of `d(u, src)` over the sender's subtree.
        max: Dist,
    },
    /// Final eccentricity of source rank `src`.
    Down {
        /// Source rank.
        src: usize,
        /// `ecc(src)`.
        ecc: Dist,
    },
}

impl MessageSize for EccMsg {
    fn size_bits(&self) -> u64 {
        let (s, d) = match self {
            EccMsg::Up { src, max } => (*src, *max),
            EccMsg::Down { src, ecc } => (*src, *ecc),
        };
        2 + bits_for(s as u64) + bits_for(d as u64)
    }
}

/// Pipelined convergecast of per-source maxima over a BFS tree, followed by
/// a pipelined broadcast of the results — Lemma 20's second half.
#[derive(Debug)]
pub struct EccAggregateProtocol {
    tree: TreeView,
    /// My own distance to each source, fed in from a completed multi-BFS.
    my_dist: Vec<Dist>,
    /// Running subtree max per source.
    acc: Vec<Dist>,
    /// Number of children still missing per source index.
    missing: Vec<usize>,
    /// Source indices ready to send up, in order.
    ready_up: BTreeSet<usize>,
    sent_up: Vec<bool>,
    /// Final eccentricities (filled at the root, or learned from Down msgs).
    ecc: Vec<Option<Dist>>,
    /// Down-forwarding queue.
    down_queue: std::collections::VecDeque<(usize, Dist)>,
    forwarded_down: Vec<bool>,
}

impl EccAggregateProtocol {
    /// Instances given each node's tree view and its source distances.
    ///
    /// # Panics
    ///
    /// Panics if the per-node vectors disagree in length.
    pub fn instances(views: &[TreeView], dists: &[Vec<Dist>]) -> Vec<Self> {
        assert_eq!(views.len(), dists.len());
        let s = dists.first().map_or(0, |d| d.len());
        views
            .iter()
            .zip(dists)
            .map(|(view, my_dist)| {
                assert_eq!(my_dist.len(), s, "every node needs all source distances");
                let nc = view.children.len();
                let ready: BTreeSet<usize> =
                    if nc == 0 { (0..s).collect() } else { BTreeSet::new() };
                EccAggregateProtocol {
                    tree: view.clone(),
                    my_dist: my_dist.clone(),
                    acc: my_dist.clone(),
                    missing: vec![nc; s],
                    ready_up: ready,
                    sent_up: vec![false; s],
                    ecc: vec![None; s],
                    down_queue: std::collections::VecDeque::new(),
                    forwarded_down: vec![false; s],
                }
            })
            .collect()
    }

    /// The eccentricities of all sources, available at every node after the
    /// run (`None` never remains on a completed run).
    pub fn eccentricities(&self) -> &[Option<Dist>] {
        &self.ecc
    }

    fn is_root(&self) -> bool {
        self.tree.parent.is_none()
    }
}

impl NodeProtocol for EccAggregateProtocol {
    type Msg = EccMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, EccMsg>, inbox: &[(NodeId, EccMsg)]) {
        let s = self.my_dist.len();
        for (_, msg) in inbox {
            match *msg {
                EccMsg::Up { src, max } => {
                    self.acc[src] = self.acc[src].max(max);
                    self.missing[src] -= 1;
                    if self.missing[src] == 0 {
                        if self.is_root() {
                            self.ecc[src] = Some(self.acc[src]);
                            self.down_queue.push_back((src, self.acc[src]));
                        } else {
                            self.ready_up.insert(src);
                        }
                    }
                }
                EccMsg::Down { src, ecc } => {
                    self.ecc[src] = Some(ecc);
                    self.down_queue.push_back((src, ecc));
                }
            }
        }
        // Root with no children: resolve everything locally on round 0.
        if self.is_root() && ctx.round() == 0 {
            for src in 0..s {
                if self.missing[src] == 0 {
                    self.ecc[src] = Some(self.acc[src]);
                    self.down_queue.push_back((src, self.acc[src]));
                }
            }
        }
        // Send one Up per round (pipelining: one source index per round).
        if let Some(p) = self.tree.parent {
            if let Some(&src) = self.ready_up.iter().next() {
                self.ready_up.remove(&src);
                if !self.sent_up[src] {
                    self.sent_up[src] = true;
                    ctx.send(p, EccMsg::Up { src, max: self.acc[src] });
                }
            }
        }
        // Forward one Down per round to all children.
        if let Some((src, ecc)) = self.down_queue.pop_front() {
            if !self.forwarded_down[src] {
                self.forwarded_down[src] = true;
                for &c in &self.tree.children.clone() {
                    ctx.send(c, EccMsg::Down { src, ecc });
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.ecc.iter().all(|e| e.is_some()) && self.down_queue.is_empty()
    }
}

/// Driver for Lemma 20: every node (in particular every source) learns the
/// eccentricity of every source in `O(|S| + D)` measured rounds
/// (multi-source BFS + pipelined aggregation over `tree`).
///
/// Returns `(eccentricities by source rank, combined stats)`.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn source_eccentricities(
    net: &Network<'_>,
    tree: &BfsTree,
    sources: &[NodeId],
) -> Result<(Vec<Dist>, RunStats), RuntimeError> {
    let mbfs = multi_source_bfs(net, sources)?;
    let views: Vec<TreeView> = tree.views.clone();
    let run = net.run(EccAggregateProtocol::instances(&views, &mbfs.dist))?;
    let root_ecc: Vec<Dist> = run.nodes[tree.root]
        .eccentricities()
        .iter()
        .map(|e| e.expect("completed run fills all eccentricities"))
        .collect();
    let mut stats = mbfs.stats;
    stats.absorb(run.stats);
    Ok((root_ecc, stats))
}

/// Messages of leader election: the best (priority, id) pair seen so far.
#[derive(Debug, Clone, Copy)]
pub struct LeaderMsg {
    /// Random tie-breaking priority.
    pub priority: u64,
    /// Candidate node id.
    pub id: NodeId,
}

impl MessageSize for LeaderMsg {
    fn size_bits(&self) -> u64 {
        // Priorities are hashes of ids in a real deployment; charge log n.
        2 * bits_for(self.id as u64) + 2
    }
}

/// Folklore `O(D)` leader election: flood the maximum (priority, id) pair.
///
/// The paper's algorithms pick "for example the node with the largest
/// identifier"; we elect by a seeded random priority so no protocol can
/// accidentally rely on the winner being node `n − 1`.
#[derive(Debug)]
pub struct LeaderElectProtocol {
    best: (u64, NodeId),
    announced_best: Option<(u64, NodeId)>,
}

impl LeaderElectProtocol {
    /// Instances for all nodes; priorities derive from `seed`.
    pub fn instances(n: usize, seed: u64) -> Vec<Self> {
        (0..n)
            .map(|v| {
                // SplitMix64 of (seed, v): deterministic, well mixed.
                let mut x = seed ^ (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                LeaderElectProtocol { best: (x, v), announced_best: None }
            })
            .collect()
    }

    /// The elected leader (after the run every node agrees).
    pub fn leader(&self) -> NodeId {
        self.best.1
    }
}

impl NodeProtocol for LeaderElectProtocol {
    type Msg = LeaderMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, LeaderMsg>, inbox: &[(NodeId, LeaderMsg)]) {
        for (_, msg) in inbox {
            let cand = (msg.priority, msg.id);
            if cand > self.best {
                self.best = cand;
            }
        }
        if self.announced_best != Some(self.best) {
            self.announced_best = Some(self.best);
            ctx.broadcast(LeaderMsg { priority: self.best.0, id: self.best.1 });
        }
    }

    fn is_done(&self) -> bool {
        self.announced_best == Some(self.best)
    }
}

/// Driver: elect a leader in `O(D)` measured rounds; all nodes agree.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn elect_leader(net: &Network<'_>, seed: u64) -> Result<(NodeId, RunStats), RuntimeError> {
    let n = net.graph().n();
    let run = net.run(LeaderElectProtocol::instances(n, seed))?;
    let leader = run.nodes[0].leader();
    debug_assert!(run.nodes.iter().all(|p| p.leader() == leader));
    Ok((leader, run.stats))
}

/// Convenience: `ecc(root)` measured distributedly (BFS + convergecast of
/// the max depth), used by drivers to derive a `D` estimate in `O(D)`
/// rounds: `ecc(root) ≤ D ≤ 2·ecc(root)`.
///
/// # Errors
///
/// Propagates [`RuntimeError`].
pub fn distributed_depth_estimate(
    net: &Network<'_>,
    root: NodeId,
) -> Result<(Dist, RunStats), RuntimeError> {
    let tree = build_bfs_tree(net, root)?;
    Ok((tree.depth, tree.stats))
}

/// Reference check used in tests: does `views` describe a valid spanning
/// tree of `g` rooted at `root` with BFS distances `dist`?
pub fn validate_bfs_tree(g: &Graph, tree: &BfsTree) -> bool {
    let want = g.bfs_distances(tree.root);
    for (v, w) in want.iter().enumerate() {
        let Some(wd) = *w else { return false };
        if tree.dist[v] != wd {
            return false;
        }
        match tree.views[v].parent {
            None => {
                if v != tree.root {
                    return false;
                }
            }
            Some(p) => {
                if !g.has_edge(v, p) || tree.dist[p] + 1 != tree.dist[v] {
                    return false;
                }
                if !tree.views[p].children.contains(&v) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{balanced_tree, cycle, grid, path, random_connected, star};

    #[test]
    fn bfs_tree_on_path() {
        let g = path(9);
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        assert!(validate_bfs_tree(&g, &tree));
        assert_eq!(tree.depth, 8);
        // BFS takes ~D rounds, within a small constant.
        assert!(tree.stats.rounds >= 8 && tree.stats.rounds <= 12, "rounds={}", tree.stats.rounds);
    }

    #[test]
    fn bfs_tree_on_random_graphs() {
        for seed in 0..5 {
            let g = random_connected(40, 0.08, seed);
            let net = Network::new(&g);
            let tree = build_bfs_tree(&net, (seed as usize * 7) % 40).unwrap();
            assert!(validate_bfs_tree(&g, &tree));
        }
    }

    #[test]
    fn bfs_rounds_scale_with_diameter_not_n() {
        let g = star(200);
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        assert!(tree.stats.rounds <= 5, "star BFS should be O(1), got {}", tree.stats.rounds);
    }

    #[test]
    fn multi_bfs_correct_distances() {
        let g = grid(6, 5);
        let net = Network::new(&g);
        let sources = vec![0, 7, 29, 13];
        let mbfs = multi_source_bfs(&net, &sources).unwrap();
        for v in 0..g.n() {
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(Some(mbfs.dist[v][i]), g.bfs_distances(s)[v]);
            }
        }
    }

    #[test]
    fn multi_bfs_pipelines() {
        // On a path with S sources the pipelined run must take O(S + D)
        // rounds, far below the naive S * D.
        let g = path(40);
        let net = Network::new(&g);
        let sources: Vec<NodeId> = (0..10).map(|i| i * 4).collect();
        let mbfs = multi_source_bfs(&net, &sources).unwrap();
        let s = sources.len();
        let d = 39;
        assert!(
            mbfs.stats.rounds <= 2 * (s + d),
            "rounds {} exceed 2(S+D) = {}",
            mbfs.stats.rounds,
            2 * (s + d)
        );
    }

    #[test]
    fn source_eccentricities_match_reference() {
        for (g, srcs) in [
            (grid(5, 4), vec![0usize, 7, 19]),
            (cycle(11), vec![0, 1, 5]),
            (balanced_tree(2, 3), vec![0, 3, 14]),
        ] {
            let net = Network::new(&g);
            let tree = build_bfs_tree(&net, 0).unwrap();
            let (ecc, _) = source_eccentricities(&net, &tree, &srcs).unwrap();
            for (i, &s) in srcs.iter().enumerate() {
                assert_eq!(Some(ecc[i]), g.eccentricity(s), "source {s}");
            }
        }
    }

    #[test]
    fn source_eccentricities_rounds_scale() {
        let g = path(30);
        let net = Network::new(&g);
        let tree = build_bfs_tree(&net, 0).unwrap();
        let sources: Vec<NodeId> = (0..8).map(|i| i * 3).collect();
        let (_, stats) = source_eccentricities(&net, &tree, &sources).unwrap();
        let bound = 6 * (sources.len() + 30);
        assert!(stats.rounds <= bound, "rounds {} vs bound {}", stats.rounds, bound);
    }

    #[test]
    fn leader_election_agrees_and_is_fast() {
        for seed in 0..5 {
            let g = random_connected(30, 0.1, seed);
            let net = Network::new(&g);
            let (leader, stats) = elect_leader(&net, seed).unwrap();
            assert!(leader < 30);
            let d = g.diameter().unwrap() as usize;
            assert!(stats.rounds <= 3 * d.max(1) + 2, "rounds {} too slow", stats.rounds);
        }
    }

    #[test]
    fn leader_depends_on_seed() {
        let g = path(50);
        let net = Network::new(&g);
        let leaders: std::collections::HashSet<NodeId> =
            (0..10).map(|s| elect_leader(&net, s).unwrap().0).collect();
        assert!(leaders.len() > 1, "priorities should vary with the seed");
    }

    #[test]
    fn depth_estimate_bounds_diameter() {
        for seed in 0..4 {
            let g = random_connected(25, 0.12, seed);
            let net = Network::new(&g);
            let (depth, _) = distributed_depth_estimate(&net, 3).unwrap();
            let d = g.diameter().unwrap();
            assert!(depth <= d && 2 * depth >= d);
        }
    }

    #[test]
    fn bfs_tree_disconnected_errors() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let net = Network::new(&g).with_round_limit(100);
        assert!(matches!(build_bfs_tree(&net, 0), Err(RuntimeError::RoundLimitExceeded { .. })));
    }
}
