//! Simon's algorithm: given `f : {0,1}^m → {0,1}^m` with the promise
//! `f(x) = f(y) ⇔ y ∈ {x, x⊕s}` for a hidden `s ≠ 0`, find `s` with
//! `O(m)` quantum queries — classically `Ω(2^{m/2})` queries are needed.
//!
//! This is the bounded-error exponential separation the paper's §4.3
//! footnote alludes to: the two-party/distributed version (see
//! `dqc_core::simon`) inherits the query gap through the framework.
//!
//! Each quantum iteration prepares `H^{⊗m}|0⟩|0⟩`, queries the XOR oracle,
//! and measures the input register after another `H^{⊗m}`: the outcome `y`
//! is uniform over `{y : y·s = 0}`. Collecting `m − 1` independent
//! equations pins down `s` by GF(2) elimination.

use crate::gf2::Gf2Matrix;
use crate::oracle::xor_oracle;
use crate::state::State;
use rand::Rng;

/// Build a Simon function table for hidden shift `s` over `m` bits: each
/// `{x, x⊕s}` pair gets a distinct value (a pseudo-random relabelling of
/// the pair representative).
///
/// # Panics
///
/// Panics if `s == 0` or `s` does not fit in `m` bits.
pub fn simon_table(m: usize, s: u64, seed: u64) -> Vec<u64> {
    assert!((1..=20).contains(&m));
    assert!(s != 0 && (m == 64 || s < (1u64 << m)), "shift must be nonzero and fit");
    let size = 1usize << m;
    // Assign each {x, x⊕s} pair a *distinct* value: rank the pair
    // representatives and pass them through a seeded permutation of [2^m]
    // (injective, so the promise's "only s-partners collide" holds).
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut perm: Vec<u64> = (0..size as u64).collect();
    perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    let mut rank = vec![u64::MAX; size];
    let mut next = 0u64;
    for x in 0..size as u64 {
        let rep = x.min(x ^ s) as usize;
        if rank[rep] == u64::MAX {
            rank[rep] = next;
            next += 1;
        }
    }
    (0..size).map(|x| perm[rank[(x as u64).min(x as u64 ^ s) as usize] as usize]).collect()
}

/// Tabulate the XOR-oracle basis permutation `|x⟩|y⟩ → |x⟩|y ⊕ f(x)⟩` on
/// `2m` qubits once, so repeated Simon iterations replay a table lookup
/// instead of re-deriving the image index for every amplitude.
pub fn xor_permutation(table: &[u64]) -> Vec<usize> {
    let m = table.len().trailing_zeros() as usize;
    assert_eq!(table.len(), 1 << m);
    let imask = (1usize << m) - 1;
    (0..1usize << (2 * m)).map(|x| x ^ ((table[x & imask] as usize) << m)).collect()
}

/// One Simon iteration on the statevector: returns a `y` with `y·s = 0`,
/// uniformly distributed over that subspace.
pub fn simon_sample<R: Rng>(table: &[u64], rng: &mut R) -> u64 {
    let m = table.len().trailing_zeros() as usize;
    assert_eq!(table.len(), 1 << m);
    let mut st = State::zero(2 * m);
    st.h_all(0..m);
    xor_oracle(&mut st, m, m, table);
    st.h_all(0..m);
    let out = st.sample(rng);
    (out & ((1 << m) - 1)) as u64
}

/// [`simon_sample`] with the oracle permutation already tabulated by
/// [`xor_permutation`] — the per-iteration fast path used by [`simon`].
pub fn simon_sample_tabulated<R: Rng>(pi: &[usize], m: usize, rng: &mut R) -> u64 {
    assert_eq!(pi.len(), 1 << (2 * m));
    let mut st = State::zero(2 * m);
    st.h_all(0..m);
    st.apply_permutation(|x| pi[x]);
    st.h_all(0..m);
    let out = st.sample(rng);
    (out & ((1 << m) - 1)) as u64
}

/// Result of a full Simon run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimonOutcome {
    /// The recovered hidden shift, if the equations reached rank `m − 1`.
    pub shift: Option<u64>,
    /// Oracle queries used (one per iteration).
    pub queries: usize,
}

/// Run Simon's algorithm to completion: sample equations until rank
/// `m − 1` (or a cutoff of `8m` iterations), then solve.
pub fn simon<R: Rng>(table: &[u64], rng: &mut R) -> SimonOutcome {
    let m = table.len().trailing_zeros() as usize;
    // Tabulate the oracle permutation once; every iteration replays it.
    let pi = xor_permutation(table);
    let mut eqs = Gf2Matrix::new(m.max(1));
    let mut queries = 0;
    while eqs.rank() < m.saturating_sub(1) && queries < 8 * m.max(1) {
        let y = simon_sample_tabulated(&pi, m, rng);
        queries += 1;
        if y != 0 {
            eqs.push(y);
        }
    }
    let shift = eqs.null_vector().filter(|&s| {
        // Verify against the table (two classical queries).
        let x = 0usize;
        table[x] == table[x ^ s as usize]
    });
    SimonOutcome { shift, queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_respects_promise() {
        for (m, s) in [(3usize, 0b101u64), (4, 0b1100), (5, 0b1)] {
            let t = simon_table(m, s, 7);
            for x in 0..(1usize << m) {
                for y in 0..(1usize << m) {
                    let equal = t[x] == t[y];
                    let promise = y == x || y == x ^ s as usize;
                    assert_eq!(equal, promise, "m={m} s={s:b} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn samples_are_orthogonal_to_shift() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = 0b0110u64;
        let t = simon_table(4, s, 3);
        for _ in 0..40 {
            let y = simon_sample(&t, &mut rng);
            assert_eq!((y & s).count_ones() % 2, 0, "y = {y:04b}");
        }
    }

    #[test]
    fn samples_cover_the_orthogonal_subspace() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = 0b101u64;
        let t = simon_table(3, s, 9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            seen.insert(simon_sample(&t, &mut rng));
        }
        // The orthogonal subspace {000, 010, 101, 111} should all appear.
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn tabulated_sampling_matches_oracle_sampling() {
        // Same RNG stream → identical outcomes: the tabulated permutation
        // is exactly the closure the XOR oracle applies.
        let t = simon_table(4, 0b0101, 13);
        let pi = xor_permutation(&t);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            assert_eq!(simon_sample(&t, &mut a), simon_sample_tabulated(&pi, 4, &mut b));
        }
    }

    #[test]
    fn full_simon_recovers_shift() {
        let mut rng = StdRng::seed_from_u64(3);
        for (m, s) in [(3usize, 0b011u64), (4, 0b1010), (5, 0b10001), (6, 0b110110)] {
            let t = simon_table(m, s, 11);
            let mut hits = 0;
            for _ in 0..5 {
                let out = simon(&t, &mut rng);
                if out.shift == Some(s) {
                    hits += 1;
                    assert!(out.queries <= 8 * m, "O(m) queries");
                }
            }
            assert!(hits >= 4, "m={m}: {hits}/5");
        }
    }

    #[test]
    fn query_count_linear_in_m() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = vec![];
        for m in [4usize, 6, 8] {
            let t = simon_table(m, 1 << (m - 1), 5);
            let q: usize = (0..5).map(|_| simon(&t, &mut rng).queries).sum();
            total.push(q as f64 / 5.0);
        }
        // Doubling m should roughly double queries, not square them.
        assert!(total[2] / total[0] < 4.0, "{total:?}");
    }
}
