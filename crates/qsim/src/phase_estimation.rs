//! Quantum phase estimation — the circuit behind the paper's Lemma 29.
//!
//! Given a unitary `U` with eigenstate `|ψ⟩`, `U|ψ⟩ = e^{2πiφ}|ψ⟩`, QPE with
//! `t` counting qubits returns an estimate `m/2^t` with
//! `|m/2^t − φ| ≤ 2^{−t}` (mod 1) with probability at least `8/π² ≈ 0.81`.

use crate::qft::iqft;
use crate::state::State;
use rand::Rng;
use std::f64::consts::PI;

/// A controlled unitary that QPE can raise to powers: implementors apply
/// `controlled-U^{2^j}` with the given control qubit.
///
/// The closure form lets callers supply anything from a bare controlled
/// phase to a full controlled Grover iterate (see `amplitude`).
pub trait ControlledUnitary {
    /// Apply `U^{2^j}` to `state`, controlled on qubit `control`.
    fn apply_power(&self, state: &mut State, control: usize, j: u32);
}

impl<F: Fn(&mut State, usize, u32)> ControlledUnitary for F {
    fn apply_power(&self, state: &mut State, control: usize, j: u32) {
        self(state, control, j)
    }
}

/// Run QPE with `t` counting qubits (qubits `0..t` of `state`). The target
/// register (qubits `t..`) must already hold an eigenstate of `U`. Returns
/// the measured `m`; the phase estimate is `m / 2^t`.
///
/// The counting register is consumed (measured).
pub fn phase_estimation<U: ControlledUnitary, R: Rng>(
    state: &mut State,
    t: usize,
    u: &U,
    rng: &mut R,
) -> usize {
    assert!(t >= 1 && t < state.num_qubits(), "need 1..n counting qubits");
    state.h_all(0..t);
    for (j, q) in (0..t).enumerate() {
        u.apply_power(state, q, j as u32);
    }
    iqft(state, &(0..t).collect::<Vec<_>>());
    // Measure the counting register only.
    let full = state.sample(rng);
    let m = full & ((1usize << t) - 1);
    state.collapse(|x| x & ((1usize << t) - 1) == m);
    m
}

/// Convenience: estimate the eigenphase `φ` of the diagonal unitary
/// `diag(1, e^{2πiφ})` on eigenstate `|1⟩` with `t` counting qubits.
/// Returns the estimate in `[0, 1)`.
pub fn estimate_diagonal_phase<R: Rng>(phi: f64, t: usize, rng: &mut R) -> f64 {
    let mut s = State::basis(t + 1, 1 << t); // target qubit (index t) = |1⟩
    let u = |state: &mut State, control: usize, j: u32| {
        // U^{2^j} = diag(1, e^{2πiφ·2^j}) on the target; controlled version
        // is a two-qubit controlled phase.
        let theta = 2.0 * PI * phi * (1u64 << j) as f64;
        state.apply_controlled_1q(
            &[control],
            t,
            [
                [crate::complex::C64::ONE, crate::complex::C64::ZERO],
                [crate::complex::C64::ZERO, crate::complex::C64::from_polar(1.0, theta)],
            ],
        );
    };
    let m = phase_estimation(&mut s, t, &u, rng);
    m as f64 / (1usize << t) as f64
}

/// Circular distance on the unit interval (phases wrap).
pub fn phase_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(1.0);
    d.min(1.0 - d)
}

/// Median-of-repetitions boosting: repeat the estimate `reps` times and take
/// the circular median, pushing the failure probability below `2^{−Ω(reps)}`
/// — the `log(1/δ)` factor in Lemma 29.
pub fn estimate_diagonal_phase_boosted<R: Rng>(
    phi: f64,
    t: usize,
    reps: usize,
    rng: &mut R,
) -> f64 {
    assert!(reps >= 1);
    let mut estimates: Vec<f64> = (0..reps).map(|_| estimate_diagonal_phase(phi, t, rng)).collect();
    // Circular median: pick the estimate minimizing the sum of circular
    // distances to the others.
    estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    estimates
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let da: f64 = estimates.iter().map(|&e| phase_distance(a, e)).sum();
            let db: f64 = estimates.iter().map(|&e| phase_distance(b, e)).sum();
            da.partial_cmp(&db).unwrap()
        })
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_phase_recovered_exactly() {
        // φ = m/2^t is representable: QPE returns it with certainty.
        let mut rng = StdRng::seed_from_u64(2);
        for t in 3..=6 {
            let m = 5 % (1usize << t);
            let phi = m as f64 / (1usize << t) as f64;
            for _ in 0..5 {
                let est = estimate_diagonal_phase(phi, t, &mut rng);
                assert!((est - phi).abs() < 1e-12, "t={t}: {est} vs {phi}");
            }
        }
    }

    #[test]
    fn irrational_phase_within_precision() {
        let mut rng = StdRng::seed_from_u64(9);
        let phi = 0.3717;
        let t = 7;
        let mut ok = 0;
        for _ in 0..30 {
            let est = estimate_diagonal_phase(phi, t, &mut rng);
            if phase_distance(est, phi) <= 1.0 / (1 << t) as f64 {
                ok += 1;
            }
        }
        // Theory: ≥ 8/π² ≈ 0.81 per trial.
        assert!(ok >= 20, "only {ok}/30 within 2^-t");
    }

    #[test]
    fn boosting_tightens_failure() {
        let mut rng = StdRng::seed_from_u64(4);
        let phi = 0.123;
        let t = 6;
        let mut ok = 0;
        for _ in 0..20 {
            let est = estimate_diagonal_phase_boosted(phi, t, 9, &mut rng);
            if phase_distance(est, phi) <= 2.0 / (1 << t) as f64 {
                ok += 1;
            }
        }
        assert!(ok >= 19, "boosted estimate failed {}/20 times", 20 - ok);
    }

    #[test]
    fn phase_distance_wraps() {
        assert!((phase_distance(0.95, 0.05) - 0.1).abs() < 1e-12);
        assert!((phase_distance(0.2, 0.7) - 0.5).abs() < 1e-12);
        assert_eq!(phase_distance(0.3, 0.3), 0.0);
    }
}
