//! Dense statevector representation and elementary operations.
//!
//! The simulator stores all `2^n` amplitudes; it is intended for
//! *validation at small sizes* (`n ≤ ~22`), cross-checking the scalable
//! query-schedule emulations in the `pquery` crate against exact quantum
//! mechanics.
//!
//! Gates and reductions bottom out in the strided, optionally
//! multi-threaded loops of [`crate::kernels`]; the seed's branch-per-index
//! scans survive in [`crate::reference`] as the differential-test oracle.
//!
//! Qubit `0` is the least-significant bit of a basis-state index.

use crate::complex::{c64, C64};
use crate::kernels;
use rand::Rng;

/// Numerical tolerance for normalization checks.
pub const EPS: f64 = 1e-9;

/// A pure quantum state on `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    n: usize,
    amps: Vec<C64>,
}

impl State {
    /// The all-zeros basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 26` (memory guard).
    pub fn zero(n: usize) -> Self {
        Self::basis(n, 0)
    }

    /// The computational basis state `|idx⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `n > 26`, or `idx >= 2^n`.
    pub fn basis(n: usize, idx: usize) -> Self {
        assert!(n > 0 && n <= 26, "statevector limited to 1..=26 qubits");
        let dim = 1usize << n;
        assert!(idx < dim, "basis index out of range");
        let mut amps = vec![C64::ZERO; dim];
        amps[idx] = C64::ONE;
        State { n, amps }
    }

    /// A state from raw amplitudes (must be normalized).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm is not 1.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let dim = amps.len();
        assert!(dim.is_power_of_two() && dim >= 2, "length must be a power of two >= 2");
        let n = dim.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-6, "state not normalized (norm² = {norm})");
        State { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The amplitude of basis state `idx`.
    #[inline]
    pub fn amplitude(&self, idx: usize) -> C64 {
        self.amps[idx]
    }

    /// All amplitudes.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// `Σ|αᵢ|²` (should always be 1 up to rounding).
    ///
    /// Summed over fixed [`kernels::REDUCE_CHUNK`] partials, so the value
    /// is bit-identical whatever thread count the kernels pick.
    pub fn norm_sqr(&self) -> f64 {
        kernels::norm_sqr(&self.amps, kernels::auto_threads(self.n))
    }

    /// `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn fidelity(&self, other: &State) -> f64 {
        assert_eq!(self.n, other.n);
        let ip =
            self.amps.iter().zip(&other.amps).fold(C64::ZERO, |acc, (a, b)| acc + a.conj() * *b);
        ip.norm_sqr()
    }

    /// Apply a single-qubit unitary `m` (row-major `[[m00, m01], [m10, m11]]`)
    /// to qubit `q`, optionally controlled on all of `controls` being 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` or a control is out of range, or `q` appears in
    /// `controls`.
    pub fn apply_controlled_1q(&mut self, controls: &[usize], q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.n, "target out of range");
        assert!(!controls.contains(&q), "target cannot be its own control");
        for &c in controls {
            assert!(c < self.n, "control out of range");
        }
        let mask: usize = controls.iter().map(|&c| 1usize << c).sum();
        kernels::apply_controlled_1q(&mut self.amps, mask, q, m, kernels::auto_threads(self.n));
    }

    /// Apply a single-qubit unitary without controls.
    pub fn apply_1q(&mut self, q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.n, "target out of range");
        kernels::apply_1q(&mut self.amps, q, m, kernels::auto_threads(self.n));
    }

    /// [`apply_controlled_1q`](Self::apply_controlled_1q) with the control
    /// set given as a bit mask — the form the fused circuit tapes use.
    ///
    /// # Panics
    ///
    /// Panics if `q` or a mask bit is out of range, or the mask contains
    /// the target.
    pub fn apply_masked_1q(&mut self, ctrl_mask: usize, q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.n, "target out of range");
        assert!(ctrl_mask >> self.n == 0, "control out of range");
        assert!(ctrl_mask & (1 << q) == 0, "target cannot be its own control");
        kernels::apply_controlled_1q(
            &mut self.amps,
            ctrl_mask,
            q,
            m,
            kernels::auto_threads(self.n),
        );
    }

    /// Apply a fused run of diagonal gates in one amplitude sweep (see
    /// [`kernels::apply_diag`]).
    ///
    /// # Panics
    ///
    /// Panics if a term's mask addresses qubits outside the state.
    pub fn apply_diag_terms(&mut self, terms: &[kernels::DiagTerm]) {
        for t in terms {
            assert!(t.mask >> self.n == 0, "diagonal term out of range");
        }
        kernels::apply_diag(&mut self.amps, terms, kernels::auto_threads(self.n));
    }

    /// Multiply the amplitude of every basis state `x` by `e^{i·f(x)}` — an
    /// arbitrary diagonal unitary. Phase oracles are the `f(x) ∈ {0, π}`
    /// case.
    pub fn apply_phase_fn<F: Fn(usize) -> f64>(&mut self, f: F) {
        for (x, a) in self.amps.iter_mut().enumerate() {
            let phi = f(x);
            if phi != 0.0 {
                *a = *a * C64::from_polar(1.0, phi);
            }
        }
    }

    /// Negate the amplitude of every basis state selected by `pred` — the
    /// `f(x) ∈ {0, π}` special case of [`apply_phase_fn`](Self::apply_phase_fn)
    /// without any trigonometry. This is the phase-oracle hot path of
    /// Grover search.
    pub fn phase_flip_where<F: Fn(usize) -> bool + Sync>(&mut self, pred: F) {
        kernels::phase_flip_where(&mut self.amps, pred, kernels::auto_threads(self.n));
    }

    /// Invert every contiguous `2^q` block of amplitudes about its mean:
    /// the diffusion `I − 2|u⟩⟨u|` over the `q` low qubits, in two memory
    /// passes instead of the `2q + 1` passes of the `H^{⊗q} · S₀ · H^{⊗q}`
    /// gate cascade (see [`kernels::inversion_about_mean`]).
    ///
    /// # Panics
    ///
    /// Panics if `q` exceeds the number of qubits.
    pub fn inversion_about_mean(&mut self, q: usize) {
        assert!(q <= self.n, "qubit range out of bounds");
        kernels::inversion_about_mean(&mut self.amps, q, kernels::auto_threads(self.n));
    }

    /// Apply the basis permutation `|x⟩ → |π(x)⟩`.
    ///
    /// One scratch vector is allocated per call (the occupancy check that
    /// used to cost a second `2^n` allocation now runs only in debug
    /// builds).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `π` is not a permutation.
    pub fn apply_permutation<F: Fn(usize) -> usize>(&mut self, pi: F) {
        let dim = self.amps.len();
        #[cfg(debug_assertions)]
        let mut hit = vec![false; dim];
        let mut out = vec![C64::ZERO; dim];
        for (x, &a) in self.amps.iter().enumerate() {
            let y = pi(x);
            debug_assert!(y < dim, "permutation image out of range");
            #[cfg(debug_assertions)]
            {
                debug_assert!(!hit[y], "not a permutation: image {y} repeated");
                hit[y] = true;
            }
            out[y] = a;
        }
        self.amps = out;
    }

    /// Probability that measuring all qubits yields basis state `idx`.
    #[inline]
    pub fn probability(&self, idx: usize) -> f64 {
        self.amps[idx].norm_sqr()
    }

    /// Probability that qubit `q` measures to 1: a strided sum over the
    /// upper half of every `2^{q+1}` block, no per-index bit test.
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n, "qubit out of range");
        kernels::prob_one(&self.amps, q, kernels::auto_threads(self.n))
    }

    /// Total probability of the basis states selected by `pred`.
    pub fn probability_where<F: Fn(usize) -> bool>(&self, pred: F) -> f64 {
        self.amps.iter().enumerate().filter(|(i, _)| pred(*i)).map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Build a reusable measurement sampler: the cumulative-probability
    /// table costs one `O(2^n)` pass, after which every
    /// [`draw`](Sampler::draw) is an `O(n)` binary search. Outcomes (and
    /// the RNG stream) are identical to the seed's linear scan.
    pub fn sampler(&self) -> Sampler {
        let mut cum = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            cum.push(acc);
        }
        Sampler { cum }
    }

    /// Sample a full measurement of all qubits (the state is *not*
    /// collapsed; callers that need post-measurement states use
    /// [`collapse`](Self::collapse)). For repeated draws from the same
    /// state, build one [`sampler`](Self::sampler) and reuse it.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        self.sampler().draw(rng)
    }

    /// Measure all qubits: sample an outcome and collapse onto it.
    pub fn measure_all<R: Rng>(&mut self, rng: &mut R) -> usize {
        let out = self.sample(rng);
        self.amps.fill(C64::ZERO);
        self.amps[out] = C64::ONE;
        out
    }

    /// Collapse onto the subspace where `pred(basis index)` holds,
    /// renormalizing. Returns the pre-collapse probability of the subspace.
    ///
    /// # Panics
    ///
    /// Panics if the subspace probability is (numerically) zero.
    pub fn collapse<F: Fn(usize) -> bool>(&mut self, pred: F) -> f64 {
        let p = self.probability_where(&pred);
        assert!(p > EPS, "collapsing onto a zero-probability subspace");
        let s = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if pred(i) { a.scale(s) } else { C64::ZERO };
        }
        p
    }

    // ---- Named gates ----

    /// Hadamard on qubit `q`.
    pub fn h(&mut self, q: usize) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        self.apply_1q(q, [[c64(s, 0.0), c64(s, 0.0)], [c64(s, 0.0), c64(-s, 0.0)]]);
    }

    /// Hadamard on every qubit in `qs`.
    pub fn h_all(&mut self, qs: impl IntoIterator<Item = usize>) {
        for q in qs {
            self.h(q);
        }
    }

    /// Pauli X on qubit `q`.
    pub fn x(&mut self, q: usize) {
        self.apply_1q(q, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
    }

    /// Pauli Z on qubit `q`.
    pub fn z(&mut self, q: usize) {
        self.apply_1q(q, [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]]);
    }

    /// Phase gate `diag(1, e^{iθ})` on qubit `q`.
    pub fn phase(&mut self, q: usize, theta: f64) {
        self.apply_1q(q, [[C64::ONE, C64::ZERO], [C64::ZERO, C64::from_polar(1.0, theta)]]);
    }

    /// CNOT with control `c` and target `t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.apply_controlled_1q(&[c], t, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
    }

    /// Controlled-phase `diag(1, 1, 1, e^{iθ})` on qubits `c`, `t`.
    pub fn cphase(&mut self, c: usize, t: usize, theta: f64) {
        self.apply_controlled_1q(
            &[c],
            t,
            [[C64::ONE, C64::ZERO], [C64::ZERO, C64::from_polar(1.0, theta)]],
        );
    }

    /// Multi-controlled X (Toffoli family).
    pub fn mcx(&mut self, controls: &[usize], t: usize) {
        self.apply_controlled_1q(controls, t, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
    }

    /// Multi-controlled Z.
    pub fn mcz(&mut self, controls: &[usize], t: usize) {
        self.apply_controlled_1q(controls, t, [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]]);
    }

    /// Swap qubits `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.cnot(a, b);
        self.cnot(b, a);
        self.cnot(a, b);
    }
}

/// A cumulative-probability table over a state's basis outcomes, built by
/// [`State::sampler`]. Each [`draw`](Self::draw) consumes one `f64` from
/// the RNG and binary-searches the table — `O(log 2^n) = O(n)` per draw
/// after the `O(2^n)` setup, with outcomes bit-identical to the seed's
/// linear prefix scan (the table holds the very same running sums).
#[derive(Debug, Clone)]
pub struct Sampler {
    cum: Vec<f64>,
}

impl Sampler {
    /// Draw one full-measurement outcome.
    pub fn draw<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().expect("state is never empty");
        let r: f64 = rng.gen::<f64>() * total;
        // First index whose running sum exceeds r; the clamp covers the
        // rounding tail exactly like the seed's fall-through return.
        self.cum.partition_point(|&c| c <= r).min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state() {
        let s = State::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_uniform() {
        let mut s = State::zero(3);
        s.h_all(0..3);
        for i in 0..8 {
            assert!((s.probability(i) - 0.125).abs() < EPS);
        }
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn hh_is_identity() {
        let mut s = State::basis(2, 3);
        s.h(0);
        s.h(1);
        s.h(0);
        s.h(1);
        assert!((s.probability(3) - 1.0).abs() < EPS);
    }

    #[test]
    fn x_flips() {
        let mut s = State::zero(2);
        s.x(1);
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn cnot_entangles() {
        let mut s = State::zero(2);
        s.h(0);
        s.cnot(0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
        assert!(s.probability(0b10) < EPS);
    }

    #[test]
    fn mcx_needs_all_controls() {
        let mut s = State::basis(3, 0b011);
        s.mcx(&[0, 1], 2);
        assert!((s.probability(0b111) - 1.0).abs() < EPS);
        let mut s = State::basis(3, 0b001);
        s.mcx(&[0, 1], 2);
        assert!((s.probability(0b001) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_works() {
        let mut s = State::basis(2, 0b01);
        s.swap(0, 1);
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn phase_fn_is_diagonal() {
        let mut s = State::zero(2);
        s.h_all(0..2);
        let before: Vec<f64> = (0..4).map(|i| s.probability(i)).collect();
        s.apply_phase_fn(|x| if x == 2 { std::f64::consts::PI } else { 0.0 });
        let after: Vec<f64> = (0..4).map(|i| s.probability(i)).collect();
        assert_eq!(before, after, "phases do not change probabilities");
        assert!((s.amplitude(2).re + 0.5).abs() < EPS, "sign flipped on |10⟩");
    }

    #[test]
    fn permutation_moves_amplitudes() {
        let mut s = State::basis(2, 1);
        s.apply_permutation(|x| (x + 1) % 4);
        assert!((s.probability(2) - 1.0).abs() < EPS);
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut s = State::zero(1);
        s.h(0);
        let mut rng = StdRng::seed_from_u64(1);
        let ones: usize = (0..2000).map(|_| s.sample(&mut rng)).sum();
        assert!((800..1200).contains(&ones), "got {ones} ones out of 2000");
    }

    #[test]
    fn measure_collapses() {
        let mut s = State::zero(1);
        s.h(0);
        let mut rng = StdRng::seed_from_u64(7);
        let out = s.measure_all(&mut rng);
        assert!((s.probability(out) - 1.0).abs() < EPS);
    }

    #[test]
    fn collapse_renormalizes() {
        let mut s = State::zero(2);
        s.h_all(0..2);
        let p = s.collapse(|i| i & 1 == 1);
        assert!((p - 0.5).abs() < EPS);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
        assert!(s.probability(0) < EPS);
    }

    #[test]
    fn fidelity_of_orthogonal_states() {
        let a = State::basis(2, 0);
        let b = State::basis(2, 3);
        assert!(a.fidelity(&b) < EPS);
        assert!((a.fidelity(&a) - 1.0).abs() < EPS);
    }

    #[test]
    fn unitarity_preserved_by_random_circuit() {
        let mut s = State::zero(4);
        for i in 0..4 {
            s.h(i);
        }
        s.cnot(0, 1);
        s.cphase(1, 2, 0.7);
        s.mcz(&[0, 1, 2], 3);
        s.phase(3, 1.1);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }
}
