//! The seed's branch-per-index statevector operations, retained verbatim
//! as the **differential-test oracle** for [`crate::kernels`].
//!
//! Every function here scans all `2^n` amplitudes and branches per index —
//! exactly what [`crate::state::State`] did before the strided kernel
//! rewrite. The fast path must agree with these to fidelity `1 − 1e-12`
//! (see `tests/kernels_differential.rs`), and the `qsim` criterion bench
//! measures its speedups against them (`BENCH_qsim.json`).

use crate::complex::C64;
use rand::Rng;

/// Branch-per-index controlled single-qubit unitary (the seed
/// `State::apply_controlled_1q`).
pub fn apply_controlled_1q(amps: &mut [C64], controls: &[usize], q: usize, m: [[C64; 2]; 2]) {
    let mask: usize = controls.iter().map(|&c| 1usize << c).sum();
    let bit = 1usize << q;
    for i in 0..amps.len() {
        if i & bit == 0 && (i & mask) == mask {
            let j = i | bit;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = m[0][0] * a0 + m[0][1] * a1;
            amps[j] = m[1][0] * a0 + m[1][1] * a1;
        }
    }
}

/// Full-scan diagonal unitary `|x⟩ → e^{i·f(x)}|x⟩` with a trigonometric
/// evaluation per non-zero phase (the seed `State::apply_phase_fn`).
pub fn apply_phase_fn<F: Fn(usize) -> f64>(amps: &mut [C64], f: F) {
    for (x, a) in amps.iter_mut().enumerate() {
        let phi = f(x);
        if phi != 0.0 {
            *a = *a * C64::from_polar(1.0, phi);
        }
    }
}

/// Basis permutation with the seed's two fresh `2^n` allocations (`out`
/// plus the `hit` occupancy check).
pub fn apply_permutation<F: Fn(usize) -> usize>(amps: &mut Vec<C64>, pi: F) {
    let dim = amps.len();
    let mut out = vec![C64::ZERO; dim];
    let mut hit = vec![false; dim];
    for (x, &a) in amps.iter().enumerate() {
        let y = pi(x);
        debug_assert!(y < dim, "permutation image out of range");
        debug_assert!(!hit[y], "not a permutation: image {y} repeated");
        hit[y] = true;
        out[y] = a;
    }
    *amps = out;
}

/// Full-scan `P(qubit q = 1)` via `enumerate().filter()` (the seed
/// `State::prob_one`).
pub fn prob_one(amps: &[C64], q: usize) -> f64 {
    let bit = 1usize << q;
    amps.iter().enumerate().filter(|(i, _)| i & bit != 0).map(|(_, a)| a.norm_sqr()).sum()
}

/// Linear (unchunked) `Σ|αᵢ|²`.
pub fn norm_sqr(amps: &[C64]) -> f64 {
    amps.iter().map(|a| a.norm_sqr()).sum()
}

/// The seed's linear-scan measurement sampler: draw `r` uniform in
/// `[0, Σ|αᵢ|²)` and walk the prefix sums.
pub fn sample<R: Rng>(amps: &[C64], rng: &mut R) -> usize {
    let r: f64 = rng.gen::<f64>() * norm_sqr(amps);
    let mut acc = 0.0;
    for (i, a) in amps.iter().enumerate() {
        acc += a.norm_sqr();
        if r < acc {
            return i;
        }
    }
    amps.len() - 1
}

/// Hadamard on qubit `q` through the reference kernel (bench convenience).
pub fn h(amps: &mut [C64], q: usize) {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let m = [
        [C64 { re: s, im: 0.0 }, C64 { re: s, im: 0.0 }],
        [C64 { re: s, im: 0.0 }, C64 { re: -s, im: 0.0 }],
    ];
    apply_controlled_1q(amps, &[], q, m);
}

/// `diag(1, 1, 1, e^{iθ})` on `(c, t)` through the reference kernel.
pub fn cphase(amps: &mut [C64], c: usize, t: usize, theta: f64) {
    let m = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::from_polar(1.0, theta)]];
    apply_controlled_1q(amps, &[c], t, m);
}

/// CNOT through the reference kernel.
pub fn cnot(amps: &mut [C64], c: usize, t: usize) {
    apply_controlled_1q(amps, &[c], t, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
}
