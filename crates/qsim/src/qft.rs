//! The quantum Fourier transform, used by phase estimation (paper §6).

use crate::state::State;
use std::f64::consts::PI;

/// Apply the QFT to `qubits` (treated as little-endian: `qubits[0]` is the
/// least-significant bit of the transformed register).
///
/// # Panics
///
/// Panics if a qubit repeats or is out of range.
pub fn qft(state: &mut State, qubits: &[usize]) {
    check(state, qubits);
    let n = qubits.len();
    // Standard circuit on a big-endian ordering, then reverse with swaps.
    for i in (0..n).rev() {
        state.h(qubits[i]);
        for j in (0..i).rev() {
            let theta = PI / (1 << (i - j)) as f64;
            state.cphase(qubits[j], qubits[i], theta);
        }
    }
    for i in 0..n / 2 {
        state.swap(qubits[i], qubits[n - 1 - i]);
    }
}

/// Apply the inverse QFT to `qubits`.
///
/// # Panics
///
/// Panics if a qubit repeats or is out of range.
pub fn iqft(state: &mut State, qubits: &[usize]) {
    check(state, qubits);
    let n = qubits.len();
    for i in 0..n / 2 {
        state.swap(qubits[i], qubits[n - 1 - i]);
    }
    for i in 0..n {
        for j in 0..i {
            let theta = -PI / (1 << (i - j)) as f64;
            state.cphase(qubits[j], qubits[i], theta);
        }
        state.h(qubits[i]);
    }
}

fn check(state: &State, qubits: &[usize]) {
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < state.num_qubits(), "qubit out of range");
        assert!(!qubits[..i].contains(&q), "repeated qubit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;
    use crate::state::EPS;

    #[test]
    fn qft_of_zero_is_uniform() {
        let mut s = State::zero(3);
        qft(&mut s, &[0, 1, 2]);
        for i in 0..8 {
            assert!((s.probability(i) - 0.125).abs() < EPS);
        }
    }

    #[test]
    fn qft_iqft_roundtrip() {
        for idx in 0..8 {
            let mut s = State::basis(3, idx);
            qft(&mut s, &[0, 1, 2]);
            iqft(&mut s, &[0, 1, 2]);
            assert!((s.probability(idx) - 1.0).abs() < EPS, "basis {idx}");
        }
    }

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT|x⟩ = (1/√N) Σ_y e^{2πi x y / N} |y⟩.
        let n = 3usize;
        let dim = 1usize << n;
        for x in 0..dim {
            let mut s = State::basis(n, x);
            qft(&mut s, &[0, 1, 2]);
            for y in 0..dim {
                let want = C64::from_polar(
                    1.0 / (dim as f64).sqrt(),
                    2.0 * PI * (x * y) as f64 / dim as f64,
                );
                let got = s.amplitude(y);
                assert!(
                    (got.re - want.re).abs() < 1e-9 && (got.im - want.im).abs() < 1e-9,
                    "x={x} y={y}: got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn qft_on_subset_of_qubits() {
        // QFT on qubits {1, 2} of a 3-qubit state leaves qubit 0 alone.
        let mut s = State::basis(3, 0b001);
        qft(&mut s, &[1, 2]);
        assert!((s.prob_one(0) - 1.0).abs() < EPS);
    }
}
