//! The quantum Fourier transform, used by phase estimation (paper §6).
//!
//! The transforms are built as [`Circuit`] tapes and applied through the
//! gate-fusion pass ([`Circuit::fuse`]): each Hadamard's trailing run of
//! controlled phases collapses into a single diagonal sweep, so an
//! `n`-qubit QFT costs `O(n)` amplitude passes instead of `O(n²)`.

use crate::circuit::Circuit;
use crate::state::State;
use std::f64::consts::PI;

/// The QFT on the given qubits as a reusable gate tape (`qubits[0]` is the
/// least-significant bit of the transformed register).
///
/// # Panics
///
/// Panics if a qubit repeats.
pub fn qft_circuit(qubits: &[usize]) -> Circuit {
    check_distinct(qubits);
    let n = qubits.len();
    let mut c = Circuit::new(qubits.iter().max().map_or(0, |&m| m + 1));
    // Standard circuit on a big-endian ordering, then reverse with swaps.
    for i in (0..n).rev() {
        c.h(qubits[i]);
        for j in (0..i).rev() {
            let theta = PI / (1 << (i - j)) as f64;
            c.cphase(qubits[j], qubits[i], theta);
        }
    }
    push_reversal_swaps(&mut c, qubits);
    c
}

/// The inverse QFT on the given qubits as a reusable gate tape.
///
/// # Panics
///
/// Panics if a qubit repeats.
pub fn iqft_circuit(qubits: &[usize]) -> Circuit {
    check_distinct(qubits);
    let n = qubits.len();
    let mut c = Circuit::new(qubits.iter().max().map_or(0, |&m| m + 1));
    push_reversal_swaps(&mut c, qubits);
    for i in 0..n {
        for j in 0..i {
            let theta = -PI / (1 << (i - j)) as f64;
            c.cphase(qubits[j], qubits[i], theta);
        }
        c.h(qubits[i]);
    }
    c
}

/// Append the bit-reversal permutation as CNOT-decomposed swaps.
fn push_reversal_swaps(c: &mut Circuit, qubits: &[usize]) {
    let n = qubits.len();
    for i in 0..n / 2 {
        let (a, b) = (qubits[i], qubits[n - 1 - i]);
        if a != b {
            c.cnot(a, b).cnot(b, a).cnot(a, b);
        }
    }
}

/// Apply the QFT to `qubits` (treated as little-endian: `qubits[0]` is the
/// least-significant bit of the transformed register).
///
/// # Panics
///
/// Panics if a qubit repeats or is out of range.
pub fn qft(state: &mut State, qubits: &[usize]) {
    check(state, qubits);
    qft_circuit(qubits).apply_fused(state);
}

/// Apply the inverse QFT to `qubits`.
///
/// # Panics
///
/// Panics if a qubit repeats or is out of range.
pub fn iqft(state: &mut State, qubits: &[usize]) {
    check(state, qubits);
    iqft_circuit(qubits).apply_fused(state);
}

fn check_distinct(qubits: &[usize]) {
    for (i, &q) in qubits.iter().enumerate() {
        assert!(!qubits[..i].contains(&q), "repeated qubit");
    }
}

fn check(state: &State, qubits: &[usize]) {
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < state.num_qubits(), "qubit out of range");
        assert!(!qubits[..i].contains(&q), "repeated qubit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;
    use crate::state::EPS;

    #[test]
    fn qft_of_zero_is_uniform() {
        let mut s = State::zero(3);
        qft(&mut s, &[0, 1, 2]);
        for i in 0..8 {
            assert!((s.probability(i) - 0.125).abs() < EPS);
        }
    }

    #[test]
    fn qft_iqft_roundtrip() {
        for idx in 0..8 {
            let mut s = State::basis(3, idx);
            qft(&mut s, &[0, 1, 2]);
            iqft(&mut s, &[0, 1, 2]);
            assert!((s.probability(idx) - 1.0).abs() < EPS, "basis {idx}");
        }
    }

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT|x⟩ = (1/√N) Σ_y e^{2πi x y / N} |y⟩.
        let n = 3usize;
        let dim = 1usize << n;
        for x in 0..dim {
            let mut s = State::basis(n, x);
            qft(&mut s, &[0, 1, 2]);
            for y in 0..dim {
                let want = C64::from_polar(
                    1.0 / (dim as f64).sqrt(),
                    2.0 * PI * (x * y) as f64 / dim as f64,
                );
                let got = s.amplitude(y);
                assert!(
                    (got.re - want.re).abs() < 1e-9 && (got.im - want.im).abs() < 1e-9,
                    "x={x} y={y}: got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn qft_on_subset_of_qubits() {
        // QFT on qubits {1, 2} of a 3-qubit state leaves qubit 0 alone.
        let mut s = State::basis(3, 0b001);
        qft(&mut s, &[1, 2]);
        assert!((s.prob_one(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn circuit_form_matches_gatewise_form() {
        // The fused tape must agree with gate-by-gate application of the
        // same ops (the seed's formulation).
        for idx in 0..16 {
            let mut fused = State::basis(4, idx);
            qft(&mut fused, &[0, 1, 2, 3]);
            let mut plain = State::basis(4, idx);
            qft_circuit(&[0, 1, 2, 3]).apply(&mut plain);
            assert!(fused.fidelity(&plain) > 1.0 - 1e-12, "basis {idx}");
        }
    }

    #[test]
    fn fused_qft_collapses_phase_runs() {
        // 6 qubits: 6 H + 15 CPhase + 9 swap-CNOTs = 30 gates; fused:
        // every H is one matrix, each inter-H phase run is one sweep, and
        // the 9 trailing CNOTs stay single → 6 + 5 + 9 = 20 groups.
        let c = qft_circuit(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(c.len(), 30);
        assert_eq!(c.fuse().len(), 20);
    }
}
