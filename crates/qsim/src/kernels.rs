//! Strided, multi-threaded statevector kernels.
//!
//! Every gate in [`crate::state::State`] bottoms out here. The kernels
//! replace the seed's branch-per-index full scans (retained in
//! [`crate::reference`] as the differential-test oracle) with **strided
//! bit-pair loops**: a single-qubit gate on qubit `q` touches the pairs
//! `(i, i | 1<<q)` with the target bit clear in `i`, so the loops iterate
//! only those `2^{n-1}` base indices — as nested block/offset loops over
//! contiguous memory — instead of scanning all `2^n` indices and branching.
//! Controls are *hoisted out of the inner loop*: the iteration space is the
//! sub-cube where every control bit is 1, enumerated by a compressed
//! counter whose bits are expanded around the fixed (control and target)
//! positions, so no per-index mask test remains.
//!
//! ## Parallelism and determinism
//!
//! Kernels fan out with `std::thread::scope` over contiguous amplitude
//! chunks, the idiom of the `congest` parallel round engine. Results are
//! **bit-identical across thread counts**:
//!
//! * gate kernels are elementwise on disjoint pairs — each amplitude is
//!   written by exactly one thread with exactly the operations the
//!   sequential loop would perform, so there is nothing to merge;
//! * reductions ([`norm_sqr`], [`prob_one`]) accumulate per-chunk partial
//!   sums over *fixed* chunk boundaries ([`REDUCE_CHUNK`] amplitudes,
//!   independent of the thread count) and fold the partials in chunk
//!   order on the calling thread.
//!
//! [`auto_threads`] engages parallelism only for states of at least
//! [`PARALLEL_QUBIT_THRESHOLD`] qubits on hosts with more than one core;
//! below that the per-gate thread fan-out costs more than the scan.

use crate::complex::C64;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum qubit count at which [`auto_threads`] parallelizes. A `2^18`
/// amplitude pass (4 MiB) comfortably amortizes the scoped-thread spawn;
/// smaller states run the strided loops sequentially.
pub const PARALLEL_QUBIT_THRESHOLD: usize = 18;

/// Fixed reduction-chunk size (in amplitudes). Partial sums are taken per
/// `REDUCE_CHUNK` slice regardless of the thread count, which is what makes
/// reductions bit-identical across 1, 2, … threads.
pub const REDUCE_CHUNK: usize = 1 << 12;

/// Global upper bound on kernel threads (0 = uncapped). See
/// [`set_thread_cap`].
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of threads any kernel will use (0 removes the cap).
///
/// Intended for benchmarks that want to isolate single-threaded kernel
/// gains from multi-threading gains; thread count never changes results,
/// only scheduling.
pub fn set_thread_cap(cap: usize) {
    THREAD_CAP.store(cap, Ordering::Relaxed);
}

/// The current thread cap (0 = uncapped).
pub fn thread_cap() -> usize {
    THREAD_CAP.load(Ordering::Relaxed)
}

/// The thread count the kernels pick for an `n`-qubit state: the host's
/// available parallelism for `n ≥ PARALLEL_QUBIT_THRESHOLD`, else 1,
/// clamped by [`set_thread_cap`].
pub fn auto_threads(n_qubits: usize) -> usize {
    let auto = if n_qubits >= PARALLEL_QUBIT_THRESHOLD {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        1
    };
    match thread_cap() {
        0 => auto,
        cap => auto.min(cap),
    }
}

/// One term of a fused diagonal sweep: multiply the amplitude of every
/// basis state `x` with `x & mask == mask` by `factor` (a unit-modulus
/// phase). `mask == 0` is a global phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagTerm {
    /// Bits that must all be 1 for the term to fire.
    pub mask: usize,
    /// The phase factor `e^{iθ}`.
    pub factor: C64,
}

#[inline(always)]
fn pair_update(a: &mut C64, b: &mut C64, m: &[[C64; 2]; 2]) {
    let a0 = *a;
    let a1 = *b;
    *a = m[0][0] * a0 + m[0][1] * a1;
    *b = m[1][0] * a0 + m[1][1] * a1;
}

/// Sequential strided single-qubit kernel on a block-aligned slice.
fn apply_1q_seq(amps: &mut [C64], bit: usize, m: &[[C64; 2]; 2]) {
    for chunk in amps.chunks_exact_mut(bit << 1) {
        let (lo, hi) = chunk.split_at_mut(bit);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            pair_update(a, b, m);
        }
    }
}

/// Apply a single-qubit unitary `m` to qubit `q` of a `2^n` statevector.
///
/// # Panics
///
/// Panics if `amps.len()` is not a multiple of `2^{q+1}`.
pub fn apply_1q(amps: &mut [C64], q: usize, m: [[C64; 2]; 2], threads: usize) {
    let bit = 1usize << q;
    let block = bit << 1;
    assert!(amps.len().is_multiple_of(block), "state too small for qubit {q}");
    let threads = threads.max(1);
    crate::metrics::bump(crate::metrics::Counter::KernelLaunches, 1);
    crate::metrics::bump(crate::metrics::Counter::KernelThreads, threads as u64);
    if threads == 1 {
        apply_1q_seq(amps, bit, &m);
        return;
    }
    let num_blocks = amps.len() / block;
    if num_blocks >= threads {
        // Low/middle target: whole 2^{q+1} blocks are contiguous and
        // independent; hand each worker a contiguous run of blocks.
        let per = num_blocks.div_ceil(threads) * block;
        std::thread::scope(|s| {
            for chunk in amps.chunks_mut(per) {
                s.spawn(move || apply_1q_seq(chunk, bit, &m));
            }
        });
    } else {
        // High target: few huge blocks. Split each block at the target-bit
        // boundary and zip the halves — pair `o` is (lo[o], hi[o]) — then
        // chunk the zipped halves across workers.
        for chunk in amps.chunks_exact_mut(block) {
            let (lo, hi) = chunk.split_at_mut(bit);
            let per = bit.div_ceil(threads);
            std::thread::scope(|s| {
                for (lc, hc) in lo.chunks_mut(per).zip(hi.chunks_mut(per)) {
                    s.spawn(move || {
                        for (a, b) in lc.iter_mut().zip(hc.iter_mut()) {
                            pair_update(a, b, &m);
                        }
                    });
                }
            });
        }
    }
}

/// Insert a 0 bit at each position in `fixed` (ascending), spreading the
/// compressed counter `c` over the free bit positions.
#[inline(always)]
fn expand(mut c: usize, fixed: &[usize]) -> usize {
    for &p in fixed {
        let low = c & ((1usize << p) - 1);
        c = ((c >> p) << (p + 1)) | low;
    }
    c
}

/// A raw amplitude pointer shared across scoped workers.
///
/// Soundness rests on the kernels' index discipline: every compressed
/// counter value maps (via [`expand`]) to a distinct `(i, i | bit)` pair,
/// and distinct counters yield disjoint pairs, so workers handed disjoint
/// counter ranges never touch the same amplitude.
struct AmpsPtr(*mut C64);
unsafe impl Send for AmpsPtr {}
unsafe impl Sync for AmpsPtr {}

/// Apply a single-qubit unitary to qubit `q`, conditioned on every bit of
/// `ctrl_mask` being 1. `ctrl_mask == 0` reduces to [`apply_1q`].
///
/// The control test is hoisted out of the loop entirely: the kernel
/// iterates a compressed counter over the free (non-control, non-target)
/// bits and expands it around the fixed positions, so only the
/// `2^{n-1-|controls|}` live pairs are visited.
///
/// # Panics
///
/// Panics if the target bit is inside `ctrl_mask` or the masks exceed the
/// state.
pub fn apply_controlled_1q(
    amps: &mut [C64],
    ctrl_mask: usize,
    q: usize,
    m: [[C64; 2]; 2],
    threads: usize,
) {
    if ctrl_mask == 0 {
        apply_1q(amps, q, m, threads);
        return;
    }
    let n = amps.len().trailing_zeros() as usize;
    let bit = 1usize << q;
    assert!(ctrl_mask & bit == 0, "target cannot be its own control");
    assert!(ctrl_mask | bit < amps.len(), "control/target out of range");
    let fixed_mask = ctrl_mask | bit;
    // Fixed bit positions on the stack — no per-gate allocation.
    let mut fixed_buf = [0usize; usize::BITS as usize];
    let mut nf = 0;
    for p in 0..n {
        if fixed_mask >> p & 1 == 1 {
            fixed_buf[nf] = p;
            nf += 1;
        }
    }
    let fixed = &fixed_buf[..nf];
    let free = n - nf;
    let count = 1usize << free;
    let threads = threads.max(1).min(count);
    // The ctrl_mask == 0 case already counted inside its apply_1q call.
    crate::metrics::bump(crate::metrics::Counter::KernelLaunches, 1);
    crate::metrics::bump(crate::metrics::Counter::KernelThreads, threads as u64);
    if threads == 1 {
        for c in 0..count {
            let i = expand(c, fixed) | ctrl_mask;
            let j = i | bit;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = m[0][0] * a0 + m[0][1] * a1;
            amps[j] = m[1][0] * a0 + m[1][1] * a1;
        }
        return;
    }
    let ptr = AmpsPtr(amps.as_mut_ptr());
    let per = count.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * per;
            let hi = ((t + 1) * per).min(count);
            let ptr = &ptr;
            let fixed = &fixed;
            s.spawn(move || {
                for c in lo..hi {
                    let i = expand(c, fixed) | ctrl_mask;
                    let j = i | bit;
                    // SAFETY: `expand` is injective and strictly monotone
                    // in `c`, `i` has the target bit clear and `j` set, so
                    // the pairs of disjoint counter ranges are disjoint
                    // amplitude sets (see `AmpsPtr`).
                    unsafe {
                        let pa = ptr.0.add(i);
                        let pb = ptr.0.add(j);
                        let a0 = *pa;
                        let a1 = *pb;
                        *pa = m[0][0] * a0 + m[0][1] * a1;
                        *pb = m[1][0] * a0 + m[1][1] * a1;
                    }
                }
            });
        }
    });
}

/// Amplitudes per block in the blocked diagonal sweep: 2^12 · 16 B = 64 KiB,
/// small enough to stay L1/L2-resident while the term filter runs.
const DIAG_BLOCK: usize = 1 << 12;

/// One contiguous run of whole blocks. For each block the high bits of the
/// index are constant, so every term is classified once per block instead of
/// once per amplitude: terms whose high mask bits are unsatisfied are dead,
/// terms whose mask lies entirely in the high bits collapse to a scalar
/// prefactor, and terms that reduce to the same block-local low mask merge
/// into one. Blocks no term touches are skipped without reading their
/// amplitudes; each surviving term is then a branch-free strided multiply
/// over the L1-resident block — only the `block_len / 2^{popcount}`
/// amplitudes its mask selects are visited.
fn diag_sweep_run(run: &mut [C64], run_base: usize, terms: &[DiagTerm], block_len: usize) {
    let low = block_len - 1;
    let mut active: Vec<DiagTerm> = Vec::with_capacity(terms.len());
    for (bi, block) in run.chunks_mut(block_len).enumerate() {
        let base = run_base + bi * block_len;
        active.clear();
        let mut pre = C64::ONE;
        let mut fired = false;
        for t in terms {
            let high = t.mask & !low;
            if base & high != high {
                continue;
            }
            let lm = t.mask & low;
            if lm == 0 {
                pre = pre * t.factor;
                fired = true;
            } else if let Some(slot) = active.iter_mut().find(|s| s.mask == lm) {
                slot.factor = slot.factor * t.factor;
            } else {
                active.push(DiagTerm { mask: lm, factor: t.factor });
            }
        }
        if fired {
            for a in block.iter_mut() {
                *a = *a * pre;
            }
        }
        for t in active.iter() {
            // Enumerate the patterns of the mask's complement in ascending
            // order with the O(1) subset-increment; `c | mask` walks exactly
            // the amplitudes the term fires on, no per-index test.
            let free = low & !t.mask;
            let f = t.factor;
            let mut c = 0usize;
            loop {
                let a = &mut block[c | t.mask];
                *a = *a * f;
                if c == free {
                    break;
                }
                c = c.wrapping_sub(free) & free;
            }
        }
    }
}

/// Apply a fused run of diagonal gates in one blocked pass: each amplitude
/// is multiplied by the product of the [`DiagTerm`] factors whose masks it
/// satisfies. One memory sweep replaces one sweep per diagonal gate, and
/// per-block term hoisting keeps the inner loop over the (usually tiny) set
/// of terms that can still fire inside the block. Work is split at block
/// boundaries, so the per-amplitude arithmetic is identical for every thread
/// count.
pub fn apply_diag(amps: &mut [C64], terms: &[DiagTerm], threads: usize) {
    if terms.is_empty() {
        return;
    }
    let block_len = DIAG_BLOCK.min(amps.len());
    let blocks = amps.len() / block_len;
    let threads = threads.max(1).min(blocks);
    crate::metrics::bump(crate::metrics::Counter::KernelLaunches, 1);
    crate::metrics::bump(crate::metrics::Counter::KernelThreads, threads as u64);
    crate::metrics::bump(crate::metrics::Counter::DiagBlocks, blocks as u64);
    if threads == 1 {
        diag_sweep_run(amps, 0, terms, block_len);
        return;
    }
    let per = blocks.div_ceil(threads) * block_len;
    std::thread::scope(|s| {
        for (t, run) in amps.chunks_mut(per).enumerate() {
            s.spawn(move || diag_sweep_run(run, t * per, terms, block_len));
        }
    });
}

/// Negate the amplitude of every basis state selected by `pred` — the
/// `f(x) ∈ {0, π}` phase oracle without any trigonometry.
pub fn phase_flip_where<F: Fn(usize) -> bool + Sync>(amps: &mut [C64], pred: F, threads: usize) {
    let threads = threads.max(1);
    if threads == 1 {
        for (x, a) in amps.iter_mut().enumerate() {
            if pred(x) {
                *a = -*a;
            }
        }
        return;
    }
    let per = amps.len().div_ceil(threads);
    let pred = &pred;
    std::thread::scope(|s| {
        for (t, chunk) in amps.chunks_mut(per).enumerate() {
            s.spawn(move || {
                let base = t * per;
                for (off, a) in chunk.iter_mut().enumerate() {
                    if pred(base + off) {
                        *a = -*a;
                    }
                }
            });
        }
    });
}

/// Fold per-[`REDUCE_CHUNK`] partial sums in chunk order. `partial`
/// computes one chunk's sum; chunk boundaries are fixed, so the result is
/// independent of how chunks are scheduled onto threads.
fn chunked_sum<F: Fn(&[C64], usize) -> f64 + Sync>(
    amps: &[C64],
    threads: usize,
    partial: F,
) -> f64 {
    let chunks: Vec<&[C64]> = amps.chunks(REDUCE_CHUNK).collect();
    let mut partials = vec![0.0f64; chunks.len()];
    let threads = threads.max(1).min(chunks.len().max(1));
    if threads == 1 {
        for (t, chunk) in chunks.iter().enumerate() {
            partials[t] = partial(chunk, t * REDUCE_CHUNK);
        }
    } else {
        let per = chunks.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (slot, chunk_run) in partials.chunks_mut(per).zip(chunks.chunks(per)) {
                let base = chunk_run[0].as_ptr() as usize - amps.as_ptr() as usize;
                let base = base / std::mem::size_of::<C64>();
                let partial = &partial;
                s.spawn(move || {
                    for (i, (p, chunk)) in slot.iter_mut().zip(chunk_run).enumerate() {
                        *p = partial(chunk, base + i * REDUCE_CHUNK);
                    }
                });
            }
        });
    }
    partials.iter().sum()
}

/// `Σ|αᵢ|²` with fixed-chunk partial sums (bit-identical across thread
/// counts).
pub fn norm_sqr(amps: &[C64], threads: usize) -> f64 {
    chunked_sum(amps, threads, |chunk, _| chunk.iter().map(|a| a.norm_sqr()).sum())
}

/// Probability that qubit `q` reads 1: a strided sum over the upper half
/// of every `2^{q+1}` block — no per-index bit test.
pub fn prob_one(amps: &[C64], q: usize, threads: usize) -> f64 {
    let bit = 1usize << q;
    chunked_sum(amps, threads, |chunk, base| {
        // Within a fixed REDUCE_CHUNK slice, sum the entries whose target
        // bit is set. Chunks are power-of-two sized and aligned, so either
        // the whole chunk shares one target-bit value, or it contains
        // whole blocks.
        if REDUCE_CHUNK <= bit {
            if base & bit != 0 {
                chunk.iter().map(|a| a.norm_sqr()).sum()
            } else {
                0.0
            }
        } else {
            let mut s = 0.0;
            for block in chunk.chunks(bit << 1) {
                s += block[bit.min(block.len())..].iter().map(|a| a.norm_sqr()).sum::<f64>();
            }
            s
        }
    })
}

/// Complex sum with the same fixed-[`REDUCE_CHUNK`] partial-sum folding as
/// [`chunked_sum`], so the result is bit-identical across thread counts.
fn chunked_csum(amps: &[C64], threads: usize) -> C64 {
    let chunks: Vec<&[C64]> = amps.chunks(REDUCE_CHUNK).collect();
    let mut partials = vec![C64::ZERO; chunks.len()];
    let threads = threads.max(1).min(chunks.len().max(1));
    if threads == 1 {
        for (p, chunk) in partials.iter_mut().zip(&chunks) {
            *p = chunk.iter().copied().sum();
        }
    } else {
        let per = chunks.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (slot, chunk_run) in partials.chunks_mut(per).zip(chunks.chunks(per)) {
                s.spawn(move || {
                    for (p, chunk) in slot.iter_mut().zip(chunk_run) {
                        *p = chunk.iter().copied().sum();
                    }
                });
            }
        });
    }
    partials.iter().copied().sum()
}

/// The Grover diffusion `I − 2|u⟩⟨u|` over the `q` low qubits, where `|u⟩`
/// is the uniform superposition: within every contiguous `2^q` block,
/// subtract twice the block mean from each amplitude. Two memory passes
/// replace the `H^{⊗q} · S₀ · H^{⊗q}` cascade's `2q + 1` strided passes —
/// the unitary is identical. Block means are folded from fixed
/// [`REDUCE_CHUNK`] partials, so the result is bit-identical across thread
/// counts.
pub fn inversion_about_mean(amps: &mut [C64], q: usize, threads: usize) {
    let block = 1usize << q;
    assert!(block <= amps.len(), "qubit range exceeds state size");
    let threads = threads.max(1);
    let nblocks = amps.len() / block;
    if nblocks == 1 {
        // Single block spanning the whole state: parallelize the sum and
        // the subtraction across the state itself.
        let s = chunked_csum(amps, threads);
        let shift = s.scale(2.0 / block as f64);
        if threads == 1 {
            for a in amps.iter_mut() {
                *a = *a - shift;
            }
            return;
        }
        let per = amps.len().div_ceil(threads);
        std::thread::scope(|sc| {
            for chunk in amps.chunks_mut(per) {
                sc.spawn(move || {
                    for a in chunk.iter_mut() {
                        *a = *a - shift;
                    }
                });
            }
        });
        return;
    }
    // Several blocks: hand contiguous runs of whole blocks to workers; each
    // block's mean only depends on its own amplitudes.
    let per_block = |blk: &mut [C64]| {
        let s = chunked_csum(blk, 1);
        let shift = s.scale(2.0 / block as f64);
        for a in blk.iter_mut() {
            *a = *a - shift;
        }
    };
    let threads = threads.min(nblocks);
    if threads == 1 {
        for blk in amps.chunks_exact_mut(block) {
            per_block(blk);
        }
        return;
    }
    let per = nblocks.div_ceil(threads) * block;
    std::thread::scope(|s| {
        for run in amps.chunks_mut(per) {
            let per_block = &per_block;
            s.spawn(move || {
                for blk in run.chunks_exact_mut(block) {
                    per_block(blk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn haar_ish(n: usize, seed: u64) -> Vec<C64> {
        // A deterministic, unnormalized-but-nonzero amplitude vector.
        let mut v = Vec::with_capacity(1 << n);
        let mut s = seed | 1;
        for _ in 0..(1 << n) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let re = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let im = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            v.push(c64(re, im));
        }
        v
    }

    const H: [[C64; 2]; 2] = [
        [c64(std::f64::consts::FRAC_1_SQRT_2, 0.0), c64(std::f64::consts::FRAC_1_SQRT_2, 0.0)],
        [c64(std::f64::consts::FRAC_1_SQRT_2, 0.0), c64(-std::f64::consts::FRAC_1_SQRT_2, 0.0)],
    ];

    #[test]
    fn strided_matches_reference_all_targets() {
        for n in 1..=6 {
            for q in 0..n {
                let mut fast = haar_ish(n, 42 + q as u64);
                let mut refr = fast.clone();
                apply_1q(&mut fast, q, H, 1);
                crate::reference::apply_controlled_1q(&mut refr, &[], q, H);
                assert_eq!(fast, refr, "n={n} q={q}");
            }
        }
    }

    #[test]
    fn controlled_matches_reference() {
        for n in 2..=6 {
            for q in 0..n {
                for c in 0..n {
                    if c == q {
                        continue;
                    }
                    let mut fast = haar_ish(n, 7 + (q * 31 + c) as u64);
                    let mut refr = fast.clone();
                    apply_controlled_1q(&mut fast, 1 << c, q, H, 1);
                    crate::reference::apply_controlled_1q(&mut refr, &[c], q, H);
                    assert_eq!(fast, refr, "n={n} q={q} c={c}");
                }
            }
        }
    }

    #[test]
    fn threads_are_bit_identical() {
        for q in [0usize, 3, 7] {
            let base = haar_ish(8, 5);
            let mut one = base.clone();
            apply_1q(&mut one, q, H, 1);
            for threads in [2usize, 3, 4, 8] {
                let mut many = base.clone();
                apply_1q(&mut many, q, H, threads);
                assert_eq!(one, many, "q={q} threads={threads}");
            }
            let mut one_c = base.clone();
            apply_controlled_1q(&mut one_c, 0b10 << q.min(5), q, H, 1);
            for threads in [2usize, 4] {
                let mut many = base.clone();
                apply_controlled_1q(&mut many, 0b10 << q.min(5), q, H, threads);
                assert_eq!(one_c, many, "ctrl q={q} threads={threads}");
            }
        }
    }

    #[test]
    fn reductions_bit_identical_across_threads() {
        let amps = haar_ish(10, 99);
        let one = norm_sqr(&amps, 1);
        for threads in [2usize, 3, 4] {
            assert!(norm_sqr(&amps, threads).to_bits() == one.to_bits());
        }
        for q in 0..10 {
            let one = prob_one(&amps, q, 1);
            for threads in [2usize, 4] {
                assert!(prob_one(&amps, q, threads).to_bits() == one.to_bits(), "q={q}");
            }
        }
    }

    #[test]
    fn prob_one_matches_reference() {
        let amps = haar_ish(9, 12);
        for q in 0..9 {
            let fast = prob_one(&amps, q, 1);
            let refr = crate::reference::prob_one(&amps, q);
            assert!((fast - refr).abs() < 1e-12, "q={q}: {fast} vs {refr}");
        }
    }

    #[test]
    fn diag_sweep_fires_on_masks() {
        let mut amps = haar_ish(4, 3);
        let orig = amps.clone();
        let terms = [
            DiagTerm { mask: 0b0001, factor: c64(-1.0, 0.0) },
            DiagTerm { mask: 0b0110, factor: C64::from_polar(1.0, 0.4) },
        ];
        apply_diag(&mut amps, &terms, 1);
        for x in 0..16usize {
            let mut want = orig[x];
            if x & 1 == 1 {
                want = want * c64(-1.0, 0.0);
            }
            if x & 0b0110 == 0b0110 {
                want = want * C64::from_polar(1.0, 0.4);
            }
            assert_eq!(amps[x], want, "x={x}");
        }
    }

    #[test]
    fn blocked_diag_matches_naive_across_block_boundaries() {
        // 2^14 amplitudes = four DIAG_BLOCK blocks: exercises dead-term
        // skipping, scalar prefactors (high-bit masks) and per-amplitude
        // low-bit masks at once.
        let mut amps = haar_ish(14, 21);
        let orig = amps.clone();
        let terms = [
            DiagTerm { mask: 1 << 13, factor: C64::from_polar(1.0, 0.3) },
            DiagTerm { mask: (1 << 12) | 0b10, factor: c64(-1.0, 0.0) },
            DiagTerm { mask: 0b101, factor: C64::from_polar(1.0, -0.7) },
            DiagTerm { mask: 0, factor: C64::from_polar(1.0, 0.11) },
        ];
        apply_diag(&mut amps, &terms, 1);
        for x in 0..amps.len() {
            let mut want = orig[x];
            for t in &terms {
                if x & t.mask == t.mask {
                    want = want * t.factor;
                }
            }
            assert!((amps[x] - want).norm_sqr() < 1e-24, "x={x}");
        }
        for threads in [2usize, 3, 4] {
            let mut par = orig.clone();
            apply_diag(&mut par, &terms, threads);
            assert_eq!(par, amps, "threads={threads}");
        }
    }

    #[test]
    fn inversion_about_mean_matches_h_cascade() {
        // I − 2|u⟩⟨u| == H^{⊗q} · S₀ · H^{⊗q}: check against the gate
        // cascade built from the reference kernels.
        let n = 6usize;
        let mut fast = haar_ish(n, 77);
        let mut cascade = fast.clone();
        inversion_about_mean(&mut fast, n, 1);
        for q in 0..n {
            crate::reference::h(&mut cascade, q);
        }
        for (x, a) in cascade.iter_mut().enumerate() {
            if x == 0 {
                *a = -*a;
            }
        }
        for q in 0..n {
            crate::reference::h(&mut cascade, q);
        }
        for x in 0..1usize << n {
            assert!((fast[x] - cascade[x]).norm_sqr() < 1e-24, "x={x}");
        }
    }

    #[test]
    fn inversion_about_mean_blocks_and_threads() {
        // q < n: each contiguous 2^q block is inverted about its own mean,
        // and the result is bit-identical for every thread count.
        let n = 13usize;
        let q = 5usize;
        let orig = haar_ish(n, 31);
        let mut one = orig.clone();
        inversion_about_mean(&mut one, q, 1);
        let block = 1usize << q;
        for (b, blk) in orig.chunks(block).enumerate() {
            let mut mean = C64::ZERO;
            for a in blk {
                mean += *a;
            }
            let mean = mean.scale(1.0 / block as f64);
            for (off, a) in blk.iter().enumerate() {
                let want = *a - mean.scale(2.0);
                assert!((one[b * block + off] - want).norm_sqr() < 1e-24, "b={b} off={off}");
            }
        }
        for threads in [2usize, 3, 4, 7] {
            let mut par = orig.clone();
            inversion_about_mean(&mut par, q, threads);
            assert_eq!(par, one, "threads={threads}");
        }
        // Single-block case (q == n) across thread counts.
        let mut whole = orig.clone();
        inversion_about_mean(&mut whole, n, 1);
        for threads in [2usize, 4] {
            let mut par = orig.clone();
            inversion_about_mean(&mut par, n, threads);
            assert_eq!(par, whole, "threads={threads}");
        }
    }

    #[test]
    fn phase_flip_negates_selected() {
        let mut amps = haar_ish(5, 8);
        let orig = amps.clone();
        phase_flip_where(&mut amps, |x| x % 3 == 0, 1);
        for x in 0..32usize {
            let want = if x % 3 == 0 { -orig[x] } else { orig[x] };
            assert_eq!(amps[x], want);
        }
        let mut par = orig.clone();
        phase_flip_where(&mut par, |x| x % 3 == 0, 4);
        assert_eq!(par, amps);
    }

    #[test]
    fn expand_skips_fixed_positions() {
        // fixed = {1, 3}: counter bits land at positions 0, 2, 4, ...
        let fixed = [1usize, 3];
        let got: Vec<usize> = (0..8).map(|c| expand(c, &fixed)).collect();
        assert_eq!(
            got,
            vec![0b00000, 0b00001, 0b00100, 0b00101, 0b10000, 0b10001, 0b10100, 0b10101]
        );
    }
}
