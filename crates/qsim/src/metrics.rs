//! Opt-in global counters for simulator internals.
//!
//! The statevector engine has no per-run context to thread a collector
//! through — gates are free functions over amplitude slices — so its
//! telemetry is a small set of process-global counters, **disabled by
//! default**. When disabled every instrumentation site is a single
//! `Relaxed` atomic load and an untaken branch, at most once per
//! amplitude *pass* (never per amplitude), so the kernels' measured
//! throughput is unaffected; see `BENCH_qsim.json` for the baseline.
//!
//! Enable around a workload, then snapshot:
//!
//! ```
//! use qsim::{metrics, State};
//!
//! metrics::reset();
//! metrics::enable(true);
//! let mut s = State::zero(4);
//! qsim::qft::qft_circuit(&[0, 1, 2, 3]).fuse().apply(&mut s);
//! metrics::enable(false);
//! let snap = metrics::snapshot();
//! assert!(snap.iter().any(|&(name, v)| name == "qsim.matrix_applies" && v > 0));
//! ```
//!
//! Counters are cumulative across threads (kernel workers bump them from
//! inside `std::thread::scope` regions); [`reset`] zeroes them. The
//! counts themselves are deterministic for a deterministic workload —
//! they tally *work items* (gates, sweeps, blocks, launches), never
//! timings.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What each global counter tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Gates fed into [`Circuit::fuse`](crate::circuit::Circuit::fuse).
    FuseGatesIn,
    /// Fused groups produced by `fuse` (≤ gates in; the ratio is the
    /// fusion win).
    FuseGroups,
    /// Fused 2×2-matrix passes applied to a statevector.
    MatrixApplies,
    /// Fused diagonal sweeps applied.
    DiagSweeps,
    /// Diagonal terms across those sweeps (terms per sweep = fusion
    /// depth).
    DiagTerms,
    /// Blocks processed by the blocked diagonal kernel.
    DiagBlocks,
    /// Kernel entry points taken (1q, masked 1q, diagonal).
    KernelLaunches,
    /// Worker threads summed over those launches; divide by
    /// `KernelLaunches` for mean utilization.
    KernelThreads,
}

const NAMES: [&str; 8] = [
    "qsim.fuse_gates_in",
    "qsim.fuse_groups",
    "qsim.matrix_applies",
    "qsim.diag_sweeps",
    "qsim.diag_terms",
    "qsim.diag_blocks",
    "qsim.kernel_launches",
    "qsim.kernel_threads",
];

static ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTERS: [AtomicU64; 8] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turn metric collection on or off (off at process start).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric collection is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero all counters (typically right before [`enable`]).
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

/// Add `v` to `counter` if collection is enabled. The disabled path is one
/// relaxed load.
#[inline]
pub(crate) fn bump(counter: Counter, v: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        COUNTERS[counter as usize].fetch_add(v, Ordering::Relaxed);
    }
}

/// The value of one counter.
pub fn get(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// All counters as `(name, value)` pairs, in fixed declaration order —
/// ready to feed a `telemetry::Collector` via its `add` method.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    NAMES.iter().zip(&COUNTERS).map(|(&name, c)| (name, c.load(Ordering::Relaxed))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state is shared across the test binary's threads, so this
    // single test exercises the whole lifecycle in one sequence.
    #[test]
    fn lifecycle_gating_and_snapshot() {
        reset();
        assert!(!is_enabled());
        bump(Counter::KernelLaunches, 3);
        assert_eq!(get(Counter::KernelLaunches), 0, "disabled bump must not count");

        enable(true);
        bump(Counter::KernelLaunches, 3);
        bump(Counter::KernelThreads, 6);
        enable(false);
        bump(Counter::KernelLaunches, 99);
        assert_eq!(get(Counter::KernelLaunches), 3);

        let snap = snapshot();
        assert_eq!(snap.len(), 8);
        assert!(snap.contains(&("qsim.kernel_launches", 3)));
        assert!(snap.contains(&("qsim.kernel_threads", 6)));
        assert!(snap.iter().all(|(n, _)| n.starts_with("qsim.")));
        reset();
        assert_eq!(get(Counter::KernelLaunches), 0);
    }
}
