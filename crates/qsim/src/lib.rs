//! # qsim — a small statevector quantum-circuit simulator
//!
//! Exact-mode substrate for the reproduction of *"A Framework for
//! Distributed Quantum Queries in the CONGEST Model"* (van Apeldoorn &
//! de Vos, PODC 2022). The scalable experiments emulate quantum query
//! algorithms at the schedule level (crate `pquery`); this crate provides
//! the ground truth those emulations are validated against:
//!
//! * [`state`] — dense statevectors, gates, measurement;
//! * [`kernels`] — the strided, multi-threaded loops under every gate;
//! * [`mod@reference`] — the seed's branch-per-index scans, kept as the
//!   differential-test oracle;
//! * [`oracle`] — phase and XOR input oracles from classical data;
//! * [`qft`] — the quantum Fourier transform;
//! * [`grover`] — Grover/BBHT search (Lemma 2's sequential core);
//! * [`deutsch_jozsa`] — the exact algorithm behind §4.3;
//! * [`phase_estimation`] — QPE (Lemma 29);
//! * [`amplitude`] — amplitude amplification & estimation (Lemmas 27–28,
//!   Corollary 30).
//!
//! # Quickstart
//!
//! ```
//! use qsim::state::State;
//!
//! // A Bell pair.
//! let mut s = State::zero(2);
//! s.h(0);
//! s.cnot(0, 1);
//! assert!((s.probability(0b00) - 0.5).abs() < 1e-9);
//! assert!((s.probability(0b11) - 0.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amplitude;
pub mod bernstein_vazirani;
pub mod circuit;
pub mod complex;
pub mod deutsch_jozsa;
pub mod gf2;
pub mod grover;
pub mod kernels;
pub mod metrics;
pub mod oracle;
pub mod phase_estimation;
pub mod qft;
pub mod reference;
pub mod simon;
pub mod state;

pub use complex::{c64, C64};
pub use state::State;
