//! Standard input oracles built from classical data.
//!
//! A query problem's input `x ∈ A^k` becomes a unitary in one of two
//! interchangeable forms:
//!
//! * **phase oracle** — `|i⟩ → (−1)^{f(i)}|i⟩` for boolean `f`, or
//!   `|i⟩ → e^{iφ(i)}|i⟩` in general;
//! * **XOR oracle** — `|i⟩|y⟩ → |i⟩|y ⊕ xᵢ⟩`, a basis permutation.
//!
//! Search spaces are padded to a power of two; padding indices are never
//! marked and carry value 0.

use crate::state::State;

/// Apply the phase oracle of the boolean function `marked` to the `q`
/// low-order qubits of `state`: basis states `|i⟩` with `i < k` and
/// `marked(i)` get a `−1` phase. Higher (ancilla/padding) bits are ignored
/// for the predicate but preserved.
///
/// # Panics
///
/// Panics if `q` exceeds the state's qubit count.
pub fn phase_oracle<F: Fn(usize) -> bool + Sync>(state: &mut State, q: usize, k: usize, marked: F) {
    assert!(q <= state.num_qubits());
    let mask = (1usize << q) - 1;
    state.phase_flip_where(|x| {
        let i = x & mask;
        i < k && marked(i)
    });
}

/// Apply the XOR oracle of the data table `values`: with the index register
/// on qubits `0..q` and the target register on qubits `q..q+t`,
/// `|i⟩|y⟩ → |i⟩|y ⊕ valuesᵢ⟩` (indices `i ≥ values.len()` act as identity).
///
/// # Panics
///
/// Panics if registers exceed the state, or a value needs more than `t`
/// bits.
pub fn xor_oracle(state: &mut State, q: usize, t: usize, values: &[u64]) {
    assert!(q + t <= state.num_qubits(), "registers exceed the state");
    for &v in values {
        assert!(t == 64 || v < (1u64 << t), "value does not fit the target register");
    }
    let imask = (1usize << q) - 1;
    state.apply_permutation(|x| {
        let i = x & imask;
        if i < values.len() {
            let v = values[i] as usize;
            x ^ (v << q)
        } else {
            x
        }
    });
}

/// Number of index qubits needed for a search space of `k` items:
/// `⌈log₂ k⌉`, at least 1.
pub fn index_qubits(k: usize) -> usize {
    assert!(k >= 1);
    ((usize::BITS - (k - 1).leading_zeros()) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::EPS;

    #[test]
    fn index_qubit_counts() {
        assert_eq!(index_qubits(1), 1);
        assert_eq!(index_qubits(2), 1);
        assert_eq!(index_qubits(3), 2);
        assert_eq!(index_qubits(4), 2);
        assert_eq!(index_qubits(5), 3);
        assert_eq!(index_qubits(1024), 10);
    }

    #[test]
    fn phase_oracle_flips_marked_only() {
        let mut s = State::zero(3);
        s.h_all(0..3);
        phase_oracle(&mut s, 3, 8, |i| i == 5);
        for i in 0..8 {
            let a = s.amplitude(i);
            let want = if i == 5 { -1.0 } else { 1.0 } / 8f64.sqrt();
            assert!((a.re - want).abs() < EPS, "amp {i}");
        }
    }

    #[test]
    fn phase_oracle_ignores_padding() {
        // k = 3 in a 2-qubit register: index 3 is padding, never marked.
        let mut s = State::zero(2);
        s.h_all(0..2);
        phase_oracle(&mut s, 2, 3, |_| true);
        assert!(s.amplitude(3).re > 0.0, "padding amplitude unflipped");
        assert!(s.amplitude(0).re < 0.0);
    }

    #[test]
    fn xor_oracle_writes_value() {
        let values = [0b00u64, 0b11, 0b10, 0b01];
        let mut s = State::basis(4, 0b10); // i = 2, y = 0
        xor_oracle(&mut s, 2, 2, &values);
        // y becomes 0b10 -> basis index 0b10_10
        assert!((s.probability(0b1010) - 1.0).abs() < EPS);
    }

    #[test]
    fn xor_oracle_is_involutive() {
        let values = [3u64, 1, 2, 0];
        let mut s = State::zero(4);
        s.h_all(0..2);
        let orig = s.clone();
        xor_oracle(&mut s, 2, 2, &values);
        xor_oracle(&mut s, 2, 2, &values);
        assert!(s.fidelity(&orig) > 1.0 - EPS);
    }
}
