//! Minimal complex arithmetic for the statevector simulator.
//!
//! A tiny purpose-built type (rather than an external dependency) keeps the
//! simulator self-contained; only the operations the simulator needs are
//! provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor.
///
/// # Examples
///
/// ```
/// use qsim::complex::{c64, C64};
/// assert_eq!(c64(1.0, -2.0), C64 { re: 1.0, im: -2.0 });
/// ```
#[inline]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// One.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit.
    pub const I: C64 = c64(0.0, 1.0);

    /// `e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> C64 {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> C64 {
        c64(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> C64 {
        c64(self.re * s, self.im * s)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        c64(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        c64(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        c64(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

impl Sum for C64 {
    /// Plain left-to-right fold: summation order is exactly the iteration
    /// order, which the deterministic kernel reductions rely on.
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        assert_eq!(a + b, c64(4.0, 1.0));
        assert_eq!(a - b, c64(-2.0, 3.0));
        assert_eq!(a * b, c64(5.0, 5.0));
        assert_eq!(-a, c64(-1.0, -2.0));
        assert_eq!(a.conj(), c64(1.0, -2.0));
    }

    #[test]
    fn modulus() {
        assert!((c64(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert!((c64(3.0, 4.0).norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn polar() {
        let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-12);
        assert!((z.im - 2.0).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, c64(-1.0, 0.0));
    }
}
