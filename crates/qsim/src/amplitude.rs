//! Amplitude amplification and amplitude estimation (`[BHMT02]`) — the
//! exact-mode counterparts of the paper's Lemmas 27, 28 and Corollary 30.
//!
//! The good subspace is described by a predicate on basis states of the `q`
//! low-order qubits; the preparation unitary is `A = H^{⊗q}` (uniform), so
//! the initial good amplitude is `a = t/2^q`. The amplification iterate is
//! `Q = −A S₀ A† S_f`; its eigenphases `±2θ_a` (with `a = sin²θ_a`) are what
//! amplitude estimation reads out via phase estimation.

use crate::complex::C64;
use crate::phase_estimation::phase_estimation;
use crate::state::State;
use rand::Rng;
use std::f64::consts::PI;

/// Apply the amplification iterate `Q = −A S₀ A† S_f` (uncontrolled) to the
/// `q` low-order qubits.
pub fn amplification_iterate<F: Fn(usize) -> bool + Sync>(state: &mut State, q: usize, good: &F) {
    let mask = (1usize << q) - 1;
    // S_f: flip good states.
    state.phase_flip_where(|x| good(x & mask));
    // A S₀ A† = H^{⊗q} S₀ H^{⊗q} = I − 2|u⟩⟨u|: inversion about the mean
    // in closed form (two passes instead of the 2q + 1-pass gate cascade).
    state.inversion_about_mean(q);
    // Global −1: irrelevant uncontrolled; kept implicit here (see the
    // controlled variant below where it matters).
}

/// Apply `Q^{2^j}` controlled on `control`, with the data register on
/// qubits `offset..offset+q`. The global `−1` of `Q` becomes a conditional
/// phase on the control — it must be tracked for phase estimation to read
/// the correct eigenphase.
pub fn controlled_iterate_power<F: Fn(usize) -> bool + Sync>(
    state: &mut State,
    control: usize,
    q: usize,
    offset: usize,
    good: &F,
    j: u32,
) {
    let reps = 1u64 << j;
    let cbit = 1usize << control;
    let h = {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        [
            [C64 { re: s, im: 0.0 }, C64 { re: s, im: 0.0 }],
            [C64 { re: s, im: 0.0 }, C64 { re: -s, im: 0.0 }],
        ]
    };
    let dmask = ((1usize << q) - 1) << offset;
    for _ in 0..reps {
        // controlled S_f
        state.phase_flip_where(|x| x & cbit != 0 && good((x & dmask) >> offset));
        // controlled H^{⊗q}
        for d in 0..q {
            state.apply_controlled_1q(&[control], offset + d, h);
        }
        // controlled S₀
        state.phase_flip_where(|x| x & cbit != 0 && x & dmask == 0);
        // controlled H^{⊗q}
        for d in 0..q {
            state.apply_controlled_1q(&[control], offset + d, h);
        }
        // controlled global −1
        state.phase_flip_where(|x| x & cbit != 0);
    }
}

/// Good-state probability after `j` amplification iterations starting from
/// uniform: `sin²((2j+1)θ_a)`.
pub fn amplified_probability(a: f64, j: usize) -> f64 {
    let theta = a.sqrt().asin();
    ((2 * j + 1) as f64 * theta).sin().powi(2)
}

/// Amplitude amplification driver: prepare uniform, run `j` iterates,
/// sample; repeat up to `reps` times (the `log(1/δ)` boosting of
/// Corollary 28). Returns a good index if found.
pub fn amplify_and_sample<F: Fn(usize) -> bool + Sync, R: Rng>(
    q: usize,
    good: F,
    j: usize,
    reps: usize,
    rng: &mut R,
) -> Option<usize> {
    let mask = (1usize << q) - 1;
    for _ in 0..reps {
        let mut s = State::zero(q);
        s.h_all(0..q);
        for _ in 0..j {
            amplification_iterate(&mut s, q, &good);
        }
        let out = s.sample(rng) & mask;
        if good(out) {
            return Some(out);
        }
    }
    None
}

/// Amplitude estimation (`[BHMT02]`, used by Corollary 30): estimate
/// `a = |good ∩ [2^q]| / 2^q` with `t` counting qubits. The estimate
/// satisfies `|ã − a| ≤ 2π√(a(1−a))/2^t + π²/4^t` with probability
/// ≥ 8/π².
pub fn estimate_amplitude<F: Fn(usize) -> bool + Sync, R: Rng>(
    q: usize,
    good: F,
    t: usize,
    rng: &mut R,
) -> f64 {
    // Layout: counting qubits 0..t, data qubits t..t+q.
    let mut s = State::zero(t + q);
    s.h_all(t..t + q);
    let u = |state: &mut State, control: usize, j: u32| {
        controlled_iterate_power(state, control, q, t, &good, j);
    };
    let m = phase_estimation(&mut s, t, &u, rng);
    let phi = m as f64 / (1usize << t) as f64;
    // Eigenphases of Q are ±2θ_a, so φ ≈ ±θ_a/π (mod 1).
    (PI * phi).sin().powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn iterate_follows_sine_law() {
        let q = 6;
        let n = 1usize << q;
        let tgood = 3usize;
        let good = |x: usize| x < tgood;
        let a = tgood as f64 / n as f64;
        let mut s = State::zero(q);
        s.h_all(0..q);
        for j in 0..6 {
            let p = s.probability_where(|x| good(x & (n - 1)));
            assert!((p - amplified_probability(a, j)).abs() < 1e-9, "j = {j}");
            amplification_iterate(&mut s, q, &good);
        }
    }

    #[test]
    fn amplification_boosts_rare_events() {
        let q = 8;
        let good = |x: usize| x == 200;
        let a: f64 = 1.0 / 256.0;
        let jopt = ((PI / 4.0) / a.sqrt().asin()).floor() as usize;
        let mut rng = StdRng::seed_from_u64(21);
        let mut hits = 0;
        for _ in 0..10 {
            if amplify_and_sample(q, good, jopt, 2, &mut rng) == Some(200) {
                hits += 1;
            }
        }
        assert!(hits >= 9, "amplified search failed {}/10", 10 - hits);
    }

    #[test]
    fn controlled_iterate_matches_uncontrolled_when_control_set() {
        let q = 4;
        let good = |x: usize| x == 5;
        // Control = qubit 0 (set to 1), data on qubits 1..5.
        let mut ctl = State::zero(q + 1);
        ctl.x(0);
        ctl.h_all(1..q + 1);
        controlled_iterate_power(&mut ctl, 0, q, 1, &good, 0);
        let mut plain = State::zero(q);
        plain.h_all(0..q);
        amplification_iterate(&mut plain, q, &good);
        for x in 0..(1 << q) {
            let a = ctl.amplitude((x << 1) | 1);
            let b = plain.amplitude(x);
            // Controlled version includes the global −1 of Q.
            assert!((a.re + b.re).abs() < 1e-9 && (a.im + b.im).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn controlled_iterate_identity_when_control_clear() {
        let q = 3;
        let good = |x: usize| x == 1;
        let mut s = State::zero(q + 1);
        s.h_all(1..q + 1);
        let before = s.clone();
        controlled_iterate_power(&mut s, 0, q, 1, &good, 2);
        assert!(s.fidelity(&before) > 1.0 - 1e-9);
    }

    #[test]
    fn amplitude_estimation_accuracy() {
        let q = 5;
        let t = 6;
        let mut rng = StdRng::seed_from_u64(33);
        for tgood in [1usize, 4, 8, 16] {
            let a = tgood as f64 / 32.0;
            let good = move |x: usize| x < tgood;
            let mut ok = 0;
            for _ in 0..15 {
                let est = estimate_amplitude(q, good, t, &mut rng);
                let tol = 2.0 * PI * (a * (1.0 - a)).sqrt() / 64.0 + PI * PI / 4096.0;
                if (est - a).abs() <= tol {
                    ok += 1;
                }
            }
            assert!(ok >= 10, "a = {a}: only {ok}/15 within BHMT tolerance");
        }
    }

    #[test]
    fn amplitude_estimation_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let est0 = estimate_amplitude(4, |_| false, 5, &mut rng);
        assert!(est0 < 0.05, "a = 0 estimated as {est0}");
        let est1 = estimate_amplitude(4, |_| true, 5, &mut rng);
        assert!(est1 > 0.95, "a = 1 estimated as {est1}");
    }
}
