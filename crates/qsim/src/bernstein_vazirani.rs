//! The Bernstein–Vazirani algorithm: recover a hidden string `s ∈ {0,1}^m`
//! from the linear oracle `f(x) = s·x mod 2` with **one** query, exactly.
//!
//! A companion to Deutsch–Jozsa (paper §4.3) with the same phase-kickback
//! structure: `H^{⊗m} · O_f · H^{⊗m} |0⟩ = |s⟩` deterministically. Like
//! the distributed DJ, the distributed version (see
//! `dqc_core::bernstein_vazirani`) needs no value communication at all —
//! XOR shares of `s` phase their own register copies.

use crate::state::{State, EPS};

/// Inner product `s·x mod 2` with `x` given as basis-state bits.
fn dot(s: &[bool], x: usize) -> bool {
    s.iter().enumerate().fold(false, |acc, (i, &b)| acc ^ (b && (x >> i) & 1 == 1))
}

/// Recover `s` from its phase oracle with a single query — exact.
///
/// # Panics
///
/// Panics if `s` is empty or longer than 22 bits (statevector guard).
pub fn bernstein_vazirani(s: &[bool]) -> Vec<bool> {
    let m = s.len();
    assert!((1..=22).contains(&m), "hidden string must have 1..=22 bits");
    let mut st = State::zero(m);
    st.h_all(0..m);
    // The single query: |x⟩ → (−1)^{s·x}|x⟩.
    st.phase_flip_where(|x| dot(s, x));
    st.h_all(0..m);
    // The state is exactly |s⟩.
    let s_idx: usize = s.iter().enumerate().map(|(i, &b)| (b as usize) << i).sum();
    debug_assert!(st.probability(s_idx) > 1.0 - EPS, "BV must be deterministic");
    (0..m).map(|i| st.probability_where(|x| (x >> i) & 1 == 1) > 0.5).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_all_strings_up_to_five_bits() {
        for m in 1..=5usize {
            for bits in 0..(1u32 << m) {
                let s: Vec<bool> = (0..m).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(bernstein_vazirani(&s), s, "m={m} bits={bits:b}");
            }
        }
    }

    #[test]
    fn recovers_long_string() {
        let s: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        assert_eq!(bernstein_vazirani(&s), s);
    }

    #[test]
    fn dot_product_helper() {
        assert!(!dot(&[true, false], 0b10));
        assert!(dot(&[true, false], 0b01));
        assert!(dot(&[true, true], 0b01));
        assert!(!dot(&[true, true], 0b11));
    }
}
