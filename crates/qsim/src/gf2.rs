//! Linear algebra over GF(2) on ≤ 64-bit row vectors — the classical
//! post-processing of Simon's algorithm.

/// A matrix over GF(2), rows stored as bit masks of width `m ≤ 64`.
#[derive(Debug, Clone, Default)]
pub struct Gf2Matrix {
    m: usize,
    rows: Vec<u64>,
}

impl Gf2Matrix {
    /// An empty matrix with `m` columns.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > 64`.
    pub fn new(m: usize) -> Self {
        assert!((1..=64).contains(&m));
        Gf2Matrix { m, rows: Vec::new() }
    }

    /// Column count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add a row (a width-`m` bit vector).
    ///
    /// # Panics
    ///
    /// Panics if the row has bits outside the width.
    pub fn push(&mut self, row: u64) {
        assert!(self.m == 64 || row < (1u64 << self.m), "row wider than m");
        self.rows.push(row);
    }

    /// The rank of the matrix (Gaussian elimination).
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        let mut rank = 0;
        for col in (0..self.m).rev() {
            let bit = 1u64 << col;
            if let Some(pos) = (rank..rows.len()).find(|&i| rows[i] & bit != 0) {
                rows.swap(rank, pos);
                let pivot = rows[rank];
                for (i, r) in rows.iter_mut().enumerate() {
                    if i != rank && *r & bit != 0 {
                        *r ^= pivot;
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// A nonzero vector `s` with `row·s = 0 (mod 2)` for every row, if the
    /// null space is nontrivial. With rank `m − 1` the answer is unique.
    pub fn null_vector(&self) -> Option<u64> {
        // Reduced row echelon form, tracking pivot columns.
        let mut rows = self.rows.clone();
        let mut pivots: Vec<usize> = Vec::new();
        let mut rank = 0;
        for col in (0..self.m).rev() {
            let bit = 1u64 << col;
            if let Some(pos) = (rank..rows.len()).find(|&i| rows[i] & bit != 0) {
                rows.swap(rank, pos);
                let pivot = rows[rank];
                for (i, r) in rows.iter_mut().enumerate() {
                    if i != rank && *r & bit != 0 {
                        *r ^= pivot;
                    }
                }
                pivots.push(col);
                rank += 1;
            }
        }
        if rank == self.m {
            return None; // full rank: only the zero vector
        }
        // Pick the highest free column, set it to 1, back-substitute.
        let free = (0..self.m).rev().find(|c| !pivots.contains(c))?;
        let mut s = 1u64 << free;
        for (r, &pc) in rows.iter().zip(&pivots) {
            // Row: x_pc = Σ_{free cols in row} x_c.
            if (r & s).count_ones() % 2 == 1 {
                s |= 1u64 << pc;
            }
        }
        debug_assert!(self.rows.iter().all(|r| (r & s).count_ones().is_multiple_of(2)));
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_identity() {
        let mut a = Gf2Matrix::new(4);
        for i in 0..4 {
            a.push(1 << i);
        }
        assert_eq!(a.rank(), 4);
        assert_eq!(a.null_vector(), None);
    }

    #[test]
    fn rank_with_dependencies() {
        let mut a = Gf2Matrix::new(4);
        a.push(0b1100);
        a.push(0b0110);
        a.push(0b1010); // = row0 ^ row1
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn null_vector_orthogonal_to_all_rows() {
        let mut a = Gf2Matrix::new(5);
        a.push(0b11000);
        a.push(0b00110);
        a.push(0b10101);
        let s = a.null_vector().unwrap();
        assert_ne!(s, 0);
        for &r in &[0b11000u64, 0b00110, 0b10101] {
            assert_eq!((r & s).count_ones() % 2, 0);
        }
    }

    #[test]
    fn unique_null_vector_recovered() {
        // All vectors orthogonal to s = 0b1011 span a rank-3 space.
        let s = 0b1011u64;
        let mut a = Gf2Matrix::new(4);
        for y in 0..16u64 {
            if (y & s).count_ones().is_multiple_of(2) {
                a.push(y);
            }
        }
        assert_eq!(a.rank(), 3);
        assert_eq!(a.null_vector(), Some(s));
    }

    #[test]
    fn empty_matrix_has_any_nonzero_null_vector() {
        let a = Gf2Matrix::new(3);
        let s = a.null_vector().unwrap();
        assert_ne!(s, 0);
        assert!(s < 8);
    }
}
