//! Grover search on the statevector — exact-mode ground truth for the
//! parallel-Grover emulation of `pquery` (paper Lemma 2 builds on this).

use crate::oracle::{index_qubits, phase_oracle};
use crate::state::State;
use rand::Rng;
use std::f64::consts::PI;

/// One Grover iterate on the `q` low-order qubits: phase oracle followed by
/// the diffusion (inversion about the uniform superposition).
pub fn grover_iterate<F: Fn(usize) -> bool + Sync>(
    state: &mut State,
    q: usize,
    k: usize,
    marked: &F,
) {
    phase_oracle(state, q, k, marked);
    diffusion(state, q);
}

/// The diffusion operator `2|u⟩⟨u| − I` on the `q` low-order qubits,
/// applied in closed form: `H^{⊗q} · S₀ · H^{⊗q} = I − 2|u⟩⟨u|` is an
/// inversion about the block mean, so two amplitude passes replace the
/// `2q + 1` passes of the gate cascade. The global `−1` relating this to
/// `2|u⟩⟨u| − I` is absorbed, matching the textbook `Q = −A S₀ A† S_f`
/// convention up to global phase (irrelevant uncontrolled; the controlled
/// version in `amplitude` adds it back explicitly).
pub fn diffusion(state: &mut State, q: usize) {
    state.inversion_about_mean(q);
}

/// Success probability of measuring a marked item after `j` iterations
/// starting from uniform over `2^q` states with `t` marked:
/// `sin²((2j+1)θ)`, `sin²θ = t/2^q`.
pub fn success_probability(q: usize, t: usize, j: usize) -> f64 {
    let theta = ((t as f64) / (1usize << q) as f64).sqrt().asin();
    ((2 * j + 1) as f64 * theta).sin().powi(2)
}

/// Result of a Grover run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroverResult {
    /// A marked index, if one was found and verified.
    pub found: Option<usize>,
    /// Number of oracle queries spent (iterations plus the final
    /// verification query).
    pub queries: usize,
}

/// Grover search with *known* number of marked items `t`: runs the optimal
/// `⌊(π/4)·√(N/t)⌋` iterations once and verifies the measured index.
///
/// # Panics
///
/// Panics if `k == 0` or `t == 0`.
pub fn grover_known_count<F: Fn(usize) -> bool + Sync, R: Rng>(
    k: usize,
    t: usize,
    marked: F,
    rng: &mut R,
) -> GroverResult {
    assert!(k > 0 && t > 0);
    let q = index_qubits(k);
    let big_n = 1usize << q;
    let theta = ((t as f64) / big_n as f64).sqrt().asin();
    let j = ((PI / 4.0) / theta).floor() as usize;
    let mut s = State::zero(q);
    s.h_all(0..q);
    for _ in 0..j {
        grover_iterate(&mut s, q, k, &marked);
    }
    let out = s.sample(rng);
    let found = if out < k && marked(out) { Some(out) } else { None };
    GroverResult { found, queries: j + 1 }
}

/// BBHT search with *unknown* number of marked items: exponentially growing
/// random iteration counts. Expected `O(√(N/t))` queries; returns `None`
/// after the cutoff if nothing was found (so "no marked item" is reported
/// with one-sided error).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn grover_search<F: Fn(usize) -> bool + Sync, R: Rng>(
    k: usize,
    marked: F,
    rng: &mut R,
) -> GroverResult {
    assert!(k > 0);
    let q = index_qubits(k);
    let big_n = 1usize << q;
    let mut queries = 0usize;
    let mut m = 1.0f64;
    let lambda = 6.0 / 5.0;
    // 9·√N total iterations suffice for failure probability well below 1/3.
    let cutoff = (9.0 * (big_n as f64).sqrt()).ceil() as usize;
    while queries < cutoff {
        let j = rng.gen_range(0..(m.ceil() as usize).max(1));
        let mut s = State::zero(q);
        s.h_all(0..q);
        for _ in 0..j {
            grover_iterate(&mut s, q, k, &marked);
        }
        queries += j + 1;
        let out = s.sample(rng);
        if out < k && marked(out) {
            return GroverResult { found: Some(out), queries };
        }
        m = (m * lambda).min((big_n as f64).sqrt());
    }
    GroverResult { found: None, queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn success_probability_peaks_at_optimal_iterations() {
        let q = 8;
        let t = 1;
        let jopt = ((PI / 4.0) * ((1 << q) as f64).sqrt()).floor() as usize;
        assert!(success_probability(q, t, jopt) > 0.99);
        assert!(success_probability(q, t, 0) < 0.01);
    }

    #[test]
    fn exact_amplitudes_follow_sine_law() {
        let q = 6;
        let k = 1 << q;
        let marked = |i: usize| i == 37;
        let mut s = State::zero(q);
        s.h_all(0..q);
        for j in 0..8 {
            // After j iterations the marked probability is sin²((2j+1)θ).
            let p = s.probability_where(|i| marked(i & (k - 1)));
            let theta = (1.0 / k as f64).sqrt().asin();
            let closed = ((2 * j + 1) as f64 * theta).sin().powi(2);
            assert!((p - closed).abs() < 1e-9, "j={j}: {p} vs {closed}");
            grover_iterate(&mut s, q, k, &marked);
        }
    }

    #[test]
    fn known_count_finds_unique_item() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0;
        for trial in 0..20 {
            let target = (trial * 13) % 100;
            let r = grover_known_count(100, 1, |i| i == target, &mut rng);
            if r.found == Some(target) {
                hits += 1;
            }
        }
        assert!(hits >= 16, "only {hits}/20 successes");
    }

    #[test]
    fn bbht_finds_with_unknown_count() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0;
        for trial in 0..20 {
            let t = 1 + trial % 5;
            let r = grover_search(64, |i| i < t, &mut rng);
            if r.found.is_some_and(|i| i < t) {
                hits += 1;
            }
        }
        assert!(hits >= 17, "only {hits}/20 successes");
    }

    #[test]
    fn bbht_reports_empty_without_false_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = grover_search(32, |_| false, &mut rng);
        assert_eq!(r.found, None);
        assert!(r.queries >= 9 * 5, "must exhaust the cutoff budget");
    }

    #[test]
    fn queries_scale_like_sqrt_n() {
        let mut rng = StdRng::seed_from_u64(17);
        let avg = |k: usize, rng: &mut StdRng| -> f64 {
            let runs = 30;
            let total: usize = (0..runs).map(|_| grover_search(k, |i| i == 0, rng).queries).sum();
            total as f64 / runs as f64
        };
        let q16 = avg(16, &mut rng);
        let q256 = avg(256, &mut rng);
        // 16× the space should be ~4× the queries; allow generous slack.
        let ratio = q256 / q16;
        assert!(ratio > 1.7 && ratio < 9.0, "ratio {ratio} (q16={q16}, q256={q256})");
    }
}
