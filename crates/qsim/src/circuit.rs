//! Gate-tape circuits: a reified sequence of elementary gates that can be
//! applied, inverted, and *controlled* — the transformation needed to run
//! phase estimation on a subroutine (paper §6: QPE applies controlled
//! powers of a whole algorithm, not of a single gate).

use crate::complex::{c64, C64};
use crate::kernels::DiagTerm;
use crate::metrics;
use crate::state::State;
use std::f64::consts::FRAC_1_SQRT_2;

/// An elementary gate.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Hadamard.
    H(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Z.
    Z(usize),
    /// `diag(1, e^{iθ})`.
    Phase(usize, f64),
    /// Controlled NOT.
    Cnot(usize, usize),
    /// Controlled phase.
    CPhase(usize, usize, f64),
    /// Multi-controlled X.
    Mcx(Vec<usize>, usize),
    /// Multi-controlled Z.
    Mcz(Vec<usize>, usize),
    /// A global phase `e^{iθ}` (matters once the circuit is controlled!).
    GlobalPhase(f64),
}

impl Op {
    /// The qubits this op touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Op::H(q) | Op::X(q) | Op::Z(q) | Op::Phase(q, _) => vec![*q],
            Op::Cnot(c, t) | Op::CPhase(c, t, _) => vec![*c, *t],
            Op::Mcx(cs, t) | Op::Mcz(cs, t) => {
                let mut v = cs.clone();
                v.push(*t);
                v
            }
            Op::GlobalPhase(_) => vec![],
        }
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Op {
        match self {
            Op::Phase(q, th) => Op::Phase(*q, -th),
            Op::CPhase(c, t, th) => Op::CPhase(*c, *t, -th),
            Op::GlobalPhase(th) => Op::GlobalPhase(-th),
            other => other.clone(), // H, X, Z, CNOT, MCX, MCZ are involutions
        }
    }
}

/// A circuit on `n` qubits: an ordered gate tape.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::state::State;
///
/// // A Bell-pair preparation as a reusable tape.
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let mut s = State::zero(2);
/// c.apply(&mut s);
/// assert!((s.probability(0b11) - 0.5).abs() < 1e-9);
/// c.inverse().apply(&mut s);
/// assert!((s.probability(0) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    n: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(n: usize) -> Self {
        Circuit { n, ops: Vec::new() }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The gate tape.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Gate count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Push a raw op.
    ///
    /// # Panics
    ///
    /// Panics if the op touches a qubit `>= n`.
    pub fn push(&mut self, op: Op) -> &mut Self {
        assert!(op.qubits().iter().all(|&q| q < self.n), "op out of range");
        self.ops.push(op);
        self
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Op::H(q))
    }

    /// X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Op::X(q))
    }

    /// Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Op::Z(q))
    }

    /// Phase `θ` on `q`.
    pub fn phase(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Op::Phase(q, theta))
    }

    /// CNOT.
    pub fn cnot(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Op::Cnot(c, t))
    }

    /// Controlled phase.
    pub fn cphase(&mut self, c: usize, t: usize, theta: f64) -> &mut Self {
        self.push(Op::CPhase(c, t, theta))
    }

    /// Multi-controlled X.
    pub fn mcx(&mut self, controls: Vec<usize>, t: usize) -> &mut Self {
        self.push(Op::Mcx(controls, t))
    }

    /// Multi-controlled Z.
    pub fn mcz(&mut self, controls: Vec<usize>, t: usize) -> &mut Self {
        self.push(Op::Mcz(controls, t))
    }

    /// Global phase `e^{iθ}`.
    pub fn global_phase(&mut self, theta: f64) -> &mut Self {
        self.push(Op::GlobalPhase(theta))
    }

    /// Apply the tape to `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` has fewer qubits than the circuit.
    pub fn apply(&self, state: &mut State) {
        assert!(state.num_qubits() >= self.n, "state too small for circuit");
        let h = [
            [C64 { re: FRAC_1_SQRT_2, im: 0.0 }, C64 { re: FRAC_1_SQRT_2, im: 0.0 }],
            [C64 { re: FRAC_1_SQRT_2, im: 0.0 }, C64 { re: -FRAC_1_SQRT_2, im: 0.0 }],
        ];
        for op in &self.ops {
            match op {
                Op::H(q) => state.apply_1q(*q, h),
                Op::X(q) => state.x(*q),
                Op::Z(q) => state.z(*q),
                Op::Phase(q, th) => state.phase(*q, *th),
                Op::Cnot(c, t) => state.cnot(*c, *t),
                Op::CPhase(c, t, th) => state.cphase(*c, *t, *th),
                Op::Mcx(cs, t) => state.mcx(cs, *t),
                Op::Mcz(cs, t) => state.mcz(cs, *t),
                Op::GlobalPhase(th) => state.apply_phase_fn(|_| *th),
            }
        }
    }

    /// The inverse circuit (reversed tape of inverted gates).
    pub fn inverse(&self) -> Circuit {
        Circuit { n: self.n, ops: self.ops.iter().rev().map(Op::inverse).collect() }
    }

    /// Fuse the tape: adjacent single-qubit gates on the same qubit
    /// collapse into one 2×2 matrix, and runs of diagonal gates
    /// (`Z`/`Phase`/`CPhase`/`Mcz`/`GlobalPhase`) collapse into a single
    /// diagonal sweep — so applying a fused QFT/QPE tape makes one
    /// amplitude pass per fused group instead of one per gate.
    pub fn fuse(&self) -> FusedCircuit {
        let mut out: Vec<FusedOp> = Vec::new();
        let mut pending = Pending::None;
        for op in &self.ops {
            pending = pending.absorb(op, &mut out);
        }
        pending.flush(&mut out);
        metrics::bump(metrics::Counter::FuseGatesIn, self.ops.len() as u64);
        metrics::bump(metrics::Counter::FuseGroups, out.len() as u64);
        FusedCircuit { n: self.n, ops: out }
    }

    /// Apply the tape through the fused representation — one
    /// [`fuse`](Self::fuse) followed by [`FusedCircuit::apply`]. For
    /// repeated application, fuse once and reuse the result.
    pub fn apply_fused(&self, state: &mut State) {
        self.fuse().apply(state);
    }

    /// The circuit controlled on qubit `control` (which must be outside
    /// the circuit's qubit range after `shift` is applied): every gate
    /// gains the control, and global phases become control phases.
    ///
    /// `shift` relocates the circuit's qubits (qubit `q` → `q + shift`) so
    /// the control can live below them — the layout used by QPE.
    ///
    /// # Panics
    ///
    /// Panics if `control` collides with the shifted circuit qubits.
    pub fn controlled(&self, control: usize, shift: usize) -> Circuit {
        let mut out = Circuit::new((self.n + shift).max(control + 1));
        for op in &self.ops {
            let c = control;
            let mv = |q: usize| q + shift;
            assert!(
                !op.qubits().iter().any(|&q| mv(q) == c),
                "control collides with circuit qubit"
            );
            let controlled = match op {
                Op::H(_) => unimplemented!("controlled-H not needed; decompose first"),
                Op::X(q) => Op::Cnot(c, mv(*q)),
                Op::Z(q) => Op::Mcz(vec![c], mv(*q)),
                Op::Phase(q, th) => Op::CPhase(c, mv(*q), *th),
                Op::Cnot(cc, t) => Op::Mcx(vec![c, mv(*cc)], mv(*t)),
                Op::CPhase(cc, t, th) => {
                    // Standard CC-Phase(θ) identity:
                    // CP(b,t,θ/2) · CX(c,b) · CP(b,t,−θ/2) · CX(c,b) ·
                    // CP(c,t,θ/2), phasing exactly when c = b = t = 1.
                    let (b, t) = (mv(*cc), mv(*t));
                    out.push(Op::CPhase(b, t, th / 2.0));
                    out.push(Op::Cnot(c, b));
                    out.push(Op::CPhase(b, t, -th / 2.0));
                    out.push(Op::Cnot(c, b));
                    out.push(Op::CPhase(c, t, th / 2.0));
                    continue;
                }
                Op::Mcx(cs, t) => {
                    let mut cs2: Vec<usize> = cs.iter().map(|&q| mv(q)).collect();
                    cs2.push(c);
                    Op::Mcx(cs2, mv(*t))
                }
                Op::Mcz(cs, t) => {
                    let mut cs2: Vec<usize> = cs.iter().map(|&q| mv(q)).collect();
                    cs2.push(c);
                    Op::Mcz(cs2, mv(*t))
                }
                Op::GlobalPhase(th) => Op::Phase(c, *th),
            };
            out.push(controlled);
        }
        out
    }
}

/// One group of a fused tape (see [`Circuit::fuse`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// A 2×2 unitary on qubit `q`, controlled on every set bit of
    /// `ctrl_mask` (0 = uncontrolled) — the product of a fused run of
    /// single-qubit gates, or a lone CNOT/MCX.
    Matrix {
        /// Control bit mask.
        ctrl_mask: usize,
        /// Target qubit.
        q: usize,
        /// The fused 2×2 matrix.
        m: [[C64; 2]; 2],
    },
    /// A fused run of diagonal gates, applied in one amplitude sweep.
    Diagonal(Vec<DiagTerm>),
}

/// A fused gate tape: each entry costs one pass over the statevector (or
/// a strided fraction of one), however many [`Op`]s it absorbed.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedCircuit {
    n: usize,
    ops: Vec<FusedOp>,
}

impl FusedCircuit {
    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The fused groups.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Number of fused groups (≤ the unfused gate count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply the fused tape to `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` has fewer qubits than the circuit.
    pub fn apply(&self, state: &mut State) {
        assert!(state.num_qubits() >= self.n, "state too small for circuit");
        for op in &self.ops {
            match op {
                FusedOp::Matrix { ctrl_mask, q, m } => {
                    metrics::bump(metrics::Counter::MatrixApplies, 1);
                    state.apply_masked_1q(*ctrl_mask, *q, *m);
                }
                FusedOp::Diagonal(terms) => {
                    metrics::bump(metrics::Counter::DiagSweeps, 1);
                    metrics::bump(metrics::Counter::DiagTerms, terms.len() as u64);
                    state.apply_diag_terms(terms);
                }
            }
        }
    }
}

const MAT_H: [[C64; 2]; 2] = [
    [c64(FRAC_1_SQRT_2, 0.0), c64(FRAC_1_SQRT_2, 0.0)],
    [c64(FRAC_1_SQRT_2, 0.0), c64(-FRAC_1_SQRT_2, 0.0)],
];
const MAT_X: [[C64; 2]; 2] = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
const MAT_Z: [[C64; 2]; 2] = [[C64::ONE, C64::ZERO], [C64::ZERO, c64(-1.0, 0.0)]];

fn mat_phase(theta: f64) -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::from_polar(1.0, theta)]]
}

/// `a · b` — the matrix of "apply `b`, then `a`".
fn matmul(a: &[[C64; 2]; 2], b: &[[C64; 2]; 2]) -> [[C64; 2]; 2] {
    [
        [a[0][0] * b[0][0] + a[0][1] * b[1][0], a[0][0] * b[0][1] + a[0][1] * b[1][1]],
        [a[1][0] * b[0][0] + a[1][1] * b[1][0], a[1][0] * b[0][1] + a[1][1] * b[1][1]],
    ]
}

/// The group currently being grown by the fusion scan.
enum Pending {
    None,
    Matrix { q: usize, m: [[C64; 2]; 2] },
    Diag(Vec<DiagTerm>),
}

impl Pending {
    fn flush(self, out: &mut Vec<FusedOp>) {
        match self {
            Pending::None => {}
            Pending::Matrix { q, m } => out.push(FusedOp::Matrix { ctrl_mask: 0, q, m }),
            Pending::Diag(terms) => out.push(FusedOp::Diagonal(terms)),
        }
    }

    /// Fold `op` into the pending group, flushing to `out` on a break.
    fn absorb(self, op: &Op, out: &mut Vec<FusedOp>) -> Pending {
        match op {
            Op::H(q) => self.merge_1q(*q, MAT_H, out),
            Op::X(q) => self.merge_1q(*q, MAT_X, out),
            Op::Z(q) => self.merge_diag_1q(
                *q,
                MAT_Z,
                DiagTerm { mask: 1 << q, factor: c64(-1.0, 0.0) },
                out,
            ),
            Op::Phase(q, th) => self.merge_diag_1q(
                *q,
                mat_phase(*th),
                DiagTerm { mask: 1 << q, factor: C64::from_polar(1.0, *th) },
                out,
            ),
            Op::Cnot(c, t) => {
                self.flush(out);
                out.push(FusedOp::Matrix { ctrl_mask: 1 << c, q: *t, m: MAT_X });
                Pending::None
            }
            Op::Mcx(cs, t) => {
                self.flush(out);
                let mask = cs.iter().map(|&c| 1usize << c).sum();
                out.push(FusedOp::Matrix { ctrl_mask: mask, q: *t, m: MAT_X });
                Pending::None
            }
            Op::CPhase(c, t, th) => self.merge_diag(
                DiagTerm { mask: (1 << c) | (1 << t), factor: C64::from_polar(1.0, *th) },
                out,
            ),
            Op::Mcz(cs, t) => {
                let mask: usize = cs.iter().map(|&c| 1usize << c).sum::<usize>() | (1 << t);
                self.merge_diag(DiagTerm { mask, factor: c64(-1.0, 0.0) }, out)
            }
            Op::GlobalPhase(th) => {
                self.merge_diag(DiagTerm { mask: 0, factor: C64::from_polar(1.0, *th) }, out)
            }
        }
    }

    /// A non-diagonal single-qubit gate: extend a same-qubit matrix run.
    fn merge_1q(self, q: usize, m: [[C64; 2]; 2], out: &mut Vec<FusedOp>) -> Pending {
        match self {
            Pending::Matrix { q: pq, m: pm } if pq == q => {
                Pending::Matrix { q, m: matmul(&m, &pm) }
            }
            other => {
                other.flush(out);
                Pending::Matrix { q, m }
            }
        }
    }

    /// A diagonal single-qubit gate: prefer a same-qubit matrix run (so
    /// `H·Z·H` fuses to one matrix), else join the diagonal run.
    fn merge_diag_1q(
        self,
        q: usize,
        m: [[C64; 2]; 2],
        term: DiagTerm,
        out: &mut Vec<FusedOp>,
    ) -> Pending {
        match self {
            Pending::Matrix { q: pq, m: pm } if pq == q => {
                Pending::Matrix { q, m: matmul(&m, &pm) }
            }
            other => other.merge_diag(term, out),
        }
    }

    /// A diagonal gate of any arity: extend the diagonal run.
    fn merge_diag(self, term: DiagTerm, out: &mut Vec<FusedOp>) -> Pending {
        match self {
            Pending::Diag(mut terms) => {
                terms.push(term);
                Pending::Diag(terms)
            }
            other => {
                other.flush(out);
                Pending::Diag(vec![term])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::EPS;

    #[test]
    fn builder_and_apply() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        assert_eq!(c.len(), 3);
        let mut s = State::zero(3);
        c.apply(&mut s);
        assert!((s.probability(0b000) - 0.5).abs() < EPS);
        assert!((s.probability(0b111) - 0.5).abs() < EPS);
    }

    #[test]
    fn inverse_undoes_any_tape() {
        let mut c = Circuit::new(3);
        c.h(0).phase(0, 0.7).cnot(0, 1).cphase(1, 2, 1.1).mcz(vec![0, 1], 2).x(2).global_phase(0.3);
        let mut s = State::basis(3, 5);
        c.apply(&mut s);
        c.inverse().apply(&mut s);
        assert!((s.probability(5) - 1.0).abs() < EPS);
    }

    #[test]
    fn controlled_acts_only_when_control_set() {
        // Circuit: X then phase on one qubit; control lives at index 0,
        // data shifted to index 1.
        let mut c = Circuit::new(1);
        c.x(0).phase(0, 0.9).global_phase(0.4);
        let ctl = c.controlled(0, 1);

        // Control clear: identity.
        let mut s = State::zero(2);
        let orig = s.clone();
        ctl.apply(&mut s);
        assert!(s.fidelity(&orig) > 1.0 - EPS);

        // Control set: matches the plain circuit on the data qubit,
        // including the global phase (as a relative phase on the control).
        let mut s = State::zero(2);
        s.x(0); // control = 1
        ctl.apply(&mut s);
        // Data qubit should be |1⟩ with phase e^{i(0.9+0.4)}.
        let amp = s.amplitude(0b11);
        let want = C64::from_polar(1.0, 0.9 + 0.4);
        assert!((amp.re - want.re).abs() < EPS && (amp.im - want.im).abs() < EPS, "{amp}");
    }

    #[test]
    fn controlled_cphase_decomposition_correct() {
        // Compare controlled(CPhase) against direct 3-qubit construction.
        let mut c = Circuit::new(2);
        c.cphase(0, 1, 1.3);
        let ctl = c.controlled(0, 1); // control 0, data 1..3

        for basis in 0..8 {
            let mut s = State::basis(3, basis);
            ctl.apply(&mut s);
            // Expected: phase 1.3 iff all of control, cc, t are 1.
            let want_phase = basis == 0b111;
            let mut expect = State::basis(3, basis);
            if want_phase {
                expect.apply_phase_fn(|x| if x == basis { 1.3 } else { 0.0 });
            }
            assert!(s.fidelity(&expect) > 1.0 - EPS, "basis {basis:03b}");
        }
    }

    #[test]
    fn op_qubits_reported() {
        assert_eq!(Op::Mcx(vec![0, 2], 4).qubits(), vec![0, 2, 4]);
        assert_eq!(Op::GlobalPhase(0.1).qubits(), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Circuit::new(2).h(2);
    }

    #[test]
    fn fused_matches_unfused_on_rich_tape() {
        let mut c = Circuit::new(4);
        c.h(0)
            .z(0)
            .h(0) // fuses to one matrix (≈ X)
            .phase(1, 0.3)
            .cphase(0, 2, 0.7)
            .mcz(vec![0, 1], 3)
            .global_phase(0.2) // one diagonal sweep
            .cnot(1, 2)
            .x(3)
            .phase(3, 1.1)
            .mcx(vec![0, 2], 1);
        for basis in 0..16 {
            let mut plain = State::basis(4, basis);
            c.apply(&mut plain);
            let mut fused = State::basis(4, basis);
            c.apply_fused(&mut fused);
            assert!(plain.fidelity(&fused) > 1.0 - 1e-12, "basis {basis}");
        }
    }

    #[test]
    fn fusion_collapses_runs() {
        // H·Z·H on one qubit plus a diagonal run: 7 gates → 3 groups.
        let mut c = Circuit::new(3);
        c.h(0).z(0).h(0).phase(1, 0.4).cphase(1, 2, 0.9).mcz(vec![0], 2).cnot(0, 1);
        let fused = c.fuse();
        assert_eq!(c.len(), 7);
        assert_eq!(fused.len(), 3, "{:?}", fused.ops());
        assert!(matches!(fused.ops()[0], FusedOp::Matrix { ctrl_mask: 0, q: 0, .. }));
        assert!(matches!(&fused.ops()[1], FusedOp::Diagonal(terms) if terms.len() == 3));
        assert!(matches!(fused.ops()[2], FusedOp::Matrix { ctrl_mask: 1, q: 1, .. }));
    }

    #[test]
    fn fused_hzh_is_x() {
        let mut c = Circuit::new(1);
        c.h(0).z(0).h(0);
        let fused = c.fuse();
        assert_eq!(fused.len(), 1);
        let mut s = State::zero(1);
        fused.apply(&mut s);
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_empty_and_identity_edges() {
        let c = Circuit::new(2);
        let fused = c.fuse();
        assert!(fused.is_empty());
        let mut s = State::basis(2, 2);
        fused.apply(&mut s);
        assert!((s.probability(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_global_phase_alone() {
        let mut c = Circuit::new(1);
        c.global_phase(0.8);
        let mut s = State::zero(1);
        c.apply_fused(&mut s);
        let want = C64::from_polar(1.0, 0.8);
        let got = s.amplitude(0);
        assert!((got.re - want.re).abs() < 1e-12 && (got.im - want.im).abs() < 1e-12);
    }
}
