//! The Deutsch–Jozsa algorithm — the exact (zero-error) quantum query
//! algorithm behind the paper's §4.3.
//!
//! Given `x ∈ {0,1}^k` (`k = 2^q`) promised to be constant or balanced, a
//! single phase query decides which with probability 1: after
//! `H^{⊗q} · O_x · H^{⊗q}` the amplitude of `|0⟩` is `±1` iff `x` is
//! constant and `0` iff balanced.

use crate::oracle::phase_oracle;
use crate::state::{State, EPS};

/// The two promise classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DjAnswer {
    /// `x = 0^k` or `x = 1^k`.
    Constant,
    /// `|x| = k/2`.
    Balanced,
}

/// Error returned when the input violates the Deutsch–Jozsa promise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiseViolation {
    /// Hamming weight found.
    pub weight: usize,
    /// Input length.
    pub k: usize,
}

impl std::fmt::Display for PromiseViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "input of length {} with weight {} is neither constant nor balanced",
            self.k, self.weight
        )
    }
}

impl std::error::Error for PromiseViolation {}

/// Check the promise.
///
/// # Errors
///
/// Returns [`PromiseViolation`] if `x` is neither constant nor balanced, or
/// its length is not a positive even power of two.
pub fn check_promise(x: &[bool]) -> Result<DjAnswer, PromiseViolation> {
    let k = x.len();
    let w = x.iter().filter(|&&b| b).count();
    if !k.is_power_of_two() || k < 2 {
        return Err(PromiseViolation { weight: w, k });
    }
    if w == 0 || w == k {
        Ok(DjAnswer::Constant)
    } else if 2 * w == k {
        Ok(DjAnswer::Balanced)
    } else {
        Err(PromiseViolation { weight: w, k })
    }
}

/// Run Deutsch–Jozsa on the statevector. Exactly one oracle query; the
/// answer is certain (zero error).
///
/// # Errors
///
/// Returns [`PromiseViolation`] if the promise does not hold — the
/// algorithm's output is undefined in that case, so we refuse the input.
///
/// # Panics
///
/// Panics if `k > 2^22` (statevector memory guard).
pub fn deutsch_jozsa(x: &[bool]) -> Result<DjAnswer, PromiseViolation> {
    check_promise(x)?;
    let k = x.len();
    let q = k.trailing_zeros() as usize;
    let mut s = State::zero(q.max(1));
    s.h_all(0..q);
    phase_oracle(&mut s, q, k, |i| x[i]);
    s.h_all(0..q);
    // Probability of |0…0⟩ is 1 for constant, 0 for balanced — exactly.
    let p0 = s.probability(0);
    debug_assert!(!(EPS..=1.0 - EPS).contains(&p0), "promise guarantees a deterministic outcome");
    Ok(if p0 > 0.5 { DjAnswer::Constant } else { DjAnswer::Balanced })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_inputs() {
        assert_eq!(deutsch_jozsa(&[false; 8]).unwrap(), DjAnswer::Constant);
        assert_eq!(deutsch_jozsa(&[true; 16]).unwrap(), DjAnswer::Constant);
    }

    #[test]
    fn balanced_inputs() {
        let mut x = vec![false; 8];
        for i in 0..4 {
            x[i * 2] = true;
        }
        assert_eq!(deutsch_jozsa(&x).unwrap(), DjAnswer::Balanced);
        let x: Vec<bool> = (0..32).map(|i| i < 16).collect();
        assert_eq!(deutsch_jozsa(&x).unwrap(), DjAnswer::Balanced);
    }

    #[test]
    fn all_balanced_weight_patterns() {
        // Every balanced pattern on k = 4 must be classified correctly.
        let k = 4;
        for bits in 0..(1u32 << k) {
            let x: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
            let w = x.iter().filter(|&&b| b).count();
            match w {
                0 | 4 => assert_eq!(deutsch_jozsa(&x).unwrap(), DjAnswer::Constant),
                2 => assert_eq!(deutsch_jozsa(&x).unwrap(), DjAnswer::Balanced),
                _ => assert!(deutsch_jozsa(&x).is_err()),
            }
        }
    }

    #[test]
    fn promise_violations_rejected() {
        assert!(deutsch_jozsa(&[true, false, false, false]).is_err());
        assert!(deutsch_jozsa(&[true, false, true]).is_err()); // length 3
        assert!(check_promise(&[]).is_err());
    }
}
