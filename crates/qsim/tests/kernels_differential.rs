//! Differential tests: the strided kernels ([`qsim::kernels`]) and the
//! gate-fusion pass ([`qsim::circuit::Circuit::fuse`]) against the seed's
//! branch-per-index scans ([`qsim::reference`]), over random circuits on the
//! full gate set, at 1, 2 and 4 threads.
//!
//! Two distinct claims are checked:
//!
//! * **agreement** — fast and reference states match to fidelity
//!   `1 − 1e-12` (the phase-flip negation and chunked reductions may differ
//!   from the seed's trigonometric/linear folds in the last ulps);
//! * **determinism** — the fast kernels are **bit-identical** across thread
//!   counts, including the chunked reductions (`norm_sqr`, `prob_one`).

use proptest::prelude::*;
use qsim::circuit::Circuit;
use qsim::complex::{c64, C64};
use qsim::kernels::{self, DiagTerm};
use qsim::reference;
use qsim::state::State;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// The full gate set the fusion pass understands.
#[derive(Debug, Clone)]
enum Gate {
    H(usize),
    X(usize),
    Z(usize),
    Phase(usize, f64),
    Cnot(usize, usize),
    CPhase(usize, usize, f64),
    Mcx(Vec<usize>, usize),
    Mcz(Vec<usize>, usize),
    GlobalPhase(f64),
}

/// Derive a deterministic gate tape from proptest-chosen indices.
fn build_tape(n: usize, picks: &[usize]) -> Vec<Gate> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let q = i % n;
            let r = (i + 1) % n;
            let theta = 0.2 + 0.41 * (i % 7) as f64;
            match k % 9 {
                0 => Gate::H(q),
                1 => Gate::X(q),
                2 => Gate::Z(q),
                3 => Gate::Phase(q, theta),
                4 if q != r => Gate::Cnot(q, r),
                5 if q != r => Gate::CPhase(q, r, theta),
                6 if n >= 3 => {
                    let t = (i + 2) % n;
                    Gate::Mcx(vec![q, r].into_iter().filter(|&c| c != t).collect(), t)
                }
                7 if q != r => Gate::Mcz(vec![q], r),
                8 => Gate::GlobalPhase(theta),
                _ => Gate::H(q),
            }
        })
        .collect()
}

fn mat_h() -> [[C64; 2]; 2] {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    [[c64(s, 0.0), c64(s, 0.0)], [c64(s, 0.0), c64(-s, 0.0)]]
}

fn mat_x() -> [[C64; 2]; 2] {
    [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]
}

fn mat_z() -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, c64(-1.0, 0.0)]]
}

fn mat_phase(theta: f64) -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::from_polar(1.0, theta)]]
}

fn mask_of(controls: &[usize]) -> usize {
    controls.iter().map(|&c| 1usize << c).sum()
}

/// Apply one gate through the strided kernels with an explicit thread count.
fn apply_fast(amps: &mut [C64], g: &Gate, threads: usize) {
    match g {
        Gate::H(q) => kernels::apply_1q(amps, *q, mat_h(), threads),
        Gate::X(q) => kernels::apply_1q(amps, *q, mat_x(), threads),
        Gate::Z(q) => kernels::apply_1q(amps, *q, mat_z(), threads),
        Gate::Phase(q, th) => kernels::apply_1q(amps, *q, mat_phase(*th), threads),
        Gate::Cnot(c, t) => kernels::apply_controlled_1q(amps, 1 << c, *t, mat_x(), threads),
        Gate::CPhase(c, t, th) => {
            kernels::apply_controlled_1q(amps, 1 << c, *t, mat_phase(*th), threads)
        }
        Gate::Mcx(cs, t) => kernels::apply_controlled_1q(amps, mask_of(cs), *t, mat_x(), threads),
        Gate::Mcz(cs, t) => kernels::apply_controlled_1q(amps, mask_of(cs), *t, mat_z(), threads),
        Gate::GlobalPhase(th) => kernels::apply_diag(
            amps,
            &[DiagTerm { mask: 0, factor: C64::from_polar(1.0, *th) }],
            threads,
        ),
    }
}

/// Apply one gate through the seed's branch-per-index reference scans.
fn apply_ref(amps: &mut [C64], g: &Gate) {
    match g {
        Gate::H(q) => reference::apply_controlled_1q(amps, &[], *q, mat_h()),
        Gate::X(q) => reference::apply_controlled_1q(amps, &[], *q, mat_x()),
        Gate::Z(q) => reference::apply_controlled_1q(amps, &[], *q, mat_z()),
        Gate::Phase(q, th) => reference::apply_controlled_1q(amps, &[], *q, mat_phase(*th)),
        Gate::Cnot(c, t) => reference::apply_controlled_1q(amps, &[*c], *t, mat_x()),
        Gate::CPhase(c, t, th) => reference::apply_controlled_1q(amps, &[*c], *t, mat_phase(*th)),
        Gate::Mcx(cs, t) => reference::apply_controlled_1q(amps, cs, *t, mat_x()),
        Gate::Mcz(cs, t) => reference::apply_controlled_1q(amps, cs, *t, mat_z()),
        Gate::GlobalPhase(th) => reference::apply_phase_fn(amps, |_| *th),
    }
}

/// Push one gate onto a [`Circuit`] tape.
fn push_gate(c: &mut Circuit, g: &Gate) {
    match g {
        Gate::H(q) => c.h(*q),
        Gate::X(q) => c.x(*q),
        Gate::Z(q) => c.z(*q),
        Gate::Phase(q, th) => c.phase(*q, *th),
        Gate::Cnot(cq, t) => c.cnot(*cq, *t),
        Gate::CPhase(cq, t, th) => c.cphase(*cq, *t, *th),
        Gate::Mcx(cs, t) => c.mcx(cs.clone(), *t),
        Gate::Mcz(cs, t) => c.mcz(cs.clone(), *t),
        Gate::GlobalPhase(th) => c.global_phase(*th),
    };
}

/// A reproducible, richly-structured amplitude vector (not normalized —
/// none of the kernels require it).
fn seeded_amps(n: usize, seed: u64) -> Vec<C64> {
    let mut st = seed | 1;
    let mut next = || {
        st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (st >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..1usize << n).map(|_| c64(next(), next())).collect()
}

/// `|⟨a|b⟩|² / (‖a‖²·‖b‖²)` for raw amplitude vectors.
fn fidelity(a: &[C64], b: &[C64]) -> f64 {
    let mut re = 0.0;
    let mut im = 0.0;
    for (x, y) in a.iter().zip(b) {
        // ⟨x|y⟩ accumulates conj(x)·y.
        re += x.re * y.re + x.im * y.im;
        im += x.re * y.im - x.im * y.re;
    }
    (re * re + im * im) / (reference::norm_sqr(a) * reference::norm_sqr(b))
}

fn assert_bit_identical(a: &[C64], b: &[C64], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: amplitude {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast kernels agree with the reference scans on random circuits, and
    /// are bit-identical across thread counts.
    #[test]
    fn kernels_match_reference_on_random_circuits(
        n in 2usize..=10,
        picks in proptest::collection::vec(0usize..9, 1..40),
        seed in any::<u64>(),
    ) {
        let tape = build_tape(n, &picks);
        let init = seeded_amps(n, seed);

        let mut ref_amps = init.clone();
        for g in &tape {
            apply_ref(&mut ref_amps, g);
        }

        let mut per_thread: Vec<Vec<C64>> = Vec::new();
        for &threads in &THREAD_COUNTS {
            let mut amps = init.clone();
            for g in &tape {
                apply_fast(&mut amps, g, threads);
            }
            per_thread.push(amps);
        }

        for (amps, &threads) in per_thread[1..].iter().zip(&THREAD_COUNTS[1..]) {
            assert_bit_identical(&per_thread[0], amps, &format!("1 vs {threads} threads"));
        }
        let f = fidelity(&per_thread[0], &ref_amps);
        prop_assert!(f > 1.0 - 1e-12, "fast/reference fidelity {f}");
    }

    /// The chunked reductions agree with the linear reference folds and are
    /// bit-identical across thread counts.
    #[test]
    fn reductions_deterministic_across_threads(
        n in 2usize..=10,
        seed in any::<u64>(),
    ) {
        let amps = seeded_amps(n, seed);
        let ns1 = kernels::norm_sqr(&amps, 1);
        for &threads in &THREAD_COUNTS[1..] {
            prop_assert_eq!(ns1.to_bits(), kernels::norm_sqr(&amps, threads).to_bits());
        }
        prop_assert!((ns1 - reference::norm_sqr(&amps)).abs() < 1e-12 * ns1.max(1.0));
        for q in 0..n {
            let p1 = kernels::prob_one(&amps, q, 1);
            for &threads in &THREAD_COUNTS[1..] {
                prop_assert_eq!(p1.to_bits(), kernels::prob_one(&amps, q, threads).to_bits());
            }
            prop_assert!((p1 - reference::prob_one(&amps, q)).abs() < 1e-12 * ns1.max(1.0));
        }
    }

    /// The fused tape agrees with gate-by-gate application and never has
    /// more groups than the original has gates.
    #[test]
    fn fused_tape_matches_unfused(
        n in 2usize..=8,
        picks in proptest::collection::vec(0usize..9, 1..40),
    ) {
        let tape = build_tape(n, &picks);
        let mut circuit = Circuit::new(n);
        for g in &tape {
            push_gate(&mut circuit, g);
        }
        let fused = circuit.fuse();
        prop_assert!(fused.len() <= circuit.len());

        let mut a = State::zero(n);
        a.h_all(0..n);
        circuit.apply(&mut a);
        let mut b = State::zero(n);
        b.h_all(0..n);
        fused.apply(&mut b);
        let f = a.fidelity(&b);
        prop_assert!(f > 1.0 - 1e-12, "fused/unfused fidelity {f}");
    }

    /// `State::sampler` (cumulative table + binary search) reproduces the
    /// seed's linear-scan sampler outcome-for-outcome on the same RNG
    /// stream.
    #[test]
    fn sampler_bit_compatible_with_seed_scan(
        n in 1usize..=8,
        picks in proptest::collection::vec(0usize..9, 1..20),
        seed in any::<u64>(),
    ) {
        let tape = build_tape(n, &picks);
        let mut s = State::zero(n);
        s.h_all(0..n);
        let mut circuit = Circuit::new(n);
        for g in &tape {
            push_gate(&mut circuit, g);
        }
        circuit.apply(&mut s);

        let amps: Vec<C64> = (0..1usize << n).map(|i| s.amplitude(i)).collect();
        let mut fast_rng = StdRng::seed_from_u64(seed);
        let mut ref_rng = StdRng::seed_from_u64(seed);
        let sampler = s.sampler();
        for _ in 0..32 {
            prop_assert_eq!(
                sampler.draw(&mut fast_rng),
                reference::sample(&amps, &mut ref_rng)
            );
        }
    }
}

/// Non-proptest spot check: a deep tape at n = 10 where every gate kind
/// appears, run once at each thread count, against the reference.
#[test]
fn deep_mixed_tape_all_thread_counts() {
    let n = 10;
    let picks: Vec<usize> = (0..120).map(|i| i % 9).collect();
    let tape = build_tape(n, &picks);
    let init = seeded_amps(n, 0xD1FF_5EED);

    let mut ref_amps = init.clone();
    for g in &tape {
        apply_ref(&mut ref_amps, g);
    }
    let mut first: Option<Vec<C64>> = None;
    for threads in THREAD_COUNTS {
        let mut amps = init.clone();
        for g in &tape {
            apply_fast(&mut amps, g, threads);
        }
        if let Some(f) = &first {
            assert_bit_identical(f, &amps, &format!("deep tape, {threads} threads"));
        } else {
            let f = fidelity(&amps, &ref_amps);
            assert!(f > 1.0 - 1e-12, "deep tape fidelity {f}");
            first = Some(amps);
        }
    }
}
