//! Property-based tests for the statevector simulator: unitarity, algebra
//! of gates and oracles, and algorithm laws.

use proptest::prelude::*;
use qsim::deutsch_jozsa::{check_promise, deutsch_jozsa, DjAnswer};
use qsim::oracle::{phase_oracle, xor_oracle};
use qsim::qft::{iqft, qft};
use qsim::state::{State, EPS};

/// A random circuit as a gate tape.
#[derive(Debug, Clone)]
enum Gate {
    H(usize),
    X(usize),
    Z(usize),
    Phase(usize, f64),
    Cnot(usize, usize),
    Cz(usize, usize),
}

fn apply(s: &mut State, g: &Gate) {
    match *g {
        Gate::H(q) => s.h(q),
        Gate::X(q) => s.x(q),
        Gate::Z(q) => s.z(q),
        Gate::Phase(q, th) => s.phase(q, th),
        Gate::Cnot(c, t) => s.cnot(c, t),
        Gate::Cz(c, t) => s.apply_controlled_1q(
            &[c],
            t,
            [
                [qsim::c64(1.0, 0.0), qsim::c64(0.0, 0.0)],
                [qsim::c64(0.0, 0.0), qsim::c64(-1.0, 0.0)],
            ],
        ),
    }
}

fn unapply(s: &mut State, g: &Gate) {
    match *g {
        Gate::Phase(q, th) => s.phase(q, -th),
        ref other => apply(s, other), // H, X, Z, CNOT, CZ are involutions
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_circuits_preserve_norm(
        n in 1usize..6,
        gates in proptest::collection::vec(any::<u64>(), 0..1),
    ) {
        let _ = gates;
        let mut s = State::zero(n);
        // A fixed, rich circuit parametrized by n.
        for q in 0..n {
            s.h(q);
            s.phase(q, 0.37 * (q as f64 + 1.0));
        }
        for q in 1..n {
            s.cnot(0, q);
        }
        prop_assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn circuit_inverse_restores_state(n in 2usize..5, tape_seed in proptest::collection::vec(0usize..6, 1..20)) {
        // Build a deterministic gate tape from indices, apply then invert.
        let gates: Vec<Gate> = tape_seed
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let q = i % n;
                let r = (i + 1) % n;
                match k {
                    0 => Gate::H(q),
                    1 => Gate::X(q),
                    2 => Gate::Z(q),
                    3 => Gate::Phase(q, 0.1 + 0.3 * i as f64),
                    4 if q != r => Gate::Cnot(q, r),
                    _ if q != r => Gate::Cz(q, r),
                    _ => Gate::H(q),
                }
            })
            .collect();
        let start = State::basis(n, 1 % (1 << n));
        let mut s = start.clone();
        for g in &gates {
            apply(&mut s, g);
        }
        for g in gates.iter().rev() {
            unapply(&mut s, g);
        }
        prop_assert!(s.fidelity(&start) > 1.0 - 1e-9);
    }

    #[test]
    fn qft_roundtrips_any_basis_state(n in 1usize..7, idx_pick in any::<usize>()) {
        let idx = idx_pick % (1 << n);
        let mut s = State::basis(n, idx);
        let qubits: Vec<usize> = (0..n).collect();
        qft(&mut s, &qubits);
        prop_assert!((s.norm_sqr() - 1.0).abs() < EPS);
        iqft(&mut s, &qubits);
        prop_assert!((s.probability(idx) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_oracle_preserves_probabilities(n in 1usize..6, mask in any::<u64>()) {
        let mut s = State::zero(n);
        s.h_all(0..n);
        let before: Vec<f64> = (0..(1 << n)).map(|i| s.probability(i)).collect();
        let k = 1usize << n;
        phase_oracle(&mut s, n, k, |i| mask >> (i % 64) & 1 == 1);
        let after: Vec<f64> = (0..(1 << n)).map(|i| s.probability(i)).collect();
        for (b, a) in before.iter().zip(&after) {
            prop_assert!((b - a).abs() < EPS);
        }
    }

    #[test]
    fn xor_oracle_involutive(q in 1usize..4, t in 1usize..4, vals_seed in any::<u64>()) {
        let k = 1usize << q;
        let lim = 1u64 << t;
        let values: Vec<u64> = (0..k as u64).map(|i| (vals_seed.rotate_left(i as u32)) % lim).collect();
        let mut s = State::zero(q + t);
        s.h_all(0..q);
        let orig = s.clone();
        xor_oracle(&mut s, q, t, &values);
        xor_oracle(&mut s, q, t, &values);
        prop_assert!(s.fidelity(&orig) > 1.0 - 1e-9);
    }

    #[test]
    fn deutsch_jozsa_never_errs_on_promise(q in 1usize..8, w_kind in 0usize..3, shuffle in any::<u64>()) {
        let k = 1usize << q;
        let x: Vec<bool> = match w_kind {
            0 => vec![false; k],
            1 => vec![true; k],
            _ => {
                // A balanced pattern derived from the shuffle bits.
                let mut x: Vec<bool> = (0..k).map(|i| i < k / 2).collect();
                // Deterministic Fisher-Yates from `shuffle`.
                let mut st = shuffle | 1;
                for i in (1..k).rev() {
                    st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let j = (st >> 33) as usize % (i + 1);
                    x.swap(i, j);
                }
                x
            }
        };
        let want = check_promise(&x).unwrap();
        prop_assert_eq!(deutsch_jozsa(&x).unwrap(), want);
        if w_kind >= 2 {
            prop_assert_eq!(want, DjAnswer::Balanced);
        }
    }

    #[test]
    fn grover_probability_law_random_t(q in 2usize..7, t_pick in 1usize..8) {
        let k = 1usize << q;
        let t = t_pick.min(k / 2);
        let marked = move |i: usize| i < t;
        let mut s = State::zero(q);
        s.h_all(0..q);
        for j in 0..4 {
            let p = s.probability_where(|i| marked(i & (k - 1)));
            prop_assert!((p - qsim::grover::success_probability(q, t, j)).abs() < 1e-9);
            qsim::grover::grover_iterate(&mut s, q, k, &marked);
        }
    }

    #[test]
    fn measurement_collapse_consistent(n in 1usize..6, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s = State::zero(n);
        s.h_all(0..n);
        for q in 1..n {
            s.cphase(0, q, 0.9);
        }
        let out = s.measure_all(&mut rng);
        prop_assert!((s.probability(out) - 1.0).abs() < EPS);
        prop_assert!(out < (1 << n));
    }
}
