//! Graph-theoretic self-diagnostics (§5): the network measures its own
//! diameter, radius, average eccentricity and girth, using the paper's
//! quantum algorithms — the input *is* the topology.
//!
//! ```text
//! cargo run --release -p dqc-core --example network_diagnostics
//! ```

use congest::generators::{cycle_with_body, grid};
use congest::runtime::Network;
use dqc_core::eccentricity::{
    quantum_average_eccentricity, quantum_diameter, quantum_radius,
};
use dqc_core::girth::{classical_girth, quantum_girth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A data-center pod: a grid fabric.
    let g = grid(12, 9);
    let net = Network::new(&g);
    println!("== grid fabric {}×{} (n = {}) ==", 12, 9, g.n());

    let d = quantum_diameter(&net, 1)?;
    println!(
        "diameter (Lemma 21)        : {:>4}   [{} rounds, truth {}]",
        d.value,
        d.rounds,
        g.diameter().unwrap()
    );
    let r = quantum_radius(&net, 1)?;
    println!(
        "radius (Lemma 21)          : {:>4}   [{} rounds, truth {}]",
        r.value,
        r.rounds,
        g.radius().unwrap()
    );
    let eps = 1.0;
    let a = quantum_average_eccentricity(&net, eps, 1)?;
    println!(
        "avg eccentricity (Lemma 22): {:>6.2} [{} rounds, truth {:.2}, ε = {eps}]",
        a.estimate,
        a.rounds,
        g.average_eccentricity().unwrap()
    );

    // A ring-backbone WAN with tree subnets: the interesting girth case.
    let g = cycle_with_body(8, 80, 5);
    let net = Network::new(&g);
    println!("\n== ring backbone with subnets (n = {}) ==", g.n());
    let q = quantum_girth(&net, 0.5, 2)?;
    let c = classical_girth(&net, 2)?;
    println!(
        "girth quantum (Cor. 26)    : {:?}   [{} rounds]",
        q.girth, q.rounds
    );
    println!(
        "girth classical baseline   : {:?}   [{} rounds]",
        c.girth, c.rounds
    );
    println!(
        "classical lower bound for girth is Ω(√n) ≈ {:.0} rounds [FHW12]",
        dqc_core::girth::classical_lower_bound(g.n())
    );
    Ok(())
}
