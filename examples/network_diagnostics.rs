//! Graph-theoretic self-diagnostics (§5) plus the telemetry showcase: the
//! network measures its own diameter, radius, average eccentricity and
//! girth with the paper's quantum algorithms — the input *is* the
//! topology — and then profiles a faulted run of its own control
//! protocols, printing the phase breakdown, retry counters, and per-edge
//! congestion heatmap from a `congest::telemetry::Collector`.
//!
//! ```text
//! cargo run --release -p dqc-core --example network_diagnostics
//! ```

use congest::bfs::{build_bfs_tree, BfsTreeProtocol};
use congest::faults::{FaultPlan, Reliable, RetryConfig};
use congest::generators::{cycle_with_body, grid};
use congest::runtime::Network;
use congest::telemetry::Collector;
use congest::tree_comm::{BroadcastRegisterProtocol, Register, Schedule};
use dqc_core::eccentricity::{quantum_average_eccentricity, quantum_diameter, quantum_radius};
use dqc_core::girth::{classical_girth, quantum_girth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A data-center pod: a grid fabric.
    let g = grid(12, 9);
    let net = Network::new(&g);
    println!("== grid fabric {}×{} (n = {}) ==", 12, 9, g.n());

    let d = quantum_diameter(&net, 1)?;
    println!(
        "diameter (Lemma 21)        : {:>4}   [{} rounds, truth {}]",
        d.value,
        d.rounds,
        g.diameter().unwrap()
    );
    let r = quantum_radius(&net, 1)?;
    println!(
        "radius (Lemma 21)          : {:>4}   [{} rounds, truth {}]",
        r.value,
        r.rounds,
        g.radius().unwrap()
    );
    let eps = 1.0;
    let a = quantum_average_eccentricity(&net, eps, 1)?;
    println!(
        "avg eccentricity (Lemma 22): {:>6.2} [{} rounds, truth {:.2}, ε = {eps}]",
        a.estimate,
        a.rounds,
        g.average_eccentricity().unwrap()
    );

    // A ring-backbone WAN with tree subnets: the interesting girth case.
    let g = cycle_with_body(8, 80, 5);
    let net = Network::new(&g);
    println!("\n== ring backbone with subnets (n = {}) ==", g.n());
    let q = quantum_girth(&net, 0.5, 2)?;
    let c = classical_girth(&net, 2)?;
    println!("girth quantum (Cor. 26)    : {:?}   [{} rounds]", q.girth, q.rounds);
    println!("girth classical baseline   : {:?}   [{} rounds]", c.girth, c.rounds);
    println!(
        "classical lower bound for girth is Ω(√n) ≈ {:.0} rounds [FHW12]",
        dqc_core::girth::classical_lower_bound(g.n())
    );

    // Telemetry showcase: profile the pod's own control protocols on a
    // lossy fabric — BFS tree construction and a configuration broadcast,
    // Reliable-wrapped, with 20% of messages dropped. The collector
    // records every round, the retry/backoff counters from the Reliable
    // wrapper, and cumulative per-edge load (hotspots = tree trunk edges
    // carrying the retransmit traffic).
    let g = grid(6, 5);
    let clean = Network::new(&g);
    let views = build_bfs_tree(&clean, 0)?.views;
    let net = Network::new(&g).with_faults(FaultPlan::new(7).with_drop_rate(0.2));
    let retry = RetryConfig::default();
    let mut col = Collector::new();

    col.enter("diagnostics");
    col.enter("bfs-tree");
    net.exec(Reliable::wrap_all(BfsTreeProtocol::instances(g.n(), 0), retry))
        .telemetry(&mut col)
        .run()?;
    col.exit();
    col.enter("config-broadcast");
    net.exec(Reliable::wrap_all(
        BroadcastRegisterProtocol::instances(
            &views,
            Register::from_value(48, 0x0BAD_CAFE_F00D),
            6,
            Schedule::Pipelined,
        ),
        retry,
    ))
    .telemetry(&mut col)
    .run()?;
    col.exit();
    col.exit();

    println!("\n== telemetry: faulted control plane, grid(6x5), 20% drops ==");
    print!("{}", col.render(72));
    Ok(())
}
