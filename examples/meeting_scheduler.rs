//! The paper's motivating distributed-data application (§4.1): a network
//! of participants picks the meeting slot maximizing attendance.
//!
//! Each processor knows only its own calendar; the quantum protocol
//! (Lemma 10) finds the best of `k` slots in `Õ(√(kD) + D)` rounds, while
//! any classical protocol needs `Ω(k/log n)` (Lemma 11).
//!
//! ```text
//! cargo run --release -p dqc-core --example meeting_scheduler
//! ```

use congest::generators::dumbbell;
use congest::runtime::Network;
use dqc_core::scheduling::{
    classical_lower_bound, classical_meeting_scheduling, quantum_meeting_scheduling,
    quantum_upper_bound, MeetingInstance,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two office sites connected by a thin long link — the topology of the
    // paper's lower-bound argument, and the worst case for streaming.
    let (g, (hub_a, hub_b)) = dumbbell(8, 8, 14);
    let net = Network::new(&g);
    let n = g.n();
    let d = g.diameter().expect("connected") as usize;
    println!("two-site organization: n = {n}, hubs {hub_a} and {hub_b}, D = {d}\n");

    println!(
        "{:>6}  {:>9}  {:>10}  {:>12}  {:>12}  {:>7}",
        "slots", "quantum", "classical", "Õ(√(kD)+D)", "class. LB", "correct"
    );
    for k in [128usize, 512, 2048, 8192] {
        // One year of 15-minute slots is ~35k; sweep toward that regime.
        let inst = MeetingInstance::random(n, k, 0.35, k as u64);
        let best = inst.best_attendance();
        let q = quantum_meeting_scheduling(&net, &inst, 3)?;
        let c = classical_meeting_scheduling(&net, &inst, 3)?;
        println!(
            "{:>6}  {:>9}  {:>10}  {:>12.0}  {:>12.0}  {:>7}",
            k,
            q.rounds,
            c.rounds,
            quantum_upper_bound(k, d, n),
            classical_lower_bound(k, d, n),
            q.attendance == best,
        );
    }

    println!(
        "\nQuantum rounds grow like √k — with enough slots the network \
         schedules the meeting before a classical protocol could even \
         stream the calendars."
    );
    Ok(())
}
