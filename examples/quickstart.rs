//! Quickstart: run a quantum query algorithm on a simulated CONGEST
//! network and compare it with the classical baseline.
//!
//! ```text
//! cargo run --release -p dqc-core --example quickstart
//! ```

use congest::generators::random_connected_m;
use congest::runtime::Network;
use dqc_core::eccentricity::{classical_diameter_radius, quantum_diameter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A random connected network of 300 processors.
    let n = 300;
    let g = random_connected_m(n, n + n / 2, 42);
    let net = Network::new(&g);
    println!(
        "network: n = {}, m = {}, diameter = {} (ground truth)",
        g.n(),
        g.m(),
        g.diameter().expect("connected")
    );
    println!("bandwidth: {} (qu)bits per edge per round\n", net.cap_bits());

    // Quantum CONGEST diameter (Lemma 21): parallel maximum finding over
    // node eccentricities, each query batch resolved by the network.
    let q = quantum_diameter(&net, 7)?;
    println!("quantum diameter (Lemma 21):");
    println!("  answer       : {} (eccentricity of node {})", q.value, q.node);
    println!("  rounds       : {} (bound O(√(nD)))", q.rounds);
    println!("  query batches: {}", q.batches);
    println!("  phases:");
    let phases = q.ledger.phases();
    for (name, stats) in phases.iter().take(6) {
        println!("    {:32} {:>6} rounds", name, stats.rounds);
    }
    if phases.len() > 6 {
        println!("    … {} more phases", phases.len() - 6);
    }

    // Classical baseline: all-sources BFS (Θ(n + D) rounds).
    let (d, r, rounds, _) = classical_diameter_radius(&net, 7)?;
    println!("\nclassical baseline (all-sources BFS):");
    println!("  diameter {d}, radius {r}, rounds {rounds}");

    println!(
        "\nThe quantum algorithm scales as √(nD) while the classical one is \
         linear in n; run `cargo run --release -p dqc-bench --bin reproduce -- e9` \
         for the full sweep."
    );
    Ok(())
}
