//! Hidden-shift discovery: the network's nodes hold XOR shares of a
//! function table promised to be 2-to-1 under an unknown shift `s`
//! (Simon's problem); the network must find `s`.
//!
//! This is the bounded-error exponential separation the paper's §4.3
//! footnote alludes to — quantum needs `O(m)` superposed queries, any
//! classical strategy pays the `Θ(2^{m/2})` birthday bound. The run also
//! demonstrates the round-engine's congestion tracing.
//!
//! ```text
//! cargo run --release -p dqc-core --example hidden_shift
//! ```

use congest::bfs::BfsTreeProtocol;
use congest::generators::grid;
use congest::runtime::Network;
use dqc_core::simon::{classical_birthday_simon, quantum_simon, SimonInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = grid(4, 3);
    let net = Network::new(&g);
    let n = g.n();
    println!("network: {n}-node grid, D = {}\n", g.diameter().unwrap());

    println!(
        "{:>4}  {:>14}  {:>16}  {:>10}",
        "m", "quantum queries", "classical queries", "shift ok"
    );
    for m in [6usize, 8, 10, 12] {
        let s = (1u64 << (m - 1)) | 0b11;
        let inst = SimonInstance::random(n, m, s, m as u64);
        let q = quantum_simon(&net, &inst, 7)?;
        let c = classical_birthday_simon(&net, &inst, 7)?;
        println!(
            "{:>4}  {:>14}  {:>16}  {:>10}",
            m,
            q.queries,
            c.queries,
            q.shift == Some(s) && c.shift == Some(s),
        );
    }
    println!("\nQuantum grows linearly in m; classical doubles every two bits (birthday).");

    // Bonus: congestion trace of the BFS-tree phase on this topology.
    println!("\nBFS-tree construction congestion profile:");
    let trace = net.exec(BfsTreeProtocol::instances(n, 0)).traced().run()?.trace;
    print!("{}", trace.render(28));
    if let Some((round, peak)) = trace.peak_round() {
        println!("peak: round {round} with {} bits in flight", peak.bits);
    }
    Ok(())
}
