//! Distributed duplicate detection (§4.2): the nodes of a network jointly
//! hold a list of records and must find two equal ones — element
//! distinctness, in `Õ(k^{2/3}D^{1/3} + D)` quantum rounds (Lemma 12).
//!
//! Two deployments:
//! * sharded ledger — every node holds additive shares of a `k`-entry
//!   vector (the "distributed vector" variant);
//! * per-node serials — every node holds one value, e.g. checking that
//!   DHCP leases are unique (the "between nodes" variant, Corollary 14).
//!
//! ```text
//! cargo run --release -p dqc-core --example duplicate_detection
//! ```

use congest::generators::{double_star, random_connected_m};
use congest::runtime::Network;
use dqc_core::distinctness::{
    classical_distinctness, quantum_distinctness, quantum_distinctness_between_nodes,
    DistinctnessInstance,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Sharded ledger over a mesh. ---
    let n = 24;
    let g = random_connected_m(n, 36, 9);
    let net = Network::new(&g);
    let k = 2048;
    println!("sharded ledger: n = {n}, k = {k} entries, one planted duplicate\n");
    let inst = DistinctnessInstance::random(n, k, Some((137, 1650)), 77);

    let q = quantum_distinctness(&net, &inst, 5)?;
    match q.pair {
        Some((i, j)) => println!(
            "quantum walk (Lemma 12): duplicate at entries {i} and {j} \
             [{} rounds, {} batches]",
            q.rounds, q.batches
        ),
        None => println!(
            "quantum walk (Lemma 12): no duplicate found (error prob ≤ 1/3) \
             [{} rounds]",
            q.rounds
        ),
    }
    let c = classical_distinctness(&net, &inst, 5)?;
    println!(
        "classical streaming     : duplicate {:?} [{} rounds — linear in k]",
        c.pair, c.rounds
    );

    // --- Per-node serial numbers on the Lemma 15 worst-case topology. ---
    let g = double_star(16, 16);
    let net = Network::new(&g);
    let mut serials: Vec<u64> = (0..g.n() as u64).map(|v| 0xbeef + 3 * v).collect();
    serials[25] = serials[4]; // a cloned serial number
    println!("\nper-node serials: double-star of {} devices, one clone", g.n());
    let q = quantum_distinctness_between_nodes(&net, &serials, 5)?;
    match q.pair {
        Some((i, j)) => println!(
            "between-nodes (Cor. 14): devices {i} and {j} share serial {:#x} \
             [{} rounds]",
            serials[i], q.rounds
        ),
        None => println!("between-nodes (Cor. 14): all serials distinct [{} rounds]", q.rounds),
    }
    println!(
        "\nClassically this needs Ω(n/log n) rounds on this topology \
         (Lemma 15); the quantum walk does it in Õ(n^(2/3) D^(1/3))."
    );
    Ok(())
}
