//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurements are real
//! wall-clock timings (median over samples of auto-calibrated batches),
//! printed in criterion's familiar one-line format.
//!
//! Machine-readable output: set `CRITERION_JSON_OUT=<path>` and every
//! completed benchmark appends one JSON object per line
//! (`{"id": ..., "median_ns": ..., "mean_ns": ..., "samples": ...}`),
//! which the repo's `BENCH_engine.json` regeneration consumes.
//!
//! Smoke mode: `cargo bench -- --test` (mirroring upstream criterion's
//! `--test` flag) executes every benchmark body exactly once with no timing
//! loops and no JSON output — CI uses this to keep benches compiling and
//! running without paying for measurements.

#![deny(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// When set, benchmark bodies run once, untimed ([`criterion_main!`] sets
/// this when the binary is invoked with `--test`).
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Enable or disable smoke-test mode (run bodies once, no measurements).
pub fn set_test_mode(enabled: bool) {
    TEST_MODE.store(enabled, Ordering::Relaxed);
}

fn test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

pub use std::hint::black_box;

/// A benchmark identifier: function name plus an optional parameter tag.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// An id for a parameter sweep with no function name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The timing loop handed to a benchmark closure.
pub struct Bencher {
    /// Number of timed samples to collect.
    samples: usize,
    /// Collected per-iteration nanosecond estimates, one per sample.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, automatically batching fast routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            // Smoke mode: execute once so panics surface, measure nothing.
            black_box(f());
            self.sample_ns.clear();
            return;
        }
        // Calibrate: how many iterations fit in ~25 ms?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(25).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            self.sample_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

/// One completed measurement.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
}

fn summarize(id: &str, sample_ns: &[f64]) -> Record {
    let mut sorted = sample_ns.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = if sorted.is_empty() {
        0.0
    } else if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    let mean =
        if sorted.is_empty() { 0.0 } else { sorted.iter().sum::<f64>() / sorted.len() as f64 };
    Record { id: id.to_string(), median_ns: median, mean_ns: mean, samples: sorted.len() }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn report(record: &Record) {
    if test_mode() {
        println!("Testing {} ... ok", record.id);
        return;
    }
    println!(
        "{:<52} time: [{}]  (median of {} samples)",
        record.id,
        human_time(record.median_ns),
        record.samples
    );
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}\n",
                json_escape(&record.id),
                record.median_ns,
                record.mean_ns,
                record.samples
            );
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

const DEFAULT_SAMPLES: usize = 10;

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: DEFAULT_SAMPLES, sample_ns: Vec::new() };
        f(&mut b);
        report(&summarize(&id.name, &b.sample_ns));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), samples: DEFAULT_SAMPLES }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut b = Bencher { samples: self.samples, sample_ns: Vec::new() };
        f(&mut b);
        report(&summarize(&format!("{}/{}", self.name, id.name), &b.sample_ns));
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op marker).
    pub fn finish(self) {}
}

/// Define a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
///
/// Recognizes upstream criterion's `--test` flag (as passed by
/// `cargo bench -- --test`): benchmark bodies run once, untimed.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                $crate::set_test_mode(true);
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle or observe the global [`TEST_MODE`].
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bencher_measures_positive_time() {
        let _guard = MODE_LOCK.lock().unwrap();
        let mut b = Bencher { samples: 3, sample_ns: Vec::new() };
        b.iter(|| (0..100u64).sum::<u64>());
        assert_eq!(b.sample_ns.len(), 3);
        assert!(b.sample_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn smoke_mode_runs_body_exactly_once() {
        let _guard = MODE_LOCK.lock().unwrap();
        set_test_mode(true);
        let mut count = 0u32;
        let mut b = Bencher { samples: 5, sample_ns: Vec::new() };
        b.iter(|| count += 1);
        set_test_mode(false);
        assert_eq!(count, 1, "smoke mode must execute the body once");
        assert!(b.sample_ns.is_empty(), "smoke mode must not record samples");
    }

    #[test]
    fn summary_median_is_order_insensitive() {
        let a = summarize("x", &[3.0, 1.0, 2.0]);
        assert_eq!(a.median_ns, 2.0);
        assert_eq!(a.samples, 3);
        let b = summarize("x", &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(b.median_ns, 2.5);
        assert!((b.mean_ns - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("flood", "n4096").name, "flood/n4096");
        assert_eq!(BenchmarkId::from_parameter(64).name, "64");
        assert_eq!(BenchmarkId::from("plain").name, "plain");
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
        assert!(human_time(2_000_000_000.0).ends_with('s'));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("\n"), "\\u000a");
    }
}
