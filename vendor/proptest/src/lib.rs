//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its test suites use: the [`proptest!`]
//! macro, range/tuple/`Just`/`any`/`collection::vec` strategies, the
//! `prop_map`/`prop_flat_map` combinators, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed sequence (seed `i` for case `i`), there is no
//! shrinking, and `prop_assert*` panics directly (the macro reports the
//! failing case index so a failure is reproducible by construction).

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Internal: the RNG for case index `case` of a property run.
#[doc(hidden)]
pub fn rng_for_case(case: u32) -> TestRng {
    // Golden-ratio stride decorrelates neighboring case seeds.
    StdRng::seed_from_u64(0xD9C0_17E5 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator: the stand-in for `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` of `element`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define deterministic property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))] // optional
///
///     #[test]
///     fn prop_name(x in 0usize..10, v in collection::vec(any::<u64>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_case_rng = $crate::rng_for_case(case);
                    $(
                        let $arg = $crate::Strategy::generate(
                            &($strategy),
                            &mut proptest_case_rng,
                        );
                    )+
                    // Upstream property bodies may `return Ok(())` early,
                    // so the body runs inside a Result-returning closure.
                    let run = || -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(e) = run() {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::rng_for_case(0);
        for _ in 0..100 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = (0u64..5, 1i32..4).generate(&mut rng);
            assert!(a < 5 && (1..4).contains(&b));
            let v = collection::vec(any::<bool>(), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert_eq!(Just(7u8).generate(&mut rng), 7);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::rng_for_case(1);
        let s = (1usize..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
        let f = (1usize..4).prop_flat_map(|n| collection::vec(0u64..10, n..n + 1));
        for _ in 0..50 {
            let v = f.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_all_args(x in 0usize..100, flip in any::<bool>(), v in collection::vec(0u64..7, 1..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
            prop_assert!(v.iter().all(|&e| e < 7));
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u64..10) {
            prop_assert_ne!(x, 10);
        }
    }
}
