//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, and
//! [`seq::SliceRandom`]. The generator core is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and of ample statistical quality for
//! protocol simulations. The *bit streams differ* from upstream `rand`'s
//! ChaCha-based `StdRng`; everything in this workspace derives its
//! randomness from explicit seeds, so determinism (not stream
//! compatibility) is the contract.

#![deny(missing_docs)]

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible uniformly at random — the stand-in for upstream's
/// `Standard` distribution bound on [`Rng::gen`].
pub trait UniformRandom: Sized {
    /// Draw one uniform value.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformRandom for $t {
            #[inline]
            fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRandom for u128 {
    #[inline]
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl UniformRandom for bool {
    #[inline]
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open or inclusive range — the
/// stand-in for upstream's `SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                // Unbiased-enough widening multiply (Lemire reduction
                // without the rejection step; bias is < 2^-64 per draw).
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128 * (span + 1)) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as UniformRandom>::uniform(rng);
                lo + unit * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_range(lo, hi, rng)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods layered on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    #[inline]
    fn gen<T: UniformRandom>(&mut self) -> T {
        T::uniform(self)
    }

    /// A uniform value in `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        <f64 as UniformRandom>::uniform(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
    /// see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A xoshiro state must not be all-zero.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 0xBB67_AE85_84CA_A73B, 1];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement, mirroring `rand::seq::index`.
    pub mod index {
        use super::{Rng, SliceRandom};

        /// A sequence of distinct sampled indices (upstream keeps `u32` and
        /// `usize` variants; this mirror is `usize`-only).
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            #[inline]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` if no indices were sampled.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterate over the sampled indices.
            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }

            /// Consume into the underlying vector.
            #[inline]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, uniformly at
        /// random and in uniformly random order.
        ///
        /// Dense draws (`amount` a sizeable fraction of `length`) run a
        /// partial Fisher–Yates over a materialized index table, `O(length)`
        /// memory; sparse draws use Floyd's combination sampling followed by
        /// a shuffle, `O(amount)` memory.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} indices from 0..{length}");
            if amount == 0 {
                return IndexVec(Vec::new());
            }
            if length <= 4 * amount {
                // Dense: partial Fisher–Yates, keep the first `amount`.
                let mut indices: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    indices.swap(i, j);
                }
                indices.truncate(amount);
                IndexVec(indices)
            } else {
                // Sparse: Floyd's algorithm yields a uniform combination;
                // the final shuffle makes the order uniform too.
                let mut set = std::collections::HashSet::with_capacity(amount);
                let mut out = Vec::with_capacity(amount);
                for j in length - amount..length {
                    let t = rng.gen_range(0..=j);
                    if set.insert(t) {
                        out.push(t);
                    } else {
                        // `j` itself cannot have been drawn yet: every
                        // earlier round only inserts values ≤ j − 1.
                        set.insert(j);
                        out.push(j);
                    }
                }
                out.shuffle(rng);
                IndexVec(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(23);
        // Exercise both the dense (Fisher–Yates) and sparse (Floyd) paths.
        for (length, amount) in [(10usize, 10usize), (10, 4), (1000, 5), (1000, 400)] {
            for _ in 0..50 {
                let v = super::seq::index::sample(&mut rng, length, amount).into_vec();
                assert_eq!(v.len(), amount);
                let set: std::collections::HashSet<_> = v.iter().copied().collect();
                assert_eq!(set.len(), amount, "duplicates in {v:?}");
                assert!(v.iter().all(|&i| i < length));
            }
        }
    }

    #[test]
    fn index_sample_covers_positions_uniformly() {
        // Every index should appear in every output position eventually —
        // checks the order is random, not sorted (Floyd without the final
        // shuffle would leave late indices biased toward late positions).
        let mut rng = StdRng::seed_from_u64(29);
        for (length, amount) in [(6usize, 3usize), (64, 2)] {
            let mut seen = vec![[false; 2]; length];
            for _ in 0..3000 {
                let v = super::seq::index::sample(&mut rng, length, amount).into_vec();
                seen[v[0]][0] = true;
                seen[v[amount - 1]][1] = true;
            }
            assert!(
                seen.iter().all(|s| s[0] && s[1]),
                "length={length} amount={amount}: some index never hit a position"
            );
        }
    }

    #[test]
    fn index_sample_full_draw_is_permutation() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut v = super::seq::index::sample(&mut rng, 20, 20).into_vec();
        v.sort_unstable();
        assert_eq!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn index_sample_rejects_oversized_amount() {
        let mut rng = StdRng::seed_from_u64(37);
        super::seq::index::sample(&mut rng, 3, 4);
    }

    #[test]
    fn index_sample_zero_amount() {
        let mut rng = StdRng::seed_from_u64(41);
        assert!(super::seq::index::sample(&mut rng, 100, 0).is_empty());
    }
}
